//! # A minimal data-centric graph processing framework
//!
//! The paper's §1/§6.2 position RDBS against *graph processing
//! systems* — Gunrock, SEP-Graph, SIMD-X — noting that "compared with
//! works dedicated to optimizing the SSSP algorithm, the performance
//! of SSSP in graph processing systems is sub-optimal". This crate
//! reproduces that comparator class: a small Gunrock-style framework
//! on the shared GPU simulator built around frontiers and the
//! **advance / filter / compute** operator trio, plus four textbook
//! algorithms implemented *through the framework interface*:
//!
//! * [`algorithms::bfs`] — level-synchronous breadth-first search;
//! * [`algorithms::sssp`] — the framework's SSSP (frontier relaxation
//!   with advance+filter — the generality penalty the paper quantifies
//!   against its dedicated implementation);
//! * [`algorithms::connected_components`] — label propagation;
//! * [`algorithms::pagerank`] — fixed-point push-based PageRank.
//!
//! The framework is intentionally generic: operators know nothing
//! about light/heavy edges, buckets or workload classes — which is
//! precisely why the dedicated RDBS kernels outrun it.

pub mod algorithms;
pub mod engine;

pub use engine::{AdvanceOutcome, Engine};
