//! The data-centric engine: frontiers plus advance/filter/compute.

use rdbs_core::gpu::buffers::{DeviceQueue, GraphBuffers};
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::{Buf, Device, DeviceConfig, Lane};

/// What an advance functor tells the engine about one edge visit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceOutcome {
    /// Nothing changed.
    Skip,
    /// The destination's state changed: put it in the output frontier
    /// (deduplicated by the engine's pending flags).
    Activate,
}

/// A Gunrock-style engine bound to one graph on one simulated device.
///
/// The frontier lives in device queues; `advance` maps a functor over
/// the out-edges of the current frontier, `filter` compacts the
/// frontier with a predicate, `compute` maps over all vertices.
/// Every operator is one synchronous kernel launch plus a barrier —
/// the framework generality the paper's dedicated kernels avoid.
pub struct Engine {
    device: Device,
    gb: GraphBuffers,
    cur: DeviceQueue,
    next: DeviceQueue,
    pending: Buf,
    frontier: Vec<VertexId>,
    iterations: u32,
}

impl Engine {
    /// Upload `graph` to a fresh device.
    pub fn new(config: DeviceConfig, graph: &Csr) -> Self {
        let mut device = Device::new(config);
        let gb = GraphBuffers::upload(&mut device, graph);
        let n = graph.num_vertices() as u32;
        let cur = DeviceQueue::new(&mut device, "fw_frontier", n);
        let next = DeviceQueue::new(&mut device, "fw_next", n);
        let pending = device.alloc("fw_pending", n as usize);
        Self { device, gb, cur, next, pending, frontier: Vec::new(), iterations: 0 }
    }

    /// The device (for buffer allocation and result readback).
    pub fn device(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Graph buffers (row/adj/wt/dist) for functors that need them.
    pub fn graph_buffers(&self) -> GraphBuffers {
        self.gb
    }

    /// Vertices in the graph.
    pub fn num_vertices(&self) -> u32 {
        self.gb.n
    }

    /// Reset and seed the frontier.
    pub fn init_frontier(&mut self, vertices: &[VertexId]) {
        self.device.fill(self.pending, 0);
        self.device.write_word(self.cur.tail, 0, 0);
        self.device.write_word(self.next.tail, 0, 0);
        for &v in vertices {
            self.device.write_word(self.pending, v as usize, 1);
            self.cur.host_push(&mut self.device, v);
        }
        self.frontier = vertices.to_vec();
        self.iterations = 0;
    }

    /// Current frontier size.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Operator iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Simulated milliseconds so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.device.elapsed_ms()
    }

    /// **Advance**: apply `functor(lane, src, dst, weight)` to every
    /// out-edge of the current frontier; destinations reported
    /// [`AdvanceOutcome::Activate`] form the next frontier. Returns
    /// the new frontier size.
    pub fn advance(
        &mut self,
        name: &'static str,
        functor: impl Fn(&mut Lane<'_>, VertexId, VertexId, u32) -> AdvanceOutcome,
    ) -> usize {
        if self.frontier.is_empty() {
            return 0;
        }
        self.iterations += 1;
        let gb = self.gb;
        let cur = self.cur;
        let next = self.next;
        let pending = self.pending;
        let frontier = std::mem::take(&mut self.frontier);
        let frontier_ref = &frontier;
        self.device.launch(name, frontier.len() as u64, move |lane| {
            let i = lane.tid() as usize;
            let _ = lane.ld(cur.data, i as u32);
            let u = frontier_ref[i];
            lane.st(pending, u, 0);
            let start = lane.ld(gb.row, u);
            let end = lane.ld(gb.row, u + 1);
            for e in start..end {
                let v = lane.ld(gb.adj, e);
                let w = lane.ld(gb.wt, e);
                lane.alu(2);
                if functor(lane, u, v, w) == AdvanceOutcome::Activate
                    && lane.atomic_exch(pending, v, 1) == 0
                {
                    next.push(lane, v);
                }
            }
        });
        self.device.charge_barrier();
        // Manager step: swap frontiers.
        self.frontier = self.next.drain(&mut self.device);
        self.device.write_word(self.cur.tail, 0, 0);
        std::mem::swap(&mut self.cur, &mut self.next);
        self.frontier.len()
    }

    /// **Filter**: keep only frontier vertices satisfying `pred`.
    /// Returns the surviving count.
    pub fn filter(
        &mut self,
        name: &'static str,
        pred: impl Fn(&mut Lane<'_>, VertexId) -> bool,
    ) -> usize {
        if self.frontier.is_empty() {
            return 0;
        }
        self.iterations += 1;
        let cur = self.cur;
        let next = self.next;
        let frontier = std::mem::take(&mut self.frontier);
        let frontier_ref = &frontier;
        self.device.launch(name, frontier.len() as u64, move |lane| {
            let i = lane.tid() as usize;
            let _ = lane.ld(cur.data, i as u32);
            let v = frontier_ref[i];
            if pred(lane, v) {
                next.push(lane, v);
            }
        });
        self.device.charge_barrier();
        self.frontier = self.next.drain(&mut self.device);
        self.device.write_word(self.cur.tail, 0, 0);
        std::mem::swap(&mut self.cur, &mut self.next);
        self.frontier.len()
    }

    /// **Compute**: map `f(lane, v)` over every vertex of the graph
    /// (topology-driven, one thread per vertex).
    pub fn compute(&mut self, name: &'static str, f: impl Fn(&mut Lane<'_>, VertexId)) {
        self.iterations += 1;
        let n = self.gb.n;
        self.device.launch(name, n as u64, move |lane| {
            let v = lane.tid() as u32;
            f(lane, v);
        });
        self.device.charge_barrier();
    }

    /// Rebuild the frontier host-side from a device predicate scan
    /// (used by algorithms that activate vertices out-of-band).
    pub fn gather_frontier(
        &mut self,
        name: &'static str,
        pred: impl Fn(&mut Lane<'_>, VertexId) -> bool,
    ) -> usize {
        self.iterations += 1;
        let n = self.gb.n;
        let next = self.next;
        let pending = self.pending;
        self.device.launch(name, n as u64, move |lane| {
            let v = lane.tid() as u32;
            if pred(lane, v) && lane.atomic_exch(pending, v, 1) == 0 {
                next.push(lane, v);
            }
        });
        self.device.charge_barrier();
        self.frontier = self.next.drain(&mut self.device);
        self.device.write_word(self.cur.tail, 0, 0);
        std::mem::swap(&mut self.cur, &mut self.next);
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    fn path() -> Csr {
        build_undirected(&EdgeList::from_edges(4, vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)]))
    }

    #[test]
    fn advance_expands_frontier() {
        let g = path();
        let mut e = Engine::new(DeviceConfig::test_tiny(), &g);
        e.init_frontier(&[0]);
        assert_eq!(e.frontier_len(), 1);
        let n = e.advance("expand", |_, _, _, _| AdvanceOutcome::Activate);
        assert_eq!(n, 1); // vertex 1
        let n = e.advance("expand", |_, _, _, _| AdvanceOutcome::Activate);
        assert_eq!(n, 2); // 0 and 2 (both neighbours of 1)
    }

    #[test]
    fn filter_compacts() {
        let g = path();
        let mut e = Engine::new(DeviceConfig::test_tiny(), &g);
        e.init_frontier(&[0, 1, 2, 3]);
        let n = e.filter("evens", |_, v| v % 2 == 0);
        assert_eq!(n, 2);
    }

    #[test]
    fn compute_touches_all_vertices() {
        let g = path();
        let mut e = Engine::new(DeviceConfig::test_tiny(), &g);
        let out = e.device().alloc("out", 4);
        e.compute("mark", move |lane, v| lane.st(out, v, v + 10));
        assert_eq!(e.device().read(out), &[10, 11, 12, 13]);
    }

    #[test]
    fn operators_charge_kernels_and_barriers() {
        let g = path();
        let mut e = Engine::new(DeviceConfig::test_tiny(), &g);
        e.init_frontier(&[0]);
        e.advance("a", |_, _, _, _| AdvanceOutcome::Skip);
        e.compute("c", |_, _| {});
        assert_eq!(e.device().counters().kernel_launches, 2);
        assert_eq!(e.device().counters().barriers, 2);
        assert!(e.elapsed_ms() > 0.0);
    }
}
