//! Textbook graph algorithms expressed through the framework's
//! advance/filter/compute operators.

use crate::engine::{AdvanceOutcome, Engine};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{Csr, Dist, VertexId, INF};
use rdbs_gpu_sim::DeviceConfig;
use std::cell::Cell;

/// Level-synchronous BFS; returns hop levels (`u32::MAX` unreached)
/// and the engine (for timing/counter inspection).
pub fn bfs(config: DeviceConfig, graph: &Csr, source: VertexId) -> (Vec<u32>, Engine) {
    let mut e = Engine::new(config, graph);
    let n = e.num_vertices();
    let level = e.device().alloc("bfs_level", n as usize);
    e.device().fill(level, u32::MAX);
    e.device().write_word(level, source as usize, 0);
    e.init_frontier(&[source]);
    let mut depth = 0u32;
    while e.frontier_len() > 0 {
        depth += 1;
        e.advance("bfs_advance", move |lane, _u, v, _w| {
            // Claim unvisited destinations with CAS.
            if lane.ld(level, v) == u32::MAX
                && lane.atomic_cas(level, v, u32::MAX, depth) == u32::MAX
            {
                AdvanceOutcome::Activate
            } else {
                AdvanceOutcome::Skip
            }
        });
    }
    let out = e.device().read(level).to_vec();
    (out, e)
}

/// The framework's SSSP: synchronous frontier relaxation via
/// advance — Gunrock's data-centric formulation without any of the
/// paper's specializations (no buckets, no light/heavy split, no
/// workload classes, no asynchrony).
pub fn sssp(config: DeviceConfig, graph: &Csr, source: VertexId) -> (SsspResult, Engine) {
    let mut e = Engine::new(config, graph);
    let gb = e.graph_buffers();
    gb.init_source(e.device(), source);
    e.init_frontier(&[source]);
    let updates = Cell::new(0u64);
    let checks = Cell::new(0u64);
    let mut rounds = 0u32;
    while e.frontier_len() > 0 {
        rounds += 1;
        let updates_ref = &updates;
        let checks_ref = &checks;
        e.advance("fw_sssp_relax", move |lane, u, v, w| {
            let du = lane.ld_volatile(gb.dist, u);
            lane.alu(1);
            let nd = du.saturating_add(w);
            checks_ref.set(checks_ref.get() + 1);
            let dv = lane.ld(gb.dist, v);
            if nd < dv {
                let old = lane.atomic_min(gb.dist, v, nd);
                if nd < old {
                    updates_ref.set(updates_ref.get() + 1);
                    return AdvanceOutcome::Activate;
                }
            }
            AdvanceOutcome::Skip
        });
    }
    let dist = gb.download_dist(e.device());
    let stats = UpdateStats {
        total_updates: updates.get(),
        checks: checks.get(),
        phase1_layers: vec![rounds],
        ..Default::default()
    };
    (SsspResult { source, dist, stats }, e)
}

/// Connected components by label propagation: every vertex starts
/// with its own id; labels relax to the minimum over neighbourhoods.
/// Returns the component label per vertex.
pub fn connected_components(config: DeviceConfig, graph: &Csr) -> (Vec<u32>, Engine) {
    let mut e = Engine::new(config, graph);
    let n = e.num_vertices();
    let label = e.device().alloc("cc_label", n as usize);
    for v in 0..n {
        e.device().write_word(label, v as usize, v);
    }
    let all: Vec<VertexId> = (0..n).collect();
    e.init_frontier(&all);
    while e.frontier_len() > 0 {
        e.advance("cc_propagate", move |lane, u, v, _w| {
            let lu = lane.ld_volatile(label, u);
            let lv = lane.ld(label, v);
            lane.alu(1);
            if lu < lv {
                let old = lane.atomic_min(label, v, lu);
                if lu < old {
                    return AdvanceOutcome::Activate;
                }
            }
            AdvanceOutcome::Skip
        });
    }
    let out = e.device().read(label).to_vec();
    (out, e)
}

/// Fixed-point scale for PageRank ranks (Q16.16).
pub const PR_SCALE: u32 = 1 << 16;

/// Push-based PageRank with damping 0.85 for `iters` iterations.
/// Ranks are Q16.16 fixed point summing to ~`n * PR_SCALE`.
pub fn pagerank(config: DeviceConfig, graph: &Csr, iters: u32) -> (Vec<u32>, Engine) {
    let mut e = Engine::new(config, graph);
    let n = e.num_vertices();
    let gb = e.graph_buffers();
    let rank = e.device().alloc("pr_rank", n as usize);
    let acc = e.device().alloc("pr_acc", n as usize);
    e.device().fill(rank, PR_SCALE);
    // damping in fixed point.
    let d_fp: u64 = (0.85 * PR_SCALE as f64) as u64;
    let base_fp: u32 = ((1.0 - 0.85) * PR_SCALE as f64) as u32;
    for _ in 0..iters {
        e.device().fill(acc, 0);
        // Push each vertex's rank share to its neighbours.
        e.compute("pr_push", move |lane, v| {
            let start = lane.ld(gb.row, v);
            let end = lane.ld(gb.row, v + 1);
            let deg = end - start;
            if deg == 0 {
                return;
            }
            let r = lane.ld(rank, v);
            lane.alu(2);
            let share = r / deg;
            for e_idx in start..end {
                let u = lane.ld(gb.adj, e_idx);
                lane.atomic_add(acc, u, share);
            }
        });
        // rank = (1 - d) + d * acc.
        e.compute("pr_apply", move |lane, v| {
            let a = lane.ld(acc, v);
            lane.alu(2);
            let r = base_fp + ((d_fp * a as u64) >> 16) as u32;
            lane.st(rank, v, r);
        });
    }
    let out = e.device().read(rank).to_vec();
    (out, e)
}

/// Convenience: distances as `Dist` slice compare helper for tests.
pub fn reached(dist: &[Dist]) -> usize {
    dist.iter().filter(|&&d| d != INF).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_core::validate::check_against;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, preferential_attachment, uniform_weights};
    use rdbs_graph::stats;

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 600, seed);
        uniform_weights(&mut el, seed + 21);
        build_undirected(&el)
    }

    #[test]
    fn bfs_matches_reference_levels() {
        for seed in 0..3 {
            let g = graph(seed);
            let (levels, _) = bfs(DeviceConfig::test_tiny(), &g, 0);
            assert_eq!(levels, stats::bfs_levels(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn framework_sssp_matches_dijkstra() {
        for seed in 0..3 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            let (r, _) = sssp(DeviceConfig::test_tiny(), &g, 0);
            check_against(&oracle.dist, &r.dist).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        }
    }

    #[test]
    fn cc_matches_reference_components() {
        let el = EdgeList::from_edges(7, vec![(0, 1, 1), (1, 2, 1), (3, 4, 1), (5, 5, 1)]);
        let g = build_undirected(&el);
        let (labels, _) = connected_components(DeviceConfig::test_tiny(), &g);
        let reference = stats::connected_components(&g);
        // Same partition (labels may differ; compare co-membership).
        for a in 0..7usize {
            for b in 0..7usize {
                assert_eq!(
                    labels[a] == labels[b],
                    reference.labels[a] == reference.labels[b],
                    "vertices {a},{b}"
                );
            }
        }
    }

    #[test]
    fn pagerank_favours_hubs_and_conserves_mass() {
        let mut el = preferential_attachment(200, 3, 5);
        uniform_weights(&mut el, 6);
        let g = build_undirected(&el);
        let (ranks, _) = pagerank(DeviceConfig::test_tiny(), &g, 15);
        // The max-degree vertex must outrank the median vertex.
        let hub = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(ranks[hub as usize] > 2 * median, "hub {} median {median}", ranks[hub as usize]);
        // Mass roughly conserved (fixed-point truncation loses a bit).
        let total: u64 = ranks.iter().map(|&r| r as u64).sum();
        let expect = g.num_vertices() as u64 * PR_SCALE as u64;
        assert!(total > expect / 2 && total < expect * 3 / 2, "total {total} vs {expect}");
    }

    #[test]
    fn framework_sssp_is_less_efficient_than_dedicated_rdbs() {
        // The paper's §1 claim about graph processing systems.
        let mut el = preferential_attachment(500, 5, 9);
        uniform_weights(&mut el, 10);
        let g = build_undirected(&el);
        let (fw, engine) = sssp(DeviceConfig::test_tiny(), &g, 0);
        let dedicated = rdbs_core::gpu::run_gpu(
            &g,
            0,
            rdbs_core::gpu::Variant::Rdbs(rdbs_core::gpu::RdbsConfig::full()),
            DeviceConfig::test_tiny(),
        );
        assert_eq!(fw.dist, dedicated.result.dist);
        assert!(
            fw.stats.total_updates >= dedicated.result.stats.total_updates,
            "framework should be no more work-efficient: fw {} vs rdbs {}",
            fw.stats.total_updates,
            dedicated.result.stats.total_updates
        );
        let _ = engine;
    }
}
