//! Property tests for the fault-injection layer: every `FaultPlan`
//! must replay byte-identically from its seed, and an armed plan at
//! rate 0 must be indistinguishable from no plan at all.

use proptest::prelude::*;
use proptest::strategy::Just;
use rdbs_gpu_sim::{Counters, Device, DeviceConfig, FaultEvent, FaultModel, FaultPlan, FaultSpec};

/// Everything observable about one workload run: final distances,
/// device counters, the fault log, and the exchanged message batch.
type WorkloadOutput = (Vec<u32>, Counters, Vec<FaultEvent>, Vec<(u32, u32)>);

/// A fixed workload exercising every hooked path: plain and volatile
/// loads, atomic-min relaxations, child launches, and a multi-wave
/// persistent session, then a host-side message exchange.
fn run_workload(spec: Option<FaultSpec>) -> WorkloadOutput {
    let mut d = Device::new(DeviceConfig::test_tiny());
    if let Some(spec) = spec {
        d.arm_faults(FaultPlan::new(spec));
    }
    let dist = d.alloc_upload("dist", &[u32::MAX; 64]);
    d.write_word(dist, 0, 0);
    for round in 0..4u32 {
        d.launch("relax", 64, move |lane| {
            let i = lane.tid() as u32;
            let du = lane.ld(dist, i);
            let dv = lane.ld_volatile(dist, (i + 1) % 64);
            if du != u32::MAX && dv > du {
                lane.atomic_min(dist, (i + 1) % 64, du.saturating_add(round + 1));
            }
            if i == 0 {
                lane.launch_child("child", 8, move |cl| {
                    let j = cl.tid() as u32;
                    let v = cl.ld(dist, j);
                    cl.atomic_min(dist, j, v);
                });
            }
        });
    }
    let mut s = d.wave_session("async");
    for _ in 0..3 {
        s.wave(16, 1, |lane| {
            let i = lane.tid() as u32;
            let v = lane.ld_volatile(dist, i);
            lane.atomic_min(dist, i, v);
        });
    }
    let mut msgs: Vec<(u32, u32)> = (0..16).map(|i| (i, i * 3)).collect();
    d.fault_filter_messages(&mut msgs);
    let log = d.fault_log().to_vec();
    (d.read(dist).to_vec(), d.counters().clone(), log, msgs)
}

fn arb_model() -> impl Strategy<Value = FaultModel> {
    (0..FaultModel::ALL.len()).prop_map(|i| FaultModel::ALL[i])
}

fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(0.01), Just(0.1), Just(0.5), Just(1.0)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Same spec, same kernel sequence → byte-identical device state,
    /// counters, injection log and message batch.
    #[test]
    fn fault_plan_replays_byte_identically(
        model in arb_model(),
        rate in arb_rate(),
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::new(model, rate, seed);
        let a = run_workload(Some(spec));
        let b = run_workload(Some(spec));
        prop_assert_eq!(a, b);
    }

    /// A different seed at a firing rate produces a different
    /// injection schedule (sanity: the seed actually drives the plan).
    #[test]
    fn seed_changes_the_schedule(seed in any::<u64>()) {
        let spec = |s| FaultSpec::new(FaultModel::BitFlip, 0.2, s);
        let (_, _, log_a, _) = run_workload(Some(spec(seed)));
        let (_, _, log_b, _) = run_workload(Some(spec(seed ^ 0x5DEE_CE66)));
        // Logs may coincidentally match on tiny schedules; memory +
        // log together matching would be astronomically unlikely, but
        // keep the property robust: only require determinism per seed,
        // and that *some* injections happen at this rate.
        prop_assert!(!log_a.is_empty() || !log_b.is_empty());
    }

    /// Rate-0 armed plan is indistinguishable from no plan: the
    /// fault-free path is bit-identical.
    #[test]
    fn rate_zero_is_bit_identical_to_unarmed(model in arb_model(), seed in any::<u64>()) {
        let (mem_f, ctr_f, log_f, msgs_f) = run_workload(Some(FaultSpec::new(model, 0.0, seed)));
        let (mem_n, ctr_n, log_n, msgs_n) = run_workload(None);
        prop_assert_eq!(mem_f, mem_n);
        prop_assert_eq!(ctr_f, ctr_n);
        prop_assert_eq!(msgs_f, msgs_n);
        prop_assert!(log_f.is_empty() && log_n.is_empty());
    }
}
