//! Integration tests of the simulator's coherence and scaling
//! semantics — the behaviours the SSSP kernels rely on.

use rdbs_gpu_sim::{Device, DeviceConfig};

fn tiny() -> Device {
    Device::new(DeviceConfig::test_tiny())
}

// ---------------- snapshot coherence (sync kernels) ----------------

#[test]
fn sync_kernel_plain_loads_see_kernel_entry_values() {
    let mut d = tiny();
    let x = d.alloc_upload("x", &[7, 0]);
    // Lane 0 stores x[0] = 99; lane 1 (executed after in the
    // sequential model) must still *load* the snapshot value 7.
    let seen = std::cell::Cell::new(0u32);
    d.launch("k", 2, |lane| {
        if lane.tid() == 0 {
            lane.st(x, 0, 99);
        } else {
            seen.set(lane.ld(x, 0));
        }
    });
    assert_eq!(seen.get(), 7, "plain load must observe the snapshot");
    assert_eq!(d.read_word(x, 0), 99, "the store itself is live");
}

#[test]
fn sync_kernel_volatile_loads_see_live_values() {
    let mut d = tiny();
    let x = d.alloc_upload("x", &[7]);
    let seen = std::cell::Cell::new(0u32);
    d.launch("k", 2, |lane| {
        if lane.tid() == 0 {
            lane.st(x, 0, 99);
        } else {
            seen.set(lane.ld_volatile(x, 0));
        }
    });
    assert_eq!(seen.get(), 99, "volatile load must observe live memory");
}

#[test]
fn sync_kernel_atomics_are_coherent() {
    let mut d = tiny();
    let x = d.alloc_upload("x", &[100]);
    // Successive atomic_mins see each other even in snapshot mode.
    let olds = std::cell::RefCell::new(Vec::new());
    d.launch("k", 3, |lane| {
        let old = lane.atomic_min(x, 0, 90 - lane.tid() as u32);
        olds.borrow_mut().push(old);
    });
    assert_eq!(*olds.borrow(), vec![100, 90, 89]);
    assert_eq!(d.read_word(x, 0), 88);
}

#[test]
fn wave_has_immediate_visibility() {
    let mut d = tiny();
    let x = d.alloc_upload("x", &[7]);
    let seen = std::cell::Cell::new(0u32);
    // Waves model persistent/asynchronous kernels: plain loads see
    // earlier lanes' stores.
    d.wave("async", 2, 1, |lane| {
        if lane.tid() == 0 {
            lane.st(x, 0, 99);
        } else {
            seen.set(lane.ld(x, 0));
        }
    });
    assert_eq!(seen.get(), 99);
}

#[test]
fn snapshots_reset_between_launches() {
    let mut d = tiny();
    let x = d.alloc_upload("x", &[1]);
    d.launch("k1", 1, |lane| {
        lane.st(x, 0, 2);
    });
    let seen = std::cell::Cell::new(0u32);
    d.launch("k2", 1, |lane| {
        seen.set(lane.ld(x, 0));
    });
    assert_eq!(seen.get(), 2, "next kernel snapshots the committed state");
}

// ---------------- scaling helpers ----------------

#[test]
fn overhead_scaling_divides_fixed_costs() {
    let base = DeviceConfig::v100();
    let scaled = base.clone().with_overhead_scale(1.0 / 64.0);
    assert!((scaled.kernel_launch_us - base.kernel_launch_us / 64.0).abs() < 1e-12);
    assert!((scaled.barrier_us - base.barrier_us / 64.0).abs() < 1e-12);
    assert!((scaled.child_launch_us - base.child_launch_us / 64.0).abs() < 1e-12);
    // Throughput parameters untouched.
    assert_eq!(scaled.mem_bandwidth_gbps, base.mem_bandwidth_gbps);
    assert_eq!(scaled.num_sms, base.num_sms);
}

#[test]
fn cache_scaling_floors_at_one_set() {
    let base = DeviceConfig::v100();
    let scaled = base.clone().with_cache_scale(1.0 / 1_000_000.0);
    assert!(scaled.l1_bytes >= scaled.line_bytes * scaled.ways as u64);
    assert!(scaled.l2_bytes >= scaled.l1_bytes);
    let mid = base.clone().with_cache_scale(0.5);
    assert_eq!(mid.l1_bytes, base.l1_bytes / 2);
}

#[test]
fn smaller_cache_lowers_hit_rate() {
    let run = |cfg: DeviceConfig| {
        let mut d = Device::new(cfg);
        let x = d.alloc("x", 1 << 14);
        // Two passes over a 64 KiB array.
        for _ in 0..2 {
            d.launch("scan", 1 << 14, |lane| {
                let i = lane.tid() as u32;
                let _ = lane.ld(x, i);
            });
        }
        d.counters().global_hit_rate()
    };
    let big = run(DeviceConfig::v100());
    let small = run(DeviceConfig::v100().with_cache_scale(1.0 / 4096.0));
    assert!(big > small, "big-cache hit {big:.1}% vs small {small:.1}%");
}

// ---------------- timing sanity ----------------

#[test]
fn charged_time_is_monotone_in_work() {
    let mut d = Device::new(DeviceConfig::v100());
    let x = d.alloc("x", 1 << 12);
    d.launch("small", 1 << 8, |lane| {
        let _ = lane.ld(x, lane.tid() as u32);
    });
    let t1 = d.elapsed_ms();
    d.launch("large", 1 << 12, |lane| {
        let _ = lane.ld(x, lane.tid() as u32);
    });
    let t2 = d.elapsed_ms() - t1;
    assert!(t2 > 0.0 && t1 > 0.0);
    // 16x the threads must cost more than the small kernel's body
    // (both also pay one launch overhead).
    assert!(t2 >= t1);
}

#[test]
fn reports_accumulate_and_reset() {
    let mut d = tiny();
    let x = d.alloc("x", 32);
    d.launch("a", 32, |lane| {
        lane.st(x, lane.tid() as u32, 1);
    });
    d.wave("b", 32, 1, |lane| {
        let _ = lane.ld(x, lane.tid() as u32);
    });
    assert_eq!(d.reports().len(), 2);
    assert_eq!(d.reports()[0].name, "a");
    assert!(!d.reports()[0].child);
    d.reset_stats();
    assert!(d.reports().is_empty());
    assert_eq!(d.elapsed_ms(), 0.0);
    // Memory survives a stats reset.
    assert_eq!(d.read_word(x, 5), 1);
}

#[test]
fn buffer_traffic_attribution() {
    let mut d = tiny();
    let a = d.alloc("hot", 64);
    let b = d.alloc("cold", 64);
    d.launch("k", 64, |lane| {
        let i = lane.tid() as u32;
        let _ = lane.ld(a, i);
        let _ = lane.ld(a, (i + 1) % 64);
        lane.atomic_add(b, i, 1);
    });
    let rows = d.buffer_traffic();
    let hot = rows.iter().find(|r| r.0 == "hot").unwrap();
    let cold = rows.iter().find(|r| r.0 == "cold").unwrap();
    assert_eq!(hot.1, 128, "two loads per lane");
    assert_eq!(hot.2 + hot.3, 0);
    assert_eq!(cold.3, 64, "one atomic per lane");
    // Sorted by total descending: hot first.
    assert_eq!(rows[0].0, "hot");
}
