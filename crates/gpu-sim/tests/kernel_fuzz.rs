//! Property-based fuzzing of the simulator: random kernel programs
//! must execute deterministically, keep every counter invariant, and
//! respect snapshot semantics.

use proptest::prelude::*;
use rdbs_gpu_sim::{Counters, Device, DeviceConfig};

/// A tiny interpreted "instruction set" so proptest can generate
/// arbitrary kernel bodies.
#[derive(Clone, Copy, Debug)]
enum FuzzOp {
    Load(u16),
    VolatileLoad(u16),
    Store(u16, u32),
    AtomicMin(u16, u32),
    AtomicAdd(u16, u32),
    AtomicCas(u16, u32, u32),
    Alu(u8),
}

const BUF_LEN: u16 = 256;

fn arb_op() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        (0..BUF_LEN).prop_map(FuzzOp::Load),
        (0..BUF_LEN).prop_map(FuzzOp::VolatileLoad),
        (0..BUF_LEN, any::<u32>()).prop_map(|(i, v)| FuzzOp::Store(i, v)),
        (0..BUF_LEN, any::<u32>()).prop_map(|(i, v)| FuzzOp::AtomicMin(i, v)),
        (0..BUF_LEN, 0u32..1000).prop_map(|(i, v)| FuzzOp::AtomicAdd(i, v)),
        (0..BUF_LEN, any::<u32>(), any::<u32>()).prop_map(|(i, c, v)| FuzzOp::AtomicCas(i, c, v)),
        (1u8..8).prop_map(FuzzOp::Alu),
    ]
}

/// Each thread runs a (tid-dependent) slice of the program.
fn arb_program() -> impl Strategy<Value = Vec<FuzzOp>> {
    proptest::collection::vec(arb_op(), 1..24)
}

fn run_program(program: &[FuzzOp], threads: u64, sync: bool) -> (Vec<u32>, Counters, f64) {
    let mut d = Device::new(DeviceConfig::test_tiny());
    let buf = d.alloc("fuzz", BUF_LEN as usize);
    let body = |lane: &mut rdbs_gpu_sim::Lane<'_>| {
        // Rotate the program by tid so lanes diverge.
        let rot = (lane.tid() % program.len() as u64) as usize;
        for op in program.iter().cycle().skip(rot).take(program.len()) {
            match *op {
                FuzzOp::Load(i) => {
                    lane.ld(buf, i as u32);
                }
                FuzzOp::VolatileLoad(i) => {
                    lane.ld_volatile(buf, i as u32);
                }
                FuzzOp::Store(i, v) => lane.st(buf, i as u32, v),
                FuzzOp::AtomicMin(i, v) => {
                    lane.atomic_min(buf, i as u32, v);
                }
                FuzzOp::AtomicAdd(i, v) => {
                    lane.atomic_add(buf, i as u32, v);
                }
                FuzzOp::AtomicCas(i, c, v) => {
                    lane.atomic_cas(buf, i as u32, c, v);
                }
                FuzzOp::Alu(n) => lane.alu(n as u32),
            }
        }
    };
    if sync {
        d.launch("fuzz", threads, body);
    } else {
        d.wave("fuzz", threads, 1, body);
    }
    (d.read(buf).to_vec(), d.counters().clone(), d.elapsed_ms())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn deterministic_execution(program in arb_program(), threads in 1u64..128, sync in any::<bool>()) {
        let a = run_program(&program, threads, sync);
        let b = run_program(&program, threads, sync);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert!((a.2 - b.2).abs() < 1e-12);
    }

    #[test]
    fn counter_invariants(program in arb_program(), threads in 1u64..128, sync in any::<bool>()) {
        let (_, c, ms) = run_program(&program, threads, sync);
        // Structural invariants of the counting model.
        prop_assert!(c.inst_executed >= c.inst_executed_global_loads
            + c.inst_executed_global_stores + c.inst_executed_atomics);
        prop_assert!(c.gld_transactions >= c.inst_executed_global_loads);
        prop_assert!(c.gst_transactions >= c.inst_executed_global_stores);
        prop_assert!(c.atom_transactions >= c.inst_executed_atomics);
        prop_assert!(c.l1_hits <= c.l1_accesses);
        prop_assert!(c.l2_hits <= c.l2_accesses);
        prop_assert_eq!(c.l1_accesses, c.total_transactions());
        // Every transaction either hits L1 or proceeds to L2.
        prop_assert_eq!(c.l2_accesses, c.l1_accesses - c.l1_hits);
        prop_assert_eq!(c.dram_transactions, c.l2_accesses - c.l2_hits);
        prop_assert!(c.active_lane_sum <= c.lane_slot_sum);
        prop_assert_eq!(c.threads, threads);
        prop_assert_eq!(c.warps, threads.div_ceil(32));
        prop_assert!(ms > 0.0);
    }

    #[test]
    fn snapshot_only_affects_plain_loads(program in arb_program(), threads in 1u64..64) {
        // Functional memory state must be identical for sync vs wave
        // execution of programs without plain loads feeding stores —
        // here: programs of stores/atomics only at fixed values, whose
        // final state is order-insensitive per address.
        let stores_only: Vec<FuzzOp> = program
            .iter()
            .filter(|op| matches!(op, FuzzOp::AtomicMin(_, _) | FuzzOp::AtomicAdd(_, _)))
            .copied()
            .collect();
        prop_assume!(!stores_only.is_empty());
        let (mem_sync, _, _) = run_program(&stores_only, threads, true);
        let (mem_wave, _, _) = run_program(&stores_only, threads, false);
        prop_assert_eq!(mem_sync, mem_wave);
    }

    #[test]
    fn more_threads_never_reduce_instructions(program in arb_program(), sync in any::<bool>()) {
        let (_, c1, _) = run_program(&program, 16, sync);
        let (_, c2, _) = run_program(&program, 64, sync);
        prop_assert!(c2.inst_executed >= c1.inst_executed);
        prop_assert!(c2.threads > c1.threads);
    }
}
