//! # SIMT GPU simulator substrate
//!
//! The paper evaluates CUDA kernels on NVIDIA V100/T4 hardware and
//! reports nvprof counters. Rust GPU tooling is immature, so this crate
//! provides the substitution: a **warp-level functional + timing
//! simulator** that the SSSP kernels in `rdbs-core` run against.
//!
//! ## Execution model
//!
//! Kernel bodies are plain Rust closures receiving a [`Lane`] handle.
//! Threads execute *functionally* one warp (32 lanes) at a time — every
//! global load, store and atomic takes effect immediately on device
//! memory — while each lane records an operation trace. After a warp's
//! lanes finish, the trace is **replayed in lockstep**:
//!
//! * lanes are aligned by operation index, and at every step the active
//!   lanes are grouped by operation kind — divergent groups serialize,
//!   exactly like SIMT branch divergence, and each group costs one
//!   warp-level instruction (this is what nvprof's
//!   `inst_executed_global_loads` counts);
//! * the addresses of a memory group are **coalesced** into 32-byte
//!   sectors; each sector becomes one transaction fed through a
//!   set-associative L1 (per SM) and a shared L2 — producing
//!   `global_hit_rate` — and DRAM traffic on misses;
//! * atomics to the same address within a warp serialize (conflict
//!   cost), reproducing the paper's `inst_executed_atomics` analysis.
//!
//! Timing is a throughput ("roofline") model: a kernel's compute time
//! is the maximum per-SM accumulation of warp-instruction cycles, its
//! memory time is DRAM bytes over device bandwidth, and the kernel
//! takes the larger of the two plus launch/barrier overheads. Device
//! presets reproduce the paper's V100 and T4 (§5.1.1, §5.4.2).
//!
//! Dynamic parallelism (§4.2) is modelled by [`Lane::launch_child`]:
//! child kernels queue on the device and run after the parent wave,
//! charged a (cheaper) device-side launch overhead.
//!
//! Asynchronous persistent kernels (§4.3) are modelled with
//! [`Device::wave_session`]: one launch overhead, then arbitrarily many
//! task waves whose updates are immediately visible.
//!
//! Independent command streams are modelled with [`StreamSet`]: work
//! issued on different streams is charged to per-stream busy clocks and
//! the device clock advances by their makespan, so a concurrent
//! scheduler overlaps queries without threads — deterministically.
//!
//! An opt-in memory-model sanitizer ([`Device::arm_sanitizer`], the
//! [`san`] module) checks every lane access against the snapshot /
//! volatile / atomic discipline the kernels rely on — races, reads of
//! never-written words, gang divergence — reporting typed
//! [`SanViolation`]s; disarmed, it costs one branch per access.
//!
//! An opt-in access-IR recorder ([`Device::arm_ir`], the [`ir`]
//! module) retains a bounded per-race-window access summary that the
//! `rdbs-statan` crate verifies *statically* — its verdicts quantify
//! over every lane interleaving, not the one that happened to run.
//!
//! Everything is deterministic: the same kernel sequence yields the
//! same counters, byte-for-byte.
//!
//! ```
//! use rdbs_gpu_sim::{Device, DeviceConfig};
//!
//! let mut device = Device::new(DeviceConfig::v100());
//! let xs = device.alloc_upload("xs", &[1, 2, 3, 4]);
//! let out = device.alloc("out", 4);
//! device.launch("double", 4, |lane| {
//!     let i = lane.tid() as u32;
//!     let x = lane.ld(xs, i);
//!     lane.alu(1);
//!     lane.st(out, i, 2 * x);
//! });
//! assert_eq!(device.read(out), &[2, 4, 6, 8]);
//! assert_eq!(device.counters().inst_executed_global_loads, 1); // one warp
//! assert!(device.elapsed_ms() > 0.0);
//! ```

#![deny(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod cost;
pub mod counters;
pub mod device;
pub mod fault;
pub mod ir;
pub mod kernel;
pub mod replay;
pub mod san;
pub mod sched;
pub mod stream;
pub mod trace;

pub use buffer::{Buf, HostStaging};
pub use counters::{Counters, KernelReport};
pub use device::{Device, DeviceConfig};
pub use fault::{FaultEvent, FaultModel, FaultPlan, FaultSpec, FaultTarget};
pub use ir::{AccessIr, Hazard, HazardKind, IrAccessor, KernelStats, QueueDecl, QueueUsage};
pub use kernel::{GangScatter, Lane, ScatterTarget, WaveSession};
pub use san::{AccessProfile, SanCheck, SanConfig, SanViolation, WordStats};
pub use sched::SchedPlan;
pub use stream::StreamSet;

/// Threads per warp, fixed at 32 like every NVIDIA architecture.
pub const WARP_SIZE: u32 = 32;

/// Memory transaction granularity in bytes (one DRAM sector).
pub const SECTOR_BYTES: u64 = 32;
