//! Roofline-style kernel timing.
//!
//! A kernel's duration is the larger of
//!
//! * **compute time** — the busiest SM's accumulated warp cycles,
//!   divided by the SM issue width (which stands in for multiple warp
//!   schedulers and latency hiding), over the core clock; and
//! * **memory time** — DRAM bytes moved over device bandwidth,
//!
//! plus a fixed launch overhead when the launch is host-side. This
//! reproduces the first-order behaviour the paper leans on: big
//! regular kernels are bandwidth-bound (V100/T4 ≈ bandwidth ratio,
//! Fig. 12), small ragged kernels are launch/occupancy-bound (why
//! synchronous iteration with its per-layer launches loses, §4.3).

use crate::device::DeviceConfig;

/// Compute and memory components of one kernel, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelTime {
    /// Instruction-issue (compute-bound) time.
    pub compute_ns: f64,
    /// DRAM-traffic (bandwidth-bound) time.
    pub memory_ns: f64,
}

impl KernelTime {
    /// The charged duration: overlap compute and memory (take the max).
    pub fn busy_ns(&self) -> f64 {
        self.compute_ns.max(self.memory_ns)
    }
}

/// Convert a kernel's raw usage into time.
///
/// * `max_sm_cycles` — the busiest SM's accumulated warp cycles;
/// * `dram_bytes` — bytes that reached DRAM during the kernel.
pub fn kernel_time(config: &DeviceConfig, max_sm_cycles: u64, dram_bytes: u64) -> KernelTime {
    let effective_cycles = max_sm_cycles as f64 / config.issue_width as f64;
    // clock_ghz is cycles per nanosecond.
    let compute_ns = effective_cycles / config.clock_ghz;
    // bandwidth GB/s == bytes per nanosecond.
    let memory_ns = dram_bytes as f64 / config.mem_bandwidth_gbps;
    KernelTime { compute_ns, memory_ns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_kernel() {
        let cfg = DeviceConfig::test_tiny(); // 1 GHz, issue 1, 64 GB/s
        let t = kernel_time(&cfg, 1000, 64);
        assert!((t.compute_ns - 1000.0).abs() < 1e-9);
        assert!((t.memory_ns - 1.0).abs() < 1e-9);
        assert_eq!(t.busy_ns(), 1000.0);
    }

    #[test]
    fn memory_bound_kernel() {
        let cfg = DeviceConfig::test_tiny();
        let t = kernel_time(&cfg, 10, 64_000);
        assert!((t.memory_ns - 1000.0).abs() < 1e-9);
        assert_eq!(t.busy_ns(), 1000.0);
    }

    #[test]
    fn issue_width_scales_compute() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.issue_width = 4;
        let t = kernel_time(&cfg, 1000, 0);
        assert!((t.compute_ns - 250.0).abs() < 1e-9);
    }

    #[test]
    fn v100_beats_t4_on_bandwidth_bound() {
        let v = kernel_time(&DeviceConfig::v100(), 0, 1_000_000);
        let t = kernel_time(&DeviceConfig::t4(), 0, 1_000_000);
        let ratio = t.busy_ns() / v.busy_ns();
        assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
    }
}
