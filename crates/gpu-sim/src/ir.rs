//! Retained access IR for schedule-universal static verification.
//!
//! The dynamic sanitizer ([`crate::san`]) checks the *observed*
//! interleaving and the schedule fuzzer checks N *sampled* lane
//! permutations; a race that no sampled schedule exercises ships
//! silently. This module retains a **bounded per-race-window access
//! summary** — per touched buffer word: which access classes hit it,
//! how often, and the first two *distinct threads* per class — and the
//! happens-before structure that orders windows (barriers, snapshot
//! kernel boundaries). Within a window every pair of lanes is treated
//! as concurrent, so any verdict computed over this IR quantifies over
//! **all** interleavings, not one.
//!
//! Memory stays O(touched words per window), not O(ops): the recorder
//! keeps two accessors per (word, class) — enough to witness every
//! pairwise hazard — plus lifetime contention tables folded at window
//! close. Full traces are never retained (the warp-local
//! [`crate::trace::LaneTrace`] replay still discards them per warp).
//!
//! The IR is consumed by the `rdbs-statan` crate, which runs the
//! hazard matrix over it and emits typed per-kernel certificates.

use std::collections::{BTreeMap, HashMap};

/// Identity of one access. `(wave, lane)` is the *thread key*: two
/// accesses sharing it are program-ordered; any two accesses in the
/// same window with different keys are concurrent under some schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrAccessor {
    /// Wave counter at access time (monotonic across the device).
    pub wave: u64,
    /// Physical lane id ([`crate::Lane::phys_id`]).
    pub lane: u64,
    /// Gang/item id (`tid`; equals the lane for plain launches).
    pub gang: u64,
    /// Kernel name the access ran under.
    pub kernel: &'static str,
}

impl IrAccessor {
    /// Same simulated thread — program order applies.
    #[inline]
    pub fn same_thread(&self, other: &Self) -> bool {
        self.wave == other.wave && self.lane == other.lane
    }
}

/// The five access classes the hazard matrix distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessClass {
    /// Plain global load (snapshot semantics in synchronous kernels).
    PlainLoad = 0,
    /// Volatile/L2-coherent load (live memory, the sanctioned racy read).
    VolatileLoad = 1,
    /// Plain global store.
    Store = 2,
    /// Atomic read-modify-write.
    Atomic = 3,
    /// Plain store into a slot range reserved by a gang-collective
    /// tail bump ([`crate::Lane::gang_push`]): atomic-strength publish
    /// discipline at plain-store cost, sanctioned against atomics and
    /// volatile readers.
    ReservedStore = 4,
}

/// Bounded summary of one access class on one word within a window:
/// a count plus the first two accessors from distinct threads. Two
/// witnesses suffice to decide every pairwise hazard, so retention is
/// O(1) per (word, class) no matter how many lanes pile on.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassSummary {
    /// Accesses of this class on this word in the current window.
    pub count: u64,
    /// First accessor observed.
    pub first: Option<IrAccessor>,
    /// First accessor observed on a *different thread* than `first`.
    pub second: Option<IrAccessor>,
}

impl ClassSummary {
    #[inline]
    fn note(&mut self, a: IrAccessor) {
        self.count += 1;
        match self.first {
            None => self.first = Some(a),
            Some(f) if self.second.is_none() && !f.same_thread(&a) => self.second = Some(a),
            _ => {}
        }
    }

    /// A pair of distinct-thread accessors within this class, if two
    /// different threads used it.
    #[inline]
    pub fn self_pair(&self) -> Option<(IrAccessor, IrAccessor)> {
        Some((self.first?, self.second?))
    }

    /// A pair of distinct-thread accessors, one from `self`, one from
    /// `other` (cross-class hazard witness).
    #[inline]
    pub fn cross_pair(&self, other: &ClassSummary) -> Option<(IrAccessor, IrAccessor)> {
        let (a, b) = (self.first?, other.first?);
        if !a.same_thread(&b) {
            return Some((a, b));
        }
        if let Some(b2) = other.second {
            return Some((a, b2));
        }
        let a2 = self.second?;
        Some((a2, b))
    }
}

/// Per-word access summary within one race window.
#[derive(Clone, Copy, Debug)]
pub struct WordSummary {
    /// Buffer label the word belongs to.
    pub buffer: &'static str,
    /// Word index within the buffer.
    pub index: u32,
    /// One summary per [`AccessClass`], indexed by discriminant.
    pub classes: [ClassSummary; 5],
}

/// Hazard classes the closure derives from a window. The first four
/// are red (unsanctioned); the last three are the memory-model idioms
/// the kernel discipline explicitly sanctions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HazardKind {
    /// Two plain stores to one word from distinct threads: the final
    /// value is schedule-chosen.
    WriteWrite,
    /// Plain store and atomic RMW on one word: the store is unordered
    /// against the atomic and can be lost or torn across it.
    MixedAtomic,
    /// Plain load of a word another thread writes in the same *live*
    /// window: plain loads have no coherence guarantee there.
    SnapshotRead,
    /// Plain store observed by a live volatile read: the consumer side
    /// is sanctioned but the publish side lacks atomic discipline, so
    /// the reader can observe a half-published state.
    UnsanctionedPublish,
    /// Only atomics touch the shared word (sanctioned idiom).
    AtomicShared,
    /// Volatile read of an atomically-published word (sanctioned idiom).
    VolatileRead,
    /// Reserved stores sharing a word with other reserved stores,
    /// atomics, or volatile readers: each slot is owned by exactly one
    /// lane via a gang-collective tail reservation, so the publish
    /// carries atomic-exchange discipline (sanctioned idiom).
    ReservedPublish,
}

impl HazardKind {
    /// Sanctioned idioms are reported for certificate provenance but
    /// do not make a kernel `Racy`.
    #[inline]
    pub fn sanctioned(&self) -> bool {
        matches!(
            self,
            HazardKind::AtomicShared | HazardKind::VolatileRead | HazardKind::ReservedPublish
        )
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            HazardKind::WriteWrite => "write-write",
            HazardKind::MixedAtomic => "mixed-atomic",
            HazardKind::SnapshotRead => "snapshot-read",
            HazardKind::UnsanctionedPublish => "unsanctioned-publish",
            HazardKind::AtomicShared => "atomic-shared",
            HazardKind::VolatileRead => "volatile-read",
            HazardKind::ReservedPublish => "reserved-publish",
        }
    }
}

/// One deduplicated hazard: a kind, the buffer it lives in, the kernel
/// pair it spans, a representative word and accessor pair, and how
/// many distinct words exhibited it.
#[derive(Clone, Debug)]
pub struct Hazard {
    /// Hazard class.
    pub kind: HazardKind,
    /// Buffer label.
    pub buffer: &'static str,
    /// Representative word index (first word that exhibited it).
    pub index: u32,
    /// Representative byte address.
    pub addr: u64,
    /// Representative accessor pair witnessing the hazard.
    pub accessors: [IrAccessor; 2],
    /// Whether the window was a snapshot (synchronous kernel) window.
    pub snapshot_window: bool,
    /// Number of distinct words that exhibited this (kind, buffer,
    /// kernel-pair) hazard across all windows.
    pub words: u64,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {}[{}] (addr {:#x}) {} x {} lanes {}/{} waves {}/{} ({} word(s))",
            self.kind.name(),
            self.buffer,
            self.index,
            self.addr,
            self.accessors[0].kernel,
            self.accessors[1].kernel,
            self.accessors[0].lane,
            self.accessors[1].lane,
            self.accessors[0].wave,
            self.accessors[1].wave,
            self.words,
        )
    }
}

/// Static declaration of a device queue (tail cursor + overflow cell +
/// capacity), registered by queue constructors so the push-bound
/// certifier can recognize tail bumps and drops in the access stream.
#[derive(Clone, Copy, Debug)]
pub struct QueueDecl {
    /// Queue label (its data buffer's label).
    pub label: &'static str,
    /// Byte address of the tail cursor word.
    pub tail_addr: u64,
    /// Byte address of the overflow counter word.
    pub overflow_addr: u64,
    /// Slot capacity of the data buffer.
    pub capacity: u32,
    /// Whether the owner drains overshoot into another queue level
    /// instead of dropping (MLMQ spill path).
    pub spill: bool,
}

/// Observed push behaviour of one declared queue.
#[derive(Clone, Debug)]
pub struct QueueUsage {
    /// The declaration this usage was recorded against.
    pub decl: QueueDecl,
    /// Total device-side tail bumps (pushes) observed.
    pub pushes: u64,
    /// Highest tail value ever reached (device bumps mirrored against
    /// host drain resets).
    pub high_water: u64,
    /// Most pushes observed inside a single race window.
    pub max_window_pushes: u64,
    /// Device-side increments of the overflow counter (dropped pushes).
    pub drops: u64,
}

/// Per-kernel aggregates retained for gang lints and wave accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Waves this kernel name executed.
    pub waves: u64,
    /// Largest wave (in lanes).
    pub max_lanes: u64,
    /// Multi-lane gangs whose members were compared.
    pub gangs_checked: u64,
    /// Gangs whose members disagreed on the op-kind sequence.
    pub gangs_divergent: u64,
    /// Gangs whose members disagreed on child-launch counts.
    pub child_divergent: u64,
    /// Whether any wave of this kernel ran with snapshot semantics.
    pub snapshot: bool,
    /// Whether any wave of this kernel ran live (persistent session).
    pub live: bool,
}

/// Lifetime traffic + coalescing shape of one buffer label.
#[derive(Clone, Copy, Debug, Default)]
pub struct BufferTraffic {
    /// Plain + volatile loads.
    pub loads: u64,
    /// Plain stores.
    pub stores: u64,
    /// Atomic RMWs.
    pub atomics: u64,
    /// Adjacent-lane pairs that hit the *same* word (broadcast).
    pub same_word: u64,
    /// Adjacent-lane pairs at unit stride (perfectly coalesced).
    pub unit_stride: u64,
    /// Adjacent-lane pairs at small stride (2..=32 words).
    pub strided: u64,
    /// Adjacent-lane pairs with no spatial relation.
    pub scatter: u64,
}

/// The finished, retained access IR for one device. Everything a
/// static verifier needs; nothing proportional to instruction count.
#[derive(Clone, Debug, Default)]
pub struct AccessIr {
    /// Per-kernel wave/gang aggregates.
    pub kernels: BTreeMap<&'static str, KernelStats>,
    /// Deduplicated hazards across all closed windows.
    pub hazards: Vec<Hazard>,
    /// Push-bound observations for every declared queue, keyed by
    /// queue label then tail address (stable across runs).
    pub queues: Vec<QueueUsage>,
    /// Lifetime per-buffer traffic and coalescing shape.
    pub traffic: BTreeMap<&'static str, BufferTraffic>,
    /// Per-word atomic counts — the hotspot table for the multisplit
    /// scoping report. Keyed (buffer label, word index).
    pub atomic_sites: BTreeMap<(&'static str, u32), u64>,
    /// Race windows closed (barriers + snapshot kernels + final flush).
    pub windows: u64,
    /// Peak number of word summaries retained in any single window —
    /// the recorder's actual memory bound.
    pub peak_window_words: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct LaneSig {
    gang: u64,
    sig: u64,
    children: u64,
}

#[derive(Clone, Debug)]
struct QueueTrack {
    decl: QueueDecl,
    epoch: u64,
    high_water: u64,
    pushes: u64,
    window_pushes: u64,
    max_window_pushes: u64,
    drops: u64,
}

/// Armed IR recorder, owned by the device (see [`crate::Device::arm_ir`]).
/// Purely observational: arming must not perturb results, timing, or
/// counters.
pub struct IrState {
    window: HashMap<u64, WordSummary>,
    window_snapshot: bool,
    wave: u64,
    kernel: &'static str,
    stream: u32,
    /// Dedup map: (kind, buffer, kernel-pair) → index into `hazards`.
    seen: HashMap<(HazardKind, &'static str, &'static str, &'static str), usize>,
    hazards: Vec<Hazard>,
    kernels: BTreeMap<&'static str, KernelStats>,
    /// Current wave's per-lane op-kind signature (FNV) + child counts.
    wave_lanes: BTreeMap<u64, LaneSig>,
    wave_lane_count: u64,
    queues: Vec<QueueTrack>,
    tail_index: HashMap<u64, usize>,
    overflow_index: HashMap<u64, usize>,
    traffic: BTreeMap<&'static str, BufferTraffic>,
    /// Per-buffer last (lane, index) for adjacent-lane stride pairing;
    /// cleared each wave.
    last_touch: HashMap<&'static str, (u64, u32)>,
    atomic_sites: BTreeMap<(&'static str, u32), u64>,
    windows: u64,
    peak_window_words: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl IrState {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self {
            window: HashMap::new(),
            window_snapshot: false,
            wave: 0,
            kernel: "",
            stream: 0,
            seen: HashMap::new(),
            hazards: Vec::new(),
            kernels: BTreeMap::new(),
            wave_lanes: BTreeMap::new(),
            wave_lane_count: 0,
            queues: Vec::new(),
            tail_index: HashMap::new(),
            overflow_index: HashMap::new(),
            traffic: BTreeMap::new(),
            last_touch: HashMap::new(),
            atomic_sites: BTreeMap::new(),
            windows: 0,
            peak_window_words: 0,
        }
    }

    /// Register a device queue so tail/overflow traffic is certified
    /// against its capacity class. Re-declaring the same tail address
    /// replaces the declaration (pooled queues get re-assembled).
    pub fn declare_queue(&mut self, decl: QueueDecl) {
        if let Some(&i) = self.tail_index.get(&decl.tail_addr) {
            self.overflow_index.remove(&self.queues[i].decl.overflow_addr);
            self.queues[i].decl = decl;
            self.overflow_index.insert(decl.overflow_addr, i);
            return;
        }
        let i = self.queues.len();
        self.queues.push(QueueTrack {
            decl,
            epoch: 0,
            high_water: 0,
            pushes: 0,
            window_pushes: 0,
            max_window_pushes: 0,
            drops: 0,
        });
        self.tail_index.insert(decl.tail_addr, i);
        self.overflow_index.insert(decl.overflow_addr, i);
    }

    pub(crate) fn set_stream(&mut self, stream: u32) {
        self.stream = stream;
    }

    pub(crate) fn begin_wave(&mut self, kernel: &'static str, snapshot: bool) {
        if snapshot {
            // A synchronous kernel launch orders memory on its stream:
            // whatever live window was accumulating closes here, and
            // the kernel becomes its own window.
            self.close_window();
        }
        self.wave += 1;
        self.kernel = kernel;
        self.window_snapshot = snapshot;
        let st = self.kernels.entry(kernel).or_default();
        st.waves += 1;
        if snapshot {
            st.snapshot = true;
        } else {
            st.live = true;
        }
        self.wave_lanes.clear();
        self.wave_lane_count = 0;
        self.last_touch.clear();
    }

    pub(crate) fn end_wave(&mut self) {
        self.check_gangs();
        let st = self.kernels.entry(self.kernel).or_default();
        st.max_lanes = st.max_lanes.max(self.wave_lane_count);
        if self.window_snapshot {
            self.close_window();
            self.window_snapshot = false;
        }
    }

    /// Grid-wide barrier: orders every pre-barrier access before every
    /// post-barrier one — the live window closes.
    pub(crate) fn on_barrier(&mut self) {
        self.close_window();
    }

    fn accessor(&self, lane: u64, gang: u64) -> IrAccessor {
        IrAccessor { wave: self.wave, lane, gang, kernel: self.kernel }
    }

    fn note_lane(&mut self, lane: u64, gang: u64, kind_tag: u8) {
        let count = &mut self.wave_lane_count;
        let e = self.wave_lanes.entry(lane).or_insert_with(|| {
            *count += 1;
            LaneSig { gang, sig: FNV_OFFSET, children: 0 }
        });
        e.sig = (e.sig ^ kind_tag as u64).wrapping_mul(FNV_PRIME);
    }

    fn note_word(
        &mut self,
        addr: u64,
        class: AccessClass,
        a: IrAccessor,
        buffer: &'static str,
        index: u32,
    ) {
        let w = self.window.entry(addr).or_insert(WordSummary {
            buffer,
            index,
            classes: [ClassSummary::default(); 5],
        });
        w.classes[class as usize].note(a);
        self.peak_window_words = self.peak_window_words.max(self.window.len() as u64);
    }

    fn note_stride(&mut self, buffer: &'static str, lane: u64, index: u32) {
        if let Some(&(ll, li)) = self.last_touch.get(buffer) {
            if lane == ll + 1 {
                let t = self.traffic.entry(buffer).or_default();
                match (index as i64 - li as i64).unsigned_abs() {
                    0 => t.same_word += 1,
                    1 => t.unit_stride += 1,
                    2..=32 => t.strided += 1,
                    _ => t.scatter += 1,
                }
            }
        }
        self.last_touch.insert(buffer, (lane, index));
    }

    /// Plain or volatile load hook.
    pub(crate) fn on_load(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
        volatile: bool,
    ) {
        let a = self.accessor(lane, gang);
        let class = if volatile { AccessClass::VolatileLoad } else { AccessClass::PlainLoad };
        self.note_word(addr, class, a, buffer, index);
        self.note_lane(lane, gang, 1);
        self.traffic.entry(buffer).or_default().loads += 1;
        self.note_stride(buffer, lane, index);
    }

    /// Plain store hook.
    pub(crate) fn on_store(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
    ) {
        let a = self.accessor(lane, gang);
        self.note_word(addr, AccessClass::Store, a, buffer, index);
        self.note_lane(lane, gang, 2);
        self.traffic.entry(buffer).or_default().stores += 1;
        self.note_stride(buffer, lane, index);
    }

    /// Atomic RMW hook (all four flavours).
    pub(crate) fn on_atomic(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
    ) {
        self.on_atomic_bulk(addr, lane, gang, buffer, index, 1);
    }

    /// Atomic RMW hook for a gang-aggregated bump: one instruction
    /// whose operand covers `n` logical pushes (or drops). Queue
    /// accounting stays per-element-exact under aggregation; the
    /// contention tables count the single instruction that ran.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_atomic_bulk(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
        n: u64,
    ) {
        let a = self.accessor(lane, gang);
        self.note_word(addr, AccessClass::Atomic, a, buffer, index);
        self.note_lane(lane, gang, 3);
        self.traffic.entry(buffer).or_default().atomics += 1;
        *self.atomic_sites.entry((buffer, index)).or_default() += 1;
        self.note_stride(buffer, lane, index);
        if let Some(&i) = self.tail_index.get(&addr) {
            let q = &mut self.queues[i];
            q.epoch += n;
            q.pushes += n;
            q.window_pushes += n;
            q.high_water = q.high_water.max(q.epoch);
        } else if let Some(&i) = self.overflow_index.get(&addr) {
            self.queues[i].drops += n;
        }
    }

    /// Reserved-store hook: a plain store into a slot the storing lane
    /// owns via a gang-collective tail reservation. Counted as store
    /// traffic (it is one at the ISA level), classed separately so the
    /// hazard matrix can sanction it like the atomic-exchange publish
    /// it replaces.
    pub(crate) fn on_reserved_store(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
    ) {
        let a = self.accessor(lane, gang);
        self.note_word(addr, AccessClass::ReservedStore, a, buffer, index);
        self.note_lane(lane, gang, 5);
        self.traffic.entry(buffer).or_default().stores += 1;
        self.note_stride(buffer, lane, index);
    }

    /// Dynamic-parallelism child launch hook.
    pub(crate) fn on_child_launch(&mut self, lane: u64, gang: u64) {
        self.note_lane(lane, gang, 4);
        if let Some(e) = self.wave_lanes.get_mut(&lane) {
            e.children += 1;
        }
    }

    /// Host-side word write (e.g. a drain resetting a queue tail):
    /// host writes happen between waves and re-anchor the mirrored
    /// tail epoch.
    pub(crate) fn on_host_write(&mut self, addr: u64, val: u32) {
        if let Some(&i) = self.tail_index.get(&addr) {
            self.queues[i].epoch = val as u64;
        }
    }

    fn check_gangs(&mut self) {
        // Group the wave's lanes by gang (BTreeMap iteration is lane-
        // ordered; gangs own consecutive phys lanes, so one linear scan
        // groups them).
        let mut checked = 0u64;
        let mut divergent = 0u64;
        let mut child_div = 0u64;
        let mut cur_gang = u64::MAX;
        let mut first: Option<LaneSig> = None;
        let mut members = 0u64;
        let mut sig_mismatch = false;
        let mut child_mismatch = false;
        let flush = |members: u64,
                     sig_mismatch: bool,
                     child_mismatch: bool,
                     checked: &mut u64,
                     divergent: &mut u64,
                     child_div: &mut u64| {
            if members >= 2 {
                *checked += 1;
                if sig_mismatch {
                    *divergent += 1;
                }
                if child_mismatch {
                    *child_div += 1;
                }
            }
        };
        for sig in self.wave_lanes.values() {
            if sig.gang != cur_gang {
                flush(
                    members,
                    sig_mismatch,
                    child_mismatch,
                    &mut checked,
                    &mut divergent,
                    &mut child_div,
                );
                cur_gang = sig.gang;
                first = Some(*sig);
                members = 1;
                sig_mismatch = false;
                child_mismatch = false;
            } else {
                members += 1;
                let f = first.expect("first lane of gang recorded");
                sig_mismatch |= sig.sig != f.sig;
                child_mismatch |= sig.children != f.children;
            }
        }
        flush(members, sig_mismatch, child_mismatch, &mut checked, &mut divergent, &mut child_div);
        let st = self.kernels.entry(self.kernel).or_default();
        st.gangs_checked += checked;
        st.gangs_divergent += divergent;
        st.child_divergent += child_div;
    }

    fn record_hazard(
        &mut self,
        kind: HazardKind,
        buffer: &'static str,
        index: u32,
        addr: u64,
        pair: (IrAccessor, IrAccessor),
    ) {
        let (a, b) = pair;
        // Symmetric kernel pair: order lexicographically for dedup.
        let (k1, k2) =
            if a.kernel <= b.kernel { (a.kernel, b.kernel) } else { (b.kernel, a.kernel) };
        match self.seen.get(&(kind, buffer, k1, k2)) {
            Some(&i) => self.hazards[i].words += 1,
            None => {
                self.seen.insert((kind, buffer, k1, k2), self.hazards.len());
                self.hazards.push(Hazard {
                    kind,
                    buffer,
                    index,
                    addr,
                    accessors: [a, b],
                    snapshot_window: self.window_snapshot,
                    words: 1,
                });
            }
        }
    }

    /// Run the hazard matrix over the closing window and drop it.
    /// Every surviving fact is O(1)-sized; unshared words vanish here.
    fn close_window(&mut self) {
        if !self.window.is_empty() {
            self.windows += 1;
        }
        // Deterministic order: sort the touched addresses.
        let mut addrs: Vec<u64> = self.window.keys().copied().collect();
        addrs.sort_unstable();
        let snapshot = self.window_snapshot;
        for addr in addrs {
            let w = self.window[&addr];
            let [pl, vl, st, at, rs] = w.classes;
            use HazardKind::*;
            // Red hazards first, then sanctioned idioms; every
            // applicable kind is recorded (dedup bounds the volume).
            if let Some(p) = st.self_pair() {
                self.record_hazard(WriteWrite, w.buffer, w.index, addr, p);
            }
            if let Some(p) = st.cross_pair(&at) {
                self.record_hazard(MixedAtomic, w.buffer, w.index, addr, p);
            }
            // A plain store against a reserved store is still a plain
            // store against concurrent traffic: the reserved side owns
            // its slot, the plain side owns nothing.
            if let Some(p) = st.cross_pair(&rs) {
                self.record_hazard(WriteWrite, w.buffer, w.index, addr, p);
            }
            if !snapshot {
                // Plain loads read the kernel-entry snapshot inside a
                // synchronous kernel, so they only race in live windows.
                if let Some(p) = pl.cross_pair(&st) {
                    self.record_hazard(SnapshotRead, w.buffer, w.index, addr, p);
                }
                if let Some(p) = pl.cross_pair(&at) {
                    self.record_hazard(SnapshotRead, w.buffer, w.index, addr, p);
                }
                if let Some(p) = pl.cross_pair(&rs) {
                    self.record_hazard(SnapshotRead, w.buffer, w.index, addr, p);
                }
            }
            if let Some(p) = st.cross_pair(&vl) {
                self.record_hazard(UnsanctionedPublish, w.buffer, w.index, addr, p);
            }
            if let Some(p) = at.self_pair() {
                self.record_hazard(AtomicShared, w.buffer, w.index, addr, p);
            }
            if let Some(p) = vl.cross_pair(&at) {
                self.record_hazard(VolatileRead, w.buffer, w.index, addr, p);
            }
            // Reserved publishes: slot ownership gives them atomic-
            // exchange discipline against each other, against genuine
            // atomics (a recycled slot raced by a scalar exchange), and
            // against live volatile readers (the drain side).
            if let Some(p) = rs.self_pair() {
                self.record_hazard(ReservedPublish, w.buffer, w.index, addr, p);
            }
            if let Some(p) = rs.cross_pair(&at) {
                self.record_hazard(ReservedPublish, w.buffer, w.index, addr, p);
            }
            if let Some(p) = vl.cross_pair(&rs) {
                self.record_hazard(ReservedPublish, w.buffer, w.index, addr, p);
            }
        }
        self.window.clear();
        for q in &mut self.queues {
            q.max_window_pushes = q.max_window_pushes.max(q.window_pushes);
            q.window_pushes = 0;
        }
    }

    /// Close the trailing window and hand back the retained IR.
    pub(crate) fn finish(mut self) -> AccessIr {
        self.close_window();
        let mut queues: Vec<QueueUsage> = self
            .queues
            .into_iter()
            .map(|q| QueueUsage {
                decl: q.decl,
                pushes: q.pushes,
                high_water: q.high_water,
                max_window_pushes: q.max_window_pushes,
                drops: q.drops,
            })
            .collect();
        queues.sort_by(|a, b| {
            (a.decl.label, a.decl.tail_addr).cmp(&(b.decl.label, b.decl.tail_addr))
        });
        AccessIr {
            kernels: self.kernels,
            hazards: self.hazards,
            queues,
            traffic: self.traffic,
            atomic_sites: self.atomic_sites,
            windows: self.windows,
            peak_window_words: self.peak_window_words,
        }
    }
}

impl Default for IrState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(wave: u64, lane: u64) -> IrAccessor {
        IrAccessor { wave, lane, gang: lane, kernel: "k" }
    }

    #[test]
    fn class_summary_keeps_two_distinct_threads() {
        let mut c = ClassSummary::default();
        c.note(acc(1, 0));
        c.note(acc(1, 0)); // same thread — not a second witness
        assert!(c.self_pair().is_none());
        c.note(acc(1, 3));
        c.note(acc(1, 7)); // third thread — bounded retention ignores it
        let (a, b) = c.self_pair().expect("two distinct threads seen");
        assert_eq!((a.lane, b.lane), (0, 3));
        assert_eq!(c.count, 4);
    }

    #[test]
    fn cross_pair_skips_shared_thread() {
        let mut a = ClassSummary::default();
        let mut b = ClassSummary::default();
        a.note(acc(1, 5));
        b.note(acc(1, 5)); // same thread in both classes: no pair yet
        assert!(a.cross_pair(&b).is_none());
        b.note(acc(1, 6));
        let (x, y) = a.cross_pair(&b).expect("distinct pair via second");
        assert_eq!((x.lane, y.lane), (5, 6));
    }

    #[test]
    fn window_hazards_and_barrier_ordering() {
        let mut ir = IrState::new();
        ir.begin_wave("w", false);
        ir.on_store(0x1000, 0, 0, "buf", 0);
        ir.on_store(0x1000, 1, 1, "buf", 0);
        ir.end_wave();
        ir.on_barrier();
        // Post-barrier store to the same word: ordered, no new hazard.
        ir.begin_wave("w", false);
        ir.on_store(0x1000, 2, 2, "buf", 0);
        ir.end_wave();
        let out = ir.finish();
        let ww: Vec<_> = out.hazards.iter().filter(|h| h.kind == HazardKind::WriteWrite).collect();
        assert_eq!(ww.len(), 1, "{:?}", out.hazards);
        assert_eq!(ww[0].words, 1);
    }

    #[test]
    fn snapshot_window_sanctions_plain_loads() {
        let mut ir = IrState::new();
        ir.begin_wave("sync", true);
        ir.on_load(0x1000, 0, 0, "dist", 0, false);
        ir.on_atomic(0x1000, 1, 1, "dist", 0);
        ir.end_wave();
        let out = ir.finish();
        assert!(
            out.hazards.iter().all(|h| h.kind != HazardKind::SnapshotRead),
            "{:?}",
            out.hazards
        );
        // The same shape in a live wave is a snapshot-read hazard.
        let mut ir = IrState::new();
        ir.begin_wave("live", false);
        ir.on_load(0x1000, 0, 0, "dist", 0, false);
        ir.on_atomic(0x1000, 1, 1, "dist", 0);
        ir.end_wave();
        let out = ir.finish();
        assert!(out.hazards.iter().any(|h| h.kind == HazardKind::SnapshotRead));
    }

    #[test]
    fn queue_epochs_follow_device_and_host() {
        let mut ir = IrState::new();
        ir.declare_queue(QueueDecl {
            label: "q",
            tail_addr: 0x2000,
            overflow_addr: 0x3000,
            capacity: 4,
            spill: false,
        });
        ir.begin_wave("push", false);
        for lane in 0..6 {
            ir.on_atomic(0x2000, lane, lane, "queue_tail", 0);
        }
        ir.end_wave();
        ir.on_host_write(0x2000, 0); // drain
        ir.begin_wave("push", false);
        ir.on_atomic(0x2000, 0, 0, "queue_tail", 0);
        ir.on_atomic(0x3000, 1, 1, "queue_overflow", 0);
        ir.end_wave();
        let out = ir.finish();
        assert_eq!(out.queues.len(), 1);
        let q = &out.queues[0];
        assert_eq!(q.pushes, 7);
        assert_eq!(q.high_water, 6);
        assert_eq!(q.drops, 1);
        assert_eq!(q.max_window_pushes, 7, "no window boundary between the waves");
    }

    #[test]
    fn gang_signature_divergence_counted() {
        let mut ir = IrState::new();
        ir.begin_wave("gang", true);
        // Gang 0 (lanes 0,1): same op sequence. Gang 1 (lanes 2,3):
        // lane 3 does an extra atomic.
        ir.on_load(0x10, 0, 0, "a", 0, false);
        ir.on_load(0x14, 1, 0, "a", 1, false);
        ir.on_load(0x18, 2, 1, "a", 2, false);
        ir.on_load(0x1c, 3, 1, "a", 3, false);
        ir.on_atomic(0x20, 3, 1, "acc", 0);
        ir.end_wave();
        let out = ir.finish();
        let st = out.kernels["gang"];
        assert_eq!(st.gangs_checked, 2);
        assert_eq!(st.gangs_divergent, 1);
    }
}
