//! Opt-in memory-model sanitizer: wave-level race detection, shadow
//! poison for uninitialized reads, and gang-divergence checks.
//!
//! The simulator executes lanes sequentially, so a kernel that races
//! on real hardware still produces one deterministic answer here —
//! correct by luck. The sanitizer closes that gap: it watches every
//! lane access while the kernel runs functionally and reports typed
//! [`SanViolation`]s wherever the program leaves the memory-model
//! discipline the kernels document:
//!
//! * plain loads ([`crate::Lane::ld`]) have snapshot semantics inside
//!   synchronous kernels and **no** guarantee at all inside live
//!   (wave/persistent-kernel) execution;
//! * volatile loads ([`crate::Lane::ld_volatile`]) may observe
//!   concurrent writes — the sanctioned racy-read idiom (the modelled
//!   accesses are aligned 32-bit words, which cannot tear);
//! * only atomics may write a location that another lane touches in
//!   the same race window.
//!
//! A *race window* is one synchronous kernel launch, or — for task
//! waves of a persistent kernel — everything since the last grid-wide
//! barrier ([`crate::Device::charge_barrier`]): §4.3's asynchronous
//! phase 1 runs many waves with no barrier, so conflicts across those
//! waves are real on hardware and are flagged here.
//!
//! Armed via [`crate::Device::arm_sanitizer`]; when disarmed (the
//! default) every hook is a single `Option` branch and the device
//! behaves bit-identically to an uninstrumented build.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Which checks run. All on by default.
#[derive(Clone, Copy, Debug)]
pub struct SanConfig {
    /// Same-address conflict detection between lanes.
    pub races: bool,
    /// Poison-shadow uninitialized-read detection.
    pub uninit: bool,
    /// Gang child-launch agreement and intra-gang overlap checks.
    pub gangs: bool,
    /// Keep at most this many violations; further ones only count.
    pub max_violations: usize,
}

impl Default for SanConfig {
    fn default() -> Self {
        Self { races: true, uninit: true, gangs: true, max_violations: 10_000 }
    }
}

/// The typed violation classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SanCheck {
    /// Two different lanes plain-store the same word in one window.
    WriteWriteRace,
    /// A plain store and an atomic from different lanes hit the same
    /// word in one window — the plain side can be lost or torn.
    MixedAtomicRace,
    /// A plain load can observe (or miss) a same-window write by
    /// another lane under live-memory execution — the exact hazard
    /// `ld_volatile` exists for.
    SnapshotVisibility,
    /// A read of a word never written since alloc or pool recycle.
    UninitRead,
    /// Lanes of one gang launched differing child-kernel counts.
    GangChildDivergence,
    /// Two lanes of the *same* gang plain-stored the same word: the
    /// gang's rank-partitioned private region overlaps.
    GangOverlap,
}

impl SanCheck {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SanCheck::WriteWriteRace => "write-write-race",
            SanCheck::MixedAtomicRace => "mixed-atomic-race",
            SanCheck::SnapshotVisibility => "snapshot-visibility",
            SanCheck::UninitRead => "uninit-read",
            SanCheck::GangChildDivergence => "gang-child-divergence",
            SanCheck::GangOverlap => "gang-overlap",
        }
    }
}

/// One reported violation. Lane ids are global lane indexes within
/// their wave (`tid * gang_size + gang_rank`); for unary checks both
/// entries name the same lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SanViolation {
    /// The violated discipline rule.
    pub check: SanCheck,
    /// Kernel (site) whose lane performed the *second* access.
    pub kernel: &'static str,
    /// Label of the buffer containing the word.
    pub buffer: &'static str,
    /// Word index within the buffer.
    pub index: u32,
    /// Flat device byte address of the word.
    pub addr: u64,
    /// The two conflicting lanes: `[earlier, later]`.
    pub lanes: [u64; 2],
    /// Wave sequence numbers of the two accesses (equal when the
    /// conflict is within one wave).
    pub waves: [u64; 2],
    /// Command stream the violating (second) access ran on.
    pub stream: u32,
    /// Human-readable explanation of the specific conflict.
    pub detail: String,
}

impl fmt::Display for SanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}[{}] (addr {:#x}) lanes {}/{} waves {}/{} stream {}: {}",
            self.check.name(),
            self.kernel,
            self.buffer,
            self.index,
            self.addr,
            self.lanes[0],
            self.lanes[1],
            self.waves[0],
            self.waves[1],
            self.stream,
            self.detail
        )
    }
}

/// One recorded access for conflict matching.
#[derive(Clone, Copy, Debug)]
struct Accessor {
    wave: u64,
    lane: u64,
    gang: u64,
    kernel: &'static str,
}

impl Accessor {
    /// Two accesses conflict only between distinct logical threads:
    /// the same lane index in a *different* wave is a different thread
    /// (waves of a session overlap on hardware).
    fn same_thread(&self, other: &Accessor) -> bool {
        self.wave == other.wave && self.lane == other.lane
    }
}

/// Per-address state within the current race window.
#[derive(Clone, Copy, Debug, Default)]
struct AccessRec {
    plain_store: Option<Accessor>,
    atomic: Option<Accessor>,
    /// First plain load under live-memory execution (snapshot-kernel
    /// plain loads are safe by construction and not recorded).
    plain_load: Option<Accessor>,
}

/// Lifetime access statistics for one word, accumulated across the
/// whole armed session (unlike the race-window map, never cleared at
/// window close).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WordStats {
    /// Plain + volatile loads of the word.
    pub loads: u64,
    /// Plain stores of the word.
    pub stores: u64,
    /// Atomic RMWs of the word.
    pub atomics: u64,
    /// First `(wave, lane)` to touch the word, for shared detection.
    first: Option<(u64, u64)>,
    shared: bool,
}

impl WordStats {
    /// Whether more than one logical thread (distinct `(wave, lane)`)
    /// touched the word.
    pub fn shared(&self) -> bool {
        self.shared
    }

    /// All accesses to the word.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.atomics
    }

    fn touch(&mut self, wave: u64, lane: u64) {
        match self.first {
            None => self.first = Some((wave, lane)),
            Some(f) if f != (wave, lane) => self.shared = true,
            Some(_) => {}
        }
    }
}

/// What the sanitizer learned about a run's memory behaviour: per-word
/// access counts and sharing, plus per-kernel wave windows. This is
/// the evidence the adversarial placement search scouts for — the
/// hottest contended words are where a mistimed fault is most likely
/// to slip past detection. Keyed by `(buffer label, word index)` in a
/// `BTreeMap` so iteration (and everything derived from it) is
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct AccessProfile {
    words: BTreeMap<(&'static str, u32), WordStats>,
    /// Per-kernel `(first wave, last wave)` windows, in wave numbers.
    kernels: BTreeMap<&'static str, (u64, u64)>,
    waves: u64,
}

impl AccessProfile {
    fn begin_wave(&mut self, kernel: &'static str, wave: u64) {
        self.waves = self.waves.max(wave);
        self.kernels.entry(kernel).and_modify(|(_, last)| *last = wave).or_insert((wave, wave));
    }

    fn stats(&mut self, buffer: &'static str, index: u32, wave: u64, lane: u64) -> &mut WordStats {
        let s = self.words.entry((buffer, index)).or_default();
        s.touch(wave, lane);
        s
    }

    /// Total waves observed.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Distinct words touched.
    pub fn words_touched(&self) -> usize {
        self.words.len()
    }

    /// The `(first wave, last wave)` window of a kernel, if it ran.
    pub fn kernel_window(&self, kernel: &str) -> Option<(u64, u64)> {
        self.kernels.get(kernel).copied()
    }

    /// Every kernel's wave window, in kernel-name order.
    pub fn kernel_windows(&self) -> Vec<(&'static str, u64, u64)> {
        self.kernels.iter().map(|(&k, &(a, b))| (k, a, b)).collect()
    }

    /// Stats for one word, if touched.
    pub fn word(&self, buffer: &'static str, index: u32) -> Option<WordStats> {
        self.words.get(&(buffer, index)).copied()
    }

    /// The top `k` *contended* words — touched by multiple logical
    /// threads with at least one atomic — ranked by atomic count, then
    /// total traffic (ties broken by key, so the ranking is
    /// deterministic). These are the shared-queue / distance hot words
    /// where the paper's async hot path concentrates.
    pub fn hottest_contended(&self, k: usize) -> Vec<(&'static str, u32, WordStats)> {
        let mut rows: Vec<(&'static str, u32, WordStats)> = self
            .words
            .iter()
            .filter(|(_, s)| s.shared && s.atomics > 0)
            .map(|(&(b, i), &s)| (b, i, s))
            .collect();
        rows.sort_by(|a, b| {
            (b.2.atomics, b.2.total())
                .cmp(&(a.2.atomics, a.2.total()))
                .then(a.0.cmp(b.0))
                .then(a.1.cmp(&b.1))
        });
        rows.truncate(k);
        rows
    }

    /// Words that mix atomic and plain traffic — the atomic-vs-plain
    /// overlap sites where dropped or duplicated atomics interact with
    /// snapshot visibility. Ranked like
    /// [`AccessProfile::hottest_contended`].
    pub fn overlap_sites(&self, k: usize) -> Vec<(&'static str, u32, WordStats)> {
        let mut rows: Vec<(&'static str, u32, WordStats)> = self
            .words
            .iter()
            .filter(|(_, s)| s.atomics > 0 && s.loads + s.stores > 0)
            .map(|(&(b, i), &s)| (b, i, s))
            .collect();
        rows.sort_by(|a, b| {
            (b.2.atomics, b.2.total())
                .cmp(&(a.2.atomics, a.2.total()))
                .then(a.0.cmp(b.0))
                .then(a.1.cmp(&b.1))
        });
        rows.truncate(k);
        rows
    }

    /// The top `k` most-*loaded* buffers, load counts summed across
    /// all their words — the read-hot data (e.g. CSR topology arrays)
    /// whose corruption hits every consumer downstream. Per-word
    /// rankings drown wide read-mostly arrays behind a few hot
    /// contended words; aggregating by buffer surfaces them.
    pub fn hottest_buffers(&self, k: usize) -> Vec<(&'static str, u64)> {
        let mut by_buf: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (&(b, _), s) in &self.words {
            if s.loads > 0 {
                *by_buf.entry(b).or_insert(0) += s.loads;
            }
        }
        let mut rows: Vec<(&'static str, u64)> = by_buf.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(k);
        rows
    }

    /// The top `k` most-*loaded* words regardless of sharing — the
    /// read-hot data (e.g. CSR topology arrays) whose corruption hits
    /// every consumer downstream. Ranked by load count, then total
    /// traffic, ties broken by key.
    pub fn hottest_loaded(&self, k: usize) -> Vec<(&'static str, u32, WordStats)> {
        let mut rows: Vec<(&'static str, u32, WordStats)> =
            self.words.iter().filter(|(_, s)| s.loads > 0).map(|(&(b, i), &s)| (b, i, s)).collect();
        rows.sort_by(|a, b| {
            (b.2.loads, b.2.total())
                .cmp(&(a.2.loads, a.2.total()))
                .then(a.0.cmp(b.0))
                .then(a.1.cmp(&b.1))
        });
        rows.truncate(k);
        rows
    }
}

/// Armed sanitizer state, owned by the device.
pub struct SanState {
    config: SanConfig,
    violations: Vec<SanViolation>,
    total: u64,
    seen: HashSet<(SanCheck, &'static str, u64)>,
    access: HashMap<u64, AccessRec>,
    /// Child-launch counts of the current wave: (gang item, lane) →
    /// launches. BTreeMap so the end-of-wave sweep is deterministic.
    gang_launches: BTreeMap<(u64, u64), u64>,
    wave: u64,
    kernel: &'static str,
    snapshot: bool,
    /// Command stream the current wave was issued on (attribution).
    stream: u32,
    /// Lifetime access profile (never window-cleared).
    profile: AccessProfile,
}

impl SanState {
    /// Fresh sanitizer state for a configuration.
    pub fn new(config: SanConfig) -> Self {
        Self {
            config,
            violations: Vec::new(),
            total: 0,
            seen: HashSet::new(),
            access: HashMap::new(),
            gang_launches: BTreeMap::new(),
            wave: 0,
            kernel: "",
            snapshot: false,
            stream: 0,
            profile: AccessProfile::default(),
        }
    }

    /// Tag subsequent waves with the command stream they run on.
    pub(crate) fn set_stream(&mut self, stream: u32) {
        self.stream = stream;
    }

    /// The configuration this state was armed with.
    pub fn config(&self) -> &SanConfig {
        &self.config
    }

    /// Violations recorded so far (capped at `max_violations`).
    pub fn violations(&self) -> &[SanViolation] {
        &self.violations
    }

    /// Total violations including any beyond the cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The lifetime access profile accumulated while armed.
    pub fn profile(&self) -> &AccessProfile {
        &self.profile
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        check: SanCheck,
        buffer: &'static str,
        index: u32,
        addr: u64,
        first: &Accessor,
        second: &Accessor,
        detail: String,
    ) {
        // One report per (check, site, address): kernels revisit the
        // same conflict every wave and would otherwise flood the log.
        if !self.seen.insert((check, second.kernel, addr)) {
            return;
        }
        self.total += 1;
        if self.violations.len() < self.config.max_violations {
            self.violations.push(SanViolation {
                check,
                kernel: second.kernel,
                buffer,
                index,
                addr,
                lanes: [first.lane, second.lane],
                waves: [first.wave, second.wave],
                stream: self.stream,
                detail,
            });
        }
    }

    /// A new wave (one `execute` call) begins. Synchronous (snapshot)
    /// kernels are their own race window.
    pub(crate) fn begin_wave(&mut self, kernel: &'static str, snapshot: bool) {
        self.wave += 1;
        self.kernel = kernel;
        self.snapshot = snapshot;
        self.profile.begin_wave(kernel, self.wave);
        if snapshot {
            self.access.clear();
        }
        self.gang_launches.clear();
    }

    /// The wave finished: run gang agreement checks and close the
    /// window if it was a synchronous kernel.
    pub(crate) fn end_wave(&mut self) {
        if self.config.gangs {
            self.check_gang_launches();
        }
        if self.snapshot {
            self.access.clear();
        }
    }

    /// A grid-wide barrier: every pre-barrier access is ordered before
    /// every post-barrier one, so the window closes.
    pub(crate) fn on_barrier(&mut self) {
        self.access.clear();
    }

    fn check_gang_launches(&mut self) {
        let per_gang: Vec<(u64, Vec<(u64, u64)>)> = {
            let mut v: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
            for (&(gang, lane), &count) in &self.gang_launches {
                match v.last_mut() {
                    Some((g, lanes)) if *g == gang => lanes.push((lane, count)),
                    _ => v.push((gang, vec![(lane, count)])),
                }
            }
            v
        };
        for (gang, lanes) in per_gang {
            // A single launching lane (gang-leader pattern) and
            // uniform counts across launching lanes are both fine;
            // differing nonzero counts mean the gang diverged on the
            // launch decision.
            if lanes.len() < 2 {
                continue;
            }
            let first_count = lanes[0].1;
            if let Some(&(lane, count)) = lanes.iter().find(|&&(_, c)| c != first_count) {
                let a = Accessor { wave: self.wave, lane: lanes[0].0, gang, kernel: self.kernel };
                let b = Accessor { wave: self.wave, lane, gang, kernel: self.kernel };
                self.record(
                    SanCheck::GangChildDivergence,
                    "(child launches)",
                    0,
                    gang,
                    &a,
                    &b,
                    format!(
                        "gang {gang}: lane {} launched {first_count} child kernel(s), \
                         lane {lane} launched {count}",
                        lanes[0].0
                    ),
                );
            }
        }
    }

    fn here(&self, lane: u64, gang: u64) -> Accessor {
        Accessor { wave: self.wave, lane, gang, kernel: self.kernel }
    }

    fn uninit(&mut self, buffer: &'static str, index: u32, addr: u64, who: Accessor, how: &str) {
        self.record(
            SanCheck::UninitRead,
            buffer,
            index,
            addr,
            &who,
            &who,
            format!("{how} of a word never written since alloc/recycle"),
        );
    }

    /// Hook: plain (snapshot-semantics) load.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_plain_load(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
        poisoned: bool,
    ) {
        self.profile.stats(buffer, index, self.wave, lane).loads += 1;
        let who = self.here(lane, gang);
        if self.config.uninit && poisoned {
            self.uninit(buffer, index, addr, who, "plain load");
        }
        if !self.config.races || self.snapshot {
            // In a synchronous kernel a plain load reads the kernel-
            // entry snapshot: deterministic regardless of what other
            // lanes write, so it participates in no race.
            return;
        }
        let rec = self.access.entry(addr).or_default();
        let conflict = rec
            .plain_store
            .filter(|w| !w.same_thread(&who))
            .or_else(|| rec.atomic.filter(|w| !w.same_thread(&who)));
        if let Some(writer) = conflict {
            self.record(
                SanCheck::SnapshotVisibility,
                buffer,
                index,
                addr,
                &writer,
                &who,
                format!(
                    "plain load may or may not observe lane {}'s same-window write \
                     (use ld_volatile or order with a barrier)",
                    writer.lane
                ),
            );
        }
        let rec = self.access.entry(addr).or_default();
        if rec.plain_load.is_none() {
            rec.plain_load = Some(who);
        }
    }

    /// Hook: volatile load. Sanctioned to race with writes (aligned
    /// words cannot tear), so only the uninit check applies.
    pub(crate) fn on_volatile_load(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
        poisoned: bool,
    ) {
        self.profile.stats(buffer, index, self.wave, lane).loads += 1;
        if self.config.uninit && poisoned {
            let who = self.here(lane, gang);
            self.uninit(buffer, index, addr, who, "volatile load");
        }
    }

    /// Hook: plain store.
    pub(crate) fn on_store(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
    ) {
        self.profile.stats(buffer, index, self.wave, lane).stores += 1;
        if !self.config.races {
            return;
        }
        let who = self.here(lane, gang);
        let rec = self.access.entry(addr).or_default();
        let prior_store = rec.plain_store.filter(|w| !w.same_thread(&who));
        let prior_atomic = rec.atomic.filter(|w| !w.same_thread(&who));
        let prior_load = rec.plain_load.filter(|w| !w.same_thread(&who));
        if rec.plain_store.is_none() {
            rec.plain_store = Some(who);
        }
        if let Some(other) = prior_store {
            let same_gang = self.config.gangs
                && other.wave == who.wave
                && other.gang == who.gang
                && other.kernel == who.kernel;
            let (check, detail) = if same_gang {
                (
                    SanCheck::GangOverlap,
                    format!(
                        "lanes {} and {} of gang {} both plain-stored this word — \
                         rank-partitioned regions overlap",
                        other.lane, who.lane, who.gang
                    ),
                )
            } else {
                (
                    SanCheck::WriteWriteRace,
                    format!(
                        "plain stores from lanes {} and {} — last writer is \
                         schedule-dependent on hardware",
                        other.lane, who.lane
                    ),
                )
            };
            self.record(check, buffer, index, addr, &other, &who, detail);
        } else if let Some(other) = prior_atomic {
            self.record(
                SanCheck::MixedAtomicRace,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "plain store by lane {} races lane {}'s atomic on the same word",
                    who.lane, other.lane
                ),
            );
        } else if let Some(other) = prior_load {
            self.record(
                SanCheck::SnapshotVisibility,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "lane {}'s earlier plain load may or may not observe this store \
                     (use ld_volatile or order with a barrier)",
                    other.lane
                ),
            );
        }
    }

    /// Hook: atomic read-modify-write.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_atomic(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
        poisoned: bool,
    ) {
        self.profile.stats(buffer, index, self.wave, lane).atomics += 1;
        let who = self.here(lane, gang);
        if self.config.uninit && poisoned {
            self.uninit(buffer, index, addr, who, "atomic read-modify-write");
        }
        if !self.config.races {
            return;
        }
        let rec = self.access.entry(addr).or_default();
        let prior_store = rec.plain_store.filter(|w| !w.same_thread(&who));
        let prior_load = rec.plain_load.filter(|w| !w.same_thread(&who));
        if rec.atomic.is_none() {
            rec.atomic = Some(who);
        }
        if let Some(other) = prior_store {
            self.record(
                SanCheck::MixedAtomicRace,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "atomic by lane {} races lane {}'s plain store on the same word",
                    who.lane, other.lane
                ),
            );
        } else if let Some(other) = prior_load {
            self.record(
                SanCheck::SnapshotVisibility,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "lane {}'s earlier plain load may or may not observe this atomic's \
                     result (use ld_volatile or order with a barrier)",
                    other.lane
                ),
            );
        }
    }

    /// Hook: reserved store — a plain store into a slot this lane owns
    /// via a gang-collective tail reservation ([`crate::Lane::gang_push`]).
    /// The reservation hands each lane a distinct slot, so the store
    /// carries the same publish discipline as the `atomicExch` it
    /// replaces: it registers in the atomic slot of the access record
    /// (clean against other reserved stores and against atomics, red
    /// against plain stores and live plain loads), and like an
    /// exchange it never reads, so no uninit check applies.
    pub(crate) fn on_reserved_store(
        &mut self,
        addr: u64,
        lane: u64,
        gang: u64,
        buffer: &'static str,
        index: u32,
    ) {
        self.profile.stats(buffer, index, self.wave, lane).stores += 1;
        if !self.config.races {
            return;
        }
        let who = self.here(lane, gang);
        let rec = self.access.entry(addr).or_default();
        let prior_store = rec.plain_store.filter(|w| !w.same_thread(&who));
        let prior_load = rec.plain_load.filter(|w| !w.same_thread(&who));
        if rec.atomic.is_none() {
            rec.atomic = Some(who);
        }
        if let Some(other) = prior_store {
            self.record(
                SanCheck::MixedAtomicRace,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "reserved store by lane {} races lane {}'s plain store on the same word",
                    who.lane, other.lane
                ),
            );
        } else if let Some(other) = prior_load {
            self.record(
                SanCheck::SnapshotVisibility,
                buffer,
                index,
                addr,
                &other,
                &who,
                format!(
                    "lane {}'s earlier plain load may or may not observe this reserved \
                     store (use ld_volatile or order with a barrier)",
                    other.lane
                ),
            );
        }
    }

    /// Hook: one child-kernel launch by `lane` of gang item `gang`.
    pub(crate) fn on_child_launch(&mut self, lane: u64, gang: u64) {
        if self.config.gangs {
            *self.gang_launches.entry((gang, lane)).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SanState {
        SanState::new(SanConfig::default())
    }

    #[test]
    fn write_write_race_between_lanes() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.on_store(64, 5, 5, "buf", 0);
        s.end_wave();
        assert_eq!(s.total(), 1);
        let v = &s.violations()[0];
        assert_eq!(v.check, SanCheck::WriteWriteRace);
        assert_eq!(v.lanes, [0, 5]);
        assert_eq!(v.buffer, "buf");
    }

    #[test]
    fn same_lane_never_conflicts_with_itself() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_store(64, 3, 3, "buf", 0);
        s.on_store(64, 3, 3, "buf", 0);
        s.on_plain_load(64, 3, 3, "buf", 0, false);
        s.end_wave();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn atomics_on_both_sides_are_clean() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_atomic(64, 0, 0, "buf", 0, false);
        s.on_atomic(64, 1, 1, "buf", 0, false);
        s.end_wave();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn volatile_load_may_race_with_atomic() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_atomic(64, 0, 0, "buf", 0, false);
        s.on_volatile_load(64, 1, 1, "buf", 0, false);
        s.end_wave();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn plain_load_vs_atomic_is_snapshot_visibility_in_live_window() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_plain_load(64, 1, 1, "buf", 0, false);
        s.on_atomic(64, 0, 0, "buf", 0, false);
        s.end_wave();
        assert_eq!(s.total(), 1);
        assert_eq!(s.violations()[0].check, SanCheck::SnapshotVisibility);
    }

    #[test]
    fn plain_load_in_snapshot_kernel_is_safe() {
        let mut s = state();
        s.begin_wave("k", true);
        s.on_plain_load(64, 1, 1, "buf", 0, false);
        s.on_atomic(64, 0, 0, "buf", 0, false);
        s.end_wave();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn window_spans_waves_until_barrier() {
        let mut s = state();
        s.begin_wave("w1", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.end_wave();
        s.begin_wave("w2", false);
        // Same lane index, later wave: a different logical thread.
        s.on_store(64, 0, 0, "buf", 0);
        s.end_wave();
        assert_eq!(s.total(), 1);
        assert_eq!(s.violations()[0].waves, [1, 2]);

        let mut s = state();
        s.begin_wave("w1", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.end_wave();
        s.on_barrier();
        s.begin_wave("w2", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.end_wave();
        assert_eq!(s.total(), 0, "barrier closes the window");
    }

    #[test]
    fn uninit_read_reported_once_per_site() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_plain_load(64, 0, 0, "scratch", 3, true);
        s.on_plain_load(64, 1, 1, "scratch", 3, true);
        s.end_wave();
        assert_eq!(s.total(), 1);
        assert_eq!(s.violations()[0].check, SanCheck::UninitRead);
        assert_eq!(s.violations()[0].index, 3);
    }

    #[test]
    fn gang_divergent_child_launches_flagged() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_child_launch(0, 7); // gang 7, lane 0: one launch
        s.on_child_launch(1, 7); // gang 7, lane 1: two launches
        s.on_child_launch(1, 7);
        s.on_child_launch(8, 9); // gang 9: single leader — fine
        s.end_wave();
        assert_eq!(s.total(), 1);
        assert_eq!(s.violations()[0].check, SanCheck::GangChildDivergence);
    }

    #[test]
    fn gang_overlap_classified() {
        let mut s = state();
        s.begin_wave("k", false);
        s.on_store(64, 4, 2, "out", 0); // gang 2, lane 4
        s.on_store(64, 5, 2, "out", 0); // gang 2, lane 5 — same gang
        s.end_wave();
        assert_eq!(s.violations()[0].check, SanCheck::GangOverlap);
    }

    #[test]
    fn disabled_checks_stay_silent() {
        let mut s = SanState::new(SanConfig {
            races: false,
            uninit: false,
            gangs: false,
            max_violations: 10,
        });
        s.begin_wave("k", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.on_store(64, 1, 1, "buf", 0);
        s.on_plain_load(64, 2, 2, "buf", 0, true);
        s.end_wave();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn cap_counts_but_stops_storing() {
        let mut s = SanState::new(SanConfig { max_violations: 1, ..SanConfig::default() });
        s.begin_wave("k", false);
        s.on_store(64, 0, 0, "buf", 0);
        s.on_store(64, 1, 1, "buf", 0);
        s.on_store(128, 0, 0, "buf", 1);
        s.on_store(128, 1, 1, "buf", 1);
        s.end_wave();
        assert_eq!(s.total(), 2);
        assert_eq!(s.violations().len(), 1);
    }

    #[test]
    fn profile_accumulates_across_windows() {
        let mut s = state();
        s.begin_wave("relax", false);
        s.on_atomic(64, 0, 0, "dist", 0, false);
        s.on_atomic(64, 1, 1, "dist", 0, false);
        s.on_plain_load(68, 0, 0, "dist", 1, false);
        s.end_wave();
        s.on_barrier(); // closes the race window, NOT the profile
        s.begin_wave("relax", false);
        s.on_atomic(64, 2, 2, "dist", 0, false);
        s.on_store(128, 0, 0, "pending", 0);
        s.end_wave();
        let p = s.profile();
        assert_eq!(p.waves(), 2);
        assert_eq!(p.kernel_window("relax"), Some((1, 2)));
        let hot = p.word("dist", 0).unwrap();
        assert_eq!(hot.atomics, 3);
        assert!(hot.shared());
        let solo = p.word("pending", 0).unwrap();
        assert_eq!(solo.stores, 1);
        assert!(!solo.shared(), "one logical thread only");
    }

    #[test]
    fn profile_ranks_contended_and_overlap_sites() {
        let mut s = state();
        s.begin_wave("k", false);
        // dist[0]: 3 atomics from distinct lanes (hot + contended).
        for lane in 0..3 {
            s.on_atomic(64, lane, lane, "dist", 0, false);
        }
        // dist[1]: 1 atomic + 1 plain load (overlap, less hot).
        s.on_atomic(68, 0, 0, "dist", 1, false);
        s.on_plain_load(68, 1, 1, "dist", 1, false);
        // pending[0]: plain traffic only — in neither ranking.
        s.on_store(128, 0, 0, "pending", 0);
        s.end_wave();
        let p = s.profile();
        let contended = p.hottest_contended(10);
        assert_eq!(contended[0].0, "dist");
        assert_eq!(contended[0].1, 0);
        assert!(contended.iter().all(|&(b, i, _)| !(b == "pending" && i == 0)));
        let overlap = p.overlap_sites(10);
        assert!(overlap.iter().any(|&(b, i, _)| b == "dist" && i == 1));
        assert!(overlap.iter().all(|&(b, _, _)| b != "pending"));
    }

    #[test]
    fn profile_ranking_is_deterministic() {
        let build = || {
            let mut s = state();
            s.begin_wave("k", false);
            for w in 0..8u32 {
                s.on_atomic(64 + u64::from(w) * 4, 0, 0, "dist", w, false);
                s.on_atomic(64 + u64::from(w) * 4, 1, 1, "dist", w, false);
            }
            s.end_wave();
            s.profile().hottest_contended(8)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn display_carries_site_lane_and_address() {
        let mut s = state();
        s.begin_wave("kern", false);
        s.on_store(0x2040, 3, 3, "dist", 16);
        s.on_store(0x2040, 9, 9, "dist", 16);
        s.end_wave();
        let msg = s.violations()[0].to_string();
        assert!(msg.contains("kern") && msg.contains("dist[16]"), "{msg}");
        assert!(msg.contains("0x2040") && msg.contains("3/9"), "{msg}");
    }
}
