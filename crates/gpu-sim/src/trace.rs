//! Per-lane operation traces.
//!
//! While a thread's body runs, every simulated instruction appends an
//! [`Op`] to its lane trace. Traces are warp-local and short-lived: a
//! warp's 32 traces are replayed and discarded before the next warp
//! executes, keeping simulator memory proportional to warp size, not
//! kernel size.

/// One recorded lane operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Global memory load of a 4-byte word at a byte address.
    Load(u64),
    /// Volatile/L2-coherent load ([`crate::Lane::ld_volatile`]). Costs
    /// and coalesces exactly like [`Op::Load`] — the distinction exists
    /// so the sanitizer can tell a snapshot-semantics read from an
    /// intentionally racy live read.
    LoadVolatile(u64),
    /// Global memory store.
    Store(u64),
    /// Atomic read-modify-write (min/add/cas/exch all cost alike).
    Atomic(u64),
    /// `n` arithmetic/control instructions (collapsed).
    Alu(u32),
    /// Explicit warp reconvergence point (`__syncwarp`). Free at
    /// replay time — the hardware's convergence barrier retires no
    /// instruction the surrounding code did not already pay for — but
    /// it re-aligns the step counter across the warp's lanes: replay
    /// groups ops *within* a segment between two convergence points,
    /// so ops at the same post-sync program point coalesce into one
    /// warp instruction even when the lanes diverged earlier. The
    /// warp-synchronous multisplit kernels emit one per aggregation
    /// point; the scalar baseline kernels never do.
    Conv,
}

impl Op {
    /// Coarse kind used for divergence grouping during replay.
    #[inline]
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Load(_) | Op::LoadVolatile(_) => OpKind::Load,
            Op::Store(_) => OpKind::Store,
            Op::Atomic(_) => OpKind::Atomic,
            Op::Alu(_) => OpKind::Alu,
            Op::Conv => OpKind::Conv,
        }
    }

    /// Byte address for memory ops.
    #[inline]
    pub fn addr(&self) -> Option<u64> {
        match *self {
            Op::Load(a) | Op::LoadVolatile(a) | Op::Store(a) | Op::Atomic(a) => Some(a),
            Op::Alu(_) | Op::Conv => None,
        }
    }
}

/// Operation kind (divergence grouping key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Global load (plain or volatile).
    Load,
    /// Global store.
    Store,
    /// Atomic read-modify-write.
    Atomic,
    /// Arithmetic/control instructions.
    Alu,
    /// Warp reconvergence point (replay segment boundary, zero cost).
    Conv,
}

/// The recorded trace of one lane.
#[derive(Clone, Debug, Default)]
pub struct LaneTrace {
    /// The recorded ops, in program order.
    pub ops: Vec<Op>,
}

impl LaneTrace {
    /// Append one op. Consecutive ALU ops collapse into a single
    /// [`Op::Alu`] to keep traces small: graph kernels interleave long
    /// arithmetic runs with memory ops.
    #[inline]
    pub fn push(&mut self, op: Op) {
        match (self.ops.last_mut(), op) {
            (Some(Op::Alu(last)), Op::Alu(m)) => *last += m,
            _ => self.ops.push(op),
        }
    }

    /// Number of recorded (collapsed) ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Discard all recorded ops.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_collapse() {
        let mut t = LaneTrace::default();
        t.push(Op::Alu(2));
        t.push(Op::Alu(3));
        assert_eq!(t.ops, vec![Op::Alu(5)]);
        t.push(Op::Load(64));
        t.push(Op::Alu(1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn kinds_and_addrs() {
        assert_eq!(Op::Load(8).kind(), OpKind::Load);
        assert_eq!(Op::LoadVolatile(8).kind(), OpKind::Load, "replay must group them together");
        assert_eq!(Op::LoadVolatile(12).addr(), Some(12));
        assert_eq!(Op::Store(8).addr(), Some(8));
        assert_eq!(Op::Alu(1).addr(), None);
        assert_eq!(Op::Atomic(4).kind(), OpKind::Atomic);
    }
}
