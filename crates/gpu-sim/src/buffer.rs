//! Device memory: a word-addressed buffer arena.
//!
//! Device memory is modelled as typed buffers of 32-bit words — every
//! array the SSSP kernels touch (row offsets, adjacency, weights,
//! distances, frontiers, queue cursors) is `u32`. Each buffer gets a
//! disjoint byte-address range so the cache/coalescing models see a
//! realistic flat address space.

/// Handle to a device buffer. Cheap to copy; valid only for the
/// [`crate::Device`] that allocated it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Buf {
    pub(crate) id: u32,
}

pub(crate) struct Buffer {
    pub label: &'static str,
    pub base_addr: u64,
    pub words: Vec<u32>,
    /// Kernel-entry snapshot, created lazily on first write while the
    /// arena is in snapshot mode (synchronous-kernel semantics).
    pub shadow: Option<Vec<u32>>,
}

/// The allocation arena inside a device.
///
/// ## Synchronous-kernel snapshot semantics
///
/// Real GPUs give plain global loads no coherence guarantee within a
/// kernel: a thread typically observes the values present at kernel
/// launch, not a concurrent thread's in-flight store — only atomics
/// are globally coherent. A trace simulator that executes threads
/// sequentially would otherwise leak perfect forward visibility into
/// *synchronous* kernels, granting them the fast convergence that only
/// asynchronous execution (persistent kernels, §4.3 of the paper) has.
///
/// In snapshot mode ([`Arena::begin_snapshot`]): plain loads read the
/// kernel-entry value of any buffer that has since been written;
/// stores and atomics operate on (and return) live memory.
pub(crate) struct Arena {
    buffers: Vec<Buffer>,
    next_addr: u64,
    snapshot_mode: bool,
    /// Buffer ids released for reuse, keyed by exact word length.
    /// Contents persist across release/acquire — the next owner resets
    /// explicitly (the buffer pool's poisoned-fill tests rely on it).
    free: std::collections::HashMap<usize, Vec<u32>>,
}

/// Buffers are aligned to this many bytes so distinct buffers never
/// share a cache line.
const ALIGN: u64 = 256;

impl Arena {
    pub fn new() -> Self {
        // Start away from address zero, like a real virtual space.
        Self {
            buffers: Vec::new(),
            next_addr: 0x1000,
            snapshot_mode: false,
            free: std::collections::HashMap::new(),
        }
    }

    /// Return `buf` to the free list for a later same-length
    /// [`Arena::acquire`]. The handle must not be used afterwards; the
    /// words keep their values until the next owner resets them.
    pub fn release(&mut self, buf: Buf) {
        let len = self.buffers[buf.id as usize].words.len();
        let ids = self.free.entry(len).or_default();
        debug_assert!(!ids.contains(&buf.id), "double release of '{}'", self.label(buf));
        ids.push(buf.id);
    }

    /// Re-acquire a released buffer of exactly `len` words, relabelling
    /// it. `None` when the free list has no buffer of that length.
    pub fn acquire(&mut self, label: &'static str, len: usize) -> Option<Buf> {
        let id = self.free.get_mut(&len)?.pop()?;
        self.buffers[id as usize].label = label;
        Some(Buf { id })
    }

    pub fn alloc(&mut self, label: &'static str, len: usize) -> Buf {
        let id = self.buffers.len() as u32;
        let bytes = (len as u64) * 4;
        let base = self.next_addr;
        self.next_addr = (base + bytes).div_ceil(ALIGN) * ALIGN;
        self.buffers.push(Buffer { label, base_addr: base, words: vec![0; len], shadow: None });
        Buf { id }
    }

    /// Enter synchronous-kernel snapshot mode (see type docs).
    pub fn begin_snapshot(&mut self) {
        debug_assert!(!self.snapshot_mode, "nested snapshot");
        self.snapshot_mode = true;
    }

    /// Leave snapshot mode and drop all shadows.
    pub fn end_snapshot(&mut self) {
        self.snapshot_mode = false;
        for b in &mut self.buffers {
            b.shadow = None;
        }
    }

    #[inline]
    fn ensure_shadow(&mut self, buf: Buf) {
        if self.snapshot_mode {
            let b = &mut self.buffers[buf.id as usize];
            if b.shadow.is_none() {
                b.shadow = Some(b.words.clone());
            }
        }
    }

    /// Value a plain (non-atomic) load observes: the kernel-entry
    /// snapshot if this buffer was written during a snapshot-mode
    /// kernel, the live value otherwise.
    #[inline]
    pub fn load_visible(&self, buf: Buf, idx: u32) -> u32 {
        let b = &self.buffers[buf.id as usize];
        match (&b.shadow, self.snapshot_mode) {
            (Some(shadow), true) => shadow[idx as usize],
            _ => b.words[idx as usize],
        }
    }

    #[inline]
    pub fn slice(&self, buf: Buf) -> &[u32] {
        &self.buffers[buf.id as usize].words
    }

    #[inline]
    pub fn slice_mut(&mut self, buf: Buf) -> &mut [u32] {
        &mut self.buffers[buf.id as usize].words
    }

    /// Byte address of `buf[idx]`.
    #[inline]
    pub fn addr(&self, buf: Buf, idx: u32) -> u64 {
        let b = &self.buffers[buf.id as usize];
        debug_assert!(
            (idx as usize) < b.words.len(),
            "index {idx} out of bounds for buffer '{}' (len {})",
            b.label,
            b.words.len()
        );
        b.base_addr + (idx as u64) * 4
    }

    #[inline]
    pub fn load(&self, buf: Buf, idx: u32) -> u32 {
        self.buffers[buf.id as usize].words[idx as usize]
    }

    #[inline]
    pub fn store(&mut self, buf: Buf, idx: u32, val: u32) {
        self.ensure_shadow(buf);
        self.buffers[buf.id as usize].words[idx as usize] = val;
    }

    pub fn label(&self, buf: Buf) -> &'static str {
        self.buffers[buf.id as usize].label
    }

    /// Total allocated words (for memory accounting).
    pub fn total_words(&self) -> usize {
        self.buffers.iter().map(|b| b.words.len()).sum()
    }

    /// Copy of every buffer's live words, indexed by buffer id (the
    /// stale-read fault model's snapshot source).
    pub fn clone_words(&self) -> Vec<Vec<u32>> {
        self.buffers.iter().map(|b| b.words.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_aligned_addresses() {
        let mut a = Arena::new();
        let x = a.alloc("x", 3);
        let y = a.alloc("y", 100);
        let xa = a.addr(x, 0);
        let ya = a.addr(y, 0);
        assert_eq!(xa % ALIGN, 0x1000 % ALIGN);
        assert!(ya >= xa + 12);
        assert_eq!(ya % ALIGN, 0);
        assert_eq!(a.addr(y, 5), ya + 20);
    }

    #[test]
    fn load_store() {
        let mut a = Arena::new();
        let x = a.alloc("x", 4);
        a.store(x, 2, 42);
        assert_eq!(a.load(x, 2), 42);
        assert_eq!(a.load(x, 0), 0);
        assert_eq!(a.label(x), "x");
        assert_eq!(a.total_words(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_panics() {
        let mut a = Arena::new();
        let x = a.alloc("x", 2);
        let _ = a.load(x, 5);
    }
}
