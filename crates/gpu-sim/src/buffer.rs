//! Device memory: a word-addressed buffer arena.
//!
//! Device memory is modelled as typed buffers of 32-bit words — every
//! array the SSSP kernels touch (row offsets, adjacency, weights,
//! distances, frontiers, queue cursors) is `u32`. Each buffer gets a
//! disjoint byte-address range so the cache/coalescing models see a
//! realistic flat address space.

/// Handle to a device buffer. Cheap to copy; valid only for the
/// [`crate::Device`] that allocated it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Buf {
    pub(crate) id: u32,
}

pub(crate) struct Buffer {
    pub label: &'static str,
    pub base_addr: u64,
    pub words: Vec<u32>,
    /// Kernel-entry snapshot, created lazily on first write while the
    /// arena is in snapshot mode (synchronous-kernel semantics).
    pub shadow: Option<Vec<u32>>,
    /// Per-word uninitialized-read poison, tracked only while the
    /// sanitizer has poison mode on ([`Arena::set_poison_mode`]).
    /// `true` = never written since alloc/recycle.
    pub poison: Option<Vec<bool>>,
    /// Kernel-entry copy of `poison`, captured together with `shadow`:
    /// a plain load that observes the snapshot must also see the
    /// snapshot's initialization state, not the live one.
    pub shadow_poison: Option<Vec<bool>>,
}

/// The allocation arena inside a device.
///
/// ## Synchronous-kernel snapshot semantics
///
/// Real GPUs give plain global loads no coherence guarantee within a
/// kernel: a thread typically observes the values present at kernel
/// launch, not a concurrent thread's in-flight store — only atomics
/// are globally coherent. A trace simulator that executes threads
/// sequentially would otherwise leak perfect forward visibility into
/// *synchronous* kernels, granting them the fast convergence that only
/// asynchronous execution (persistent kernels, §4.3 of the paper) has.
///
/// In snapshot mode ([`Arena::begin_snapshot`]): plain loads read the
/// kernel-entry value of any buffer that has since been written;
/// stores and atomics operate on (and return) live memory.
pub(crate) struct Arena {
    buffers: Vec<Buffer>,
    next_addr: u64,
    snapshot_mode: bool,
    /// When on (sanitizer armed with the uninit check), fresh and
    /// recycled buffers are poisoned word-by-word until written.
    poison_mode: bool,
    /// Buffer ids released for reuse, keyed by exact word length.
    /// Contents persist across release/acquire — the next owner resets
    /// explicitly (the buffer pool's poisoned-fill tests rely on it).
    free: std::collections::HashMap<usize, Vec<u32>>,
}

/// Buffers are aligned to this many bytes so distinct buffers never
/// share a cache line.
const ALIGN: u64 = 256;

impl Arena {
    pub fn new() -> Self {
        // Start away from address zero, like a real virtual space.
        Self {
            buffers: Vec::new(),
            next_addr: 0x1000,
            snapshot_mode: false,
            poison_mode: false,
            free: std::collections::HashMap::new(),
        }
    }

    /// Turn uninitialized-read poison tracking on or off. Turning it
    /// off drops all poison state (everything counts as initialized).
    pub fn set_poison_mode(&mut self, on: bool) {
        self.poison_mode = on;
        if !on {
            for b in &mut self.buffers {
                b.poison = None;
                b.shadow_poison = None;
            }
        }
    }

    /// Whether a plain load of `buf[idx]` observes an uninitialized
    /// word, honouring snapshot semantics: if the buffer was written
    /// during this snapshot kernel, visibility (and therefore poison)
    /// is that of the kernel entry.
    #[inline]
    pub fn poisoned_visible(&self, buf: Buf, idx: u32) -> bool {
        let b = &self.buffers[buf.id as usize];
        if self.snapshot_mode && b.shadow.is_some() {
            return b.shadow_poison.as_ref().is_some_and(|p| p[idx as usize]);
        }
        b.poison.as_ref().is_some_and(|p| p[idx as usize])
    }

    /// Whether the live word `buf[idx]` is uninitialized (what a
    /// volatile load or an atomic read-modify-write observes).
    #[inline]
    pub fn poisoned_live(&self, buf: Buf, idx: u32) -> bool {
        self.buffers[buf.id as usize].poison.as_ref().is_some_and(|p| p[idx as usize])
    }

    /// Mark a whole buffer initialized (host-side write/fill/upload).
    #[inline]
    pub fn clear_poison(&mut self, buf: Buf) {
        self.buffers[buf.id as usize].poison = None;
    }

    /// Mark one word initialized (host-side single-word write).
    #[inline]
    pub fn clear_poison_at(&mut self, buf: Buf, idx: u32) {
        if let Some(p) = self.buffers[buf.id as usize].poison.as_mut() {
            p[idx as usize] = false;
        }
    }

    /// Return `buf` to the free list for a later same-length
    /// [`Arena::acquire`]. The handle must not be used afterwards; the
    /// words keep their values until the next owner resets them.
    pub fn release(&mut self, buf: Buf) {
        let len = self.buffers[buf.id as usize].words.len();
        let ids = self.free.entry(len).or_default();
        debug_assert!(!ids.contains(&buf.id), "double release of '{}'", self.label(buf));
        ids.push(buf.id);
    }

    /// Re-acquire a released buffer of exactly `len` words, relabelling
    /// it. `None` when the free list has no buffer of that length.
    pub fn acquire(&mut self, label: &'static str, len: usize) -> Option<Buf> {
        let id = self.free.get_mut(&len)?.pop()?;
        let b = &mut self.buffers[id as usize];
        b.label = label;
        // A recycled buffer's contents are stale: reading a word the
        // new owner never reset is exactly the bug the uninit check
        // exists for, so re-poison the whole range.
        b.poison = self.poison_mode.then(|| vec![true; len]);
        Some(Buf { id })
    }

    pub fn alloc(&mut self, label: &'static str, len: usize) -> Buf {
        let id = self.buffers.len() as u32;
        let bytes = (len as u64) * 4;
        let base = self.next_addr;
        self.next_addr = (base + bytes).div_ceil(ALIGN) * ALIGN;
        self.buffers.push(Buffer {
            label,
            base_addr: base,
            words: vec![0; len],
            shadow: None,
            poison: self.poison_mode.then(|| vec![true; len]),
            shadow_poison: None,
        });
        Buf { id }
    }

    /// Words currently sitting on the free list (recyclable but idle).
    pub fn free_words(&self) -> usize {
        self.free.iter().map(|(len, ids)| len * ids.len()).sum()
    }

    /// Evict free-list buffers, largest word-length classes first,
    /// until at most `max_words` remain idle. Evicted buffers give
    /// their memory back (the handle becomes permanently dead) and
    /// can never be re-acquired. Returns the number of words evicted.
    pub fn trim_free_to(&mut self, max_words: usize) -> usize {
        let mut evicted = 0usize;
        while self.free_words() > max_words {
            let largest = self.free.keys().copied().max().expect("non-empty free map");
            let ids = self.free.get_mut(&largest).expect("key exists");
            let id = ids.pop().expect("non-empty class");
            if ids.is_empty() {
                self.free.remove(&largest);
            }
            let b = &mut self.buffers[id as usize];
            b.label = "(evicted)";
            b.words = Vec::new();
            b.shadow = None;
            b.poison = None;
            b.shadow_poison = None;
            evicted += largest;
        }
        evicted
    }

    /// Enter synchronous-kernel snapshot mode (see type docs).
    pub fn begin_snapshot(&mut self) {
        debug_assert!(!self.snapshot_mode, "nested snapshot");
        self.snapshot_mode = true;
    }

    /// Leave snapshot mode and drop all shadows.
    pub fn end_snapshot(&mut self) {
        self.snapshot_mode = false;
        for b in &mut self.buffers {
            b.shadow = None;
            b.shadow_poison = None;
        }
    }

    #[inline]
    fn ensure_shadow(&mut self, buf: Buf) {
        if self.snapshot_mode {
            let b = &mut self.buffers[buf.id as usize];
            if b.shadow.is_none() {
                b.shadow = Some(b.words.clone());
                b.shadow_poison = b.poison.clone();
            }
        }
    }

    /// Value a plain (non-atomic) load observes: the kernel-entry
    /// snapshot if this buffer was written during a snapshot-mode
    /// kernel, the live value otherwise.
    #[inline]
    pub fn load_visible(&self, buf: Buf, idx: u32) -> u32 {
        let b = &self.buffers[buf.id as usize];
        match (&b.shadow, self.snapshot_mode) {
            (Some(shadow), true) => shadow[idx as usize],
            _ => b.words[idx as usize],
        }
    }

    #[inline]
    pub fn slice(&self, buf: Buf) -> &[u32] {
        &self.buffers[buf.id as usize].words
    }

    #[inline]
    pub fn slice_mut(&mut self, buf: Buf) -> &mut [u32] {
        &mut self.buffers[buf.id as usize].words
    }

    /// Byte address of `buf[idx]`.
    #[inline]
    pub fn addr(&self, buf: Buf, idx: u32) -> u64 {
        let b = &self.buffers[buf.id as usize];
        debug_assert!(
            (idx as usize) < b.words.len(),
            "index {idx} out of bounds for buffer '{}' (len {})",
            b.label,
            b.words.len()
        );
        b.base_addr + (idx as u64) * 4
    }

    #[inline]
    pub fn load(&self, buf: Buf, idx: u32) -> u32 {
        self.buffers[buf.id as usize].words[idx as usize]
    }

    #[inline]
    pub fn store(&mut self, buf: Buf, idx: u32, val: u32) {
        self.ensure_shadow(buf);
        let b = &mut self.buffers[buf.id as usize];
        if let Some(p) = b.poison.as_mut() {
            p[idx as usize] = false;
        }
        b.words[idx as usize] = val;
    }

    pub fn label(&self, buf: Buf) -> &'static str {
        self.buffers[buf.id as usize].label
    }

    /// Total allocated words (for memory accounting).
    pub fn total_words(&self) -> usize {
        self.buffers.iter().map(|b| b.words.len()).sum()
    }

    /// Copy of every buffer's live words, indexed by buffer id (the
    /// stale-read fault model's snapshot source).
    pub fn clone_words(&self) -> Vec<Vec<u32>> {
        self.buffers.iter().map(|b| b.words.clone()).collect()
    }

    /// Set a buffer's poison to the complement of a host-staging write
    /// map: words the host never wrote stay poisoned (only while
    /// poison mode is on — a no-op clear otherwise). This is how
    /// shadow poison crosses the host→device copy instead of being
    /// wholesale-cleared by the upload.
    pub fn set_poison_from_unwritten(&mut self, buf: Buf, written: &[bool]) {
        let b = &mut self.buffers[buf.id as usize];
        assert_eq!(b.words.len(), written.len(), "staging length mismatch for '{}'", b.label);
        b.poison = (self.poison_mode && written.contains(&false))
            .then(|| written.iter().map(|&w| !w).collect());
    }
}

/// A host-side staging buffer with per-word shadow-poison tracking.
///
/// Host code that assembles an upload incrementally (CSR arrays,
/// boundary-exchange batches…) historically lost the sanitizer's
/// uninitialized-read check at the host→device seam: `alloc_upload`
/// cleared poison wholesale, so a word the host *never actually wrote*
/// arrived on device looking initialized (as a silent zero). Staging
/// through [`HostStaging`] and uploading with
/// [`crate::Device::upload_staged`] carries the "never written" state
/// across the copy, so a kernel reading such a word trips `UninitRead`.
#[derive(Clone, Debug)]
pub struct HostStaging {
    label: &'static str,
    words: Vec<u32>,
    written: Vec<bool>,
}

impl HostStaging {
    /// A zero-filled staging buffer with every word *unwritten*.
    pub fn new(label: &'static str, len: usize) -> Self {
        Self { label, words: vec![0; len], written: vec![false; len] }
    }

    /// A staging buffer pre-filled from host data (fully written).
    pub fn from_slice(label: &'static str, data: &[u32]) -> Self {
        Self { label, words: data.to_vec(), written: vec![true; data.len()] }
    }

    /// The label the device buffer will carry.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Length in 32-bit words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the staging buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Write one word (marks it initialized).
    pub fn write(&mut self, idx: usize, val: u32) {
        self.words[idx] = val;
        self.written[idx] = true;
    }

    /// Write a contiguous run starting at `offset`.
    pub fn write_slice(&mut self, offset: usize, data: &[u32]) {
        self.words[offset..offset + data.len()].copy_from_slice(data);
        self.written[offset..offset + data.len()].fill(true);
    }

    /// Fill the whole buffer (marks everything initialized).
    pub fn fill(&mut self, val: u32) {
        self.words.fill(val);
        self.written.fill(true);
    }

    /// Words never written since construction.
    pub fn unwritten_words(&self) -> usize {
        self.written.iter().filter(|&&w| !w).count()
    }

    pub(crate) fn words(&self) -> &[u32] {
        &self.words
    }

    pub(crate) fn written(&self) -> &[bool] {
        &self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_aligned_addresses() {
        let mut a = Arena::new();
        let x = a.alloc("x", 3);
        let y = a.alloc("y", 100);
        let xa = a.addr(x, 0);
        let ya = a.addr(y, 0);
        assert_eq!(xa % ALIGN, 0x1000 % ALIGN);
        assert!(ya >= xa + 12);
        assert_eq!(ya % ALIGN, 0);
        assert_eq!(a.addr(y, 5), ya + 20);
    }

    #[test]
    fn load_store() {
        let mut a = Arena::new();
        let x = a.alloc("x", 4);
        a.store(x, 2, 42);
        assert_eq!(a.load(x, 2), 42);
        assert_eq!(a.load(x, 0), 0);
        assert_eq!(a.label(x), "x");
        assert_eq!(a.total_words(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_panics() {
        let mut a = Arena::new();
        let x = a.alloc("x", 2);
        let _ = a.load(x, 5);
    }

    #[test]
    fn poison_set_on_alloc_cleared_by_store() {
        let mut a = Arena::new();
        a.set_poison_mode(true);
        let x = a.alloc("x", 2);
        assert!(a.poisoned_live(x, 0) && a.poisoned_visible(x, 1));
        a.store(x, 0, 7);
        assert!(!a.poisoned_live(x, 0));
        assert!(a.poisoned_live(x, 1));
        a.clear_poison(x);
        assert!(!a.poisoned_live(x, 1));
    }

    #[test]
    fn poison_reapplied_on_recycle_and_snapshot_aware() {
        let mut a = Arena::new();
        a.set_poison_mode(true);
        let x = a.alloc("x", 1);
        a.store(x, 0, 1);
        a.release(x);
        let y = a.acquire("y", 1).unwrap();
        assert!(a.poisoned_live(y, 0), "recycled contents are stale");
        // In a snapshot kernel, a store clears live poison but a plain
        // load still observes the kernel-entry (poisoned) state.
        a.begin_snapshot();
        a.store(y, 0, 5);
        assert!(!a.poisoned_live(y, 0));
        assert!(a.poisoned_visible(y, 0));
        a.end_snapshot();
        assert!(!a.poisoned_visible(y, 0));
    }

    #[test]
    fn poison_mode_off_tracks_nothing() {
        let mut a = Arena::new();
        let x = a.alloc("x", 4);
        assert!(!a.poisoned_live(x, 0) && !a.poisoned_visible(x, 0));
    }

    #[test]
    fn staging_poison_survives_the_upload_seam() {
        let mut a = Arena::new();
        a.set_poison_mode(true);
        let mut st = HostStaging::new("csr", 4);
        st.write(0, 7);
        st.write_slice(2, &[8, 9]);
        assert_eq!(st.unwritten_words(), 1);
        let b = a.alloc("csr", 4);
        a.slice_mut(b).copy_from_slice(st.words());
        a.set_poison_from_unwritten(b, st.written());
        assert!(!a.poisoned_live(b, 0));
        assert!(a.poisoned_live(b, 1), "the never-written word stays poisoned");
        assert!(!a.poisoned_live(b, 2) && !a.poisoned_live(b, 3));
        // A fully written staging buffer clears poison entirely.
        st.fill(1);
        a.set_poison_from_unwritten(b, st.written());
        assert!(!a.poisoned_live(b, 1));
    }

    #[test]
    fn trim_evicts_largest_free_classes_first() {
        let mut a = Arena::new();
        let big = a.alloc("big", 100);
        let small = a.alloc("small", 10);
        a.release(big);
        a.release(small);
        assert_eq!(a.free_words(), 110);
        let evicted = a.trim_free_to(20);
        assert_eq!(evicted, 100, "the 100-word class goes first");
        assert_eq!(a.free_words(), 10);
        assert_eq!(a.total_words(), 10);
        assert!(a.acquire("again", 100).is_none(), "evicted buffers never come back");
        assert!(a.acquire("again", 10).is_some());
    }
}
