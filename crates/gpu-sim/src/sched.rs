//! Seeded schedule fuzzing: deterministic lane-interleaving permutation.
//!
//! The simulator normally executes the lanes of a wave in ascending
//! lane order. That is *one* legal interleaving of a real GPU's
//! undefined intra-wave scheduling — a program whose result depends on
//! it is racy even if the fixed order happens to produce the right
//! answer. A [`SchedPlan`] armed on a [`crate::Device`] (via
//! [`crate::Device::arm_schedule_fuzz`]) replaces the ascending order
//! with a seeded Fisher–Yates permutation, freshly drawn per wave from
//! one splitmix64 stream: the same seed replays the same interleavings
//! byte-for-byte, and different seeds explore different legal orders.
//!
//! Only the *functional* execution order is permuted. Each lane keeps
//! its original `tid`/`gang_rank`, and the timing replay still groups
//! lanes into their original warps, so a schedule-insensitive kernel
//! produces bit-identical results and costs under any seed — which is
//! exactly the property the fuzzing harness asserts, with the
//! memory-model sanitizer armed to catch the schedule-sensitive ones.

/// A seeded, deterministic per-wave lane-order permuter.
#[derive(Clone, Debug)]
pub struct SchedPlan {
    seed: u64,
    /// splitmix64 state; the orders drawn are a pure function of the
    /// seed and the sequence of waves executed.
    state: u64,
    waves_permuted: u64,
}

impl SchedPlan {
    /// A plan drawing permutations from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, state: seed, waves_permuted: 0 }
    }

    /// The seed the plan was armed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Waves whose lane order this plan has permuted so far.
    pub fn waves_permuted(&self) -> u64 {
        self.waves_permuted
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64, same generator the fault plan uses.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draw a fresh permutation of `0..n` (Fisher–Yates off the plan
    /// stream). Called once per executed wave.
    pub(crate) fn permutation(&mut self, n: u64) -> Vec<u64> {
        self.waves_permuted += 1;
        let mut order: Vec<u64> = (0..n).collect();
        for i in (1..order.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_are_seeded_and_complete() {
        let mut a = SchedPlan::new(7);
        let mut b = SchedPlan::new(7);
        for n in [0u64, 1, 2, 32, 100] {
            let pa = a.permutation(n);
            let pb = b.permutation(n);
            assert_eq!(pa, pb, "same seed, same order");
            let mut sorted = pa.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "a permutation, nothing lost");
        }
        assert_eq!(a.waves_permuted(), 5);
    }

    #[test]
    fn different_seeds_diverge() {
        let pa = SchedPlan::new(1).permutation(64);
        let pb = SchedPlan::new(2).permutation(64);
        assert_ne!(pa, pb);
    }
}
