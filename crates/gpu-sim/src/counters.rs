//! nvprof-style performance counters.
//!
//! Field names follow the metrics the paper profiles in Fig. 10:
//! `inst_executed_global_loads`, `inst_executed_global_stores`,
//! `inst_executed_atomics` and `global_hit_rate`, plus the transaction
//! and cycle counters the cost model needs.

/// Aggregate device counters. All counts are warp-level unless noted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    /// Warp-level instructions executed, all kinds.
    pub inst_executed: u64,
    /// Warp-level global load instructions (Fig. 10 (a)).
    pub inst_executed_global_loads: u64,
    /// Warp-level global store instructions (Fig. 10 (b)).
    pub inst_executed_global_stores: u64,
    /// Warp-level atomic instructions (Fig. 10 (c)).
    pub inst_executed_atomics: u64,
    /// Warp-level atomic instructions on global memory. The simulator
    /// models no shared-memory atomics, so this tracks
    /// `inst_executed_atomics` exactly — kept as its own nvprof-named
    /// counter so frontier ablations can gate on the metric the MLMQ
    /// paper reports.
    pub inst_executed_global_atomics: u64,
    /// Memory transactions from global load instructions.
    pub gld_transactions: u64,
    /// Memory transactions from global store instructions.
    pub gst_transactions: u64,
    /// Transactions from atomics.
    pub atom_transactions: u64,
    /// L1 accesses (for `global_hit_rate`, Fig. 10 (d)).
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Transactions served by DRAM.
    pub dram_transactions: u64,
    /// Extra same-address atomic conflicts (serialized lanes).
    pub atomic_conflicts: u64,
    /// Host kernel launches.
    pub kernel_launches: u64,
    /// Dynamic-parallelism child kernel launches.
    pub child_kernel_launches: u64,
    /// Grid-wide barriers.
    pub barriers: u64,
    /// Sum of active lanes over all warp instructions (for warp
    /// execution efficiency).
    pub active_lane_sum: u64,
    /// `32 *` warp instructions (lane slots).
    pub lane_slot_sum: u64,
    /// Total threads executed.
    pub threads: u64,
    /// Total warps executed.
    pub warps: u64,
    /// Host→device uploads ([`crate::Device::alloc_upload`] calls).
    pub h2d_uploads: u64,
    /// 32-bit words copied host→device by those uploads.
    pub h2d_words: u64,
    /// Fresh device buffer allocations.
    pub buffer_allocs: u64,
    /// Allocations served from the arena free list instead of fresh
    /// memory ([`crate::Device::alloc_pooled`] hits).
    pub buffer_reuses: u64,
}

impl Counters {
    /// nvprof `global_hit_rate`: L1 hit fraction of global accesses,
    /// in percent.
    pub fn global_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            100.0 * self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// Warp execution efficiency: mean fraction of active lanes per
    /// warp instruction, in percent (100 = divergence-free).
    pub fn warp_execution_efficiency(&self) -> f64 {
        if self.lane_slot_sum == 0 {
            0.0
        } else {
            100.0 * self.active_lane_sum as f64 / self.lane_slot_sum as f64
        }
    }

    /// Total DRAM bytes moved (32-byte sectors).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_transactions * crate::SECTOR_BYTES
    }

    /// Total memory transactions of any kind.
    pub fn total_transactions(&self) -> u64 {
        self.gld_transactions + self.gst_transactions + self.atom_transactions
    }

    /// nvprof-style named metric list, as the paper's Fig. 10 reports
    /// them. Useful for CSV export and external plotting.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("inst_executed", self.inst_executed as f64),
            ("inst_executed_global_loads", self.inst_executed_global_loads as f64),
            ("inst_executed_global_stores", self.inst_executed_global_stores as f64),
            ("inst_executed_atomics", self.inst_executed_atomics as f64),
            ("inst_executed_global_atomics", self.inst_executed_global_atomics as f64),
            ("gld_transactions", self.gld_transactions as f64),
            ("gst_transactions", self.gst_transactions as f64),
            ("atom_transactions", self.atom_transactions as f64),
            ("global_hit_rate", self.global_hit_rate()),
            ("warp_execution_efficiency", self.warp_execution_efficiency()),
            ("dram_bytes", self.dram_bytes() as f64),
            ("atomic_conflicts", self.atomic_conflicts as f64),
            ("kernel_launches", self.kernel_launches as f64),
            ("child_kernel_launches", self.child_kernel_launches as f64),
            ("barriers", self.barriers as f64),
            ("h2d_uploads", self.h2d_uploads as f64),
            ("h2d_words", self.h2d_words as f64),
            ("buffer_allocs", self.buffer_allocs as f64),
            ("buffer_reuses", self.buffer_reuses as f64),
        ]
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.inst_executed += other.inst_executed;
        self.inst_executed_global_loads += other.inst_executed_global_loads;
        self.inst_executed_global_stores += other.inst_executed_global_stores;
        self.inst_executed_atomics += other.inst_executed_atomics;
        self.inst_executed_global_atomics += other.inst_executed_global_atomics;
        self.gld_transactions += other.gld_transactions;
        self.gst_transactions += other.gst_transactions;
        self.atom_transactions += other.atom_transactions;
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.dram_transactions += other.dram_transactions;
        self.atomic_conflicts += other.atomic_conflicts;
        self.kernel_launches += other.kernel_launches;
        self.child_kernel_launches += other.child_kernel_launches;
        self.barriers += other.barriers;
        self.active_lane_sum += other.active_lane_sum;
        self.lane_slot_sum += other.lane_slot_sum;
        self.threads += other.threads;
        self.warps += other.warps;
        self.h2d_uploads += other.h2d_uploads;
        self.h2d_words += other.h2d_words;
        self.buffer_allocs += other.buffer_allocs;
        self.buffer_reuses += other.buffer_reuses;
    }
}

/// Timing/counter summary of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel label.
    pub name: &'static str,
    /// Threads launched (parent + gang lanes).
    pub threads: u64,
    /// Warp instructions executed.
    pub warp_instructions: u64,
    /// Global-atomic warp instructions executed.
    pub atomics: u64,
    /// Compute-side time, nanoseconds.
    pub compute_ns: f64,
    /// Memory-side time, nanoseconds.
    pub memory_ns: f64,
    /// Wall time charged (max of the two + overheads), nanoseconds.
    pub total_ns: f64,
    /// Whether this was a dynamic-parallelism child.
    pub child: bool,
    /// Command stream the launch was issued on (0 = default stream).
    pub stream: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut c = Counters::default();
        assert_eq!(c.global_hit_rate(), 0.0);
        assert_eq!(c.warp_execution_efficiency(), 0.0);
        c.l1_accesses = 10;
        c.l1_hits = 4;
        assert!((c.global_hit_rate() - 40.0).abs() < 1e-9);
        c.active_lane_sum = 16;
        c.lane_slot_sum = 32;
        assert!((c.warp_execution_efficiency() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds() {
        let mut a = Counters { inst_executed: 2, dram_transactions: 3, ..Default::default() };
        let b = Counters { inst_executed: 5, dram_transactions: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.inst_executed, 7);
        assert_eq!(a.dram_bytes(), 10 * crate::SECTOR_BYTES);
    }
}
