//! Set-associative cache model: per-SM L1s over a shared L2.
//!
//! Transactions produced by the coalescer probe the issuing SM's L1;
//! misses probe L2; L2 misses count as DRAM traffic. True-LRU
//! replacement. This is deliberately simple — the paper's
//! `global_hit_rate` comparisons are about *locality differences*
//! between reordered and raw graphs, which any reasonable LRU cache
//! exposes.

use crate::device::DeviceConfig;

/// Where a transaction was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLevel {
    /// Served by the per-SM L1.
    L1,
    /// Served by the shared L2.
    L2,
    /// Went all the way to DRAM.
    Dram,
}

/// One set-associative cache.
pub struct Cache {
    sets: Vec<Vec<u64>>, // per set: line tags, most-recent last
    ways: usize,
    line_bytes: u64,
    num_sets: u64,
    /// Transactions looked up in this cache.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
}

impl Cache {
    /// Build a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines. Sizes are rounded down to a whole number of
    /// sets (at least one).
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        let lines = (size_bytes / line_bytes).max(1);
        let num_sets = (lines / ways as u64).max(1);
        Self {
            sets: vec![Vec::with_capacity(ways as usize); num_sets as usize],
            ways: ways as usize,
            line_bytes,
            num_sets,
            accesses: 0,
            hits: 0,
        }
    }

    /// Probe the cache with a byte address; inserts on miss. Returns
    /// whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.num_sets) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = ways.remove(pos);
            ways.push(tag);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.ways {
                ways.remove(0); // evict LRU
            }
            ways.push(line);
            false
        }
    }

    /// Hit rate so far (0 if never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-SM L1s plus one shared L2.
pub struct CacheHierarchy {
    /// One L1 per SM.
    pub l1: Vec<Cache>,
    /// The shared L2.
    pub l2: Cache,
}

impl CacheHierarchy {
    /// Build the hierarchy a device configuration describes.
    pub fn new(config: &DeviceConfig) -> Self {
        let l1 = (0..config.num_sms)
            .map(|_| Cache::new(config.l1_bytes, config.ways, config.line_bytes))
            .collect();
        let l2 = Cache::new(config.l2_bytes, config.ways, config.line_bytes);
        Self { l1, l2 }
    }

    /// Route one transaction issued by `sm`; returns the serving level.
    pub fn access(&mut self, sm: usize, addr: u64) -> CacheLevel {
        if self.l1[sm].access(addr) {
            CacheLevel::L1
        } else if self.l2.access(addr) {
            CacheLevel::L2
        } else {
            CacheLevel::Dram
        }
    }

    /// Aggregate L1 hit rate across SMs (nvprof's `global_hit_rate`).
    pub fn l1_hit_rate(&self) -> f64 {
        let (hits, accesses) =
            self.l1.iter().fold((0u64, 0u64), |(h, a), c| (h + c.hits, a + c.accesses));
        if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = Cache::new(1024, 2, 128);
        assert!(!c.access(0));
        assert!(c.access(4)); // same line
        assert!(c.access(64));
        assert_eq!(c.accesses, 3);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn lru_eviction() {
        // 2 ways, 1 set of 128-byte lines → only 2 lines fit.
        let mut c = Cache::new(256, 2, 128);
        assert_eq!(c.num_sets, 1);
        c.access(0); // line 0
        c.access(128); // line 1
        assert!(c.access(0)); // hit, 0 becomes MRU
        c.access(256); // line 2 evicts line 1 (LRU)
        assert!(c.access(0), "line 0 must have been kept");
        assert!(!c.access(128), "line 1 must have been evicted");
    }

    #[test]
    fn hierarchy_levels() {
        let cfg = DeviceConfig::test_tiny();
        let mut h = CacheHierarchy::new(&cfg);
        assert_eq!(h.access(0, 0), CacheLevel::Dram);
        assert_eq!(h.access(0, 0), CacheLevel::L1);
        // A different SM misses its own L1 but hits shared L2.
        assert_eq!(h.access(1, 0), CacheLevel::L2);
        assert!(h.l1_hit_rate() > 0.0 && h.l1_hit_rate() < 1.0);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        let c = Cache::new(1024, 2, 128);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
