//! Kernel launch API: lanes, gangs, dynamic parallelism, wave sessions.
//!
//! * [`Device::launch`] — a host-side kernel: `threads` lanes, each
//!   running `body`; consecutive lanes share warps, so lane `tid` maps
//!   to CUDA's global thread id.
//! * [`Device::launch_gangs`] — cooperative mapping: each *item* is
//!   processed by `gang_size` lanes in consecutive positions (gang of
//!   32 = the paper's Warp-granularity processing, 256 = Block
//!   granularity, §4.2).
//! * [`Lane::launch_child`] — dynamic parallelism: enqueue a child
//!   kernel that runs after the current wave at device-launch cost.
//! * [`Device::wave_session`] — a persistent kernel: pay one launch,
//!   then run arbitrarily many task waves (the asynchronous phase-1
//!   engine of §4.3 builds on this).

use crate::buffer::{Arena, Buf};
use crate::cost::kernel_time;
use crate::counters::KernelReport;
use crate::device::Device;
use crate::fault::{AtomicMinFault, FaultModel, FaultPlan};
use crate::ir::IrState;
use crate::replay::replay_warp;
use crate::san::SanState;
use crate::trace::{LaneTrace, Op};
use crate::{SECTOR_BYTES, WARP_SIZE};

/// A queued dynamic-parallelism child kernel.
pub struct ChildLaunch {
    pub(crate) name: &'static str,
    pub(crate) threads: u64,
    pub(crate) gang_size: u32,
    pub(crate) body: Box<dyn Fn(&mut Lane<'_>)>,
}

/// Destination of a warp-aggregated multisplit scatter: one device
/// queue's cursor cells and slot buffer, as its owner declared them
/// via [`Device::declare_queue`]. Word 0 of `tail` is the cursor;
/// word 0 of `overflow` is the sticky drop counter.
#[derive(Clone, Copy, Debug)]
pub struct ScatterTarget {
    /// Tail cursor buffer (word 0 holds the cursor).
    pub tail: Buf,
    /// Slot data buffer the reserved range lands in.
    pub data: Buf,
    /// Slot capacity of `data`; reservations at or past it overshoot.
    pub capacity: u32,
    /// Overflow counter buffer (word 0 counts dropped pushes).
    pub overflow: Buf,
}

/// A gang-collective push descriptor: where aggregated pushes land,
/// and what happens to overshoot. `spill: None` counts overshooting
/// elements on the target's sticky overflow cell (one aggregated bump
/// covering all of them); `spill: Some(next)` re-routes them into the
/// next-level queue with a second aggregated reservation — the MLMQ
/// spill path — whose own overshoot then drops on *its* overflow cell.
#[derive(Clone, Copy, Debug)]
pub struct GangScatter {
    /// The queue aggregated pushes are reserved into.
    pub target: ScatterTarget,
    /// Overshoot routing: drop-count (`None`) or next-level spill.
    pub spill: Option<ScatterTarget>,
}

/// What one lane asked the wave-end gang-collective flush to do.
pub(crate) enum ScatterOp {
    /// Aggregated queue push of one value.
    Push { scatter: GangScatter, value: u32 },
    /// Warp-reduced counter bump: the warp sums the participating
    /// lanes' deltas and the leader performs one `atomicAdd`.
    Count { buf: Buf, idx: u32, delta: u32 },
    /// Warp-reduced minimum: the warp min-reduces the participating
    /// lanes' proposals and the leader performs one `atomicMin`.
    Min { buf: Buf, idx: u32, value: u32 },
    /// Deferred reserved store of `value` at a fixed word (flag set);
    /// identical requests from one warp collapse to a single store.
    Flag { buf: Buf, idx: u32, value: u32 },
    /// Leader-only `atomicExch` of `value` at a fixed word: the warp
    /// ballots, one lane performs the exchange.
    FlagOnce { buf: Buf, idx: u32, value: u32 },
}

/// Epilogue phase indices: the flush lays each warp's materialized
/// ops out as converged segments in this fixed order (see
/// [`Device::flush_scatter`]).
const PH_LEADER: u8 = 0;
const PH_STORE: u8 = 1;
const PH_OVERFLOW: u8 = 2;
const PH_SPILL_STORE: u8 = 3;
const PH_SPILL_OVERFLOW: u8 = 4;
const PHASES: u8 = 5;

/// One recorded gang-collective request, keyed for the canonical
/// flush order (physical warp, op kind, target word, lane).
pub(crate) struct ScatterReq {
    pub(crate) warp: u64,
    pub(crate) lane: u64,
    pub(crate) gang: u64,
    pub(crate) op: ScatterOp,
}

/// Handle a kernel body uses to touch device state. Every method
/// records the instructions a real GPU thread would execute.
pub struct Lane<'a> {
    arena: &'a mut Arena,
    children: &'a mut Vec<ChildLaunch>,
    traffic: &'a mut Vec<[u64; 3]>,
    scatter: &'a mut Vec<ScatterReq>,
    fault: Option<&'a mut FaultPlan>,
    san: Option<&'a mut SanState>,
    ir: Option<&'a mut IrState>,
    trace: LaneTrace,
    tid: u64,
    gang_rank: u32,
    gang_size: u32,
}

impl<'a> Lane<'a> {
    /// Item/thread id: for [`Device::launch`] the global thread id;
    /// for gang launches the *item index*.
    #[inline]
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// This lane's position within its gang (0 for plain launches).
    #[inline]
    pub fn gang_rank(&self) -> u32 {
        self.gang_rank
    }

    /// Lanes cooperating on this item (1 for plain launches).
    #[inline]
    pub fn gang_size(&self) -> u32 {
        self.gang_size
    }

    /// Physical lane id: the flattened SIMT lane index
    /// (`tid * gang_size + gang_rank`). This is the identity the
    /// sanitizer and the IR recorder key races on — two accesses with
    /// the same `(wave, phys_id)` are program-ordered.
    #[inline]
    pub fn phys_id(&self) -> u64 {
        self.tid * self.gang_size as u64 + self.gang_rank as u64
    }

    /// Global load of one word. Inside a synchronous kernel this
    /// observes the kernel-entry snapshot of any buffer written since
    /// launch (plain global loads have no intra-kernel coherence on
    /// real GPUs); atomics always observe live memory.
    #[inline]
    pub fn ld(&mut self, buf: Buf, idx: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Load(addr));
        self.traffic[buf.id as usize][0] += 1;
        let (lane, gang) = (self.phys_id(), self.tid);
        if let Some(san) = self.san.as_deref_mut() {
            let poisoned = self.arena.poisoned_visible(buf, idx);
            san.on_plain_load(addr, lane, gang, self.arena.label(buf), idx, poisoned);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_load(addr, lane, gang, self.arena.label(buf), idx, false);
        }
        let val = self.arena.load_visible(buf, idx);
        self.fault_load(buf, idx, val)
    }

    /// Apply the armed fault plan (if any) to a plain load's value.
    #[inline]
    fn fault_load(&mut self, buf: Buf, idx: u32, val: u32) -> u32 {
        let Some(plan) = self.fault.as_deref_mut() else { return val };
        match plan.on_load(self.arena.label(buf), buf.id, idx, val) {
            Some(observed) => {
                if plan.spec().model == FaultModel::BitFlip {
                    // The upset lands in device memory, not just this
                    // lane's register: later readers see it too. Going
                    // through `Arena::store` (not a raw `slice_mut`
                    // poke) keeps shadow state exact — the word's
                    // poison clears (it now holds a defined, if
                    // corrupted, value) and the kernel-entry snapshot
                    // is captured first, so same-kernel plain loads
                    // still observe the pre-flip value. Static and
                    // dynamic verdicts both treat the flip as
                    // environmental, not a program store.
                    self.arena.store(buf, idx, observed);
                }
                observed
            }
            None => val,
        }
    }

    /// Volatile/L2-coherent load: observes live memory even inside a
    /// synchronous kernel (CUDA's `volatile`/`ld.cg`). Frontier codes
    /// need it for the pop-side distance read, which races with the
    /// improver's `atomicMin` + pending-flag handshake — a plain load
    /// there loses updates.
    #[inline]
    pub fn ld_volatile(&mut self, buf: Buf, idx: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::LoadVolatile(addr));
        self.traffic[buf.id as usize][0] += 1;
        let (lane, gang) = (self.phys_id(), self.tid);
        if let Some(san) = self.san.as_deref_mut() {
            let poisoned = self.arena.poisoned_live(buf, idx);
            san.on_volatile_load(addr, lane, gang, self.arena.label(buf), idx, poisoned);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_load(addr, lane, gang, self.arena.label(buf), idx, true);
        }
        let val = self.arena.load(buf, idx);
        self.fault_load(buf, idx, val)
    }

    /// Global store of one word.
    #[inline]
    pub fn st(&mut self, buf: Buf, idx: u32, val: u32) {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Store(addr));
        self.traffic[buf.id as usize][1] += 1;
        let (lane, gang) = (self.phys_id(), self.tid);
        if let Some(san) = self.san.as_deref_mut() {
            san.on_store(addr, lane, gang, self.arena.label(buf), idx);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_store(addr, lane, gang, self.arena.label(buf), idx);
        }
        self.arena.store(buf, idx, val);
    }

    /// Sanitizer + IR entry shared by all four atomic flavours.
    /// `reads` is false for `atomicExch` — the only atomic whose
    /// effect does not depend on the old value, so exchanging into a
    /// never-written word is an initialization, not an uninit read.
    #[inline]
    fn san_atomic(&mut self, buf: Buf, idx: u32, addr: u64, reads: bool) {
        let (lane, gang) = (self.phys_id(), self.tid);
        if let Some(san) = self.san.as_deref_mut() {
            let poisoned = reads && self.arena.poisoned_live(buf, idx);
            san.on_atomic(addr, lane, gang, self.arena.label(buf), idx, poisoned);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_atomic(addr, lane, gang, self.arena.label(buf), idx);
        }
    }

    /// `atomicMin`: returns the previous value (Alg. 1's relaxation
    /// update).
    #[inline]
    pub fn atomic_min(&mut self, buf: Buf, idx: u32, val: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Atomic(addr));
        self.traffic[buf.id as usize][2] += 1;
        self.san_atomic(buf, idx, addr, true);
        let old = self.arena.load(buf, idx);
        if let Some(plan) = self.fault.as_deref_mut() {
            match plan.on_atomic_min(self.arena.label(buf), idx) {
                // Lost read-modify-write: the caller is told `old` (and
                // so believes its improvement landed) but nothing did.
                AtomicMinFault::Drop => return old,
                AtomicMinFault::Duplicate => {
                    // min is idempotent — apply twice, pay twice.
                    if val < old {
                        self.arena.store(buf, idx, val);
                        self.arena.store(buf, idx, val);
                    }
                    self.traffic[buf.id as usize][2] += 1;
                    return old;
                }
                AtomicMinFault::None => {}
            }
        }
        if val < old {
            self.arena.store(buf, idx, val);
        }
        old
    }

    /// `atomicAdd`: returns the previous value (queue-tail bumps).
    #[inline]
    pub fn atomic_add(&mut self, buf: Buf, idx: u32, val: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Atomic(addr));
        self.traffic[buf.id as usize][2] += 1;
        self.san_atomic(buf, idx, addr, true);
        let old = self.arena.load(buf, idx);
        self.arena.store(buf, idx, old.wrapping_add(val));
        old
    }

    /// `atomicCAS`: returns the previous value.
    #[inline]
    pub fn atomic_cas(&mut self, buf: Buf, idx: u32, expected: u32, val: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Atomic(addr));
        self.traffic[buf.id as usize][2] += 1;
        self.san_atomic(buf, idx, addr, true);
        let old = self.arena.load(buf, idx);
        if old == expected {
            self.arena.store(buf, idx, val);
        }
        old
    }

    /// `atomicExch`: returns the previous value.
    #[inline]
    pub fn atomic_exch(&mut self, buf: Buf, idx: u32, val: u32) -> u32 {
        let addr = self.arena.addr(buf, idx);
        self.trace.push(Op::Atomic(addr));
        self.traffic[buf.id as usize][2] += 1;
        self.san_atomic(buf, idx, addr, false);
        let old = self.arena.load(buf, idx);
        self.arena.store(buf, idx, val);
        old
    }

    /// Warp-aggregated multisplit push (GPU Multisplit's scatter
    /// step): the lanes of one physical warp pushing to the same
    /// target ballot their membership, exclusive-scan the mask for
    /// per-lane ranks, elect the lowest participating lane to reserve
    /// the whole slot range with **one** `atomicAdd`, shuffle the base
    /// back, and publish each payload with a coalesced plain store
    /// into its owned slot. The simulator executes lanes sequentially,
    /// so the cooperative protocol is modelled as a deferred request:
    /// the ballot/scan/broadcast ALU work is charged here, and the
    /// reservation + reserved stores are materialized at wave end by
    /// the flush — after every lane body ran, before the host can
    /// observe the wave — in a canonical order that no lane schedule
    /// perturbs. Overshoot keeps the scalar path's exact accounting:
    /// the tail still advances by the full aggregate (so drains see
    /// the same overshoot), and drops either count on the sticky
    /// overflow cell or spill per [`GangScatter::spill`].
    #[inline]
    pub fn gang_push(&mut self, scatter: &GangScatter, value: u32) {
        // Ballot + popc rank + leader broadcast.
        self.alu(3);
        let lane = self.phys_id();
        self.scatter.push(ScatterReq {
            warp: lane / WARP_SIZE as u64,
            lane,
            gang: self.tid,
            op: ScatterOp::Push { scatter: *scatter, value },
        });
    }

    /// Warp-reduced counter bump (`__reduce_add_sync` + leader
    /// `atomicAdd`): lanes of one warp incrementing the same word sum
    /// their deltas and one elected lane adds the total at wave end.
    /// The caller must not need the old value — reductions whose
    /// result is consumed stay on [`Lane::atomic_add`].
    #[inline]
    pub fn gang_add(&mut self, buf: Buf, idx: u32, delta: u32) {
        // Ballot + tree reduction + leader elect.
        self.alu(2);
        let lane = self.phys_id();
        self.scatter.push(ScatterReq {
            warp: lane / WARP_SIZE as u64,
            lane,
            gang: self.tid,
            op: ScatterOp::Count { buf, idx, delta },
        });
    }

    /// Warp-reduced minimum (shuffle min-reduction + leader
    /// `atomicMin`): lanes of one warp proposing minima for the same
    /// word reduce locally and one elected lane publishes the warp's
    /// minimum at wave end. min is associative/commutative and the
    /// result is discarded, so this is observation-equivalent to the
    /// per-lane scalar exchanges under any schedule.
    #[inline]
    pub fn gang_min(&mut self, buf: Buf, idx: u32, value: u32) {
        // Ballot + tree reduction + leader elect.
        self.alu(2);
        let lane = self.phys_id();
        self.scatter.push(ScatterReq {
            warp: lane / WARP_SIZE as u64,
            lane,
            gang: self.tid,
            op: ScatterOp::Min { buf, idx, value },
        });
    }

    /// Explicit warp reconvergence point (`__syncwarp` /
    /// `__activemask` convergence): free at replay time, but step
    /// counters re-align here, so ops at the same post-sync program
    /// point group into one warp instruction even when the lanes
    /// diverged earlier in the segment. The warp-synchronous
    /// multisplit kernels mark each aggregation loop iteration; the
    /// scalar baseline kernels never call this and replay exactly as
    /// before.
    #[inline]
    pub fn converge(&mut self) {
        self.trace.push(Op::Conv);
    }

    /// Warp-aggregated flag set: a deferred reserved store of `val` at
    /// `buf[idx]`. Lanes of one warp flagging the same word with the
    /// same value ballot and elect one storer, so k redundant
    /// `atomicExch(flag, v)` calls collapse into one plain store at
    /// wave end. Distinct values to one word all land, lowest
    /// requesting lane first — deterministic under any schedule.
    #[inline]
    pub fn gang_flag(&mut self, buf: Buf, idx: u32, val: u32) {
        // Ballot + leader elect.
        self.alu(2);
        let lane = self.phys_id();
        self.scatter.push(ScatterReq {
            warp: lane / WARP_SIZE as u64,
            lane,
            gang: self.tid,
            op: ScatterOp::Flag { buf, idx, value: val },
        });
    }

    /// Warp-aggregated once-per-warp `atomicExch`: lanes requesting
    /// the same word ballot, and only the elected leader performs the
    /// exchange at wave end (progress-flag publication).
    #[inline]
    pub fn gang_flag_once(&mut self, buf: Buf, idx: u32, val: u32) {
        // Ballot + leader elect.
        self.alu(2);
        let lane = self.phys_id();
        self.scatter.push(ScatterReq {
            warp: lane / WARP_SIZE as u64,
            lane,
            gang: self.tid,
            op: ScatterOp::FlagOnce { buf, idx, value: val },
        });
    }

    /// Record `n` arithmetic/control instructions.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        if n > 0 {
            self.trace.push(Op::Alu(n));
        }
    }

    /// Dynamic parallelism: queue a child kernel of `threads` lanes
    /// (gang size 1). Runs after the current wave, charged the
    /// device-side launch overhead.
    pub fn launch_child(
        &mut self,
        name: &'static str,
        threads: u64,
        body: impl Fn(&mut Lane<'_>) + 'static,
    ) {
        // The launch itself costs a few instructions on the parent.
        self.alu(4);
        let lane = self.phys_id();
        if let Some(san) = self.san.as_deref_mut() {
            san.on_child_launch(lane, self.tid);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_child_launch(lane, self.tid);
        }
        if let Some(plan) = self.fault.as_deref_mut() {
            if plan.on_child_launch(name, threads) {
                return;
            }
        }
        self.children.push(ChildLaunch { name, threads, gang_size: 1, body: Box::new(body) });
    }

    /// Dynamic parallelism with cooperative gangs.
    pub fn launch_child_gangs(
        &mut self,
        name: &'static str,
        items: u64,
        gang_size: u32,
        body: impl Fn(&mut Lane<'_>) + 'static,
    ) {
        self.alu(4);
        let lane = self.phys_id();
        if let Some(san) = self.san.as_deref_mut() {
            san.on_child_launch(lane, self.tid);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_child_launch(lane, self.tid);
        }
        if let Some(plan) = self.fault.as_deref_mut() {
            if plan.on_child_launch(name, items * gang_size as u64) {
                return;
            }
        }
        self.children.push(ChildLaunch {
            name,
            threads: items * gang_size as u64,
            gang_size,
            body: Box::new(body),
        });
    }
}

impl Device {
    /// Launch a kernel of `threads` lanes. `body` receives each lane;
    /// memory effects are immediate; timing/counters follow the SIMT
    /// replay model. Queued children run afterwards.
    pub fn launch(&mut self, name: &'static str, threads: u64, body: impl Fn(&mut Lane<'_>)) {
        self.execute(name, threads, 1, false, true, true, &body);
        self.drain_children(true);
    }

    /// Launch with cooperative gangs: `items * gang_size` lanes;
    /// `lane.tid()` is the item index, `lane.gang_rank()` the position.
    pub fn launch_gangs(
        &mut self,
        name: &'static str,
        items: u64,
        gang_size: u32,
        body: impl Fn(&mut Lane<'_>),
    ) {
        assert!(gang_size >= 1 && gang_size <= self.config.max_block);
        self.execute(name, items * gang_size as u64, gang_size, false, true, true, &body);
        self.drain_children(true);
    }

    /// Begin a persistent-kernel session: one launch overhead now,
    /// then any number of free-of-launch task waves.
    pub fn wave_session(&mut self, name: &'static str) -> WaveSession<'_> {
        self.charge_kernel_launch();
        WaveSession { device: self, name, waves: 0 }
    }

    /// Charge one host-side kernel-launch overhead without running
    /// anything (used by persistent-kernel structures that manage
    /// their own waves).
    pub fn charge_kernel_launch(&mut self) {
        self.counters.kernel_launches += 1;
        self.elapsed_ns += self.config.kernel_launch_us * 1e3;
    }

    /// Run a task wave with **no** launch overhead: the execution model
    /// of work dispatched inside an already-running persistent kernel.
    /// Children queued by the wave run before this returns.
    pub fn wave(
        &mut self,
        name: &'static str,
        items: u64,
        gang_size: u32,
        body: impl Fn(&mut Lane<'_>),
    ) {
        self.execute(name, items * gang_size as u64, gang_size, false, false, false, &body);
        self.drain_children(false);
    }

    pub(crate) fn drain_children(&mut self, snapshot: bool) {
        // Children may enqueue grandchildren; loop until quiescent.
        // Each child is its own kernel: it inherits the parent's
        // coherence mode but snapshots at its own start.
        while !self.pending_children.is_empty() {
            let batch = std::mem::take(&mut self.pending_children);
            for child in batch {
                self.execute(
                    child.name,
                    child.threads,
                    child.gang_size,
                    true,
                    false,
                    snapshot,
                    &*child.body,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        name: &'static str,
        lanes: u64,
        gang_size: u32,
        child: bool,
        charge_launch: bool,
        snapshot: bool,
        body: &dyn Fn(&mut Lane<'_>),
    ) {
        if charge_launch {
            self.counters.kernel_launches += 1;
            self.elapsed_ns += self.config.kernel_launch_us * 1e3;
        }
        if child {
            self.counters.child_kernel_launches += 1;
            self.elapsed_ns += self.config.child_launch_us * 1e3;
        }
        if lanes == 0 {
            return;
        }
        if let Some(plan) = self.fault.as_mut() {
            plan.on_kernel_start(&self.arena, self.current_stream);
        }
        if let Some(san) = self.san.as_deref_mut() {
            san.set_stream(self.current_stream);
            san.begin_wave(name, snapshot);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.set_stream(self.current_stream);
            ir.begin_wave(name, snapshot);
        }
        if snapshot {
            self.arena.begin_snapshot();
        }
        let dram_before = self.counters.dram_transactions;
        let inst_before = self.counters.inst_executed;
        let atomics_before = self.counters.inst_executed_global_atomics;
        let num_sms = self.config.num_sms as usize;
        let mut sm_cycles = vec![0u64; num_sms];
        let warps = lanes.div_ceil(WARP_SIZE as u64);
        // Run every lane body first (ascending by default; permuted
        // under schedule fuzzing — each lane keeps its tid/gang_rank,
        // so only the interleaving of memory effects changes), then
        // flush any gang-collective scatters, then replay the timing
        // model over the original warp grouping. Functional execution
        // touches only the arena, the replay only caches/counters, so
        // the two decouple and the split is observationally identical
        // to the old warp-interleaved loop.
        let order: Vec<u64> = match self.sched.as_mut().map(|s| s.permutation(lanes)) {
            Some(order) => order,
            None => (0..lanes).collect(),
        };
        let mut all_traces: Vec<LaneTrace> = (0..lanes).map(|_| LaneTrace::default()).collect();
        for &lane_idx in &order {
            let mut lane = Lane {
                arena: &mut self.arena,
                children: &mut self.pending_children,
                traffic: &mut self.buffer_traffic,
                scatter: &mut self.pending_scatter,
                fault: self.fault.as_mut(),
                san: self.san.as_deref_mut(),
                ir: self.ir.as_deref_mut(),
                trace: LaneTrace::default(),
                tid: lane_idx / gang_size as u64,
                gang_rank: (lane_idx % gang_size as u64) as u32,
                gang_size,
            };
            body(&mut lane);
            all_traces[lane_idx as usize] = lane.trace;
        }
        let epilogue = self.flush_scatter(lanes);
        for w in 0..warps {
            let base = (w * WARP_SIZE as u64) as usize;
            let end = ((w + 1) * WARP_SIZE as u64).min(lanes) as usize;
            let sm = (w % num_sms as u64) as usize;
            let out = replay_warp(
                &self.config,
                &mut self.caches,
                &mut self.counters,
                sm,
                &all_traces[base..end],
                true,
            );
            sm_cycles[sm] += out.cycles;
            // The gang-collective epilogue replays as a continuation
            // of the same warp (`register: false` — no second
            // warp/thread count), converged per flush phase.
            if let Some(epi) = &epilogue {
                if epi[base..end].iter().any(|t| !t.is_empty()) {
                    let out = replay_warp(
                        &self.config,
                        &mut self.caches,
                        &mut self.counters,
                        sm,
                        &epi[base..end],
                        false,
                    );
                    sm_cycles[sm] += out.cycles;
                }
            }
        }
        if snapshot {
            self.arena.end_snapshot();
        }
        if let Some(san) = self.san.as_deref_mut() {
            san.end_wave();
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.end_wave();
        }
        let dram_bytes = (self.counters.dram_transactions - dram_before) * SECTOR_BYTES;
        let max_cycles = sm_cycles.iter().copied().max().unwrap_or(0);
        let time = kernel_time(&self.config, max_cycles, dram_bytes);
        self.elapsed_ns += time.busy_ns();
        self.reports.push(KernelReport {
            name,
            threads: lanes,
            warp_instructions: self.counters.inst_executed - inst_before,
            atomics: self.counters.inst_executed_global_atomics - atomics_before,
            compute_ns: time.compute_ns,
            memory_ns: time.memory_ns,
            total_ns: time.busy_ns(),
            child,
            stream: self.current_stream,
        });
    }
    /// Materialize the wave's gang-collective requests: group them by
    /// (physical warp, op kind, target word) in a canonical order that
    /// no lane schedule perturbs (stable sort keeps each lane's own
    /// requests in program order), then emit the leader reservations,
    /// reduced atomics, reserved stores, overflow bumps and spills
    /// into a separate *epilogue* trace set, returned for replay after
    /// each warp's body traces.
    ///
    /// The epilogue replays **converged**: real warp-aggregated
    /// multisplit runs its ballot/scan/reserve/store sequence in
    /// uniform control flow, so all leader atomics of a warp issue as
    /// one warp instruction, all reserved stores as a coalesced
    /// store instruction — not one instruction per queue as the old
    /// append-at-divergent-tails emission priced it. Each warp's
    /// epilogue is laid out in fixed phases (leader atomics →
    /// reserved stores → overflow/spill reservations → spill stores →
    /// spill-overflow bumps), separated by [`Op::Conv`] reconvergence
    /// points so the replay aligns same-phase ops across lanes.
    fn flush_scatter(&mut self, lanes: u64) -> Option<Vec<LaneTrace>> {
        if self.pending_scatter.is_empty() {
            return None;
        }
        let reqs = std::mem::take(&mut self.pending_scatter);
        let mut keyed: Vec<((u64, u8, u64, u64), ScatterReq)> = reqs
            .into_iter()
            .map(|r| {
                let (kind, addr) = match &r.op {
                    ScatterOp::Push { scatter, .. } => {
                        (0u8, self.arena.addr(scatter.target.tail, 0))
                    }
                    ScatterOp::Count { buf, idx, .. } => (1, self.arena.addr(*buf, *idx)),
                    ScatterOp::Min { buf, idx, .. } => (2, self.arena.addr(*buf, *idx)),
                    ScatterOp::Flag { buf, idx, .. } => (3, self.arena.addr(*buf, *idx)),
                    ScatterOp::FlagOnce { buf, idx, .. } => (4, self.arena.addr(*buf, *idx)),
                };
                ((r.warp, kind, addr, r.lane), r)
            })
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        let mut epi: Vec<LaneTrace> = (0..lanes).map(|_| LaneTrace::default()).collect();
        let mut placed: Vec<(u8, u64, Op)> = Vec::new();
        let mut i = 0;
        while i < keyed.len() {
            // One warp's groups, processed together so its epilogue
            // phases can be laid out as converged segments.
            let warp = keyed[i].0 .0;
            placed.clear();
            while i < keyed.len() && keyed[i].0 .0 == warp {
                let group_key = (keyed[i].0 .0, keyed[i].0 .1, keyed[i].0 .2);
                let mut j = i;
                while j < keyed.len() && (keyed[j].0 .0, keyed[j].0 .1, keyed[j].0 .2) == group_key
                {
                    j += 1;
                }
                let group = &keyed[i..j];
                match &group[0].1.op {
                    ScatterOp::Push { scatter, .. } => {
                        let members: Vec<(u64, u64, u32)> = group
                            .iter()
                            .map(|(_, r)| {
                                let ScatterOp::Push { value, .. } = r.op else { unreachable!() };
                                (r.lane, r.gang, value)
                            })
                            .collect();
                        self.flush_push_group(&mut placed, *scatter, &members);
                    }
                    ScatterOp::Count { buf, idx, .. } => {
                        // Warp reduction: one leader add of the summed
                        // deltas.
                        let total: u32 = group
                            .iter()
                            .map(|(_, r)| {
                                let ScatterOp::Count { delta, .. } = r.op else { unreachable!() };
                                delta
                            })
                            .sum();
                        let (_, r0) = &group[0];
                        self.emit_atomic_add(
                            &mut placed,
                            PH_LEADER,
                            r0.lane,
                            r0.gang,
                            *buf,
                            *idx,
                            total,
                            total as u64,
                        );
                    }
                    ScatterOp::Min { buf, idx, .. } => {
                        // Warp reduction: one leader min of the local
                        // minimum.
                        let m = group
                            .iter()
                            .map(|(_, r)| {
                                let ScatterOp::Min { value, .. } = r.op else { unreachable!() };
                                value
                            })
                            .min()
                            .expect("non-empty group");
                        let (_, r0) = &group[0];
                        self.emit_atomic_min(&mut placed, r0.lane, r0.gang, *buf, *idx, m);
                    }
                    ScatterOp::Flag { buf, idx, .. } => {
                        // The warp ballots: one store per distinct
                        // value, charged to the lowest lane that
                        // requested it.
                        let mut done: Vec<u32> = Vec::new();
                        for (_, r) in group {
                            let ScatterOp::Flag { buf: _, idx: _, value } = r.op else {
                                unreachable!()
                            };
                            if !done.contains(&value) {
                                done.push(value);
                                self.emit_reserved_store(
                                    &mut placed,
                                    PH_STORE,
                                    r.lane,
                                    r.gang,
                                    *buf,
                                    *idx,
                                    value,
                                );
                            }
                        }
                    }
                    ScatterOp::FlagOnce { buf, idx, .. } => {
                        // Leader-only exchange: the lowest requesting
                        // lane performs it for the whole warp.
                        let (_, r) = &group[0];
                        let ScatterOp::FlagOnce { value, .. } = r.op else { unreachable!() };
                        self.emit_atomic_exch(&mut placed, r.lane, r.gang, *buf, *idx, value);
                    }
                }
                i = j;
            }
            // Lay the warp's epilogue out phase by phase; a Conv
            // between consecutive non-empty phases re-aligns the
            // lanes, so each phase's ops group into the few warp
            // instructions the converged sequence actually issues.
            //
            // Leader-elected atomics (reservations, reduced counters,
            // overflow bumps) are *packed* across the warp's lane
            // slots: multi-counter leader election hands each of the
            // k counters to a distinct lane (values broadcast by
            // shuffle), so k ≤ 32 of them retire as one warp
            // instruction — not k instructions serialized on
            // whichever lane happened to lead every group. Reserved
            // stores keep their owning lane: each lane publishes its
            // own payload (that is what makes them coalesce).
            let base = (warp * WARP_SIZE as u64) as usize;
            let end = (base + WARP_SIZE as usize).min(lanes as usize);
            let width = end - base;
            let mut first = true;
            for phase in 0..PHASES {
                if !placed.iter().any(|&(p, _, _)| p == phase) {
                    continue;
                }
                if !first {
                    for t in &mut epi[base..end] {
                        t.push(Op::Conv);
                    }
                }
                first = false;
                let packed = matches!(phase, PH_LEADER | PH_OVERFLOW | PH_SPILL_OVERFLOW);
                if packed {
                    let mut slot = 0usize;
                    for &(p, _, op) in &placed {
                        if p == phase {
                            epi[base + slot % width].push(op);
                            slot += 1;
                        }
                    }
                } else {
                    for &(p, lane, op) in &placed {
                        if p == phase {
                            epi[lane as usize].push(op);
                        }
                    }
                }
            }
        }
        Some(epi)
    }

    /// One (warp, queue) push group: a single leader `atomicAdd`
    /// reserves the whole range (the tail overshoots by exactly as
    /// much as the scalar per-push bumps would have, so drain-side
    /// overshoot accounting is unchanged), in-capacity members publish
    /// with reserved stores, and overshoot either counts once on the
    /// sticky overflow cell or spills into the next-level queue.
    fn flush_push_group(
        &mut self,
        placed: &mut Vec<(u8, u64, Op)>,
        scatter: GangScatter,
        members: &[(u64, u64, u32)],
    ) {
        let t = scatter.target;
        let (leader_lane, leader_gang, _) = members[0];
        let k = members.len() as u32;
        let old = self.emit_atomic_add(
            placed,
            PH_LEADER,
            leader_lane,
            leader_gang,
            t.tail,
            0,
            k,
            k as u64,
        );
        let mut overshoot: Vec<(u64, u64, u32)> = Vec::new();
        for (i, &(lane, gang, value)) in members.iter().enumerate() {
            let slot = old.wrapping_add(i as u32);
            if slot < t.capacity {
                self.emit_reserved_store(placed, PH_STORE, lane, gang, t.data, slot, value);
            } else {
                overshoot.push((lane, gang, value));
            }
        }
        if overshoot.is_empty() {
            return;
        }
        match scatter.spill {
            None => {
                let (lane, gang, _) = overshoot[0];
                let n = overshoot.len() as u32;
                self.emit_atomic_add(placed, PH_OVERFLOW, lane, gang, t.overflow, 0, n, n as u64);
            }
            Some(sp) => {
                let (lane, gang, _) = overshoot[0];
                let k2 = overshoot.len() as u32;
                let old2 = self.emit_atomic_add(
                    placed,
                    PH_OVERFLOW,
                    lane,
                    gang,
                    sp.tail,
                    0,
                    k2,
                    k2 as u64,
                );
                let mut dropped: Vec<(u64, u64)> = Vec::new();
                for (i, &(lane, gang, value)) in overshoot.iter().enumerate() {
                    let slot = old2.wrapping_add(i as u32);
                    if slot < sp.capacity {
                        self.emit_reserved_store(
                            placed,
                            PH_SPILL_STORE,
                            lane,
                            gang,
                            sp.data,
                            slot,
                            value,
                        );
                    } else {
                        dropped.push((lane, gang));
                    }
                }
                // Spill-of-spill is genuine loss: count it on the
                // spill queue's own sticky overflow cell, like the
                // scalar next-level push did.
                if let Some(&(lane, gang)) = dropped.first() {
                    let n = dropped.len() as u32;
                    self.emit_atomic_add(
                        placed,
                        PH_SPILL_OVERFLOW,
                        lane,
                        gang,
                        sp.overflow,
                        0,
                        n,
                        n as u64,
                    );
                }
            }
        }
    }

    /// Flush-time `atomicAdd` placed in epilogue phase `phase`; `n` is
    /// the number of logical pushes (or drops) the one instruction
    /// covers, kept per-element-exact in the IR's queue accounting.
    #[allow(clippy::too_many_arguments)]
    fn emit_atomic_add(
        &mut self,
        placed: &mut Vec<(u8, u64, Op)>,
        phase: u8,
        lane: u64,
        gang: u64,
        buf: Buf,
        idx: u32,
        val: u32,
        n: u64,
    ) -> u32 {
        let addr = self.arena.addr(buf, idx);
        placed.push((phase, lane, Op::Atomic(addr)));
        self.buffer_traffic[buf.id as usize][2] += 1;
        if let Some(san) = self.san.as_deref_mut() {
            let poisoned = self.arena.poisoned_live(buf, idx);
            san.on_atomic(addr, lane, gang, self.arena.label(buf), idx, poisoned);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_atomic_bulk(addr, lane, gang, self.arena.label(buf), idx, n);
        }
        let old = self.arena.load(buf, idx);
        self.arena.store(buf, idx, old.wrapping_add(val));
        old
    }

    /// Flush-time reserved store placed in epilogue phase `phase`: a
    /// plain store at the ISA level, classed separately so the
    /// sanitizer and IR sanction it like the atomic-exchange publish
    /// it replaces.
    #[allow(clippy::too_many_arguments)]
    fn emit_reserved_store(
        &mut self,
        placed: &mut Vec<(u8, u64, Op)>,
        phase: u8,
        lane: u64,
        gang: u64,
        buf: Buf,
        idx: u32,
        val: u32,
    ) {
        let addr = self.arena.addr(buf, idx);
        placed.push((phase, lane, Op::Store(addr)));
        self.buffer_traffic[buf.id as usize][1] += 1;
        if let Some(san) = self.san.as_deref_mut() {
            san.on_reserved_store(addr, lane, gang, self.arena.label(buf), idx);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_reserved_store(addr, lane, gang, self.arena.label(buf), idx);
        }
        self.arena.store(buf, idx, val);
    }

    /// Flush-time `atomicExch` in the leader phase (leader-only flag
    /// publication). Like the scalar exchange it never reads.
    fn emit_atomic_exch(
        &mut self,
        placed: &mut Vec<(u8, u64, Op)>,
        lane: u64,
        gang: u64,
        buf: Buf,
        idx: u32,
        val: u32,
    ) {
        let addr = self.arena.addr(buf, idx);
        placed.push((PH_LEADER, lane, Op::Atomic(addr)));
        self.buffer_traffic[buf.id as usize][2] += 1;
        if let Some(san) = self.san.as_deref_mut() {
            san.on_atomic(addr, lane, gang, self.arena.label(buf), idx, false);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_atomic(addr, lane, gang, self.arena.label(buf), idx);
        }
        self.arena.store(buf, idx, val);
    }

    /// Flush-time `atomicMin` in the leader phase: the warp's reduced
    /// minimum, published once. Reads the old value (an uninitialized
    /// word would corrupt the min), so it carries the poison check of
    /// the scalar `atomicMin` it replaces.
    fn emit_atomic_min(
        &mut self,
        placed: &mut Vec<(u8, u64, Op)>,
        lane: u64,
        gang: u64,
        buf: Buf,
        idx: u32,
        val: u32,
    ) {
        let addr = self.arena.addr(buf, idx);
        placed.push((PH_LEADER, lane, Op::Atomic(addr)));
        self.buffer_traffic[buf.id as usize][2] += 1;
        if let Some(san) = self.san.as_deref_mut() {
            let poisoned = self.arena.poisoned_live(buf, idx);
            san.on_atomic(addr, lane, gang, self.arena.label(buf), idx, poisoned);
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_atomic(addr, lane, gang, self.arena.label(buf), idx);
        }
        let old = self.arena.load(buf, idx);
        if val < old {
            self.arena.store(buf, idx, val);
        }
    }
}

/// A persistent-kernel session (see [`Device::wave_session`]).
pub struct WaveSession<'d> {
    device: &'d mut Device,
    name: &'static str,
    waves: u64,
}

impl<'d> WaveSession<'d> {
    /// Run one task wave: `items * gang_size` lanes, no launch
    /// overhead. Children queued by the wave run before this returns.
    pub fn wave(&mut self, items: u64, gang_size: u32, body: impl Fn(&mut Lane<'_>)) {
        self.waves += 1;
        self.device.execute(
            self.name,
            items * gang_size as u64,
            gang_size,
            false,
            false,
            false,
            &body,
        );
        self.device.drain_children(false);
    }

    /// Number of waves run so far.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Access the underlying device (e.g. to read queue cursors
    /// between waves — manager-thread behaviour).
    pub fn device(&mut self) -> &mut Device {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn tiny() -> Device {
        Device::new(DeviceConfig::test_tiny())
    }

    #[test]
    fn vector_add() {
        let mut d = tiny();
        let a = d.alloc_upload("a", &[1, 2, 3, 4]);
        let b = d.alloc_upload("b", &[10, 20, 30, 40]);
        let c = d.alloc("c", 4);
        d.launch("add", 4, |lane| {
            let i = lane.tid() as u32;
            let x = lane.ld(a, i);
            let y = lane.ld(b, i);
            lane.alu(1);
            lane.st(c, i, x + y);
        });
        assert_eq!(d.read(c), &[11, 22, 33, 44]);
        let ctr = d.counters();
        assert_eq!(ctr.kernel_launches, 1);
        assert_eq!(ctr.inst_executed_global_loads, 2);
        assert_eq!(ctr.inst_executed_global_stores, 1);
        assert!(d.elapsed_ms() > 0.0);
    }

    #[test]
    fn atomics_behave() {
        let mut d = tiny();
        let x = d.alloc_upload("x", &[100, 0]);
        d.launch("atomics", 8, |lane| {
            lane.atomic_min(x, 0, 90 + lane.tid() as u32);
            lane.atomic_add(x, 1, 1);
        });
        assert_eq!(d.read_word(x, 0), 90);
        assert_eq!(d.read_word(x, 1), 8);
        assert!(d.counters().atomic_conflicts > 0);
    }

    #[test]
    fn cas_and_exch() {
        let mut d = tiny();
        let x = d.alloc_upload("x", &[5, 7]);
        d.launch("cas", 1, |lane| {
            assert_eq!(lane.atomic_cas(x, 0, 5, 9), 5);
            assert_eq!(lane.atomic_cas(x, 0, 5, 11), 9);
            assert_eq!(lane.atomic_exch(x, 1, 42), 7);
        });
        assert_eq!(d.read(x), &[9, 42]);
    }

    #[test]
    fn gang_mapping() {
        let mut d = tiny();
        let out = d.alloc("out", 8);
        // 2 items, gang of 4: lane.tid() is the item, rank 0..4.
        d.launch_gangs("gang", 2, 4, |lane| {
            let slot = (lane.tid() * 4 + lane.gang_rank() as u64) as u32;
            assert_eq!(lane.gang_size(), 4);
            lane.st(out, slot, lane.tid() as u32 * 100 + lane.gang_rank());
        });
        assert_eq!(d.read(out), &[0, 1, 2, 3, 100, 101, 102, 103]);
    }

    #[test]
    fn child_kernels_run_and_charge() {
        let mut d = tiny();
        let out = d.alloc("out", 64);
        d.launch("parent", 1, move |lane| {
            lane.launch_child("child", 64, move |cl| {
                let i = cl.tid() as u32;
                cl.st(out, i, i + 1);
            });
        });
        assert_eq!(d.read_word(out, 63), 64);
        assert_eq!(d.counters().child_kernel_launches, 1);
        assert_eq!(d.counters().kernel_launches, 1);
        // Reports: parent + child.
        assert_eq!(d.reports().len(), 2);
        assert!(d.reports()[1].child);
    }

    #[test]
    fn grandchildren_drain() {
        let mut d = tiny();
        let out = d.alloc("out", 1);
        d.launch("p", 1, move |lane| {
            lane.launch_child("c", 1, move |cl| {
                cl.launch_child("g", 1, move |gl| {
                    gl.atomic_add(out, 0, 1);
                });
            });
        });
        assert_eq!(d.read_word(out, 0), 1);
        assert_eq!(d.counters().child_kernel_launches, 2);
    }

    #[test]
    fn wave_session_single_launch() {
        let mut d = tiny();
        let x = d.alloc("x", 1);
        let mut s = d.wave_session("async");
        for _ in 0..10 {
            s.wave(4, 1, |lane| {
                lane.atomic_add(x, 0, 1);
            });
        }
        assert_eq!(s.waves(), 10);
        assert_eq!(d.read_word(x, 0), 40);
        assert_eq!(d.counters().kernel_launches, 1, "one launch for all waves");
    }

    #[test]
    fn deterministic_counters() {
        let run = || {
            let mut d = tiny();
            let a = d.alloc("a", 256);
            d.launch("k", 256, |lane| {
                let i = lane.tid() as u32;
                let v = lane.ld(a, (i * 7) % 256);
                lane.st(a, i, v + 1);
            });
            (d.counters().clone(), d.elapsed_ms())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sanitizer_flags_planted_write_write_race() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let out = d.alloc("victim", 1);
        d.launch("racy", 8, |lane| {
            lane.st(out, 0, lane.tid() as u32);
        });
        assert_eq!(d.san_total(), 1);
        let v = &d.san_violations()[0];
        assert_eq!(v.check, crate::san::SanCheck::WriteWriteRace);
        assert_eq!(v.buffer, "victim");
        assert_eq!(v.lanes, [0, 1]);
    }

    #[test]
    fn sanitizer_clean_on_disjoint_and_atomic_kernels() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let a = d.alloc_upload("a", &[1, 2, 3, 4]);
        let out = d.alloc("out", 4);
        let acc = d.alloc_upload("acc", &[0]);
        d.launch("map", 4, |lane| {
            let i = lane.tid() as u32;
            let x = lane.ld(a, i);
            lane.st(out, i, x + 1);
            lane.atomic_add(acc, 0, x);
        });
        assert_eq!(d.san_total(), 0, "{:?}", d.san_violations());
    }

    #[test]
    fn sanitizer_flags_plain_load_in_live_wave() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let x = d.alloc_upload("dist", &[100, 100]);
        let mut s = d.wave_session("async");
        s.wave(2, 1, |lane| {
            // Plain load of a word another lane atomically improves in
            // the same (barrier-free) window: snapshot-visibility bug.
            let other = 1 - lane.tid() as u32;
            let _ = lane.ld(x, other);
            lane.atomic_min(x, lane.tid() as u32, 5);
        });
        assert!(d
            .san_violations()
            .iter()
            .any(|v| v.check == crate::san::SanCheck::SnapshotVisibility && v.buffer == "dist"));

        // The same pattern with a volatile load is sanctioned.
        let mut d2 = tiny();
        d2.arm_sanitizer(crate::san::SanConfig::default());
        let y = d2.alloc_upload("dist", &[100, 100]);
        let mut s2 = d2.wave_session("async");
        s2.wave(2, 1, |lane| {
            let other = 1 - lane.tid() as u32;
            let _ = lane.ld_volatile(y, other);
            lane.atomic_min(y, lane.tid() as u32, 5);
        });
        assert_eq!(d2.san_total(), 0, "{:?}", d2.san_violations());
    }

    #[test]
    fn sanitizer_plain_load_safe_in_snapshot_kernel() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let x = d.alloc_upload("dist", &[100, 100]);
        d.launch("sync", 2, |lane| {
            let other = 1 - lane.tid() as u32;
            let _ = lane.ld(x, other);
            lane.atomic_min(x, lane.tid() as u32, 5);
        });
        assert_eq!(d.san_total(), 0, "{:?}", d.san_violations());
    }

    #[test]
    fn sanitizer_flags_uninit_read_after_recycle() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let b = d.alloc("scratch", 4);
        d.fill(b, 7);
        d.release(b);
        let (b2, recycled) = d.alloc_pooled("scratch2", 4);
        assert!(recycled);
        d.write_word(b2, 0, 1); // words 1..4 stay stale
        let out = d.alloc("out", 4);
        d.fill(out, 0);
        d.launch("reader", 4, |lane| {
            let i = lane.tid() as u32;
            let v = lane.ld(b2, i);
            lane.st(out, i, v);
        });
        let hits: Vec<_> = d
            .san_violations()
            .iter()
            .filter(|v| v.check == crate::san::SanCheck::UninitRead)
            .collect();
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|v| v.buffer == "scratch2"));
    }

    #[test]
    fn sanitizer_barrier_closes_window() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let x = d.alloc_upload("x", &[0]);
        let mut s = d.wave_session("p");
        s.wave(1, 1, |lane| lane.st(x, 0, 1));
        s.device().charge_barrier();
        s.wave(1, 1, |lane| {
            let _ = lane.ld(x, 0);
            lane.st(x, 0, 2);
        });
        assert_eq!(d.san_total(), 0, "{:?}", d.san_violations());
    }

    #[test]
    fn sanitizer_flags_gang_divergent_child_launches() {
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let out = d.alloc("out", 1);
        d.fill(out, 0);
        d.launch_gangs("diverge", 1, 4, |lane| {
            // Each rank launches a different number of children.
            for _ in 0..lane.gang_rank() {
                lane.launch_child("c", 1, move |cl| {
                    cl.atomic_add(out, 0, 1);
                });
            }
        });
        assert!(d
            .san_violations()
            .iter()
            .any(|v| v.check == crate::san::SanCheck::GangChildDivergence));
    }

    #[test]
    fn sanitizer_disarmed_device_is_bit_identical() {
        let run = |armed: bool| {
            let mut d = tiny();
            if armed {
                d.arm_sanitizer(crate::san::SanConfig::default());
            }
            let a = d.alloc_upload("a", &[5; 64]);
            let out = d.alloc("out", 64);
            d.launch("k", 64, |lane| {
                let i = lane.tid() as u32;
                let v = lane.ld(a, i);
                lane.st(out, i, v * 2);
            });
            (d.counters().clone(), d.elapsed_ms(), d.read(out).to_vec())
        };
        assert_eq!(run(false), run(true), "arming must not perturb timing or results");
    }

    #[test]
    fn schedule_fuzz_is_invisible_to_order_insensitive_kernels() {
        // Atomics commute, and each lane's plain store hits its own
        // word: any lane interleaving yields the same memory state and
        // the same replayed timing (warp grouping is preserved).
        let run = |seed: Option<u64>| {
            let mut d = tiny();
            if let Some(seed) = seed {
                d.arm_schedule_fuzz(seed);
            }
            let x = d.alloc_upload("x", &[u32::MAX, 0]);
            let out = d.alloc("out", 64);
            d.launch("k", 64, |lane| {
                let i = lane.tid() as u32;
                lane.atomic_min(x, 0, 1000 - i);
                lane.atomic_add(x, 1, 1);
                lane.st(out, i, i * 2);
            });
            (d.counters().clone(), d.elapsed_ms(), d.read(x).to_vec(), d.read(out).to_vec())
        };
        let base = run(None);
        assert_eq!(base, run(Some(7)));
        assert_eq!(base, run(Some(8)));
    }

    #[test]
    fn schedule_fuzz_exposes_order_dependent_results() {
        // Last-writer-wins on one shared word: the fixed ascending
        // order always ends on lane 63, but that answer is a schedule
        // artifact — permuted orders surface different winners, and
        // the sanitizer flags the underlying write-write race.
        let winner = |seed: Option<u64>| {
            let mut d = tiny();
            d.arm_sanitizer(crate::san::SanConfig::default());
            if let Some(seed) = seed {
                d.arm_schedule_fuzz(seed);
            }
            let x = d.alloc_upload("x", &[0]);
            d.launch("racy", 64, |lane| {
                lane.st(x, 0, lane.tid() as u32 + 1);
            });
            let caught =
                d.san_violations().iter().any(|v| v.check == crate::san::SanCheck::WriteWriteRace);
            (d.read_word(x, 0), caught)
        };
        let (base, base_caught) = winner(None);
        assert_eq!(base, 64, "ascending order: lane 63 writes last");
        assert!(base_caught);
        let mut diverged = false;
        for seed in 1..=8 {
            let (w, caught) = winner(Some(seed));
            assert!(caught, "sanitizer must keep catching the race under permutation");
            assert_eq!(winner(Some(seed)).0, w, "same seed, same interleaving");
            diverged |= w != base;
        }
        assert!(diverged, "some permutation must pick a different last writer");
    }

    #[test]
    fn upload_staged_carries_host_poison_to_device() {
        use crate::buffer::HostStaging;
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let mut st = HostStaging::new("staged", 4);
        st.write(0, 10);
        st.write(1, 11);
        st.write(3, 13); // word 2 never written host-side
        let b = d.upload_staged(&st);
        let out = d.alloc("out", 4);
        d.launch("copy", 4, |lane| {
            let i = lane.tid() as u32;
            let v = lane.ld(b, i);
            lane.st(out, i, v);
        });
        let v = d.san_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].check, crate::san::SanCheck::UninitRead);
        assert_eq!(v[0].buffer, "staged");
        assert_eq!(v[0].index, 2);
        // A fully written staging buffer uploads clean.
        let full = d.upload_staged(&HostStaging::from_slice("full", &[1, 2]));
        d.launch("read", 2, |lane| {
            let i = lane.tid() as u32;
            lane.ld(full, i);
        });
        assert_eq!(d.san_total(), 1);
    }

    #[test]
    fn bitflip_write_through_keeps_shadow_exact() {
        // A BitFlip upset persists in device memory; the write-through
        // must go through the arena's store path so the poison shadow
        // stays exact. Regression: it used to poke `slice_mut`
        // directly, leaving the word poisoned after the flip wrote a
        // (defined, if corrupted) value into it — so the dynamic
        // sanitizer kept reporting uninit reads of a word the static
        // IR saw as written-through, and the two verdicts disagreed.
        use crate::fault::{FaultPlan, FaultSpec, FaultTarget};
        let mut d = tiny();
        d.arm_sanitizer(crate::san::SanConfig::default());
        let b = d.alloc("scratch", 2);
        d.fill(b, 7);
        d.release(b);
        let (victim, recycled) = d.alloc_pooled("flip-victim", 2);
        assert!(recycled, "pooled buffer must recycle to carry poison");
        let spec = FaultSpec::new(FaultModel::BitFlip, 1.0, 1)
            .with_target(FaultTarget {
                site: Some("flip-victim"),
                index: Some((0, 0)),
                wave: None,
                stream: None,
            })
            .with_cap(1);
        d.arm_faults(FaultPlan::new(spec));
        let out = d.alloc("out", 2);
        d.fill(out, 0);
        d.launch("reader", 1, |lane| {
            let v = lane.ld(victim, 0);
            lane.st(out, 0, v);
        });
        assert_eq!(d.fault_injections(), 1);
        // The flip landed on the stale value 7 and persisted.
        assert_eq!((d.read_word(victim, 0) ^ 7).count_ones(), 1);
        // The word now holds a defined value: a later kernel's read
        // must NOT be another uninit read. (Dedup keys on the kernel
        // name, so the old slice_mut path reported a second one here.)
        d.launch("reader-after-flip", 1, |lane| {
            let v = lane.ld(victim, 0);
            lane.st(out, 1, v);
        });
        let uninit = d
            .san_violations()
            .iter()
            .filter(|v| v.check == crate::san::SanCheck::UninitRead)
            .count();
        assert_eq!(uninit, 1, "only the pre-flip read is uninit: {:?}", d.san_violations());
        assert_eq!(d.read_word(out, 1), d.read_word(victim, 0));
    }

    #[test]
    fn ir_armed_device_is_bit_identical() {
        let run = |armed: bool| {
            let mut d = tiny();
            if armed {
                d.arm_ir();
            }
            let a = d.alloc_upload("a", &[5; 64]);
            let out = d.alloc("out", 64);
            d.launch("k", 64, |lane| {
                let i = lane.tid() as u32;
                let v = lane.ld(a, i);
                lane.st(out, i, v * 2);
            });
            (d.counters().clone(), d.elapsed_ms(), d.read(out).to_vec())
        };
        assert_eq!(run(false), run(true), "arming the IR must not perturb timing or results");
    }

    #[test]
    fn ir_records_hazards_and_queue_traffic() {
        let mut d = tiny();
        let tail = d.alloc("queue_tail", 1);
        let overflow = d.alloc("queue_overflow", 2);
        d.declare_queue("jobs", tail, overflow, 4, false);
        d.arm_ir(); // declared before arming: must be carried over
        let x = d.alloc("victim", 1);
        d.launch("racy", 8, |lane| {
            lane.st(x, 0, lane.tid() as u32);
            lane.atomic_add(tail, 0, 1);
        });
        let ir = d.take_ir().expect("armed");
        assert!(ir
            .hazards
            .iter()
            .any(|h| h.kind == crate::ir::HazardKind::WriteWrite && h.buffer == "victim"));
        assert_eq!(ir.queues.len(), 1);
        assert_eq!(ir.queues[0].pushes, 8);
        assert_eq!(ir.queues[0].high_water, 8);
        assert!(!d.ir_armed(), "take_ir disarms");
    }

    #[test]
    fn zero_thread_launch_is_safe() {
        let mut d = tiny();
        d.launch("empty", 0, |_| panic!("body must not run"));
        assert_eq!(d.counters().kernel_launches, 1);
        assert_eq!(d.reports().len(), 0);
    }

    #[test]
    fn warps_spread_over_sms() {
        let mut d = tiny();
        let a = d.alloc("a", 64);
        d.launch("k", 64, |lane| {
            let i = lane.tid() as u32;
            lane.st(a, i, i);
        });
        // 2 warps on 2 SMs; per-SM accumulation means time is that of
        // one warp, not two. Just sanity-check counters here.
        assert_eq!(d.counters().warps, 2);
        assert_eq!(d.counters().threads, 64);
    }
}
