//! Simulated command streams.
//!
//! A real GPU overlaps independent work by issuing it on separate
//! command streams; the hardware interleaves execution and the wall
//! clock advances by the *makespan* of the streams, not the sum. The
//! simulator is single-threaded and deterministic, so [`StreamSet`]
//! models that overlap with time accounting instead of threads: every
//! piece of work runs under [`StreamSet::run`], which measures how much
//! simulated time the closure added and charges it to that stream's
//! private busy clock. After each run the device clock is rewound to
//! `base + max(busy)` — the concurrent makespan — which is sound
//! because every cost in the simulator is a pure increment to
//! `elapsed_ns` (nothing reads the clock to make a decision).
//!
//! Work scheduled on different streams must touch disjoint device
//! buffers (each query lane leases its own dist/queue/scratch set);
//! shared read-only buffers such as the uploaded graph arrays are fine.
//! Determinism is preserved: the interleaving is whatever order the
//! host issues `run` calls in, which the scheduler keeps deterministic.

use crate::device::Device;

/// A set of `N` independent command streams over one [`Device`].
///
/// Construction snapshots the device clock as the common start line;
/// destruction is implicit — the device clock is left at the makespan
/// after every [`StreamSet::run`], so dropping the set "joins" all
/// streams.
pub struct StreamSet {
    /// Device clock at construction: all streams start here.
    base_ns: f64,
    /// Per-stream accumulated busy time since `base_ns`.
    busy_ns: Vec<f64>,
}

impl StreamSet {
    /// Create `streams` empty streams starting at the device's current
    /// simulated time.
    pub fn new(device: &Device, streams: usize) -> Self {
        assert!(streams >= 1, "a StreamSet needs at least one stream");
        Self { base_ns: device.elapsed_ns, busy_ns: vec![0.0; streams] }
    }

    /// Number of streams in the set.
    pub fn len(&self) -> usize {
        self.busy_ns.len()
    }

    /// Whether the set has no streams (never true — see `new`).
    pub fn is_empty(&self) -> bool {
        self.busy_ns.is_empty()
    }

    /// The stream with the least accumulated busy time (lowest index on
    /// ties) — the work-stealing target for the next dispatch.
    pub fn least_loaded(&self) -> u32 {
        let mut best = 0usize;
        for (i, &b) in self.busy_ns.iter().enumerate() {
            if b < self.busy_ns[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Busy time accumulated on `stream` since construction, ns.
    pub fn busy_ns(&self, stream: u32) -> f64 {
        self.busy_ns[stream as usize]
    }

    /// Makespan of the set so far: the busiest stream's clock, ns.
    pub fn makespan_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Run `f` on `stream`: the simulated time it adds is charged to
    /// that stream's busy clock, kernel reports and sanitizer
    /// violations it produces are stamped with the stream id, and the
    /// device clock is left at the concurrent makespan of all streams.
    pub fn run<T>(
        &mut self,
        device: &mut Device,
        stream: u32,
        f: impl FnOnce(&mut Device) -> T,
    ) -> T {
        let sid = stream as usize;
        assert!(sid < self.busy_ns.len(), "stream {stream} out of range");
        let prev = device.stream();
        device.set_stream(stream);
        // Rewind to this stream's own frontier so the closure's costs
        // accumulate from where the stream last left off.
        device.elapsed_ns = self.base_ns + self.busy_ns[sid];
        let start = device.elapsed_ns;
        let out = f(device);
        let delta = (device.elapsed_ns - start).max(0.0);
        self.busy_ns[sid] += delta;
        device.elapsed_ns = self.base_ns + self.makespan_ns();
        device.set_stream(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn makespan_is_max_not_sum() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 2);
        set.run(&mut d, 0, |d| {
            d.charge_barrier();
            d.charge_barrier();
        });
        set.run(&mut d, 1, Device::charge_barrier);
        let barrier_ns = d.config().barrier_us * 1e3;
        assert!((set.busy_ns(0) - 2.0 * barrier_ns).abs() < 1e-9);
        assert!((set.busy_ns(1) - barrier_ns).abs() < 1e-9);
        // Clock sits at the makespan (2 barriers), not the sum (3).
        assert!((d.elapsed_ns - 2.0 * barrier_ns).abs() < 1e-9);
    }

    #[test]
    fn least_loaded_balances_and_breaks_ties_low() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 3);
        assert_eq!(set.least_loaded(), 0);
        set.run(&mut d, 0, Device::charge_barrier);
        assert_eq!(set.least_loaded(), 1);
        set.run(&mut d, 1, |d| {
            d.charge_barrier();
            d.charge_barrier();
        });
        set.run(&mut d, 2, Device::charge_barrier);
        assert_eq!(set.least_loaded(), 0);
    }

    #[test]
    fn run_stamps_and_restores_the_stream_id() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 2);
        assert_eq!(d.stream(), 0);
        set.run(&mut d, 1, |d| assert_eq!(d.stream(), 1));
        assert_eq!(d.stream(), 0);
    }

    #[test]
    fn streams_compose_with_prior_elapsed_time() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        d.charge_barrier();
        let before = d.elapsed_ns;
        let mut set = StreamSet::new(&d, 2);
        set.run(&mut d, 0, Device::charge_barrier);
        set.run(&mut d, 1, Device::charge_barrier);
        let barrier_ns = d.config().barrier_us * 1e3;
        assert!((d.elapsed_ns - (before + barrier_ns)).abs() < 1e-9);
    }
}
