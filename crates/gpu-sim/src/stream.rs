//! Simulated command streams.
//!
//! A real GPU overlaps independent work by issuing it on separate
//! command streams; the hardware interleaves execution and the wall
//! clock advances by the *makespan* of the streams, not the sum. The
//! simulator is single-threaded and deterministic, so [`StreamSet`]
//! models that overlap with time accounting instead of threads: every
//! piece of work runs under [`StreamSet::run`], which measures how much
//! simulated time the closure added and charges it to that stream's
//! private busy clock. After each run the device clock is rewound to
//! `base + max(busy)` — the concurrent makespan — which is sound
//! because every cost in the simulator is a pure increment to
//! `elapsed_ns` (nothing reads the clock to make a decision).
//!
//! Work scheduled on different streams must touch disjoint device
//! buffers (each query lane leases its own dist/queue/scratch set);
//! shared read-only buffers such as the uploaded graph arrays are fine.
//! Determinism is preserved: the interleaving is whatever order the
//! host issues `run` calls in, which the scheduler keeps deterministic.

use crate::device::Device;

/// A set of `N` independent command streams over one [`Device`].
///
/// Construction snapshots the device clock as the common start line;
/// destruction is implicit — the device clock is left at the makespan
/// after every [`StreamSet::run`], so dropping the set "joins" all
/// streams.
pub struct StreamSet {
    /// Device clock at construction: all streams start here.
    base_ns: f64,
    /// Per-stream accumulated busy time since `base_ns`.
    busy_ns: Vec<f64>,
}

impl StreamSet {
    /// Create `streams` empty streams starting at the device's current
    /// simulated time.
    pub fn new(device: &Device, streams: usize) -> Self {
        assert!(streams >= 1, "a StreamSet needs at least one stream");
        Self { base_ns: device.elapsed_ns, busy_ns: vec![0.0; streams] }
    }

    /// Number of streams in the set.
    pub fn len(&self) -> usize {
        self.busy_ns.len()
    }

    /// Whether the set has no streams (never true — see `new`).
    pub fn is_empty(&self) -> bool {
        self.busy_ns.is_empty()
    }

    /// The stream with the least accumulated busy time (lowest index on
    /// ties) — the work-stealing target for the next dispatch.
    pub fn least_loaded(&self) -> u32 {
        let mut best = 0usize;
        for (i, &b) in self.busy_ns.iter().enumerate() {
            if b < self.busy_ns[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Busy time accumulated on `stream` since construction, ns.
    pub fn busy_ns(&self, stream: u32) -> f64 {
        self.busy_ns[stream as usize]
    }

    /// The device clock at construction — the common origin all
    /// per-stream busy clocks are measured from.
    pub fn base_ns(&self) -> f64 {
        self.base_ns
    }

    /// `stream`'s frontier on the shared wall timeline:
    /// `base + busy(stream)`, ns. Unlike [`busy_ns`](Self::busy_ns),
    /// wall frontiers of *different* streams are directly comparable,
    /// so overlap and occupancy accounting must use this coordinate
    /// system.
    pub fn wall_ns(&self, stream: u32) -> f64 {
        self.base_ns + self.busy_ns[stream as usize]
    }

    /// Push `stream`'s frontier forward to the wall time `wall_ns`
    /// without charging any work — the stream *waits idle* until then.
    /// Used by open-loop schedulers so a dispatch can never start
    /// before the query it serves has arrived. A target in the past is
    /// a no-op (frontiers never move backwards). The device clock is
    /// left at the set's makespan, which now includes the idle wait.
    pub fn advance_to(&mut self, device: &mut Device, stream: u32, wall_ns: f64) {
        let sid = stream as usize;
        assert!(sid < self.busy_ns.len(), "stream {stream} out of range");
        let target = wall_ns - self.base_ns;
        if target > self.busy_ns[sid] {
            self.busy_ns[sid] = target;
        }
        device.elapsed_ns = self.base_ns + self.makespan_ns();
    }

    /// Makespan of the set so far: the busiest stream's clock, ns.
    pub fn makespan_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Run `f` on `stream`: the simulated time it adds is charged to
    /// that stream's busy clock, kernel reports and sanitizer
    /// violations it produces are stamped with the stream id, and the
    /// device clock is left at the concurrent makespan of all streams.
    pub fn run<T>(
        &mut self,
        device: &mut Device,
        stream: u32,
        f: impl FnOnce(&mut Device) -> T,
    ) -> T {
        let sid = stream as usize;
        assert!(sid < self.busy_ns.len(), "stream {stream} out of range");
        let prev = device.stream();
        device.set_stream(stream);
        // Rewind to this stream's own frontier so the closure's costs
        // accumulate from where the stream last left off.
        device.elapsed_ns = self.base_ns + self.busy_ns[sid];
        let start = device.elapsed_ns;
        let out = f(device);
        let delta = (device.elapsed_ns - start).max(0.0);
        self.busy_ns[sid] += delta;
        device.elapsed_ns = self.base_ns + self.makespan_ns();
        device.set_stream(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn makespan_is_max_not_sum() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 2);
        set.run(&mut d, 0, |d| {
            d.charge_barrier();
            d.charge_barrier();
        });
        set.run(&mut d, 1, Device::charge_barrier);
        let barrier_ns = d.config().barrier_us * 1e3;
        assert!((set.busy_ns(0) - 2.0 * barrier_ns).abs() < 1e-9);
        assert!((set.busy_ns(1) - barrier_ns).abs() < 1e-9);
        // Clock sits at the makespan (2 barriers), not the sum (3).
        assert!((d.elapsed_ns - 2.0 * barrier_ns).abs() < 1e-9);
    }

    #[test]
    fn least_loaded_balances_and_breaks_ties_low() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 3);
        assert_eq!(set.least_loaded(), 0);
        set.run(&mut d, 0, Device::charge_barrier);
        assert_eq!(set.least_loaded(), 1);
        set.run(&mut d, 1, |d| {
            d.charge_barrier();
            d.charge_barrier();
        });
        set.run(&mut d, 2, Device::charge_barrier);
        assert_eq!(set.least_loaded(), 0);
    }

    #[test]
    fn run_stamps_and_restores_the_stream_id() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 2);
        assert_eq!(d.stream(), 0);
        set.run(&mut d, 1, |d| assert_eq!(d.stream(), 1));
        assert_eq!(d.stream(), 0);
    }

    #[test]
    fn wall_frontiers_share_one_origin() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        d.charge_barrier();
        let base = d.elapsed_ns;
        let mut set = StreamSet::new(&d, 2);
        assert!((set.base_ns() - base).abs() < 1e-9);
        set.run(&mut d, 1, Device::charge_barrier);
        let barrier_ns = d.config().barrier_us * 1e3;
        // Stream 0 never ran: its wall frontier is the common base, not
        // zero — comparable with stream 1's frontier.
        assert!((set.wall_ns(0) - base).abs() < 1e-9);
        assert!((set.wall_ns(1) - (base + barrier_ns)).abs() < 1e-9);
    }

    #[test]
    fn advance_to_waits_idle_without_work() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut set = StreamSet::new(&d, 2);
        let barrier_ns = d.config().barrier_us * 1e3;
        // Wait until an "arrival" at 5 barriers of wall time.
        set.advance_to(&mut d, 0, 5.0 * barrier_ns);
        assert!((set.wall_ns(0) - 5.0 * barrier_ns).abs() < 1e-9);
        // The makespan (and device clock) includes the idle wait.
        assert!((d.elapsed_ns - 5.0 * barrier_ns).abs() < 1e-9);
        // Moving backwards is a no-op.
        set.advance_to(&mut d, 0, barrier_ns);
        assert!((set.wall_ns(0) - 5.0 * barrier_ns).abs() < 1e-9);
        // Work dispatched after the wait starts at the arrival, not at
        // the stale pre-arrival frontier.
        set.run(&mut d, 0, Device::charge_barrier);
        assert!((set.wall_ns(0) - 6.0 * barrier_ns).abs() < 1e-9);
        // The other stream is unaffected.
        assert!((set.wall_ns(1) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn streams_compose_with_prior_elapsed_time() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        d.charge_barrier();
        let before = d.elapsed_ns;
        let mut set = StreamSet::new(&d, 2);
        set.run(&mut d, 0, Device::charge_barrier);
        set.run(&mut d, 1, Device::charge_barrier);
        let barrier_ns = d.config().barrier_us * 1e3;
        assert!((d.elapsed_ns - (before + barrier_ns)).abs() < 1e-9);
    }
}
