//! Deterministic device-level fault injection.
//!
//! A [`FaultPlan`] is armed on a [`crate::Device`] and hooks the memory
//! and launch paths the SSSP kernels exercise:
//!
//! * **BitFlip** — a plain global load flips one random bit of the word
//!   *in device memory* (persistent corruption, like an uncorrected
//!   DRAM upset), so later readers observe it too;
//! * **DroppedAtomicMin** — an `atomicMin` reports success (returns the
//!   old value) but never writes, modelling a lost read-modify-write;
//! * **DuplicatedAtomicMin** — an `atomicMin` is applied twice
//!   (idempotent for min — deliberately a benign fault class);
//! * **FailedChildLaunch** — a dynamic-parallelism child kernel is
//!   silently discarded, as when the device launch pool is exhausted;
//! * **StaleRead** — a plain load is served from a snapshot of device
//!   memory several kernels old, widening the asynchronous visibility
//!   window far beyond what [`crate::buffer::Arena`] snapshots model;
//! * **LostMessage** / **DuplicatedMessage** / **ReorderedMessage** —
//!   update-queue messages in a multi-device boundary exchange are
//!   dropped, repeated or shuffled (hooked by the host-side exchange
//!   via [`crate::Device::fault_filter_messages`]).
//!
//! Everything is driven by one splitmix64 stream seeded from
//! [`FaultSpec::seed`]: the same spec replays the same faults
//! byte-for-byte on the same kernel sequence. Every injection is
//! recorded in the plan's [`FaultEvent`] log (capped) so a recovery
//! layer can report exactly what happened. With no plan armed the
//! device takes a single `Option` check per hook and is bit-identical
//! to a fault-free build.

use crate::buffer::Arena;

/// Fault classes the plan can inject. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// A loaded word comes back with one bit flipped (and the upset
    /// persists in device memory).
    BitFlip,
    /// An `atomicMin` is silently lost.
    DroppedAtomicMin,
    /// An `atomicMin` is applied (and charged) twice.
    DuplicatedAtomicMin,
    /// A dynamic-parallelism child launch silently fails.
    FailedChildLaunch,
    /// A load observes a stale snapshot of the word.
    StaleRead,
    /// A boundary-exchange message is dropped.
    LostMessage,
    /// A boundary-exchange message is delivered twice.
    DuplicatedMessage,
    /// Boundary-exchange messages are reordered.
    ReorderedMessage,
}

impl FaultModel {
    /// Every fault model, for matrix-style sweeps.
    pub const ALL: [FaultModel; 8] = [
        FaultModel::BitFlip,
        FaultModel::DroppedAtomicMin,
        FaultModel::DuplicatedAtomicMin,
        FaultModel::FailedChildLaunch,
        FaultModel::StaleRead,
        FaultModel::LostMessage,
        FaultModel::DuplicatedMessage,
        FaultModel::ReorderedMessage,
    ];

    /// Stable CLI-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::BitFlip => "bit-flip",
            FaultModel::DroppedAtomicMin => "dropped-atomic",
            FaultModel::DuplicatedAtomicMin => "duplicated-atomic",
            FaultModel::FailedChildLaunch => "failed-child-launch",
            FaultModel::StaleRead => "stale-read",
            FaultModel::LostMessage => "lost-message",
            FaultModel::DuplicatedMessage => "duplicated-message",
            FaultModel::ReorderedMessage => "reordered-message",
        }
    }

    /// Inverse of [`FaultModel::name`].
    pub fn from_name(name: &str) -> Option<FaultModel> {
        FaultModel::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Whether this model only fires in the multi-device boundary
    /// exchange (and is a no-op on single-device kernels).
    pub fn is_message_model(&self) -> bool {
        matches!(
            self,
            FaultModel::LostMessage | FaultModel::DuplicatedMessage | FaultModel::ReorderedMessage
        )
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What to inject: a model, a per-opportunity probability, and the
/// seed that makes the run replayable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Which fault class to inject.
    pub model: FaultModel,
    /// Probability in `[0, 1]` that each opportunity (load, atomic,
    /// child launch, message…) fires.
    pub rate: f64,
    /// PRNG seed making the injection sequence replayable.
    pub seed: u64,
    /// Optional placement constraint: the plan only considers
    /// opportunities inside the target window (and spends no PRNG
    /// draws outside it, concentrating the injection budget there).
    /// `None` is the classic uniform spray.
    pub target: Option<FaultTarget>,
    /// Optional hard cap on total injections: once the plan has
    /// injected this many faults it goes quiet for the rest of the
    /// run. This is how the adversarial search enforces an *equal
    /// injection budget* across competing plans. `None` is unlimited
    /// (historical behaviour).
    pub cap: Option<u64>,
}

impl FaultSpec {
    /// An unconstrained spec: uniform spray at `rate`, no cap.
    pub fn new(model: FaultModel, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1], got {rate}");
        Self { model, rate, seed, target: None, cap: None }
    }

    /// Pin this spec to a placement target (builder-style).
    #[must_use]
    pub fn with_target(mut self, target: FaultTarget) -> Self {
        self.target = Some(target);
        self
    }

    /// Cap this spec's total injections (builder-style).
    #[must_use]
    pub fn with_cap(mut self, cap: u64) -> Self {
        self.cap = Some(cap);
        self
    }
}

/// A placement constraint for targeted fault injection: every field is
/// an optional pin, and an opportunity is eligible only when all set
/// pins match. Ranges are inclusive. Built by the adversarial search
/// from sanitizer access profiles; `FaultSpec::target == None` keeps
/// the historical uniform behaviour bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTarget {
    /// Buffer label / kernel name / `"exchange"` the fault must hit.
    pub site: Option<&'static str>,
    /// Inclusive word-index (or message-slot) window. Ignored at
    /// opportunities that carry no index (e.g. child launches).
    pub index: Option<(u32, u32)>,
    /// Inclusive wave-number window (waves count from 1, across the
    /// whole run in launch order).
    pub wave: Option<(u64, u64)>,
    /// Command stream the fault must land on.
    pub stream: Option<u32>,
}

impl FaultTarget {
    /// The unconstrained target (matches everything, like `None`).
    pub const ANY: FaultTarget = FaultTarget { site: None, index: None, wave: None, stream: None };

    /// Whether an opportunity at `site`/`index` during `wave` on
    /// `stream` is inside this target window. `index == None` means
    /// the opportunity carries no word index, and the index pin is
    /// ignored for it.
    pub fn matches(&self, site: &str, index: Option<u32>, wave: u64, stream: u32) -> bool {
        if let Some(want) = self.site {
            if want != site {
                return false;
            }
        }
        if let (Some((lo, hi)), Some(i)) = (self.index, index) {
            if i < lo || i > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.wave {
            if wave < lo || wave > hi {
                return false;
            }
        }
        if let Some(want) = self.stream {
            if want != stream {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let site = self.site.unwrap_or("*");
        write!(f, "site={site}")?;
        match self.index {
            Some((lo, hi)) => write!(f, " idx={lo}..={hi}")?,
            None => write!(f, " idx=*")?,
        }
        match self.wave {
            Some((lo, hi)) => write!(f, " wave={lo}..={hi}")?,
            None => write!(f, " wave=*")?,
        }
        match self.stream {
            Some(s) => write!(f, " stream={s}"),
            None => write!(f, " stream=*"),
        }
    }
}

/// One injected fault, as recorded in the plan's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault class that fired.
    pub model: FaultModel,
    /// Buffer label, kernel name, or `"exchange"` for message models.
    pub site: &'static str,
    /// Word index, message slot, or 0 when not meaningful.
    pub index: u32,
    /// Model-specific detail: flipped bit, stale age in kernels,
    /// duplicated value… 0 when not meaningful.
    pub detail: u32,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}[{}] (detail {})", self.model, self.site, self.index, self.detail)
    }
}

/// Keep the log bounded even at high rates on big runs.
const LOG_CAP: usize = 10_000;

/// Refresh the stale-read snapshot every this many kernels, so faulted
/// loads observe values up to `STALE_WINDOW` kernels old.
const STALE_WINDOW: u64 = 4;

/// A seeded, deterministic, replayable per-run fault plan.
///
/// Arm one on a device with [`crate::Device::arm_faults`]; read the
/// injection log back with [`crate::Device::fault_log`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// splitmix64 state; the whole plan's behaviour is a pure function
    /// of the seed and the sequence of hook calls.
    state: u64,
    /// `rate` mapped onto the top 53 bits of the PRNG output, so the
    /// fire/no-fire decision is integer-exact and platform-independent.
    threshold: u64,
    log: Vec<FaultEvent>,
    /// Injections not recorded because the log hit [`LOG_CAP`].
    dropped_log: u64,
    /// Stale per-buffer memory image (StaleRead only).
    stale: Vec<Vec<u32>>,
    /// Waves (kernel launches) observed so far; hooks during a kernel
    /// see the wave number of that kernel (first kernel = wave 1).
    waves_seen: u64,
    waves_at_refresh: u64,
    /// Stream the current kernel runs on (set at each kernel start).
    stream: u32,
}

impl FaultPlan {
    /// Build the runtime plan for a spec.
    pub fn new(spec: FaultSpec) -> Self {
        assert!((0.0..=1.0).contains(&spec.rate), "fault rate must be in [0,1]");
        let threshold = (spec.rate * (1u64 << 53) as f64) as u64;
        Self {
            spec,
            state: spec.seed,
            threshold,
            log: Vec::new(),
            dropped_log: 0,
            stale: Vec::new(),
            waves_seen: 0,
            waves_at_refresh: 0,
            stream: 0,
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Injections recorded so far, in order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Total injections, including any beyond the log cap.
    pub fn injections(&self) -> u64 {
        self.log.len() as u64 + self.dropped_log
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.) — tiny, dependency-free, and
        // plenty for fault scheduling.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw at the plan's rate.
    fn fires(&mut self) -> bool {
        (self.next_u64() >> 11) < self.threshold
    }

    fn record(&mut self, site: &'static str, index: u32, detail: u32) {
        if self.log.len() < LOG_CAP {
            self.log.push(FaultEvent { model: self.spec.model, site, index, detail });
        } else {
            self.dropped_log += 1;
        }
    }

    /// Kernel-start hook: counts waves, tracks the stream, and
    /// maintains the stale-read snapshot cadence.
    pub(crate) fn on_kernel_start(&mut self, arena: &Arena, stream: u32) {
        self.stream = stream;
        if self.spec.model == FaultModel::StaleRead && self.waves_seen.is_multiple_of(STALE_WINDOW)
        {
            self.stale = arena.clone_words();
            self.waves_at_refresh = self.waves_seen;
        }
        self.waves_seen += 1;
    }

    /// Whether the plan has spent its injection cap and must go quiet.
    /// Checked before any targeting or PRNG draw, so a capped-out plan
    /// consumes no further stream state.
    fn capped_out(&self) -> bool {
        self.spec.cap.is_some_and(|c| self.injections() >= c)
    }

    /// Whether an opportunity at `site`/`index` is inside the spec's
    /// target window (always true for untargeted specs). A capped-out
    /// plan matches nothing.
    fn targeted(&self, site: &'static str, index: Option<u32>) -> bool {
        if self.capped_out() {
            return false;
        }
        match self.spec.target {
            None => true,
            Some(t) => t.matches(site, index, self.waves_seen, self.stream),
        }
    }

    /// Plain-load hook. Returns `Some(observed)` when a fault fires:
    /// for BitFlip the corrupted word (already written back by the
    /// caller), for StaleRead the old snapshot value.
    pub(crate) fn on_load(
        &mut self,
        site: &'static str,
        buf_id: u32,
        idx: u32,
        val: u32,
    ) -> Option<u32> {
        match self.spec.model {
            FaultModel::BitFlip => {
                if !self.targeted(site, Some(idx)) || !self.fires() {
                    return None;
                }
                let bit = (self.next_u64() % 32) as u32;
                self.record(site, idx, bit);
                Some(val ^ (1 << bit))
            }
            FaultModel::StaleRead => {
                if !self.targeted(site, Some(idx)) || !self.fires() {
                    return None;
                }
                let old = *self.stale.get(buf_id as usize)?.get(idx as usize)?;
                if old == val {
                    return None; // indistinguishable, don't log
                }
                let age = (self.waves_seen - self.waves_at_refresh) as u32;
                self.record(site, idx, age);
                Some(old)
            }
            _ => None,
        }
    }

    /// `atomicMin` hook. `Drop` means skip the store (but still return
    /// the old value to the caller); `Duplicate` means apply it twice.
    pub(crate) fn on_atomic_min(&mut self, site: &'static str, idx: u32) -> AtomicMinFault {
        match self.spec.model {
            FaultModel::DroppedAtomicMin => {
                if !self.targeted(site, Some(idx)) || !self.fires() {
                    return AtomicMinFault::None;
                }
                self.record(site, idx, 0);
                AtomicMinFault::Drop
            }
            FaultModel::DuplicatedAtomicMin => {
                if !self.targeted(site, Some(idx)) || !self.fires() {
                    return AtomicMinFault::None;
                }
                self.record(site, idx, 2);
                AtomicMinFault::Duplicate
            }
            _ => AtomicMinFault::None,
        }
    }

    /// Child-launch hook: `true` means the launch is silently dropped.
    /// A child launch carries no word index, so only the site, wave and
    /// stream pins of a target apply here.
    pub(crate) fn on_child_launch(&mut self, name: &'static str, threads: u64) -> bool {
        if self.spec.model == FaultModel::FailedChildLaunch
            && self.targeted(name, None)
            && self.fires()
        {
            self.record(name, threads.min(u32::MAX as u64) as u32, 0);
            return true;
        }
        false
    }

    /// Host-side boundary-exchange hook: mutate the outgoing
    /// `(vertex, distance)` message batch in place.
    pub fn filter_messages(&mut self, msgs: &mut Vec<(u32, u32)>) {
        // Matching on a copy keeps `self` free for the guard below.
        let model = self.spec.model;
        match model {
            FaultModel::LostMessage => {
                let mut slot = 0u32;
                let mut plan = std::mem::take(msgs);
                plan.retain(|&(v, _)| {
                    let keep = !(self.targeted("exchange", Some(slot)) && self.fires());
                    if !keep {
                        self.record("exchange", slot, v);
                    }
                    slot += 1;
                    keep
                });
                *msgs = plan;
            }
            FaultModel::DuplicatedMessage => {
                let mut out = Vec::with_capacity(msgs.len());
                for (slot, &(v, d)) in msgs.iter().enumerate() {
                    out.push((v, d));
                    if self.targeted("exchange", Some(slot as u32)) && self.fires() {
                        self.record("exchange", slot as u32, v);
                        out.push((v, d));
                    }
                }
                *msgs = out;
            }
            FaultModel::ReorderedMessage
                if msgs.len() >= 2 && self.targeted("exchange", None) && self.fires() =>
            {
                // Deterministic Fisher–Yates off the plan stream.
                for i in (1..msgs.len()).rev() {
                    let j = (self.next_u64() % (i as u64 + 1)) as usize;
                    msgs.swap(i, j);
                }
                self.record("exchange", msgs.len() as u32, 0);
            }
            _ => {}
        }
    }
}

/// Outcome of the `atomicMin` hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomicMinFault {
    None,
    Drop,
    Duplicate,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(model: FaultModel, rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec::new(model, rate, seed))
    }

    #[test]
    fn names_roundtrip() {
        for m in FaultModel::ALL {
            assert_eq!(FaultModel::from_name(m.name()), Some(m));
        }
        assert_eq!(FaultModel::from_name("nope"), None);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = plan(FaultModel::BitFlip, 0.0, 7);
        for i in 0..1000 {
            assert_eq!(p.on_load("dist", 0, i, 42), None);
        }
        assert_eq!(p.injections(), 0);
    }

    #[test]
    fn unit_rate_always_fires() {
        let mut p = plan(FaultModel::DroppedAtomicMin, 1.0, 7);
        for i in 0..100 {
            assert_eq!(p.on_atomic_min("dist", i), AtomicMinFault::Drop);
        }
        assert_eq!(p.injections(), 100);
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut p = plan(FaultModel::BitFlip, 1.0, 3);
        let corrupted = p.on_load("dist", 0, 5, 0xDEAD_BEEF).unwrap();
        assert_eq!((corrupted ^ 0xDEAD_BEEF).count_ones(), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let mut p = plan(FaultModel::BitFlip, 0.3, seed);
            let vals: Vec<Option<u32>> = (0..200).map(|i| p.on_load("d", 0, i, i * 3)).collect();
            (vals, p.log().to_vec())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn message_models_mutate_batches() {
        let batch: Vec<(u32, u32)> = (0..20).map(|i| (i, i * 10)).collect();

        let mut lost = batch.clone();
        plan(FaultModel::LostMessage, 1.0, 1).filter_messages(&mut lost);
        assert!(lost.is_empty());

        let mut dup = batch.clone();
        plan(FaultModel::DuplicatedMessage, 1.0, 1).filter_messages(&mut dup);
        assert_eq!(dup.len(), 40);

        let mut shuffled = batch.clone();
        plan(FaultModel::ReorderedMessage, 1.0, 1).filter_messages(&mut shuffled);
        assert_ne!(shuffled, batch);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, batch, "reordering must not lose or invent messages");
    }

    #[test]
    fn target_pins_site_and_index() {
        let t = FaultTarget { site: Some("dist"), index: Some((10, 20)), ..FaultTarget::ANY };
        let mut p = FaultPlan::new(FaultSpec::new(FaultModel::BitFlip, 1.0, 5).with_target(t));
        assert_eq!(p.on_load("pending", 0, 15, 1), None, "wrong site must not fire");
        assert_eq!(p.on_load("dist", 0, 9, 1), None, "below the index window");
        assert!(p.on_load("dist", 0, 10, 1).is_some());
        assert!(p.on_load("dist", 0, 20, 1).is_some());
        assert_eq!(p.on_load("dist", 0, 21, 1), None, "above the index window");
        for e in p.log() {
            assert_eq!(e.site, "dist");
            assert!((10..=20).contains(&e.index));
        }
    }

    #[test]
    fn target_wave_window_gates_fires() {
        let arena = Arena::new();
        let t = FaultTarget { wave: Some((2, 2)), ..FaultTarget::ANY };
        let mut p =
            FaultPlan::new(FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 5).with_target(t));
        p.on_kernel_start(&arena, 0); // wave 1
        assert_eq!(p.on_atomic_min("dist", 0), AtomicMinFault::None);
        p.on_kernel_start(&arena, 0); // wave 2
        assert_eq!(p.on_atomic_min("dist", 0), AtomicMinFault::Drop);
        p.on_kernel_start(&arena, 0); // wave 3
        assert_eq!(p.on_atomic_min("dist", 0), AtomicMinFault::None);
        assert_eq!(p.injections(), 1);
    }

    #[test]
    fn target_stream_pin_gates_fires() {
        let arena = Arena::new();
        let t = FaultTarget { stream: Some(1), ..FaultTarget::ANY };
        let mut p =
            FaultPlan::new(FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 5).with_target(t));
        p.on_kernel_start(&arena, 0);
        assert_eq!(p.on_atomic_min("dist", 0), AtomicMinFault::None);
        p.on_kernel_start(&arena, 1);
        assert_eq!(p.on_atomic_min("dist", 0), AtomicMinFault::Drop);
    }

    #[test]
    fn child_launch_ignores_index_pin() {
        // A target with an index window still lets child launches fire
        // (launches have no word index), but a site pin applies.
        let t = FaultTarget { site: Some("relax"), index: Some((0, 0)), ..FaultTarget::ANY };
        let mut p =
            FaultPlan::new(FaultSpec::new(FaultModel::FailedChildLaunch, 1.0, 5).with_target(t));
        assert!(!p.on_child_launch("other", 32));
        assert!(p.on_child_launch("relax", 32));
    }

    #[test]
    fn injection_cap_silences_the_plan() {
        let mut p = FaultPlan::new(FaultSpec::new(FaultModel::BitFlip, 1.0, 3).with_cap(5));
        let mut fired = 0;
        for i in 0..1000 {
            if p.on_load("dist", 0, i, 42).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 5);
        assert_eq!(p.injections(), 5);
        // Uncapped, the same spec fires on every opportunity.
        let mut q = FaultPlan::new(FaultSpec::new(FaultModel::BitFlip, 1.0, 3));
        let all = (0..1000).filter(|&i| q.on_load("dist", 0, i, 42).is_some()).count();
        assert_eq!(all, 1000);
    }

    #[test]
    fn any_target_is_equivalent_to_none() {
        let run = |target: Option<FaultTarget>| {
            let mut spec = FaultSpec::new(FaultModel::BitFlip, 0.3, 11);
            spec.target = target;
            let mut p = FaultPlan::new(spec);
            let vals: Vec<Option<u32>> = (0..200).map(|i| p.on_load("d", 0, i, i * 3)).collect();
            (vals, p.log().to_vec())
        };
        assert_eq!(run(None), run(Some(FaultTarget::ANY)));
    }

    #[test]
    fn target_display_formats() {
        let t =
            FaultTarget { site: Some("dist"), index: Some((3, 9)), wave: None, stream: Some(2) };
        assert_eq!(t.to_string(), "site=dist idx=3..=9 wave=* stream=2");
        assert_eq!(FaultTarget::ANY.to_string(), "site=* idx=* wave=* stream=*");
    }

    #[test]
    fn log_caps_but_keeps_counting() {
        let mut p = plan(FaultModel::DroppedAtomicMin, 1.0, 9);
        for i in 0..(LOG_CAP + 50) {
            p.on_atomic_min("dist", i as u32);
        }
        assert_eq!(p.log().len(), LOG_CAP);
        assert_eq!(p.injections(), (LOG_CAP + 50) as u64);
    }
}
