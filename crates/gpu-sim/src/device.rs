//! Device configuration and the top-level [`Device`] object.

use crate::buffer::{Arena, Buf, HostStaging};
use crate::cache::CacheHierarchy;
use crate::counters::{Counters, KernelReport};
use crate::fault::{FaultEvent, FaultPlan};
use crate::ir::{AccessIr, IrState, QueueDecl};
use crate::kernel::{ChildLaunch, ScatterReq};
use crate::san::{AccessProfile, SanConfig, SanState, SanViolation};
use crate::sched::SchedPlan;
use std::collections::HashMap;

/// Hardware parameters of a simulated GPU.
///
/// The throughput constants (`*_cycles`) are tunable model inputs, not
/// datasheet values; the presets were chosen so that kernel times land
/// in the regime the paper reports (GTEPS in the tens on V100-scale
/// inputs) while preserving the V100 : T4 compute and bandwidth ratios.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Warp instructions issued per SM per cycle (all schedulers).
    pub issue_width: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// L1 cache per SM, bytes.
    pub l1_bytes: u64,
    /// Shared L2, bytes.
    pub l2_bytes: u64,
    /// Cache line size, bytes.
    pub line_bytes: u64,
    /// Cache associativity (ways), both levels.
    pub ways: u32,
    /// Cycles charged for a memory instruction whose deepest
    /// transaction hits L1.
    pub l1_hit_cycles: u32,
    /// ... whose deepest transaction hits L2.
    pub l2_hit_cycles: u32,
    /// ... whose deepest transaction goes to DRAM. Charged once per
    /// warp-level memory instruction: a warp's transactions overlap
    /// (memory-level parallelism), so latency is not paid per sector.
    pub dram_cycles: u32,
    /// Port-throughput cycles for each transaction beyond the first of
    /// a warp memory instruction — the serialization cost of
    /// uncoalesced access that coalescing removes.
    pub port_cycles: u32,
    /// Extra serialization cycles for each conflicting atomic lane
    /// (same-address atomics within a warp).
    pub atomic_conflict_cycles: u32,
    /// Host-side kernel launch overhead, microseconds.
    pub kernel_launch_us: f64,
    /// Device-side (dynamic parallelism) child launch overhead, µs.
    pub child_launch_us: f64,
    /// Grid-wide synchronization barrier overhead, µs.
    pub barrier_us: f64,
    /// Maximum threads per block.
    pub max_block: u32,
}

impl DeviceConfig {
    /// Tesla V100: 80 SMs, 5120 CUDA cores, 900 GB/s HBM2 (§5.1.1).
    pub fn v100() -> Self {
        Self {
            name: "V100",
            num_sms: 80,
            issue_width: 4,
            clock_ghz: 1.38,
            mem_bandwidth_gbps: 900.0,
            l1_bytes: 128 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            line_bytes: 128,
            ways: 4,
            l1_hit_cycles: 2,
            l2_hit_cycles: 8,
            dram_cycles: 24,
            port_cycles: 4,
            atomic_conflict_cycles: 4,
            kernel_launch_us: 3.5,
            child_launch_us: 0.6,
            barrier_us: 1.2,
            max_block: 1024,
        }
    }

    /// Tesla T4: 40 SMs, 2560 CUDA cores, 320 GB/s GDDR6 (§5.4.2).
    pub fn t4() -> Self {
        Self {
            name: "T4",
            num_sms: 40,
            issue_width: 4,
            clock_ghz: 1.59,
            mem_bandwidth_gbps: 320.0,
            l1_bytes: 64 * 1024,
            l2_bytes: 4 * 1024 * 1024,
            line_bytes: 128,
            ways: 4,
            l1_hit_cycles: 2,
            l2_hit_cycles: 8,
            dram_cycles: 24,
            port_cycles: 4,
            atomic_conflict_cycles: 4,
            kernel_launch_us: 3.5,
            child_launch_us: 0.6,
            barrier_us: 1.2,
            max_block: 1024,
        }
    }

    /// Scale the fixed overheads (kernel launch, child launch,
    /// barrier) by `factor`.
    ///
    /// The experiment harness shrinks the paper's datasets by `2^k`;
    /// kernels get `2^k` shorter while real launch overheads stay
    /// constant, which would let overheads dominate and invert every
    /// runtime ratio. Scaling the overheads by the same `2^-k` is the
    /// time-scale-preserving shrink: per-kernel time *ratios* match
    /// what the full-size system would show.
    pub fn with_overhead_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.kernel_launch_us *= factor;
        self.child_launch_us *= factor;
        self.barrier_us *= factor;
        self
    }

    /// Scale the cache capacities by `factor` (floored at one line per
    /// way). The companion of [`DeviceConfig::with_overhead_scale`]:
    /// when a dataset shrinks by `2^k`, fixed cache capacities would
    /// otherwise swallow the whole working set and erase every
    /// locality difference the paper measures (Fig. 10 (d)).
    pub fn with_cache_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        let min = (self.line_bytes * self.ways as u64).max(1);
        self.l1_bytes = ((self.l1_bytes as f64 * factor) as u64).max(min);
        self.l2_bytes = ((self.l2_bytes as f64 * factor) as u64).max(min * 4);
        self
    }

    /// A tiny config for unit tests: 2 SMs, minuscule caches, so cache
    /// evictions and SM imbalance are observable on small inputs.
    pub fn test_tiny() -> Self {
        Self {
            name: "tiny",
            num_sms: 2,
            issue_width: 1,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 64.0,
            l1_bytes: 1024,
            l2_bytes: 4096,
            line_bytes: 128,
            ways: 2,
            l1_hit_cycles: 2,
            l2_hit_cycles: 8,
            dram_cycles: 24,
            port_cycles: 4,
            atomic_conflict_cycles: 4,
            kernel_launch_us: 3.5,
            child_launch_us: 0.6,
            barrier_us: 1.2,
            max_block: 1024,
        }
    }
}

/// A simulated GPU: memory arena, cache hierarchy, counters, clock.
pub struct Device {
    pub(crate) config: DeviceConfig,
    pub(crate) arena: Arena,
    pub(crate) caches: CacheHierarchy,
    pub(crate) counters: Counters,
    /// Accumulated simulated time, nanoseconds.
    pub(crate) elapsed_ns: f64,
    /// Per-kernel reports, in launch order.
    pub(crate) reports: Vec<KernelReport>,
    /// Children queued by dynamic parallelism during the current wave.
    pub(crate) pending_children: Vec<ChildLaunch>,
    /// Gang-collective scatter requests recorded by the current wave's
    /// lane bodies, materialized by the wave-end flush.
    pub(crate) pending_scatter: Vec<ScatterReq>,
    /// Per-buffer (load, store, atomic) op counts, indexed by buffer id.
    pub(crate) buffer_traffic: Vec<[u64; 3]>,
    /// Armed fault-injection plan, if any. `None` (the default) keeps
    /// every hook a single branch and the device bit-identical to a
    /// fault-free build.
    pub(crate) fault: Option<FaultPlan>,
    /// Armed memory-model sanitizer, if any. Like `fault`, `None` (the
    /// default) keeps every hook a single branch.
    pub(crate) san: Option<Box<SanState>>,
    /// Armed access-IR recorder, if any (the static verifier's input).
    /// Like `san`, `None` keeps every hook a single branch.
    pub(crate) ir: Option<Box<IrState>>,
    /// Device queues declared so far, keyed by tail-cursor address.
    /// Always recorded (declaration is cheap and queues are created
    /// before arming); seeded into the IR recorder at arm time.
    pub(crate) queue_decls: HashMap<u64, QueueDecl>,
    /// Armed schedule-fuzzing plan, if any: waves execute their lanes
    /// in a seeded permuted order instead of ascending lane order.
    pub(crate) sched: Option<SchedPlan>,
    /// Command stream subsequent kernels are issued on. Purely an
    /// attribution tag: kernel reports and sanitizer violations carry
    /// it so concurrent schedulers can tell interleaved work apart.
    pub(crate) current_stream: u32,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let caches = CacheHierarchy::new(&config);
        Self {
            config,
            arena: Arena::new(),
            caches,
            counters: Counters::default(),
            elapsed_ns: 0.0,
            reports: Vec::new(),
            pending_children: Vec::new(),
            pending_scatter: Vec::new(),
            buffer_traffic: Vec::new(),
            fault: None,
            san: None,
            ir: None,
            queue_decls: HashMap::new(),
            sched: None,
            current_stream: 0,
        }
    }

    /// Select the command stream subsequent kernels are attributed to.
    /// Stream 0 is the default stream every device starts on.
    pub fn set_stream(&mut self, stream: u32) {
        self.current_stream = stream;
    }

    /// The currently selected command stream.
    pub fn stream(&self) -> u32 {
        self.current_stream
    }

    /// Simulated elapsed time in nanoseconds (see
    /// [`Device::elapsed_ms`] for the reporting unit).
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Arm the memory-model sanitizer. Subsequent kernels run under
    /// it; buffers allocated (or recycled from the pool) from now on
    /// carry uninitialized-read poison. Violations accumulate until
    /// [`Device::disarm_sanitizer`].
    pub fn arm_sanitizer(&mut self, config: SanConfig) {
        self.arena.set_poison_mode(config.uninit);
        self.san = Some(Box::new(SanState::new(config)));
    }

    /// Whether the sanitizer is currently armed.
    pub fn sanitizer_armed(&self) -> bool {
        self.san.is_some()
    }

    /// Remove the armed sanitizer (if any), returning it with its
    /// violation log. Poison tracking stops.
    pub fn disarm_sanitizer(&mut self) -> Option<Box<SanState>> {
        self.arena.set_poison_mode(false);
        self.san.take()
    }

    /// Violations recorded so far (empty when nothing is armed).
    pub fn san_violations(&self) -> &[SanViolation] {
        self.san.as_ref().map_or(&[], |s| s.violations())
    }

    /// Total violations so far, including any beyond the report cap.
    pub fn san_total(&self) -> u64 {
        self.san.as_ref().map_or(0, |s| s.total())
    }

    /// The access profile the armed sanitizer has accumulated so far
    /// (`None` when nothing is armed) — the adversarial placement
    /// search's evidence source.
    pub fn san_profile(&self) -> Option<&AccessProfile> {
        self.san.as_deref().map(SanState::profile)
    }

    /// Arm the access-IR recorder: subsequent kernels contribute to a
    /// bounded per-race-window access summary (see [`crate::ir`]) that
    /// the static verifier consumes. Purely observational — results,
    /// timing and counters are bit-identical to an unarmed run. Queues
    /// declared before arming are carried over.
    pub fn arm_ir(&mut self) {
        let mut ir = Box::new(IrState::new());
        let mut decls: Vec<&QueueDecl> = self.queue_decls.values().collect();
        decls.sort_by_key(|d| d.tail_addr);
        for d in decls {
            ir.declare_queue(*d);
        }
        self.ir = Some(ir);
    }

    /// Whether the IR recorder is currently armed.
    pub fn ir_armed(&self) -> bool {
        self.ir.is_some()
    }

    /// Remove the armed IR recorder (if any), closing its trailing
    /// race window and returning the retained IR.
    pub fn take_ir(&mut self) -> Option<AccessIr> {
        self.ir.take().map(|ir| ir.finish())
    }

    /// Declare a device queue (tail cursor, overflow cell, capacity,
    /// spill capability) so the static push-bound certifier can
    /// recognize its traffic. Safe to call whether or not the IR
    /// recorder is armed; re-declaring a tail address replaces the
    /// previous declaration (pooled queues get re-assembled).
    pub fn declare_queue(
        &mut self,
        label: &'static str,
        tail: Buf,
        overflow: Buf,
        capacity: u32,
        spill: bool,
    ) {
        let decl = QueueDecl {
            label,
            tail_addr: self.arena.addr(tail, 0),
            overflow_addr: self.arena.addr(overflow, 0),
            capacity,
            spill,
        };
        self.queue_decls.insert(decl.tail_addr, decl);
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.declare_queue(decl);
        }
    }

    /// Arm seeded schedule fuzzing: subsequent waves execute their
    /// lanes in a deterministic permuted order drawn from `seed` (one
    /// fresh permutation per wave). Disarm with
    /// [`Device::disarm_schedule_fuzz`].
    pub fn arm_schedule_fuzz(&mut self, seed: u64) {
        self.sched = Some(SchedPlan::new(seed));
    }

    /// Whether schedule fuzzing is currently armed.
    pub fn schedule_fuzz_armed(&self) -> bool {
        self.sched.is_some()
    }

    /// Remove the armed schedule-fuzz plan (if any), returning it with
    /// its wave count. Execution reverts to ascending lane order.
    pub fn disarm_schedule_fuzz(&mut self) -> Option<SchedPlan> {
        self.sched.take()
    }

    /// Arm a fault-injection plan. Subsequent kernels run under it;
    /// the injection log accumulates until [`Device::disarm_faults`].
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Whether a fault plan is currently armed.
    pub fn faults_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Remove the armed plan (if any), returning it with its log.
    pub fn disarm_faults(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Injections recorded so far (empty when no plan is armed).
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.fault.as_ref().map_or(&[], super::fault::FaultPlan::log)
    }

    /// Total injections so far, including any beyond the log cap.
    pub fn fault_injections(&self) -> u64 {
        self.fault.as_ref().map_or(0, super::fault::FaultPlan::injections)
    }

    /// Apply the armed plan's message-fault models to an outgoing
    /// boundary-exchange batch (no-op when nothing is armed — the
    /// multi-device exchange calls this unconditionally).
    pub fn fault_filter_messages(&mut self, msgs: &mut Vec<(u32, u32)>) {
        if let Some(plan) = self.fault.as_mut() {
            plan.filter_messages(msgs);
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Allocate a zero-initialized buffer of `len` 32-bit words.
    pub fn alloc(&mut self, label: &'static str, len: usize) -> Buf {
        self.counters.buffer_allocs += 1;
        self.buffer_traffic.push([0; 3]);
        self.arena.alloc(label, len)
    }

    /// Allocate and upload host data (host→device copies are free in
    /// the model, matching the paper's convention of reporting kernel
    /// time only). Counted in [`Counters::h2d_uploads`] /
    /// [`Counters::h2d_words`] so resident-buffer services can assert
    /// upload amortization.
    pub fn alloc_upload(&mut self, label: &'static str, data: &[u32]) -> Buf {
        self.counters.h2d_uploads += 1;
        self.counters.h2d_words += data.len() as u64;
        let buf = self.alloc(label, data.len());
        self.arena.slice_mut(buf).copy_from_slice(data);
        self.arena.clear_poison(buf);
        buf
    }

    /// Upload a host staging buffer, carrying its per-word shadow
    /// poison across the copy: words the host never wrote into the
    /// staging buffer stay poisoned on device (while the sanitizer's
    /// poison mode is on), so a kernel reading one trips `UninitRead`
    /// instead of silently observing the zero fill. Counted like
    /// [`Device::alloc_upload`].
    pub fn upload_staged(&mut self, staging: &HostStaging) -> Buf {
        self.counters.h2d_uploads += 1;
        self.counters.h2d_words += staging.len() as u64;
        let buf = self.alloc(staging.label(), staging.len());
        self.arena.slice_mut(buf).copy_from_slice(staging.words());
        self.arena.set_poison_from_unwritten(buf, staging.written());
        buf
    }

    /// Pool-aware allocation: reuse a same-length buffer previously
    /// returned with [`Device::release`], allocating fresh otherwise.
    /// Returns the buffer and whether it was recycled. A recycled
    /// buffer keeps its previous contents — callers reset explicitly.
    pub fn alloc_pooled(&mut self, label: &'static str, len: usize) -> (Buf, bool) {
        match self.arena.acquire(label, len) {
            Some(buf) => {
                self.counters.buffer_reuses += 1;
                (buf, true)
            }
            None => (self.alloc(label, len), false),
        }
    }

    /// Return a buffer to the arena free list for later reuse by
    /// [`Device::alloc_pooled`]. The handle must not be used again
    /// until re-acquired.
    pub fn release(&mut self, buf: Buf) {
        self.arena.release(buf);
    }

    /// Host-side read of a whole buffer (no counters charged).
    pub fn read(&self, buf: Buf) -> &[u32] {
        self.arena.slice(buf)
    }

    /// Host-side read of one word.
    pub fn read_word(&self, buf: Buf, idx: usize) -> u32 {
        self.arena.slice(buf)[idx]
    }

    /// Host-side write of a whole buffer (no counters charged).
    pub fn write(&mut self, buf: Buf, data: &[u32]) {
        self.arena.slice_mut(buf).copy_from_slice(data);
        self.arena.clear_poison(buf);
    }

    /// Host-side write of one word.
    pub fn write_word(&mut self, buf: Buf, idx: usize, val: u32) {
        self.arena.slice_mut(buf)[idx] = val;
        self.arena.clear_poison_at(buf, idx as u32);
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_host_write(self.arena.addr(buf, idx as u32), val);
        }
    }

    /// Host-side fill.
    pub fn fill(&mut self, buf: Buf, val: u32) {
        self.arena.slice_mut(buf).fill(val);
        self.arena.clear_poison(buf);
    }

    /// Label a buffer was allocated with.
    pub fn buffer_label(&self, buf: Buf) -> &'static str {
        self.arena.label(buf)
    }

    /// Total device words allocated (memory accounting).
    pub fn allocated_words(&self) -> usize {
        self.arena.total_words()
    }

    /// Per-buffer lane-level traffic: `(label, loads, stores, atomics)`
    /// rows sorted by total descending — answers "which array
    /// dominates memory traffic" for kernel tuning.
    pub fn buffer_traffic(&self) -> Vec<(&'static str, u64, u64, u64)> {
        let mut rows: Vec<(&'static str, u64, u64, u64)> = self
            .buffer_traffic
            .iter()
            .enumerate()
            .map(|(id, t)| (self.arena.label(Buf { id: id as u32 }), t[0], t[1], t[2]))
            .collect();
        rows.sort_by_key(|&(_, l, s, a)| std::cmp::Reverse(l + s + a));
        rows
    }

    /// Simulated elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns / 1.0e6
    }

    /// Aggregate counters since construction or the last reset.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-kernel reports since the last reset.
    pub fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    /// Reset counters, reports and the clock (memory contents and
    /// cache state are preserved).
    pub fn reset_stats(&mut self) {
        self.counters = Counters::default();
        self.reports.clear();
        self.elapsed_ns = 0.0;
    }

    /// Additionally reset cache state (cold-start measurement).
    pub fn reset_caches(&mut self) {
        self.caches = CacheHierarchy::new(&self.config);
    }

    /// Charge a grid-wide synchronization barrier (the sync-mode
    /// iteration barrier the paper's §4.3 eliminates in phase 1).
    /// Also closes the sanitizer's race window: accesses before the
    /// barrier are ordered before everything after it.
    pub fn charge_barrier(&mut self) {
        self.counters.barriers += 1;
        self.elapsed_ns += self.config.barrier_us * 1e3;
        if let Some(san) = self.san.as_deref_mut() {
            san.on_barrier();
        }
        if let Some(ir) = self.ir.as_deref_mut() {
            ir.on_barrier();
        }
    }

    /// Words currently idle on the pool free list.
    pub fn pooled_free_words(&self) -> usize {
        self.arena.free_words()
    }

    /// Evict idle pooled buffers, largest first, until at most
    /// `max_bytes` of free-list memory remains. Returns bytes evicted.
    /// Evicted buffers are gone for good: a later
    /// [`Device::alloc_pooled`] of that size allocates fresh.
    pub fn trim_pool_to(&mut self, max_bytes: usize) -> usize {
        self.arena.trim_free_to(max_bytes / 4) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let v = DeviceConfig::v100();
        assert_eq!(v.num_sms, 80);
        assert_eq!(v.mem_bandwidth_gbps, 900.0);
        let t = DeviceConfig::t4();
        assert_eq!(t.num_sms, 40);
        assert_eq!(t.mem_bandwidth_gbps, 320.0);
        // The paper's theoretical analysis: V100 should be 2–3× T4.
        assert!(v.mem_bandwidth_gbps / t.mem_bandwidth_gbps > 2.0);
    }

    #[test]
    fn host_io_roundtrip() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let b = d.alloc_upload("x", &[1, 2, 3]);
        assert_eq!(d.read(b), &[1, 2, 3]);
        d.write_word(b, 1, 9);
        assert_eq!(d.read_word(b, 1), 9);
        d.fill(b, 7);
        assert_eq!(d.read(b), &[7, 7, 7]);
    }

    #[test]
    fn barrier_charges_time() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        assert_eq!(d.elapsed_ms(), 0.0);
        d.charge_barrier();
        assert!(d.elapsed_ms() > 0.0);
        assert_eq!(d.counters().barriers, 1);
        d.reset_stats();
        assert_eq!(d.elapsed_ms(), 0.0);
    }
}
