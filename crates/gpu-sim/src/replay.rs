//! Warp-lockstep trace replay: divergence, coalescing, caches, atomics.
//!
//! After a warp's lanes run functionally, [`replay_warp`] walks the 32
//! traces step by step:
//!
//! * traces split into *segments* at [`Op::Conv`] reconvergence
//!   points (`__syncwarp`): every lane advances to the boundary
//!   before the next segment begins, so step counters re-align there
//!   — the warp-synchronous multisplit kernels place one per
//!   aggregation point, while scalar traces have none and replay as
//!   one segment exactly as before;
//! * at step `s` of a segment, every lane whose segment is at least
//!   `s + 1` ops long is *active*; active lanes are grouped by
//!   [`OpKind`] — each group is one warp-level instruction (divergent
//!   kinds serialize, like SIMT branches taking both paths);
//! * memory groups coalesce their addresses into 32-byte sectors; each
//!   sector is one transaction probing the SM's cache hierarchy;
//! * atomic groups additionally count same-address conflicts, which
//!   serialize within the warp;
//! * ALU ops carry a repeat count: the group's cost is the maximum
//!   count among its lanes (lockstep execution).
//!
//! The result is the warp's cycle cost plus counter deltas.

use crate::cache::{CacheHierarchy, CacheLevel};
use crate::counters::Counters;
use crate::device::DeviceConfig;
use crate::trace::{LaneTrace, Op, OpKind};
use crate::{SECTOR_BYTES, WARP_SIZE};

/// Cost and counter outcome of one warp replay.
#[derive(Clone, Debug, Default)]
pub struct WarpOutcome {
    /// Cycles this warp occupies its SM.
    pub cycles: u64,
}

/// Replay one warp's traces on SM `sm`, updating `counters` and the
/// cache hierarchy, returning the warp's cycle cost. `register`
/// counts the warp and its threads; pass `false` when replaying a
/// continuation of an already-counted warp (the gang-collective
/// flush epilogue).
pub fn replay_warp(
    config: &DeviceConfig,
    caches: &mut CacheHierarchy,
    counters: &mut Counters,
    sm: usize,
    traces: &[LaneTrace],
    register: bool,
) -> WarpOutcome {
    debug_assert!(traces.len() <= WARP_SIZE as usize);
    let mut cycles = 0u64;
    if register {
        counters.warps += 1;
        counters.threads += traces.iter().filter(|t| !t.is_empty()).count().max(1) as u64;
    }

    // Scratch reused across steps.
    let mut sectors: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
    let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
    // Per-lane cursor and current-segment end (exclusive, at the next
    // `Op::Conv` or the trace end).
    let mut cur = [0usize; WARP_SIZE as usize];
    let mut seg_end = [0usize; WARP_SIZE as usize];

    loop {
        // Delimit each lane's next segment; stop when all exhausted.
        let mut seg_max = 0usize;
        let mut alive = false;
        for (i, t) in traces.iter().enumerate() {
            alive |= cur[i] < t.ops.len();
            let mut e = cur[i];
            while e < t.ops.len() && t.ops[e] != Op::Conv {
                e += 1;
            }
            seg_end[i] = e;
            seg_max = seg_max.max(e - cur[i]);
        }
        if !alive {
            break;
        }
        for step in 0..seg_max {
            // Kinds present at this step, in fixed order for determinism.
            for kind in [OpKind::Alu, OpKind::Load, OpKind::Store, OpKind::Atomic] {
                let mut active = 0u64;
                let mut alu_max = 0u32;
                addrs.clear();
                for (i, t) in traces.iter().enumerate() {
                    let pos = cur[i] + step;
                    if pos >= seg_end[i] {
                        continue;
                    }
                    let op = &t.ops[pos];
                    if op.kind() != kind {
                        continue;
                    }
                    active += 1;
                    match *op {
                        Op::Alu(n) => alu_max = alu_max.max(n),
                        Op::Load(a) | Op::LoadVolatile(a) | Op::Store(a) | Op::Atomic(a) => {
                            addrs.push(a);
                        }
                        Op::Conv => unreachable!("segment boundaries exclude Conv"),
                    }
                }
                if active == 0 {
                    continue;
                }
                counters.inst_executed += 1;
                counters.active_lane_sum += active;
                counters.lane_slot_sum += WARP_SIZE as u64;
                cycles += 1; // issue

                match kind {
                    OpKind::Conv => unreachable!("Conv never forms a group"),
                    OpKind::Alu => {
                        cycles += alu_max.saturating_sub(1) as u64;
                    }
                    OpKind::Load | OpKind::Store | OpKind::Atomic => {
                        match kind {
                            OpKind::Load => counters.inst_executed_global_loads += 1,
                            OpKind::Store => counters.inst_executed_global_stores += 1,
                            OpKind::Atomic => {
                                counters.inst_executed_atomics += 1;
                                // All simulated atomics target global
                                // memory (there is no shared-memory tier).
                                counters.inst_executed_global_atomics += 1;
                            }
                            OpKind::Alu | OpKind::Conv => unreachable!(),
                        }
                        // Coalesce into sectors.
                        sectors.clear();
                        sectors.extend(addrs.iter().map(|a| a / SECTOR_BYTES));
                        sectors.sort_unstable();
                        sectors.dedup();
                        let txns = sectors.len() as u64;
                        match kind {
                            OpKind::Load => counters.gld_transactions += txns,
                            OpKind::Store => counters.gst_transactions += txns,
                            OpKind::Atomic => counters.atom_transactions += txns,
                            OpKind::Alu | OpKind::Conv => unreachable!(),
                        }
                        // A warp memory instruction pays the latency of its
                        // deepest-level transaction once (the sectors are
                        // serviced in parallel — memory-level parallelism)
                        // plus a port-throughput cost per extra sector,
                        // which is the serialization uncoalesced access
                        // causes and coalescing removes.
                        let mut deepest = 0u64;
                        for &sector in &sectors {
                            let level = caches.access(sm, sector * SECTOR_BYTES);
                            counters.l1_accesses += 1;
                            match level {
                                CacheLevel::L1 => {
                                    counters.l1_hits += 1;
                                    deepest = deepest.max(config.l1_hit_cycles as u64);
                                }
                                CacheLevel::L2 => {
                                    counters.l2_accesses += 1;
                                    counters.l2_hits += 1;
                                    deepest = deepest.max(config.l2_hit_cycles as u64);
                                }
                                CacheLevel::Dram => {
                                    counters.l2_accesses += 1;
                                    counters.dram_transactions += 1;
                                    deepest = deepest.max(config.dram_cycles as u64);
                                }
                            }
                        }
                        cycles += deepest + txns.saturating_sub(1) * config.port_cycles as u64;
                        if kind == OpKind::Atomic {
                            // Same-address atomics serialize lane by lane.
                            addrs.sort_unstable();
                            let distinct = {
                                let mut d = 1u64;
                                for w in addrs.windows(2) {
                                    if w[0] != w[1] {
                                        d += 1;
                                    }
                                }
                                if addrs.is_empty() {
                                    0
                                } else {
                                    d
                                }
                            };
                            let conflicts = (addrs.len() as u64).saturating_sub(distinct);
                            counters.atomic_conflicts += conflicts;
                            cycles += conflicts * config.atomic_conflict_cycles as u64;
                        }
                    }
                }
            }
        }
        // Step past each lane's segment and its Conv delimiter.
        for (i, t) in traces.iter().enumerate() {
            cur[i] = (seg_end[i] + 1).min(t.ops.len());
        }
    }
    WarpOutcome { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheHierarchy;

    fn setup() -> (DeviceConfig, CacheHierarchy, Counters) {
        let cfg = DeviceConfig::test_tiny();
        let caches = CacheHierarchy::new(&cfg);
        (cfg, caches, Counters::default())
    }

    fn warp_of(ops_per_lane: Vec<Vec<Op>>) -> Vec<LaneTrace> {
        ops_per_lane.into_iter().map(|ops| LaneTrace { ops }).collect()
    }

    #[test]
    fn coalesced_load_is_few_transactions() {
        let (cfg, mut caches, mut ctr) = setup();
        // 32 lanes load consecutive words: 128 bytes = 4 sectors.
        let traces = warp_of((0..32).map(|i| vec![Op::Load(i * 4)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.gld_transactions, 4);
        assert_eq!(ctr.warp_execution_efficiency(), 100.0);
    }

    #[test]
    fn scattered_load_is_many_transactions() {
        let (cfg, mut caches, mut ctr) = setup();
        // 32 lanes load words 1 KiB apart: 32 sectors.
        let traces = warp_of((0..32).map(|i| vec![Op::Load(i * 1024)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.gld_transactions, 32);
    }

    #[test]
    fn divergent_kinds_serialize() {
        let (cfg, mut caches, mut ctr) = setup();
        // Half the warp loads, half stores at step 0 → 2 instructions.
        let traces = warp_of(
            (0..32u64)
                .map(|i| vec![if i % 2 == 0 { Op::Load(i * 4) } else { Op::Store(i * 4) }])
                .collect(),
        );
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.inst_executed, 2);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.inst_executed_global_stores, 1);
        assert!(ctr.warp_execution_efficiency() < 100.0);
    }

    #[test]
    fn unbalanced_lane_lengths_cost_max() {
        let (cfg, mut caches, mut ctr) = setup();
        // Lane 0 does 10 loads, others do 1: warp executes 10 load
        // instructions (the paper's load-imbalance pathology).
        let mut lanes: Vec<Vec<Op>> = vec![vec![Op::Load(0)]; 32];
        lanes[0] = (0..10).map(|i| Op::Load(i * 4096)).collect();
        let traces = warp_of(lanes);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.inst_executed_global_loads, 10);
        assert!(ctr.warp_execution_efficiency() < 20.0);
    }

    #[test]
    fn atomic_conflicts_counted() {
        let (cfg, mut caches, mut ctr) = setup();
        // All 32 lanes atomically hit the same address.
        let traces = warp_of((0..32).map(|_| vec![Op::Atomic(64)]).collect());
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.inst_executed_atomics, 1);
        assert_eq!(ctr.atomic_conflicts, 31);
        assert_eq!(ctr.atom_transactions, 1);
        assert!(out.cycles > 31);
    }

    #[test]
    fn distinct_atomics_do_not_conflict() {
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of((0..32).map(|i| vec![Op::Atomic(i * 256)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(ctr.atomic_conflicts, 0);
    }

    #[test]
    fn repeat_access_hits_l1() {
        let (cfg, mut caches, mut ctr) = setup();
        let t1 = warp_of(vec![vec![Op::Load(0)]]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &t1, true);
        let before = ctr.l1_hits;
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &t1, true);
        assert_eq!(ctr.l1_hits, before + 1);
        assert!(ctr.global_hit_rate() > 0.0);
    }

    #[test]
    fn alu_cost_is_lane_maximum() {
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of(vec![vec![Op::Alu(10)], vec![Op::Alu(2)]]);
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!(out.cycles, 10);
        assert_eq!(ctr.inst_executed, 1);
    }

    #[test]
    fn empty_warp() {
        let (cfg, mut caches, mut ctr) = setup();
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &[], true);
        assert_eq!(out.cycles, 0);
        assert_eq!(ctr.inst_executed, 0);
    }

    #[test]
    fn reconvergence_realigns_divergent_atomics() {
        // Lane 0 ran one more load than lane 1 before both reached the
        // same atomic. Without a convergence point the step counters
        // stay skewed and the two atomics replay as two instructions.
        let (cfg, mut caches, mut ctr) = setup();
        let divergent = warp_of(vec![
            vec![Op::Load(0), Op::Load(64), Op::Atomic(128)],
            vec![Op::Load(0), Op::Atomic(128)],
        ]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &divergent, true);
        assert_eq!(ctr.inst_executed_atomics, 2, "skewed steps must not merge");

        // A Conv (__syncwarp) before the atomic re-aligns the lanes:
        // the same program point now issues one warp instruction, and
        // the barrier itself retires nothing.
        let (_, mut caches, mut ctr) = setup();
        let converged = warp_of(vec![
            vec![Op::Load(0), Op::Load(64), Op::Conv, Op::Atomic(128)],
            vec![Op::Load(0), Op::Conv, Op::Atomic(128)],
        ]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &converged, true);
        assert_eq!(ctr.inst_executed_atomics, 1, "converged atomics are one instruction");
        assert_eq!(ctr.inst_executed_global_loads, 2);
        assert_eq!(ctr.inst_executed, 3, "the Conv itself is free");
    }

    #[test]
    fn conv_counts_differ_across_lanes() {
        // Different loop trip counts leave the lanes with different
        // numbers of convergence points: replay must run out each
        // lane's segments without mixing a shorter lane's later ops
        // into an earlier segment.
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of(vec![
            vec![Op::Conv, Op::Atomic(0), Op::Conv, Op::Atomic(0), Op::Conv, Op::Atomic(0)],
            vec![Op::Conv, Op::Atomic(4)],
        ]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        // Segment 1 merges both lanes' atomics; lane 0's remaining two
        // segments each issue one more.
        assert_eq!(ctr.inst_executed_atomics, 3);
    }

    #[test]
    fn unregistered_replay_skips_launch_accounting() {
        // The converged flush epilogue replays as a continuation of an
        // already-counted warp: instructions and cycles accrue, but the
        // launch's warp/thread occupancy must not double.
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of(vec![vec![Op::Atomic(0)], vec![Op::Atomic(4)]]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, true);
        assert_eq!((ctr.warps, ctr.threads), (1, 2));
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces, false);
        assert_eq!((ctr.warps, ctr.threads), (1, 2), "epilogue must not re-register");
        assert_eq!(ctr.inst_executed_atomics, 2, "epilogue instructions still count");
    }
}
