//! Warp-lockstep trace replay: divergence, coalescing, caches, atomics.
//!
//! After a warp's lanes run functionally, [`replay_warp`] walks the 32
//! traces step by step:
//!
//! * at step `s`, every lane whose trace is at least `s + 1` long is
//!   *active*; active lanes are grouped by [`OpKind`] — each group is
//!   one warp-level instruction (divergent kinds serialize, like SIMT
//!   branches taking both paths);
//! * memory groups coalesce their addresses into 32-byte sectors; each
//!   sector is one transaction probing the SM's cache hierarchy;
//! * atomic groups additionally count same-address conflicts, which
//!   serialize within the warp;
//! * ALU ops carry a repeat count: the group's cost is the maximum
//!   count among its lanes (lockstep execution).
//!
//! The result is the warp's cycle cost plus counter deltas.

use crate::cache::{CacheHierarchy, CacheLevel};
use crate::counters::Counters;
use crate::device::DeviceConfig;
use crate::trace::{LaneTrace, Op, OpKind};
use crate::{SECTOR_BYTES, WARP_SIZE};

/// Cost and counter outcome of one warp replay.
#[derive(Clone, Debug, Default)]
pub struct WarpOutcome {
    /// Cycles this warp occupies its SM.
    pub cycles: u64,
}

/// Replay one warp's traces on SM `sm`, updating `counters` and the
/// cache hierarchy, returning the warp's cycle cost.
pub fn replay_warp(
    config: &DeviceConfig,
    caches: &mut CacheHierarchy,
    counters: &mut Counters,
    sm: usize,
    traces: &[LaneTrace],
) -> WarpOutcome {
    debug_assert!(traces.len() <= WARP_SIZE as usize);
    let max_len = traces.iter().map(super::trace::LaneTrace::len).max().unwrap_or(0);
    let mut cycles = 0u64;
    counters.warps += 1;
    counters.threads += traces.iter().filter(|t| !t.is_empty()).count().max(1) as u64;

    // Scratch reused across steps.
    let mut sectors: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
    let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);

    for step in 0..max_len {
        // Kinds present at this step, in fixed order for determinism.
        for kind in [OpKind::Alu, OpKind::Load, OpKind::Store, OpKind::Atomic] {
            let mut active = 0u64;
            let mut alu_max = 0u32;
            addrs.clear();
            for t in traces {
                let Some(op) = t.ops.get(step) else { continue };
                if op.kind() != kind {
                    continue;
                }
                active += 1;
                match *op {
                    Op::Alu(n) => alu_max = alu_max.max(n),
                    Op::Load(a) | Op::LoadVolatile(a) | Op::Store(a) | Op::Atomic(a) => {
                        addrs.push(a);
                    }
                }
            }
            if active == 0 {
                continue;
            }
            counters.inst_executed += 1;
            counters.active_lane_sum += active;
            counters.lane_slot_sum += WARP_SIZE as u64;
            cycles += 1; // issue

            match kind {
                OpKind::Alu => {
                    cycles += alu_max.saturating_sub(1) as u64;
                }
                OpKind::Load | OpKind::Store | OpKind::Atomic => {
                    match kind {
                        OpKind::Load => counters.inst_executed_global_loads += 1,
                        OpKind::Store => counters.inst_executed_global_stores += 1,
                        OpKind::Atomic => {
                            counters.inst_executed_atomics += 1;
                            // All simulated atomics target global
                            // memory (there is no shared-memory tier).
                            counters.inst_executed_global_atomics += 1;
                        }
                        OpKind::Alu => unreachable!(),
                    }
                    // Coalesce into sectors.
                    sectors.clear();
                    sectors.extend(addrs.iter().map(|a| a / SECTOR_BYTES));
                    sectors.sort_unstable();
                    sectors.dedup();
                    let txns = sectors.len() as u64;
                    match kind {
                        OpKind::Load => counters.gld_transactions += txns,
                        OpKind::Store => counters.gst_transactions += txns,
                        OpKind::Atomic => counters.atom_transactions += txns,
                        OpKind::Alu => unreachable!(),
                    }
                    // A warp memory instruction pays the latency of its
                    // deepest-level transaction once (the sectors are
                    // serviced in parallel — memory-level parallelism)
                    // plus a port-throughput cost per extra sector,
                    // which is the serialization uncoalesced access
                    // causes and coalescing removes.
                    let mut deepest = 0u64;
                    for &sector in &sectors {
                        let level = caches.access(sm, sector * SECTOR_BYTES);
                        counters.l1_accesses += 1;
                        match level {
                            CacheLevel::L1 => {
                                counters.l1_hits += 1;
                                deepest = deepest.max(config.l1_hit_cycles as u64);
                            }
                            CacheLevel::L2 => {
                                counters.l2_accesses += 1;
                                counters.l2_hits += 1;
                                deepest = deepest.max(config.l2_hit_cycles as u64);
                            }
                            CacheLevel::Dram => {
                                counters.l2_accesses += 1;
                                counters.dram_transactions += 1;
                                deepest = deepest.max(config.dram_cycles as u64);
                            }
                        }
                    }
                    cycles += deepest + txns.saturating_sub(1) * config.port_cycles as u64;
                    if kind == OpKind::Atomic {
                        // Same-address atomics serialize lane by lane.
                        addrs.sort_unstable();
                        let distinct = {
                            let mut d = 1u64;
                            for w in addrs.windows(2) {
                                if w[0] != w[1] {
                                    d += 1;
                                }
                            }
                            if addrs.is_empty() {
                                0
                            } else {
                                d
                            }
                        };
                        let conflicts = (addrs.len() as u64).saturating_sub(distinct);
                        counters.atomic_conflicts += conflicts;
                        cycles += conflicts * config.atomic_conflict_cycles as u64;
                    }
                }
            }
        }
    }
    WarpOutcome { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheHierarchy;

    fn setup() -> (DeviceConfig, CacheHierarchy, Counters) {
        let cfg = DeviceConfig::test_tiny();
        let caches = CacheHierarchy::new(&cfg);
        (cfg, caches, Counters::default())
    }

    fn warp_of(ops_per_lane: Vec<Vec<Op>>) -> Vec<LaneTrace> {
        ops_per_lane.into_iter().map(|ops| LaneTrace { ops }).collect()
    }

    #[test]
    fn coalesced_load_is_few_transactions() {
        let (cfg, mut caches, mut ctr) = setup();
        // 32 lanes load consecutive words: 128 bytes = 4 sectors.
        let traces = warp_of((0..32).map(|i| vec![Op::Load(i * 4)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.gld_transactions, 4);
        assert_eq!(ctr.warp_execution_efficiency(), 100.0);
    }

    #[test]
    fn scattered_load_is_many_transactions() {
        let (cfg, mut caches, mut ctr) = setup();
        // 32 lanes load words 1 KiB apart: 32 sectors.
        let traces = warp_of((0..32).map(|i| vec![Op::Load(i * 1024)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.gld_transactions, 32);
    }

    #[test]
    fn divergent_kinds_serialize() {
        let (cfg, mut caches, mut ctr) = setup();
        // Half the warp loads, half stores at step 0 → 2 instructions.
        let traces = warp_of(
            (0..32u64)
                .map(|i| vec![if i % 2 == 0 { Op::Load(i * 4) } else { Op::Store(i * 4) }])
                .collect(),
        );
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.inst_executed, 2);
        assert_eq!(ctr.inst_executed_global_loads, 1);
        assert_eq!(ctr.inst_executed_global_stores, 1);
        assert!(ctr.warp_execution_efficiency() < 100.0);
    }

    #[test]
    fn unbalanced_lane_lengths_cost_max() {
        let (cfg, mut caches, mut ctr) = setup();
        // Lane 0 does 10 loads, others do 1: warp executes 10 load
        // instructions (the paper's load-imbalance pathology).
        let mut lanes: Vec<Vec<Op>> = vec![vec![Op::Load(0)]; 32];
        lanes[0] = (0..10).map(|i| Op::Load(i * 4096)).collect();
        let traces = warp_of(lanes);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.inst_executed_global_loads, 10);
        assert!(ctr.warp_execution_efficiency() < 20.0);
    }

    #[test]
    fn atomic_conflicts_counted() {
        let (cfg, mut caches, mut ctr) = setup();
        // All 32 lanes atomically hit the same address.
        let traces = warp_of((0..32).map(|_| vec![Op::Atomic(64)]).collect());
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.inst_executed_atomics, 1);
        assert_eq!(ctr.atomic_conflicts, 31);
        assert_eq!(ctr.atom_transactions, 1);
        assert!(out.cycles > 31);
    }

    #[test]
    fn distinct_atomics_do_not_conflict() {
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of((0..32).map(|i| vec![Op::Atomic(i * 256)]).collect());
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(ctr.atomic_conflicts, 0);
    }

    #[test]
    fn repeat_access_hits_l1() {
        let (cfg, mut caches, mut ctr) = setup();
        let t1 = warp_of(vec![vec![Op::Load(0)]]);
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &t1);
        let before = ctr.l1_hits;
        replay_warp(&cfg, &mut caches, &mut ctr, 0, &t1);
        assert_eq!(ctr.l1_hits, before + 1);
        assert!(ctr.global_hit_rate() > 0.0);
    }

    #[test]
    fn alu_cost_is_lane_maximum() {
        let (cfg, mut caches, mut ctr) = setup();
        let traces = warp_of(vec![vec![Op::Alu(10)], vec![Op::Alu(2)]]);
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &traces);
        assert_eq!(out.cycles, 10);
        assert_eq!(ctr.inst_executed, 1);
    }

    #[test]
    fn empty_warp() {
        let (cfg, mut caches, mut ctr) = setup();
        let out = replay_warp(&cfg, &mut caches, &mut ctr, 0, &[]);
        assert_eq!(out.cycles, 0);
        assert_eq!(ctr.inst_executed, 0);
    }
}
