//! ADDS-style asynchronous Δ-stepping (Wang, Fussell & Lin, PPoPP'21).
//!
//! The published algorithm's core, reimplemented on the shared
//! simulator:
//!
//! * **asynchronous** execution — one persistent kernel processes a
//!   work queue without inter-layer barriers (its headline feature);
//! * an **approximate priority queue**: a near queue for vertices
//!   within the current distance threshold, deferral of everything
//!   else, and a threshold that advances (with simple dynamic Δ
//!   growth) when the near side drains;
//! * **thread-per-vertex** processing of the *unsorted* graph — no
//!   property reordering, no warp/block gangs, no dynamic parallelism.
//!
//! The last point is what the paper's Fig. 9/10 comparison leans on:
//! ADDS executes more warp-level load/atomic instructions and suffers
//! the load imbalance RDBS's ADWL removes, while remaining far more
//! work-efficient than a plain synchronous baseline.

use rdbs_core::gpu::buffers::{DeviceQueue, GraphBuffers};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{default_delta, Csr, VertexId, Weight, INF};
use rdbs_gpu_sim::{Counters, Device, DeviceConfig};
use std::cell::Cell;

/// Run ADDS from `source` on an existing device.
pub fn adds(device: &mut Device, graph: &Csr, source: VertexId, delta0: Weight) -> SsspResult {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    assert!(delta0 >= 1);
    let gb = GraphBuffers::upload(device, graph);
    gb.init_source(device, source);
    let queue = DeviceQueue::new(device, "adds_near", n);
    let pending = device.alloc("adds_pending", n as usize);
    let scan_out = device.alloc("adds_scan", 2);

    let checks = Cell::new(0u64);
    let updates = Cell::new(0u64);
    let mut stats = UpdateStats::default();

    device.write_word(pending, source as usize, 1);
    queue.host_push(device, source);

    let mut lo: u64 = 0;
    let mut delta: Weight = delta0;

    let mut session = device.wave_session("adds_async");
    loop {
        let hi = lo + delta as u64;
        let mut active_this_bucket = 0u64;
        // Asynchronously drain the near queue.
        loop {
            let items = queue.drain(session.device());
            if items.is_empty() {
                break;
            }
            active_this_bucket += items.len() as u64;
            let items_ref = &items;
            let checks_ref = &checks;
            let updates_ref = &updates;
            session.wave(items.len() as u64, 1, move |lane| {
                let i = lane.tid() as usize;
                let _ = lane.ld(queue.data, i as u32);
                let v = items_ref[i];
                lane.st(pending, v, 0);
                let dv = lane.ld(gb.dist, v);
                lane.alu(2);
                let dvu = dv as u64;
                if dvu < lo || dvu >= hi {
                    return; // stale or deferred
                }
                let start = lane.ld(gb.row, v);
                let end = lane.ld(gb.row, v + 1);
                // ADDS relaxes *all* edges of a popped vertex eagerly —
                // its approximate priority defers vertices, not edges —
                // so heavy edges fire from not-yet-final sources. That
                // is the extra update volume the paper's Fig. 9 counts.
                for e in start..end {
                    let w = lane.ld(gb.wt, e);
                    let v2 = lane.ld(gb.adj, e);
                    lane.alu(2); // weight compare + address arithmetic
                    let nd = dv.saturating_add(w);
                    checks_ref.set(checks_ref.get() + 1);
                    let dv2 = lane.ld(gb.dist, v2);
                    if nd < dv2 {
                        let old = lane.atomic_min(gb.dist, v2, nd);
                        if nd < old {
                            updates_ref.set(updates_ref.get() + 1);
                            if (nd as u64) < hi && lane.atomic_exch(pending, v2, 1) == 0 {
                                queue.push(lane, v2);
                            }
                        }
                    }
                }
            });
        }
        stats.bucket_active.push(active_this_bucket);
        stats.phase1_layers.push(1);
        session.device().charge_barrier();

        // ADDS grows Δ dynamically when the frontier thins out; model
        // the published behaviour with a doubling heuristic.
        if active_this_bucket < n as u64 / 64 {
            delta = delta.saturating_mul(2);
        }

        let mut next_lo = hi;
        let mut next_hi = next_lo + delta as u64;
        let mut done = false;
        loop {
            let dev = session.device();
            dev.write_word(scan_out, 0, 0);
            dev.write_word(scan_out, 1, INF);
            session.wave(n as u64, 1, move |lane| {
                let v = lane.tid() as u32;
                let dv = lane.ld(gb.dist, v);
                lane.alu(2);
                if dv == INF {
                    return;
                }
                let dvu = dv as u64;
                if dvu < next_lo {
                    return;
                }
                if dvu < next_hi {
                    lane.atomic_add(scan_out, 0, 1);
                    if lane.atomic_exch(pending, v, 1) == 0 {
                        queue.push(lane, v);
                    }
                } else {
                    lane.atomic_min(scan_out, 1, dv);
                }
            });
            let dev = session.device();
            let active = dev.read_word(scan_out, 0);
            let min_beyond = dev.read_word(scan_out, 1);
            if active > 0 {
                break;
            }
            if min_beyond == INF {
                done = true;
                break;
            }
            next_lo = min_beyond as u64;
            next_hi = next_lo + delta as u64;
        }
        if done {
            break;
        }
        lo = next_lo;
    }
    let _ = session;

    stats.checks = checks.get();
    stats.total_updates = updates.get();
    let dist = gb.download_dist(device);
    SsspResult { source, dist, stats }
}

/// Outcome bundle matching `rdbs_core::gpu::GpuRun` for the harness.
pub struct AddsRun {
    pub result: SsspResult,
    pub elapsed_ms: f64,
    pub counters: Counters,
    pub gteps: f64,
}

/// One-call runner on a fresh device.
pub fn run_adds(graph: &Csr, source: VertexId, device_config: DeviceConfig) -> AddsRun {
    let mut device = Device::new(device_config);
    let delta0 = default_delta(graph);
    let result = adds(&mut device, graph, source, delta0);
    let elapsed_ms = device.elapsed_ms();
    let gteps =
        if elapsed_ms > 0.0 { graph.num_edges() as f64 / (elapsed_ms * 1e-3) / 1e9 } else { 0.0 };
    AddsRun { result, elapsed_ms, counters: device.counters().clone(), gteps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_core::validate::check_against;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, preferential_attachment, uniform_weights};

    fn graph(seed: u64, n: usize, m: usize) -> Csr {
        let mut el = erdos_renyi(n, m, seed);
        uniform_weights(&mut el, seed + 7);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let g = graph(seed, 90, 450);
            let oracle = dijkstra(&g, 0);
            let mut d = Device::new(DeviceConfig::test_tiny());
            let r = adds(&mut d, &g, 0, 120);
            check_against(&oracle.dist, &r.dist).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        }
    }

    #[test]
    fn powerlaw_and_disconnected() {
        let mut el = preferential_attachment(400, 3, 2);
        uniform_weights(&mut el, 8);
        let g = build_undirected(&el);
        let oracle = dijkstra(&g, 5);
        let r = run_adds(&g, 5, DeviceConfig::test_tiny());
        check_against(&oracle.dist, &r.result.dist).unwrap();
        assert!(r.elapsed_ms > 0.0 && r.gteps > 0.0);

        let el = EdgeList::from_edges(3, vec![(0, 1, 9)]);
        let g = build_undirected(&el);
        let r = run_adds(&g, 0, DeviceConfig::test_tiny());
        assert_eq!(r.result.dist, vec![0, 9, INF]);
    }

    #[test]
    fn single_persistent_launch_for_phase1() {
        let g = graph(3, 80, 400);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let _ = adds(&mut d, &g, 0, 100);
        // The whole run lives in one persistent kernel session.
        assert_eq!(d.counters().kernel_launches, 1);
        assert_eq!(d.counters().child_kernel_launches, 0, "ADDS has no dynamic parallelism");
    }

    #[test]
    fn work_ratio_reasonable() {
        let g = graph(11, 200, 1600);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = adds(&mut d, &g, 0, 100);
        let ratio = r.work_ratio().unwrap();
        assert!((1.0..10.0).contains(&ratio), "ratio {ratio}");
    }
}
