//! Frontier-based (data-driven) GPU Bellman-Ford.
//!
//! A stronger synchronous baseline than the paper's BL: instead of
//! launching a thread for every vertex of the graph each iteration
//! (topology-driven), only the *frontier* — vertices improved in the
//! previous iteration — is processed, with a pending-flag dedup. This
//! is the workfront-sweep style of Davidson et al. and what most
//! modern systems call data-driven push mode (SEP-Graph's terminology,
//! §6.2). Still bucket-less and synchronous, so work efficiency and
//! convergence remain far from RDBS.

use rdbs_core::gpu::buffers::{DeviceQueue, GraphBuffers};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::Device;
use std::cell::Cell;

/// Run frontier Bellman-Ford from `source` on an existing device.
pub fn frontier_bf(device: &mut Device, graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    let gb = GraphBuffers::upload(device, graph);
    gb.init_source(device, source);
    let queue_a = DeviceQueue::new(device, "bf_frontier", n);
    let queue_b = DeviceQueue::new(device, "bf_next", n);
    let pending = device.alloc("bf_pending", n as usize);

    let mut stats = UpdateStats::default();
    let total_updates = Cell::new(0u64);
    let checks = Cell::new(0u64);

    device.write_word(pending, source as usize, 1);
    queue_a.host_push(device, source);
    let (mut cur, mut next) = (&queue_a, &queue_b);
    let mut rounds = 0u32;
    loop {
        let frontier = cur.drain(device);
        if frontier.is_empty() {
            break;
        }
        rounds += 1;
        stats.peak_bucket_layer_active.push(frontier.len() as u64);
        let frontier_ref = &frontier;
        let updates_ref = &total_updates;
        let checks_ref = &checks;
        let q = *cur;
        let nx = *next;
        device.launch("frontier_bf_relax", frontier.len() as u64, move |lane| {
            let i = lane.tid() as usize;
            let _ = lane.ld(q.data, i as u32);
            let u = frontier_ref[i];
            lane.st(pending, u, 0);
            // Volatile: races with concurrent improvers' handshake.
            let du = lane.ld_volatile(gb.dist, u);
            let start = lane.ld(gb.row, u);
            let end = lane.ld(gb.row, u + 1);
            for e in start..end {
                let v = lane.ld(gb.adj, e);
                let w = lane.ld(gb.wt, e);
                lane.alu(2);
                let nd = du.saturating_add(w);
                checks_ref.set(checks_ref.get() + 1);
                let dv = lane.ld(gb.dist, v);
                if nd < dv {
                    let old = lane.atomic_min(gb.dist, v, nd);
                    if nd < old {
                        updates_ref.set(updates_ref.get() + 1);
                        if lane.atomic_exch(pending, v, 1) == 0 {
                            nx.push(lane, v);
                        }
                    }
                }
            }
        });
        device.charge_barrier();
        std::mem::swap(&mut cur, &mut next);
    }

    stats.phase1_layers.push(rounds);
    stats.total_updates = total_updates.get();
    stats.checks = checks.get();
    let dist = gb.download_dist(device);
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_core::validate::check_against;
    use rdbs_core::INF;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 700, seed);
        uniform_weights(&mut el, seed + 8);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            let mut d = Device::new(DeviceConfig::test_tiny());
            let r = frontier_bf(&mut d, &g, 0);
            check_against(&oracle.dist, &r.dist).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        }
    }

    #[test]
    fn processes_fewer_threads_than_topology_bl() {
        let g = graph(7);
        let mut d_front = Device::new(DeviceConfig::test_tiny());
        let _ = frontier_bf(&mut d_front, &g, 0);
        let mut d_topo = Device::new(DeviceConfig::test_tiny());
        let _ = rdbs_core::gpu::bl(&mut d_topo, &g, 0);
        assert!(
            d_front.counters().threads < d_topo.counters().threads,
            "frontier {} vs topology {}",
            d_front.counters().threads,
            d_topo.counters().threads
        );
    }

    #[test]
    fn disconnected_and_trivial() {
        let g = build_undirected(&EdgeList::from_edges(3, vec![(0, 1, 4)]));
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = frontier_bf(&mut d, &g, 0);
        assert_eq!(r.dist, vec![0, 4, INF]);
        assert!(r.stats.checks >= r.stats.total_updates);
    }
}
