//! Comparator SSSP implementations the paper evaluates against.
//!
//! * [`adds()`] — an ADDS-style asynchronous Δ-stepping on the simulated
//!   GPU (Wang, Fussell & Lin, PPoPP'21): the paper's state-of-the-art
//!   GPU comparator in Table 2 / Figs. 9–11.
//! * [`near_far()`] — Davidson et al.'s Near-Far worklist method
//!   (IPDPS'14), the classic two-bucket GPU Δ-stepping.
//! * [`pq_delta_stepping`] — a PQ-Δ*-style lazy-batched priority-queue stepping
//!   algorithm on native CPU threads (Dong et al., SPAA'21): the
//!   paper's CPU comparator in Table 2.
//!
//! All of them are validated against the Dijkstra oracle in
//! `rdbs-core`, and the GPU ones run on the same simulator as RDBS so
//! counter comparisons (Fig. 10) are apples-to-apples.

pub mod adds;
pub mod frontier_bf;
pub mod near_far;
pub mod pq_delta;
pub mod sep_graph;

pub use adds::{adds, run_adds};
pub use frontier_bf::frontier_bf;
pub use near_far::near_far;
pub use pq_delta::{pq_delta_stepping, rho_stepping};
pub use sep_graph::sep_graph;
