//! Near-Far worklist SSSP (Davidson et al., IPDPS'14).
//!
//! The classic two-bucket GPU method the paper cites in §1: only two
//! piles — *near* (tentative distance below the current threshold) and
//! *far* (everything else). The near pile is processed with
//! synchronous Bellman-Ford-style sweeps until empty, then the
//! threshold advances by Δ and the far pile is split again. Work
//! efficiency sits between Bellman-Ford and full Δ-stepping ("it only
//! uses two buckets ... leading to work inefficiency").

use rdbs_core::gpu::buffers::{DeviceQueue, GraphBuffers};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{Csr, VertexId, Weight, INF};
use rdbs_gpu_sim::Device;
use std::cell::Cell;

/// Run Near-Far from `source` on an existing device.
pub fn near_far(device: &mut Device, graph: &Csr, source: VertexId, delta: Weight) -> SsspResult {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    assert!(delta >= 1);
    let gb = GraphBuffers::upload(device, graph);
    gb.init_source(device, source);
    let near = DeviceQueue::new(device, "near", n);
    let pending = device.alloc("nf_pending", n as usize);
    let scan_out = device.alloc("nf_scan", 2);

    let checks = Cell::new(0u64);
    let updates = Cell::new(0u64);
    let mut stats = UpdateStats::default();

    device.write_word(pending, source as usize, 1);
    near.host_push(device, source);
    let mut threshold: u64 = delta as u64;

    loop {
        // Process the near pile with synchronous sweeps.
        let mut sweeps = 0u32;
        let mut active = 0u64;
        loop {
            let items = near.drain(device);
            if items.is_empty() {
                break;
            }
            sweeps += 1;
            active += items.len() as u64;
            let items_ref = &items;
            let checks_ref = &checks;
            let updates_ref = &updates;
            device.launch("near_far_sweep", items.len() as u64, move |lane| {
                let i = lane.tid() as usize;
                let _ = lane.ld(near.data, i as u32);
                let v = items_ref[i];
                lane.st(pending, v, 0);
                // Volatile: races with concurrent improvers' handshake.
                let dv = lane.ld_volatile(gb.dist, v);
                lane.alu(2);
                if dv as u64 >= threshold {
                    return; // fell into far
                }
                let start = lane.ld(gb.row, v);
                let end = lane.ld(gb.row, v + 1);
                for e in start..end {
                    let w = lane.ld(gb.wt, e);
                    let v2 = lane.ld(gb.adj, e);
                    lane.alu(1);
                    let nd = dv.saturating_add(w);
                    checks_ref.set(checks_ref.get() + 1);
                    let dv2 = lane.ld(gb.dist, v2);
                    if nd < dv2 {
                        let old = lane.atomic_min(gb.dist, v2, nd);
                        if nd < old {
                            updates_ref.set(updates_ref.get() + 1);
                            // Only near-side improvements re-enter now.
                            if (nd as u64) < threshold && lane.atomic_exch(pending, v2, 1) == 0 {
                                near.push(lane, v2);
                            }
                        }
                    }
                }
            });
            device.charge_barrier();
        }
        stats.phase1_layers.push(sweeps);
        stats.bucket_active.push(active);

        // Split the far pile: advance the threshold, refill near.
        let mut next_threshold = threshold + delta as u64;
        let mut done = false;
        loop {
            device.write_word(scan_out, 0, 0);
            device.write_word(scan_out, 1, INF);
            let lo = threshold;
            let hi = next_threshold;
            device.launch("far_split", n as u64, move |lane| {
                let v = lane.tid() as u32;
                let dv = lane.ld(gb.dist, v);
                lane.alu(2);
                if dv == INF {
                    return;
                }
                let dvu = dv as u64;
                if dvu < lo {
                    return;
                }
                if dvu < hi {
                    lane.atomic_add(scan_out, 0, 1);
                    if lane.atomic_exch(pending, v, 1) == 0 {
                        near.push(lane, v);
                    }
                } else {
                    lane.atomic_min(scan_out, 1, dv);
                }
            });
            let count = device.read_word(scan_out, 0);
            let min_beyond = device.read_word(scan_out, 1);
            if count > 0 {
                break;
            }
            if min_beyond == INF {
                done = true;
                break;
            }
            next_threshold = min_beyond as u64 + delta as u64;
        }
        if done {
            break;
        }
        threshold = next_threshold;
    }

    stats.checks = checks.get();
    stats.total_updates = updates.get();
    let dist = gb.download_dist(device);
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_core::validate::check_against;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(100, 500, seed);
        uniform_weights(&mut el, seed + 4);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            let mut d = Device::new(DeviceConfig::test_tiny());
            let r = near_far(&mut d, &g, 0, 150);
            check_against(&oracle.dist, &r.dist).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        }
    }

    #[test]
    fn heavy_path_with_jumps() {
        let el = EdgeList::from_edges(4, (0..3).map(|i| (i, i + 1, 900)).collect());
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let r = near_far(&mut d, &g, 0, 100);
        assert_eq!(r.dist, vec![0, 900, 1800, 2700]);
    }

    #[test]
    fn uses_synchronous_launches() {
        let g = graph(2);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let _ = near_far(&mut d, &g, 0, 200);
        // Sync mode: many kernel launches and barriers.
        assert!(d.counters().kernel_launches > 2);
        assert!(d.counters().barriers > 0);
    }
}
