//! SEP-Graph-style hybrid SSSP (Wang et al., PPoPP'19).
//!
//! §6.2: *"SEP-Graph implements a highly efficient software framework
//! ... It automatically switches between Sync or Async, Push or Pull,
//! and Data-driven or Topology-driven to achieve the shortest
//! execution time."* This baseline reproduces that adaptive-switching
//! execution for SSSP:
//!
//! * **push / data-driven** when the frontier is small: one thread per
//!   frontier vertex relaxes its out-edges (as in the other
//!   data-driven baselines);
//! * **pull / topology-driven** when the frontier covers a large
//!   fraction of the graph: one thread per vertex scans its *incoming*
//!   neighbours (the same adjacency, since the evaluation graphs are
//!   symmetrized) and lowers its own distance — no atomics needed, at
//!   the cost of touching every vertex;
//! * **async** within a round via a persistent-kernel wave when the
//!   previous round was push-mode and small (cheap), **sync** with a
//!   barrier otherwise.
//!
//! The paper's criticism — "SEP ignores load balancing issues" — holds
//! here too: both modes are thread-per-vertex.

use rdbs_core::gpu::buffers::{DeviceQueue, GraphBuffers};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{Csr, VertexId, INF};
use rdbs_gpu_sim::Device;
use std::cell::Cell;

/// Fraction of `n` above which the engine switches to pull mode.
const PULL_THRESHOLD: f64 = 0.10;
/// Fraction of `n` below which push rounds run asynchronously.
const ASYNC_THRESHOLD: f64 = 0.02;

/// Which mode a round executed in (exposed for tests/analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    PushAsync,
    PushSync,
    PullSync,
}

/// Run the hybrid SSSP; returns the result and the mode sequence.
pub fn sep_graph(device: &mut Device, graph: &Csr, source: VertexId) -> (SsspResult, Vec<Mode>) {
    let n = graph.num_vertices() as u32;
    assert!(source < n, "source out of range");
    let gb = GraphBuffers::upload(device, graph);
    gb.init_source(device, source);
    let queue_a = DeviceQueue::new(device, "sep_frontier", n);
    let queue_b = DeviceQueue::new(device, "sep_next", n);
    let pending = device.alloc("sep_pending", n as usize);
    let progress = device.alloc("sep_progress", 1);

    let checks = Cell::new(0u64);
    let updates = Cell::new(0u64);
    let mut stats = UpdateStats::default();
    let mut modes: Vec<Mode> = Vec::new();

    device.write_word(pending, source as usize, 1);
    queue_a.host_push(device, source);
    let (mut cur, mut next) = (&queue_a, &queue_b);
    // One persistent session covers the async rounds.
    device.charge_kernel_launch();

    loop {
        let frontier = cur.drain(device);
        if frontier.is_empty() {
            break;
        }
        stats.peak_bucket_layer_active.push(frontier.len() as u64);
        let frac = frontier.len() as f64 / n as f64;
        let mode = if frac >= PULL_THRESHOLD {
            Mode::PullSync
        } else if frac <= ASYNC_THRESHOLD {
            Mode::PushAsync
        } else {
            Mode::PushSync
        };
        modes.push(mode);

        match mode {
            Mode::PushAsync | Mode::PushSync => {
                let frontier_ref = &frontier;
                let checks_ref = &checks;
                let updates_ref = &updates;
                let q = *cur;
                let nx = *next;
                let body = move |lane: &mut rdbs_gpu_sim::Lane<'_>| {
                    let i = lane.tid() as usize;
                    let _ = lane.ld(q.data, i as u32);
                    let u = frontier_ref[i];
                    lane.st(pending, u, 0);
                    let du = lane.ld_volatile(gb.dist, u);
                    let start = lane.ld(gb.row, u);
                    let end = lane.ld(gb.row, u + 1);
                    for e in start..end {
                        let v = lane.ld(gb.adj, e);
                        let w = lane.ld(gb.wt, e);
                        lane.alu(2);
                        let nd = du.saturating_add(w);
                        checks_ref.set(checks_ref.get() + 1);
                        let dv = lane.ld(gb.dist, v);
                        if nd < dv {
                            let old = lane.atomic_min(gb.dist, v, nd);
                            if nd < old {
                                updates_ref.set(updates_ref.get() + 1);
                                if lane.atomic_exch(pending, v, 1) == 0 {
                                    nx.push(lane, v);
                                }
                            }
                        }
                    }
                };
                if mode == Mode::PushAsync {
                    device.wave("sep_push_async", frontier.len() as u64, 1, body);
                } else {
                    device.launch("sep_push_sync", frontier.len() as u64, body);
                    device.charge_barrier();
                }
                std::mem::swap(&mut cur, &mut next);
            }
            Mode::PullSync => {
                // Topology-driven pull: every vertex lowers itself from
                // its (symmetric) neighbours — plain stores, no atomics.
                device.write_word(progress, 0, 0);
                // Clear the pending flags the push rounds left behind.
                for &u in &frontier {
                    device.write_word(pending, u as usize, 0);
                }
                let checks_ref = &checks;
                let updates_ref = &updates;
                let nx = *next;
                device.launch("sep_pull", n as u64, move |lane| {
                    let v = lane.tid() as u32;
                    let dv = lane.ld(gb.dist, v);
                    let start = lane.ld(gb.row, v);
                    let end = lane.ld(gb.row, v + 1);
                    let mut best = dv;
                    for e in start..end {
                        let u = lane.ld(gb.adj, e);
                        let w = lane.ld(gb.wt, e);
                        lane.alu(2);
                        let du = lane.ld(gb.dist, u);
                        checks_ref.set(checks_ref.get() + 1);
                        if du != INF {
                            best = best.min(du.saturating_add(w));
                        }
                    }
                    if best < dv {
                        lane.st(gb.dist, v, best);
                        updates_ref.set(updates_ref.get() + 1);
                        lane.st(progress, 0, 1);
                        if lane.atomic_exch(pending, v, 1) == 0 {
                            nx.push(lane, v);
                        }
                    }
                });
                device.charge_barrier();
                std::mem::swap(&mut cur, &mut next);
                if device.read_word(progress, 0) == 0 {
                    // Pull made no progress: the collected frontier is
                    // final garbage; drain and stop.
                    let _ = cur.drain(device);
                }
            }
        }
    }

    stats.checks = checks.get();
    stats.total_updates = updates.get();
    stats.phase1_layers.push(modes.len() as u32);
    let dist = gb.download_dist(device);
    (SsspResult { source, dist, stats }, modes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_core::validate::check_against;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, preferential_attachment, uniform_weights};

    fn graph(seed: u64, n: usize, m: usize) -> Csr {
        let mut el = erdos_renyi(n, m, seed);
        uniform_weights(&mut el, seed + 13);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..4 {
            let g = graph(seed, 150, 900);
            let oracle = dijkstra(&g, 0);
            let mut d = Device::new(DeviceConfig::test_tiny());
            let (r, _) = sep_graph(&mut d, &g, 0);
            check_against(&oracle.dist, &r.dist).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        }
    }

    #[test]
    fn switches_modes_on_dense_graph() {
        // A dense expander drives the frontier above the pull
        // threshold mid-search.
        let g = graph(9, 300, 4000);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let (r, modes) = sep_graph(&mut d, &g, 0);
        check_against(&dijkstra(&g, 0).dist, &r.dist).unwrap();
        assert!(modes.contains(&Mode::PushAsync), "starts in async push: {modes:?}");
        assert!(modes.contains(&Mode::PullSync), "dense mid-phase must pull: {modes:?}");
    }

    #[test]
    fn stays_push_on_high_diameter_graph() {
        // On a long path the frontier never exceeds a couple of
        // vertices, so the engine must stay in (async) push mode.
        let el = EdgeList::from_edges(300, (0..299).map(|i| (i, i + 1, 7)).collect());
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let (r, modes) = sep_graph(&mut d, &g, 0);
        check_against(&dijkstra(&g, 0).dist, &r.dist).unwrap();
        assert!(
            modes.iter().all(|&m| m == Mode::PushAsync),
            "tiny frontiers must stay async push: {modes:?}"
        );
        let _ = preferential_attachment(10, 2, 1); // keep import used
    }

    #[test]
    fn pull_rounds_use_no_frontier_atomic_min() {
        // Pull mode writes with plain stores; a fully-pull round on a
        // clique should record zero atomic-min conflicts on dist.
        let n = 40u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b, 1 + (a + b) % 100));
            }
        }
        let mut el = EdgeList::from_edges(n as usize, edges);
        uniform_weights(&mut el, 8);
        let g = build_undirected(&el);
        let mut d = Device::new(DeviceConfig::test_tiny());
        let (r, modes) = sep_graph(&mut d, &g, 0);
        check_against(&dijkstra(&g, 0).dist, &r.dist).unwrap();
        assert!(modes.contains(&Mode::PullSync));
    }
}
