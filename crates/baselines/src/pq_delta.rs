//! PQ-Δ*-style stepping on the CPU (Dong, Gu, Sun & Zhang, SPAA'21).
//!
//! The paper's CPU comparator uses a **lazy-batched priority queue**
//! (LAB-PQ): instead of maintaining an exact priority order, threads
//! repeatedly extract a *batch* of the approximately-smallest tentative
//! distances and relax them in parallel; decrease-key is "lazy" — a
//! vertex is simply re-inserted and stale entries are skipped on
//! extraction. With batch size 1 this degenerates to Dijkstra; with
//! huge batches, to Bellman-Ford — the Δ*-stepping sweet spot lies
//! between, and the batch bound plays the role of Δ*.
//!
//! Wall-clock time of this implementation (on native threads via
//! crossbeam) is what Table 2's CPU column reports.

use parking_lot::Mutex;
use rdbs_core::cpu::fetch_min;
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{Csr, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Lazy-batched priority-queue stepping with `threads` workers.
///
/// `batch_hint` bounds how many (approximately smallest) entries are
/// extracted per step; `None` picks `max(64, n / 64)`, which behaves
/// like a well-tuned Δ*.
pub fn pq_delta_stepping(
    graph: &Csr,
    source: VertexId,
    threads: usize,
    batch_hint: Option<usize>,
) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(threads >= 1);
    let batch = batch_hint.unwrap_or_else(|| (n / 64).max(64));
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let updates = AtomicU64::new(0);
    let checks = AtomicU64::new(0);

    // The lazy queue: stale entries tolerated, skipped at extraction.
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    let mut stats = UpdateStats::default();
    let mut steps = 0u32;

    while !heap.is_empty() {
        // Lazy batch extraction: up to `batch` non-stale entries that
        // share the smallest key region.
        let mut frontier: Vec<VertexId> = Vec::with_capacity(batch);
        while frontier.len() < batch {
            let Some(Reverse((d, v))) = heap.pop() else { break };
            if dist[v as usize].load(Ordering::Relaxed) != d {
                continue; // stale (lazy decrease-key)
            }
            frontier.push(v);
        }
        if frontier.is_empty() {
            break;
        }
        steps += 1;
        stats.bucket_active.push(frontier.len() as u64);

        // Parallel relaxation of the batch.
        let chunk = frontier.len().div_ceil(threads);
        let outputs = Mutex::new(Vec::<(VertexId, u32)>::new());
        crossbeam::scope(|scope| {
            for part in frontier.chunks(chunk) {
                let outputs = &outputs;
                let dist = &dist;
                let updates = &updates;
                let checks = &checks;
                scope.spawn(move |_| {
                    let mut local: Vec<(VertexId, u32)> = Vec::new();
                    let mut lu = 0u64;
                    let mut lc = 0u64;
                    for &v in part {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        for (u, w) in graph.edges(v) {
                            lc += 1;
                            let nd = dv.saturating_add(w);
                            if nd < dist[u as usize].load(Ordering::Relaxed) {
                                let old = fetch_min(&dist[u as usize], nd);
                                if nd < old {
                                    lu += 1;
                                    local.push((u, nd));
                                }
                            }
                        }
                    }
                    updates.fetch_add(lu, Ordering::Relaxed);
                    checks.fetch_add(lc, Ordering::Relaxed);
                    if !local.is_empty() {
                        outputs.lock().extend(local);
                    }
                });
            }
        })
        .expect("pq-delta scope failed");

        for (v, d) in outputs.into_inner() {
            // Lazy insert: the entry may already be stale; fine.
            if dist[v as usize].load(Ordering::Relaxed) == d {
                heap.push(Reverse((d, v)));
            }
        }
    }

    stats.phase1_layers.push(steps);
    stats.total_updates = updates.load(Ordering::Relaxed);
    stats.checks = checks.load(Ordering::Relaxed);
    let dist = dist.into_iter().map(std::sync::atomic::AtomicU32::into_inner).collect();
    SsspResult { source, dist, stats }
}

/// ρ-stepping (the third algorithm of Dong et al., SPAA'21): instead
/// of a fixed batch size, each step extracts *all* entries whose key
/// is within the ρ-quantile of the current queue — the batch adapts to
/// the frontier's distance profile. `rho` is the quantile (0 → one
/// vertex ≈ Dijkstra; 1 → whole queue ≈ Bellman-Ford).
pub fn rho_stepping(graph: &Csr, source: VertexId, threads: usize, rho: f64) -> SsspResult {
    assert!((0.0..=1.0).contains(&rho), "rho is a quantile");
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let updates = AtomicU64::new(0);
    let checks = AtomicU64::new(0);

    let mut queue: Vec<(u32, VertexId)> = vec![(0, source)];
    let mut stats = UpdateStats::default();
    let mut steps = 0u32;

    while !queue.is_empty() {
        // Drop stale entries, then split at the rho-quantile key.
        queue.retain(|&(d, v)| dist[v as usize].load(Ordering::Relaxed) == d);
        if queue.is_empty() {
            break;
        }
        let idx = ((queue.len() as f64 * rho) as usize).min(queue.len() - 1);
        let threshold = {
            let mut keys: Vec<u32> = queue.iter().map(|&(d, _)| d).collect();
            let (_, kth, _) = keys.select_nth_unstable(idx);
            *kth
        };
        let (batch, rest): (Vec<_>, Vec<_>) = queue.into_iter().partition(|&(d, _)| d <= threshold);
        queue = rest;
        steps += 1;
        stats.bucket_active.push(batch.len() as u64);

        let chunk = batch.len().div_ceil(threads);
        let outputs = Mutex::new(Vec::<(VertexId, u32)>::new());
        crossbeam::scope(|scope| {
            for part in batch.chunks(chunk) {
                let outputs = &outputs;
                let dist = &dist;
                let updates = &updates;
                let checks = &checks;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for &(_, v) in part {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        for (u, w) in graph.edges(v) {
                            checks.fetch_add(1, Ordering::Relaxed);
                            let nd = dv.saturating_add(w);
                            if nd < dist[u as usize].load(Ordering::Relaxed) {
                                let old = fetch_min(&dist[u as usize], nd);
                                if nd < old {
                                    updates.fetch_add(1, Ordering::Relaxed);
                                    local.push((u, nd));
                                }
                            }
                        }
                    }
                    if !local.is_empty() {
                        outputs.lock().extend(local);
                    }
                });
            }
        })
        .expect("rho-stepping scope failed");
        for (v, d) in outputs.into_inner() {
            if dist[v as usize].load(Ordering::Relaxed) == d {
                queue.push((d, v));
            }
        }
    }

    stats.phase1_layers.push(steps);
    stats.total_updates = updates.load(Ordering::Relaxed);
    stats.checks = checks.load(Ordering::Relaxed);
    let dist = dist.into_iter().map(std::sync::atomic::AtomicU32::into_inner).collect();
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_core::seq::dijkstra;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(150, 900, seed);
        uniform_weights(&mut el, seed + 6);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..3 {
            let g = graph(seed);
            let oracle = dijkstra(&g, 0);
            for threads in [1, 2, 4] {
                let r = pq_delta_stepping(&g, 0, threads, None);
                assert_eq!(r.dist, oracle.dist, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn batch_of_one_is_dijkstra() {
        let g = graph(5);
        let oracle = dijkstra(&g, 0);
        let r = pq_delta_stepping(&g, 0, 1, Some(1));
        assert_eq!(r.dist, oracle.dist);
        // Batch-1 extraction settles in near-priority order, so work
        // stays close to Dijkstra's.
        assert!(r.stats.total_updates <= oracle.stats.total_updates * 2);
    }

    #[test]
    fn huge_batch_still_correct() {
        let g = graph(6);
        let oracle = dijkstra(&g, 0);
        let r = pq_delta_stepping(&g, 0, 2, Some(1_000_000));
        assert_eq!(r.dist, oracle.dist);
    }

    #[test]
    fn rho_stepping_matches_dijkstra_across_quantiles() {
        for seed in 0..2 {
            let g = graph(seed + 20);
            let oracle = dijkstra(&g, 0);
            for rho in [0.0, 0.1, 0.5, 1.0] {
                let r = rho_stepping(&g, 0, 2, rho);
                assert_eq!(r.dist, oracle.dist, "seed {seed} rho {rho}");
            }
        }
    }

    #[test]
    fn rho_controls_step_count() {
        let g = graph(9);
        let tight = rho_stepping(&g, 0, 2, 0.05);
        let loose = rho_stepping(&g, 0, 2, 1.0);
        assert!(
            tight.stats.phase1_layers[0] > loose.stats.phase1_layers[0],
            "small rho → more, smaller steps ({} vs {})",
            tight.stats.phase1_layers[0],
            loose.stats.phase1_layers[0]
        );
        // ...and better work efficiency.
        assert!(tight.stats.total_updates <= loose.stats.total_updates);
    }
}
