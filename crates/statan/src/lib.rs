//! Static kernel verifier over the retained access IR.
//!
//! [`verify`] consumes the [`AccessIr`] a device records while armed
//! (see `rdbs_gpu_sim::Device::arm_ir`) and emits typed certificates:
//!
//! * a per-kernel [`Verdict`] — [`Verdict::RaceFree`],
//!   [`Verdict::SanctionedRacy`] (every shared access follows a
//!   sanctioned idiom, cited), or [`Verdict::Racy`] (red, with the
//!   witnessing hazards attached);
//! * a per-queue [`QueueClass`] push-bound certificate
//!   ([`QueueClass::Bounded`] / [`QueueClass::Spilling`] /
//!   [`QueueClass::Overflowing`]);
//! * an advisory gang-divergence lint folded into each kernel
//!   certificate;
//! * a coalescing / atomic-contention report
//!   ([`Analysis::buffers`], [`Analysis::hot_words`]).
//!
//! The verdicts quantify over **all** interleavings of a race window,
//! not the schedule that happened to run: within a window every pair
//! of distinct `(wave, lane)` threads is treated as concurrent, and
//! only barriers, synchronous-launch boundaries, and host drains order
//! windows. A kernel certified `RaceFree` here is race-free under
//! every lane permutation the schedule fuzzer could ever draw.

#![deny(missing_docs)]

use rdbs_gpu_sim::{AccessIr, Hazard, HazardKind};
use std::collections::BTreeMap;

/// Race-freedom verdict for one kernel. Ordered worst-last so
/// [`Ord::max`] is "worst wins" when merging runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No cross-thread hazard of any kind touches this kernel.
    RaceFree,
    /// Cross-thread sharing exists but every instance follows a
    /// sanctioned idiom (atomic-only word, or volatile read of an
    /// atomically-published word). The sanctioning kinds are cited on
    /// the certificate.
    SanctionedRacy,
    /// At least one unsanctioned hazard names this kernel: some
    /// interleaving of the recorded accesses produces a different
    /// result. Red.
    Racy,
}

impl Verdict {
    /// Stable display / baseline name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::RaceFree => "race-free",
            Verdict::SanctionedRacy => "sanctioned-racy",
            Verdict::Racy => "racy",
        }
    }

    /// Inverse of [`Verdict::name`], for baseline files.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "race-free" => Some(Verdict::RaceFree),
            "sanctioned-racy" => Some(Verdict::SanctionedRacy),
            "racy" => Some(Verdict::Racy),
            _ => None,
        }
    }
}

/// Push-bound class for one declared device queue. Ordered worst-last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueueClass {
    /// Every push landed inside the declared capacity; the high-water
    /// mark never crossed it.
    Bounded,
    /// The tail overshot capacity but the queue was declared with a
    /// spill path (MLMQ `try_push` → next level), so no work was lost.
    Spilling,
    /// Pushes were dropped on the floor (overflow counter fired). Red:
    /// lost work means the algorithm silently under-relaxes.
    Overflowing,
}

impl QueueClass {
    /// Stable display / baseline name.
    pub fn name(&self) -> &'static str {
        match self {
            QueueClass::Bounded => "bounded",
            QueueClass::Spilling => "spilling",
            QueueClass::Overflowing => "overflowing",
        }
    }

    /// Inverse of [`QueueClass::name`], for baseline files.
    pub fn parse(s: &str) -> Option<QueueClass> {
        match s {
            "bounded" => Some(QueueClass::Bounded),
            "spilling" => Some(QueueClass::Spilling),
            "overflowing" => Some(QueueClass::Overflowing),
            _ => None,
        }
    }
}

/// Certificate for one kernel: the verdict, its provenance, and the
/// advisory gang-divergence lint counters.
#[derive(Clone, Debug)]
pub struct KernelCertificate {
    /// Kernel name (the label passed to `Device::execute`).
    pub kernel: &'static str,
    /// Schedule-universal race verdict.
    pub verdict: Verdict,
    /// Sanctioned idioms observed (deduplicated, sorted). Non-empty
    /// exactly when the verdict is at least `SanctionedRacy`.
    pub sanctions: Vec<HazardKind>,
    /// Unsanctioned hazards naming this kernel — the evidence behind
    /// a `Racy` verdict. Empty otherwise.
    pub findings: Vec<Hazard>,
    /// Waves launched under this name.
    pub waves: u64,
    /// Widest wave (lanes).
    pub max_lanes: u64,
    /// Consecutive-lane gangs whose op-kind signatures were compared.
    pub gangs_checked: u64,
    /// Gangs whose lanes disagreed on op-kind signature (advisory:
    /// degree loops legitimately diverge).
    pub gangs_divergent: u64,
    /// Gangs whose lanes launched different child-kernel counts.
    pub child_divergent: u64,
}

/// Push-bound certificate for one declared device queue.
#[derive(Clone, Debug)]
pub struct QueueCertificate {
    /// Queue label (shared by MLMQ sub-queues; usages are merged).
    pub label: &'static str,
    /// Largest declared capacity seen for this label.
    pub capacity: u32,
    /// Whether any declaration under this label has a spill path.
    pub spill: bool,
    /// Total device-side pushes.
    pub pushes: u64,
    /// Highest tail value reached within one fill epoch.
    pub high_water: u64,
    /// Most pushes any single race window issued — the static bound
    /// the certifier checks against the capacity class.
    pub max_window_pushes: u64,
    /// Pushes dropped by the overflow counter.
    pub drops: u64,
    /// Resulting class.
    pub class: QueueClass,
}

impl QueueCertificate {
    /// True when the per-window push bound alone already proves the
    /// queue cannot overflow from an empty start: no single window can
    /// fill it past capacity.
    pub fn window_bounded(&self) -> bool {
        self.max_window_pushes <= u64::from(self.capacity)
    }
}

/// The full analysis of one or more devices' retained IR.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Per-kernel certificates, keyed by kernel name.
    pub kernels: BTreeMap<&'static str, KernelCertificate>,
    /// Per-queue certificates, keyed by queue label.
    pub queues: BTreeMap<&'static str, QueueCertificate>,
    /// Lifetime per-buffer traffic and coalescing shape, summed.
    pub buffers: BTreeMap<&'static str, rdbs_gpu_sim::ir::BufferTraffic>,
    /// Per-word atomic counts, summed — feeds [`Analysis::hot_words`].
    pub atomic_sites: BTreeMap<(&'static str, u32), u64>,
    /// Race windows closed across all merged devices.
    pub windows: u64,
    /// Peak retained word summaries in any one window (memory bound).
    pub peak_window_words: u64,
    /// Devices merged into this analysis.
    pub devices: u64,
}

impl Analysis {
    /// Worst verdict across all kernel certificates ([`Verdict::RaceFree`]
    /// when no kernel ran).
    pub fn worst_verdict(&self) -> Verdict {
        self.kernels.values().map(|c| c.verdict).max().unwrap_or(Verdict::RaceFree)
    }

    /// Worst queue class across all queue certificates.
    pub fn worst_queue_class(&self) -> QueueClass {
        self.queues.values().map(|q| q.class).max().unwrap_or(QueueClass::Bounded)
    }

    /// The `k` hottest atomic words, sorted by contention descending
    /// then by (buffer, index) for determinism. This table scopes the
    /// multisplit work: a handful of words absorbing most atomics is
    /// the signature of a bucket-counter bottleneck.
    pub fn hot_words(&self, k: usize) -> Vec<(&'static str, u32, u64)> {
        let mut rows: Vec<_> =
            self.atomic_sites.iter().map(|(&(buf, idx), &n)| (buf, idx, n)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(&b.1)));
        rows.truncate(k);
        rows
    }

    /// Fold another device's (or another run's) analysis into this
    /// one. Verdicts and queue classes take the worst of the two;
    /// counters sum; capacities and high-water marks take the max.
    pub fn merge(&mut self, other: Analysis) {
        for (name, cert) in other.kernels {
            match self.kernels.entry(name) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(cert);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let mine = o.get_mut();
                    mine.verdict = mine.verdict.max(cert.verdict);
                    for s in cert.sanctions {
                        if !mine.sanctions.contains(&s) {
                            mine.sanctions.push(s);
                        }
                    }
                    mine.sanctions.sort_unstable();
                    mine.findings.extend(cert.findings);
                    mine.waves += cert.waves;
                    mine.max_lanes = mine.max_lanes.max(cert.max_lanes);
                    mine.gangs_checked += cert.gangs_checked;
                    mine.gangs_divergent += cert.gangs_divergent;
                    mine.child_divergent += cert.child_divergent;
                }
            }
        }
        for (label, q) in other.queues {
            match self.queues.entry(label) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(q);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let mine = o.get_mut();
                    mine.class = mine.class.max(q.class);
                    mine.capacity = mine.capacity.max(q.capacity);
                    mine.spill |= q.spill;
                    mine.pushes += q.pushes;
                    mine.high_water = mine.high_water.max(q.high_water);
                    mine.max_window_pushes = mine.max_window_pushes.max(q.max_window_pushes);
                    mine.drops += q.drops;
                }
            }
        }
        for (label, t) in other.buffers {
            let mine = self.buffers.entry(label).or_default();
            mine.loads += t.loads;
            mine.stores += t.stores;
            mine.atomics += t.atomics;
            mine.same_word += t.same_word;
            mine.unit_stride += t.unit_stride;
            mine.strided += t.strided;
            mine.scatter += t.scatter;
        }
        for (site, n) in other.atomic_sites {
            *self.atomic_sites.entry(site).or_insert(0) += n;
        }
        self.windows += other.windows;
        self.peak_window_words = self.peak_window_words.max(other.peak_window_words);
        self.devices += other.devices;
    }
}

/// Classify one queue usage record.
fn classify_queue(u: &rdbs_gpu_sim::QueueUsage) -> QueueClass {
    if u.drops > 0 {
        QueueClass::Overflowing
    } else if u.high_water > u64::from(u.decl.capacity) {
        if u.decl.spill {
            QueueClass::Spilling
        } else {
            // Tail past capacity with no spill path and no recorded
            // drop: the push discipline was bypassed. Treat as red.
            QueueClass::Overflowing
        }
    } else {
        QueueClass::Bounded
    }
}

/// Verify one device's retained IR: derive every certificate from the
/// recorded summary. Pure function of the IR — no device access.
pub fn verify(ir: &AccessIr) -> Analysis {
    let mut out = Analysis {
        windows: ir.windows,
        peak_window_words: ir.peak_window_words,
        devices: 1,
        ..Analysis::default()
    };

    for (&name, stats) in &ir.kernels {
        out.kernels.insert(
            name,
            KernelCertificate {
                kernel: name,
                verdict: Verdict::RaceFree,
                sanctions: Vec::new(),
                findings: Vec::new(),
                waves: stats.waves,
                max_lanes: stats.max_lanes,
                gangs_checked: stats.gangs_checked,
                gangs_divergent: stats.gangs_divergent,
                child_divergent: stats.child_divergent,
            },
        );
    }

    for h in &ir.hazards {
        let mut names = [h.accessors[0].kernel, h.accessors[1].kernel];
        names.sort_unstable();
        let both = names[0] != names[1];
        for (i, &name) in names.iter().enumerate() {
            if i == 1 && !both {
                continue;
            }
            let cert = out.kernels.entry(name).or_insert_with(|| KernelCertificate {
                kernel: name,
                verdict: Verdict::RaceFree,
                sanctions: Vec::new(),
                findings: Vec::new(),
                waves: 0,
                max_lanes: 0,
                gangs_checked: 0,
                gangs_divergent: 0,
                child_divergent: 0,
            });
            if h.kind.sanctioned() {
                cert.verdict = cert.verdict.max(Verdict::SanctionedRacy);
                if !cert.sanctions.contains(&h.kind) {
                    cert.sanctions.push(h.kind);
                    cert.sanctions.sort_unstable();
                }
            } else {
                cert.verdict = Verdict::Racy;
                cert.findings.push(h.clone());
            }
        }
    }

    for u in &ir.queues {
        let class = classify_queue(u);
        match out.queues.entry(u.decl.label) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(QueueCertificate {
                    label: u.decl.label,
                    capacity: u.decl.capacity,
                    spill: u.decl.spill,
                    pushes: u.pushes,
                    high_water: u.high_water,
                    max_window_pushes: u.max_window_pushes,
                    drops: u.drops,
                    class,
                });
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                // MLMQ sub-queues share a label: merge usages.
                let mine = o.get_mut();
                mine.class = mine.class.max(class);
                mine.capacity = mine.capacity.max(u.decl.capacity);
                mine.spill |= u.decl.spill;
                mine.pushes += u.pushes;
                mine.high_water = mine.high_water.max(u.high_water);
                mine.max_window_pushes = mine.max_window_pushes.max(u.max_window_pushes);
                mine.drops += u.drops;
            }
        }
    }

    out.buffers = ir.traffic.clone();
    out.atomic_sites = ir.atomic_sites.clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_gpu_sim::ir::BufferTraffic;
    use rdbs_gpu_sim::{IrAccessor, KernelStats, QueueDecl, QueueUsage};

    fn acc(kernel: &'static str, wave: u64, lane: u64) -> IrAccessor {
        IrAccessor { wave, lane, gang: lane, kernel }
    }

    fn hazard(kind: HazardKind, a: &'static str, b: &'static str) -> Hazard {
        Hazard {
            kind,
            buffer: "buf",
            index: 0,
            addr: 0x40,
            accessors: [acc(a, 0, 0), acc(b, 0, 1)],
            snapshot_window: false,
            words: 1,
        }
    }

    fn usage(label: &'static str, capacity: u32, spill: bool, high: u64, drops: u64) -> QueueUsage {
        QueueUsage {
            decl: QueueDecl { label, tail_addr: 0x100, overflow_addr: 0x104, capacity, spill },
            pushes: high,
            high_water: high,
            max_window_pushes: high,
            drops,
        }
    }

    #[test]
    fn verdict_ordering_is_worst_last() {
        assert!(Verdict::RaceFree < Verdict::SanctionedRacy);
        assert!(Verdict::SanctionedRacy < Verdict::Racy);
        assert!(QueueClass::Bounded < QueueClass::Spilling);
        assert!(QueueClass::Spilling < QueueClass::Overflowing);
        for v in [Verdict::RaceFree, Verdict::SanctionedRacy, Verdict::Racy] {
            assert_eq!(Verdict::parse(v.name()), Some(v));
        }
        for c in [QueueClass::Bounded, QueueClass::Spilling, QueueClass::Overflowing] {
            assert_eq!(QueueClass::parse(c.name()), Some(c));
        }
    }

    #[test]
    fn unsanctioned_hazard_yields_racy_with_findings() {
        let mut ir = AccessIr::default();
        ir.kernels.insert("writer", KernelStats::default());
        ir.hazards.push(hazard(HazardKind::WriteWrite, "writer", "writer"));
        let a = verify(&ir);
        let cert = &a.kernels["writer"];
        assert_eq!(cert.verdict, Verdict::Racy);
        assert_eq!(cert.findings.len(), 1);
        assert_eq!(a.worst_verdict(), Verdict::Racy);
    }

    #[test]
    fn sanctioned_only_yields_sanctioned_racy_with_citation() {
        let mut ir = AccessIr::default();
        ir.hazards.push(hazard(HazardKind::AtomicShared, "relax", "relax"));
        ir.hazards.push(hazard(HazardKind::VolatileRead, "relax", "drain"));
        let a = verify(&ir);
        assert_eq!(a.kernels["relax"].verdict, Verdict::SanctionedRacy);
        assert_eq!(
            a.kernels["relax"].sanctions,
            vec![HazardKind::AtomicShared, HazardKind::VolatileRead]
        );
        assert_eq!(a.kernels["drain"].verdict, Verdict::SanctionedRacy);
        assert_eq!(a.kernels["drain"].sanctions, vec![HazardKind::VolatileRead]);
        assert_eq!(a.worst_verdict(), Verdict::SanctionedRacy);
    }

    #[test]
    fn queue_classes_cover_bounded_spilling_overflowing() {
        let mut ir = AccessIr::default();
        ir.queues.push(usage("ok", 64, false, 10, 0));
        ir.queues.push(usage("spilly", 8, true, 20, 0));
        ir.queues.push(usage("lossy", 8, false, 20, 5));
        let a = verify(&ir);
        assert_eq!(a.queues["ok"].class, QueueClass::Bounded);
        assert!(a.queues["ok"].window_bounded());
        assert_eq!(a.queues["spilly"].class, QueueClass::Spilling);
        assert_eq!(a.queues["lossy"].class, QueueClass::Overflowing);
        assert_eq!(a.worst_queue_class(), QueueClass::Overflowing);
    }

    #[test]
    fn mlmq_sub_queue_usages_merge_under_one_label() {
        let mut ir = AccessIr::default();
        ir.queues.push(usage("mlmq_lane", 16, true, 4, 0));
        ir.queues.push(usage("mlmq_lane", 16, true, 30, 0));
        let a = verify(&ir);
        let q = &a.queues["mlmq_lane"];
        assert_eq!(q.class, QueueClass::Spilling);
        assert_eq!(q.pushes, 34);
        assert_eq!(q.high_water, 30);
    }

    #[test]
    fn merge_takes_worst_and_sums() {
        let mut ir1 = AccessIr::default();
        ir1.kernels
            .insert("relax", KernelStats { waves: 2, max_lanes: 32, ..KernelStats::default() });
        ir1.traffic.insert("dist", BufferTraffic { loads: 10, ..BufferTraffic::default() });
        ir1.atomic_sites.insert(("tail", 0), 7);
        let mut ir2 = ir1.clone();
        ir2.hazards.push(hazard(HazardKind::WriteWrite, "relax", "relax"));
        let mut a = verify(&ir1);
        a.merge(verify(&ir2));
        assert_eq!(a.devices, 2);
        assert_eq!(a.kernels["relax"].verdict, Verdict::Racy);
        assert_eq!(a.kernels["relax"].waves, 4);
        assert_eq!(a.buffers["dist"].loads, 20);
        assert_eq!(a.atomic_sites[&("tail", 0)], 14);
        assert_eq!(a.hot_words(1), vec![("tail", 0, 14)]);
    }

    #[test]
    fn hot_words_breaks_count_ties_deterministically() {
        // Equal contention counts must rank by (buffer label, word
        // index) so the table — and everything diffed against it —
        // is stable across runs and merge orders. The multisplit
        // before/after comparison reads this table; a tie flapping
        // between orders would show up as a phantom regression.
        let mut ir = AccessIr::default();
        ir.atomic_sites.insert(("tail_b", 3), 9);
        ir.atomic_sites.insert(("tail_a", 7), 9);
        ir.atomic_sites.insert(("tail_a", 2), 9);
        ir.atomic_sites.insert(("tail_c", 0), 11);
        let a = verify(&ir);
        assert_eq!(
            a.hot_words(4),
            vec![("tail_c", 0, 11), ("tail_a", 2, 9), ("tail_a", 7, 9), ("tail_b", 3, 9)],
            "ties sort by buffer label then word index"
        );
        // Truncation must respect the same order: the top-2 are the
        // strict-count winner and the lexicographically first tie.
        assert_eq!(a.hot_words(2), vec![("tail_c", 0, 11), ("tail_a", 2, 9)]);
    }
}
