//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rdbs_graph::builder::{build_directed, build_undirected, CsrBuilder, EdgeList};
use rdbs_graph::io;
use rdbs_graph::reorder;
use rdbs_graph::{VertexId, Weight};
use std::io::Cursor;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = EdgeList> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 1..1000 as Weight);
        proptest::collection::vec(edge, 0..max_m)
            .prop_map(move |edges| EdgeList::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn builder_invariants(el in arb_edges(64, 256)) {
        let g = build_undirected(&el);
        prop_assert!(g.validate().is_ok());
        // Undirected: every edge has its reverse with the same weight.
        for (u, v, w) in g.all_edges() {
            prop_assert!(g.edges(v).any(|(x, wx)| x == u && wx == w));
        }
        // No self loops, no duplicate (u, v) pairs.
        for u in 0..g.num_vertices() as VertexId {
            let mut seen = std::collections::HashSet::new();
            for (v, _) in g.edges(u) {
                prop_assert_ne!(u, v);
                prop_assert!(seen.insert(v), "duplicate edge ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn directed_raw_preserves_count(el in arb_edges(64, 256)) {
        let g = build_directed(&el);
        prop_assert_eq!(g.num_edges(), el.len());
    }

    #[test]
    fn dedup_keeps_minimum(el in arb_edges(24, 128)) {
        let g = CsrBuilder { symmetrize: false, dedup: true, drop_self_loops: true }.build(&el);
        for (u, v, w) in g.all_edges() {
            let min = el.edges.iter()
                .filter(|&&(a, b, _)| a == u && b == v)
                .map(|&(_, _, w)| w)
                .min()
                .unwrap();
            prop_assert_eq!(w, min);
        }
    }

    #[test]
    fn edge_list_io_roundtrip(el in arb_edges(64, 128)) {
        let mut buf = Vec::new();
        io::write_edge_list(&el, &mut buf).unwrap();
        let back = io::parse_edge_list(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn dimacs_io_roundtrip(el in arb_edges(64, 128)) {
        let mut buf = Vec::new();
        io::write_dimacs(&el, &mut buf).unwrap();
        let back = io::parse_dimacs(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_vertices, el.num_vertices);
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn binary_io_roundtrip(el in arb_edges(64, 128)) {
        let g = build_undirected(&el);
        let mut buf = Vec::new();
        io::write_binary_csr(&g, &mut buf).unwrap();
        let back = io::read_binary_csr(&buf[..]).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn binary_io_roundtrip_with_pro(el in arb_edges(48, 96), delta in 1u32..1500) {
        let (g, _) = reorder::pro(&build_undirected(&el), delta);
        let mut buf = Vec::new();
        io::write_binary_csr(&g, &mut buf).unwrap();
        let back = io::read_binary_csr(&buf[..]).unwrap();
        prop_assert_eq!(back.heavy_offsets(), g.heavy_offsets());
        prop_assert_eq!(back, g);
    }

    #[test]
    fn degree_reorder_is_monotone(el in arb_edges(64, 256)) {
        let g = build_undirected(&el);
        let p = reorder::degree_descending(&g);
        let rg = p.apply_to_graph(&g);
        let degs: Vec<u32> = (0..rg.num_vertices() as VertexId).map(|v| rg.degree(v)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        // Degree multiset preserved.
        let mut a: Vec<u32> = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).collect();
        let mut b = degs;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn heavy_offsets_partition_edges(el in arb_edges(48, 192), delta in 1u32..1500) {
        let g = build_undirected(&el);
        let mut sorted = g.clone();
        reorder::sort_edges_by_weight(&mut sorted);
        reorder::attach_heavy_offsets(&mut sorted, delta);
        let offsets = sorted.heavy_offsets().unwrap();
        for v in 0..sorted.num_vertices() as VertexId {
            let r = sorted.edge_range(v);
            let h = offsets[v as usize] as usize;
            let light = sorted.weights()[r.start..h].iter().filter(|&&w| w < delta).count();
            prop_assert_eq!(light, h - r.start);
            prop_assert!(sorted.weights()[h..r.end].iter().all(|&w| w >= delta));
            prop_assert_eq!(
                sorted.light_degree(v, delta),
                g.edge_weights(v).iter().filter(|&&w| w < delta).count() as u32
            );
        }
    }

    #[test]
    fn matrix_market_parse_synthesized(el in arb_edges(32, 64)) {
        // Write a MatrixMarket file by hand, parse it back.
        let mut text = format!(
            "%%MatrixMarket matrix coordinate integer general\n{} {} {}\n",
            el.num_vertices, el.num_vertices, el.len()
        );
        for &(u, v, w) in &el.edges {
            text.push_str(&format!("{} {} {}\n", u + 1, v + 1, w));
        }
        let back = io::parse_matrix_market(Cursor::new(text)).unwrap();
        prop_assert_eq!(back.edges, el.edges);
    }
}
