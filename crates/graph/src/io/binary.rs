//! Compact binary CSR snapshots.
//!
//! Preprocessing (symmetrize + dedup + PRO) is expensive on large
//! graphs; this format lets the harness cache the result. Layout
//! (little endian): magic `RDBS`, version u32, n u64, m u64, flags u32
//! (bit 0 = heavy offsets present) , heavy delta u32, then the raw
//! arrays. Uses `bytes` for buffer handling.

use super::IoError;
use crate::Csr;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RDBS";
const VERSION: u32 = 1;

/// Serialize a CSR (including heavy offsets, if attached).
pub fn write_binary_csr<W: Write>(g: &Csr, mut writer: W) -> Result<(), IoError> {
    let mut buf = BytesMut::with_capacity(32 + g.memory_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    let has_heavy = g.heavy_offsets().is_some();
    buf.put_u32_le(has_heavy as u32);
    buf.put_u32_le(g.heavy_delta().unwrap_or(0));
    for &x in g.row_offsets() {
        buf.put_u32_le(x);
    }
    for &x in g.adjacency() {
        buf.put_u32_le(x);
    }
    for &x in g.weights() {
        buf.put_u32_le(x);
    }
    if let Some(h) = g.heavy_offsets() {
        for &x in h {
            buf.put_u32_le(x);
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserialize a CSR written by [`write_binary_csr`].
pub fn read_binary_csr<R: Read>(mut reader: R) -> Result<Csr, IoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 32 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let n = buf.get_u64_le();
    let m = buf.get_u64_le();
    let has_heavy = buf.get_u32_le() != 0;
    let heavy_delta = buf.get_u32_le();
    // All size arithmetic is checked in u64: a corrupt header with
    // huge n/m must produce a Format error, not an overflow-wrapped
    // `need` that lets a giant allocation (or a short read) through.
    let words = (n.checked_add(1))
        .and_then(|x| m.checked_mul(2).and_then(|y| x.checked_add(y)))
        .and_then(|x| x.checked_add(if has_heavy { n } else { 0 }));
    let need = words.and_then(|w| w.checked_mul(4));
    let have = buf.remaining() as u64;
    match need {
        Some(need) if need == have => {}
        _ => {
            return Err(IoError::Format(format!(
                "payload size mismatch: have {have}, need {}",
                need.map_or_else(|| "an overflowing size".into(), |x| x.to_string())
            )));
        }
    }
    // `need == have` bounds every length below by the actual payload.
    let (n, m) = (n as usize, m as usize);
    let mut read_vec = |len: usize| {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(buf.get_u32_le());
        }
        v
    };
    let row_offsets = read_vec(n + 1);
    let adjacency = read_vec(m);
    let weights = read_vec(m);
    let heavy = if has_heavy { Some(read_vec(n)) } else { None };
    let mut csr = Csr::try_from_raw(row_offsets, adjacency, weights)
        .map_err(|e| IoError::Format(format!("inconsistent CSR payload: {e}")))?;
    if let Some(h) = heavy {
        csr.set_heavy_offsets(h, heavy_delta);
        csr.validate().map_err(IoError::Format)?;
    }
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};
    use crate::reorder;

    #[test]
    fn roundtrip_plain() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 5), (1, 2, 3), (2, 3, 8)]);
        let g = build_undirected(&el);
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        let back = read_binary_csr(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_with_heavy_offsets() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 5), (1, 2, 3), (2, 3, 8)]);
        let (g, _) = reorder::pro(&build_undirected(&el), 4);
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        let back = read_binary_csr(&buf[..]).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.heavy_delta(), Some(4));
    }

    #[test]
    fn rejects_corruption() {
        let g = build_undirected(&EdgeList::from_edges(2, vec![(0, 1, 1)]));
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_binary_csr(&buf[..]).is_err());
        assert!(read_binary_csr(&b"NOPE"[..]).is_err());
    }

    fn header(n: u64, m: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // flags
        buf.extend_from_slice(&0u32.to_le_bytes()); // heavy delta
        buf
    }

    #[test]
    fn rejects_overflowing_header_sizes() {
        // n/m near u64::MAX used to wrap the payload-size arithmetic;
        // now they must fail the size check as errors, not allocate.
        for (n, m) in [(u64::MAX, u64::MAX), (u64::MAX - 1, 3), (2, u64::MAX / 2)] {
            let err = read_binary_csr(&header(n, m)[..]).unwrap_err();
            assert!(err.to_string().contains("size mismatch"), "{n} {m}: {err}");
        }
    }

    #[test]
    fn rejects_inconsistent_csr_payload_without_panicking() {
        // Structurally valid sizes, semantically broken arrays: the
        // adjacency entry points past n. Must be a typed error, not the
        // `Csr::from_raw` panic this loader used to hit.
        let mut buf = header(1, 1);
        for word in [0u32, 1, 5, 7] {
            // row_offsets [0,1], adjacency [5] (out of range), weights [7]
            buf.extend_from_slice(&word.to_le_bytes());
        }
        let err = read_binary_csr(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("inconsistent CSR payload"), "{err}");

        // Non-monotonic row offsets.
        let mut buf = header(2, 1);
        for word in [0u32, 9, 1, 0, 3] {
            // row_offsets [0,9,1], adjacency [0], weights [3]
            buf.extend_from_slice(&word.to_le_bytes());
        }
        let err = read_binary_csr(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("inconsistent CSR payload"), "{err}");
    }
}
