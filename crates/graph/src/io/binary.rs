//! Compact binary CSR snapshots.
//!
//! Preprocessing (symmetrize + dedup + PRO) is expensive on large
//! graphs; this format lets the harness cache the result. Layout
//! (little endian): magic `RDBS`, version u32, n u64, m u64, flags u32
//! (bit 0 = heavy offsets present) , heavy delta u32, then the raw
//! arrays. Uses `bytes` for buffer handling.

use super::IoError;
use crate::Csr;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RDBS";
const VERSION: u32 = 1;

/// Serialize a CSR (including heavy offsets, if attached).
pub fn write_binary_csr<W: Write>(g: &Csr, mut writer: W) -> Result<(), IoError> {
    let mut buf = BytesMut::with_capacity(32 + g.memory_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    let has_heavy = g.heavy_offsets().is_some();
    buf.put_u32_le(has_heavy as u32);
    buf.put_u32_le(g.heavy_delta().unwrap_or(0));
    for &x in g.row_offsets() {
        buf.put_u32_le(x);
    }
    for &x in g.adjacency() {
        buf.put_u32_le(x);
    }
    for &x in g.weights() {
        buf.put_u32_le(x);
    }
    if let Some(h) = g.heavy_offsets() {
        for &x in h {
            buf.put_u32_le(x);
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserialize a CSR written by [`write_binary_csr`].
pub fn read_binary_csr<R: Read>(mut reader: R) -> Result<Csr, IoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 32 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    let has_heavy = buf.get_u32_le() != 0;
    let heavy_delta = buf.get_u32_le();
    let need = (n + 1 + 2 * m + if has_heavy { n } else { 0 }) * 4;
    if buf.remaining() != need {
        return Err(IoError::Format(format!(
            "payload size mismatch: have {}, need {need}",
            buf.remaining()
        )));
    }
    let mut read_vec = |len: usize| {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(buf.get_u32_le());
        }
        v
    };
    let row_offsets = read_vec(n + 1);
    let adjacency = read_vec(m);
    let weights = read_vec(m);
    let heavy = if has_heavy { Some(read_vec(n)) } else { None };
    let mut csr = Csr::from_raw(row_offsets, adjacency, weights);
    if let Some(h) = heavy {
        csr.set_heavy_offsets(h, heavy_delta);
        csr.validate().map_err(IoError::Format)?;
    }
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};
    use crate::reorder;

    #[test]
    fn roundtrip_plain() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 5), (1, 2, 3), (2, 3, 8)]);
        let g = build_undirected(&el);
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        let back = read_binary_csr(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_with_heavy_offsets() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 5), (1, 2, 3), (2, 3, 8)]);
        let (g, _) = reorder::pro(&build_undirected(&el), 4);
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        let back = read_binary_csr(&buf[..]).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.heavy_delta(), Some(4));
    }

    #[test]
    fn rejects_corruption() {
        let g = build_undirected(&EdgeList::from_edges(2, vec![(0, 1, 1)]));
        let mut buf = Vec::new();
        write_binary_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_binary_csr(&buf[..]).is_err());
        assert!(read_binary_csr(&b"NOPE"[..]).is_err());
    }
}
