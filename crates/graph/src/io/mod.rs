//! Graph file IO.
//!
//! The paper's real-world inputs come from SNAP/network-repository
//! downloads in several formats. Loaders are provided so real datasets
//! can be dropped in place of the synthetic stand-ins:
//!
//! * [`edgelist`] — whitespace-separated `src dst [weight]` lines
//!   (SNAP's `.txt` format, `#` comments);
//! * [`dimacs`] — DIMACS shortest-path `.gr` challenge format;
//! * [`matrix_market`] — MatrixMarket `coordinate` `.mtx` files;
//! * [`binary`] — a compact little-endian binary CSR snapshot for fast
//!   reloading of preprocessed graphs;
//! * [`witness`] — self-contained failing instances (graph + source)
//!   emitted by the conformance shrinker for CLI replay.

pub mod binary;
pub mod dimacs;
pub mod edgelist;
pub mod matrix_market;
pub mod witness;

pub use binary::{read_binary_csr, write_binary_csr};
pub use dimacs::{parse_dimacs, write_dimacs};
pub use edgelist::{parse_edge_list, write_edge_list};
pub use matrix_market::parse_matrix_market;
pub use witness::{read_witness, write_witness, Witness};

use std::fmt;

/// IO / parse errors for every loader.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, message: String },
    Format(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}
