//! SNAP-style plain edge lists: one `src dst [weight]` per line,
//! `#`-prefixed comments, whitespace separated. Vertex ids are used
//! as-is; the vertex count is `max id + 1` unless a larger count is
//! requested.

use super::{parse_err, IoError};
use crate::builder::EdgeList;
use crate::{VertexId, Weight};
use std::io::{BufRead, Write};

/// Parse an edge list from a reader. Missing weights default to 1.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<EdgeList, IoError> {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad source: {e}")))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing destination"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad destination: {e}")))?;
        let w: Weight = match it.next() {
            Some(s) => s.parse().map_err(|e| parse_err(lineno, format!("bad weight: {e}")))?,
            None => 1,
        };
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(parse_err(lineno, "vertex id exceeds u32"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    Ok(EdgeList { num_vertices: n, edges })
}

/// Write an edge list as `src dst weight` lines.
pub fn write_edge_list<W: Write>(list: &EdgeList, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "# {} vertices, {} edges", list.num_vertices, list.edges.len())?;
    for &(u, v, w) in &list.edges {
        writeln!(writer, "{u} {v} {w}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_with_comments_and_default_weight() {
        let text = "# comment\n0 1 5\n\n2 0\n";
        let el = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1, 5), (2, 0, 1)]);
    }

    #[test]
    fn roundtrip() {
        let el = EdgeList::from_edges(4, vec![(0, 3, 9), (1, 2, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&el, &mut buf).unwrap();
        let parsed = parse_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(parsed.edges, el.edges);
        assert_eq!(parsed.num_vertices, 4);
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_edge_list(Cursor::new("0 x\n")).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input() {
        let el = parse_edge_list(Cursor::new("")).unwrap();
        assert_eq!(el.num_vertices, 0);
        assert!(el.is_empty());
    }
}
