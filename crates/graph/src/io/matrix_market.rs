//! MatrixMarket `coordinate` format (`.mtx`), as distributed by the
//! SuiteSparse collection for several of the paper's graphs.
//!
//! Supported headers: `%%MatrixMarket matrix coordinate
//! {pattern|integer|real} {general|symmetric}`. `real` weights are
//! rounded to the nearest positive integer (0 becomes 1), since the
//! SSSP kernels use integer weights.

use super::{parse_err, IoError};
use crate::builder::EdgeList;
use crate::{VertexId, Weight};
use std::io::BufRead;

/// Parse a MatrixMarket coordinate file into an edge list. For
/// `symmetric` files only the stored triangle is returned; build with
/// the default (symmetrizing) [`crate::builder::CsrBuilder`] to expand.
pub fn parse_matrix_market<R: BufRead>(reader: R) -> Result<EdgeList, IoError> {
    let mut lines = reader.lines().enumerate();
    // Header.
    let (_, header) = lines.next().ok_or_else(|| IoError::Format("empty file".into()))?;
    let header = header?;
    let h: Vec<String> = header.split_whitespace().map(str::to_ascii_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" || h[2] != "coordinate" {
        return Err(IoError::Format(format!("unsupported header: {header}")));
    }
    let field = h[3].as_str();
    if !matches!(field, "pattern" | "integer" | "real") {
        return Err(IoError::Format(format!("unsupported field type: {field}")));
    }
    let symmetry = h[4].as_str();
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(IoError::Format(format!("unsupported symmetry: {symmetry}")));
    }

    // Skip comments, find size line.
    let mut size_line = None;
    for (idx, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((idx + 1, t.to_string()));
        break;
    }
    let (lineno, size) = size_line.ok_or_else(|| IoError::Format("missing size line".into()))?;
    let mut it = size.split_whitespace();
    let rows: usize = it
        .next()
        .ok_or_else(|| parse_err(lineno, "missing rows"))?
        .parse()
        .map_err(|e| parse_err(lineno, format!("bad rows: {e}")))?;
    let cols: usize = it
        .next()
        .ok_or_else(|| parse_err(lineno, "missing cols"))?
        .parse()
        .map_err(|e| parse_err(lineno, format!("bad cols: {e}")))?;
    let nnz: usize = it
        .next()
        .ok_or_else(|| parse_err(lineno, "missing nnz"))?
        .parse()
        .map_err(|e| parse_err(lineno, format!("bad nnz: {e}")))?;
    let n = rows.max(cols);
    let mut list = EdgeList::new(n);
    // Capped: a corrupt nnz must not force a huge up-front allocation.
    list.edges.reserve(nnz.min(1 << 20));

    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad row: {e}")))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing col"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad col: {e}")))?;
        if u == 0 || v == 0 || u as usize > n || v as usize > n {
            return Err(parse_err(lineno, "entry out of declared bounds"));
        }
        let w: Weight = match field {
            "pattern" => 1,
            "integer" => it
                .next()
                .ok_or_else(|| parse_err(lineno, "missing value"))?
                .parse::<i64>()
                .map_err(|e| parse_err(lineno, format!("bad value: {e}")))?
                .unsigned_abs()
                .max(1)
                .min(u32::MAX as u64) as Weight,
            "real" => {
                let x: f64 = it
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing value"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad value: {e}")))?;
                (x.abs().round() as u64).clamp(1, u32::MAX as u64) as Weight
            }
            _ => unreachable!(),
        };
        list.push((u - 1) as VertexId, (v - 1) as VertexId, w);
    }
    if list.len() != nnz {
        return Err(IoError::Format(format!("declared {nnz} entries, found {}", list.len())));
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_pattern_general() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n3 3 2\n1 2\n3 1\n";
        let el = parse_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1, 1), (2, 0, 1)]);
    }

    #[test]
    fn parses_integer_values() {
        let text = "%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 7\n";
        let el = parse_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(el.edges, vec![(1, 0, 7)]);
    }

    #[test]
    fn real_values_rounded_and_clamped() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 2.6\n2 1 0.0\n";
        let el = parse_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(el.edges, vec![(0, 1, 3), (1, 0, 1)]);
    }

    #[test]
    fn rejects_bad_header() {
        let err = parse_matrix_market(Cursor::new("%%MatrixMarket matrix array real general\n"))
            .unwrap_err();
        assert!(err.to_string().contains("unsupported header"));
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 2\n";
        assert!(parse_matrix_market(Cursor::new(text)).is_err());
    }
}
