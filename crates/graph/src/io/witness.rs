//! Conformance witness files: a self-contained failing SSSP instance
//! (graph + source vertex) as emitted by the failure-minimization
//! shrinker, in a stable text format a person can read and the CLI can
//! replay:
//!
//! ```text
//! # rdbs witness v1
//! vertices 5
//! source 0
//! directed
//! edge 0 1 3
//! edge 1 2 7
//! ```
//!
//! Unlike the SNAP edge-list loader, the vertex count is explicit — a
//! minimized witness may keep an isolated vertex (e.g. the
//! disconnected-component cases) whose id no edge mentions. The
//! optional `directed` directive records how the CSR must be rebuilt:
//! absent (the default, and the pre-flag format) the edges are
//! symmetrized, present they are taken as-is — so witnesses minimized
//! from directed-CSR failures replay against the same graph shape.

use super::{parse_err, IoError};
use crate::builder::EdgeList;
use crate::{VertexId, Weight};
use std::io::{BufRead, Write};

/// A minimal failing instance: the graph, the search source, and
/// whether the edges are directed (false → symmetrize on rebuild).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    pub edges: EdgeList,
    pub source: VertexId,
    pub directed: bool,
}

/// Serialize a witness.
pub fn write_witness<W: Write>(witness: &Witness, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "# rdbs witness v1")?;
    writeln!(writer, "vertices {}", witness.edges.num_vertices)?;
    writeln!(writer, "source {}", witness.source)?;
    if witness.directed {
        writeln!(writer, "directed")?;
    }
    for &(u, v, w) in &witness.edges.edges {
        writeln!(writer, "edge {u} {v} {w}")?;
    }
    Ok(())
}

/// Parse a witness written by [`write_witness`].
pub fn read_witness<R: BufRead>(reader: R) -> Result<Witness, IoError> {
    let mut num_vertices: Option<usize> = None;
    let mut source: Option<VertexId> = None;
    let mut directed = false;
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let field = |s: Option<&str>, what: &str| -> Result<u64, IoError> {
            s.ok_or_else(|| parse_err(lineno, format!("missing {what}")))?
                .parse()
                .map_err(|e| parse_err(lineno, format!("bad {what}: {e}")))
        };
        match it.next() {
            Some("vertices") => num_vertices = Some(field(it.next(), "vertex count")? as usize),
            Some("source") => source = Some(field(it.next(), "source")? as VertexId),
            Some("directed") => directed = true,
            Some("edge") => {
                let u = field(it.next(), "edge source")?;
                let v = field(it.next(), "edge destination")?;
                let w = field(it.next(), "edge weight")?;
                if u > u32::MAX as u64 || v > u32::MAX as u64 || w > u32::MAX as u64 {
                    return Err(parse_err(lineno, "value exceeds u32"));
                }
                edges.push((u as VertexId, v as VertexId, w as Weight));
            }
            Some(other) => return Err(parse_err(lineno, format!("unknown directive `{other}`"))),
            None => unreachable!("non-empty trimmed line"),
        }
    }
    let num_vertices =
        num_vertices.ok_or_else(|| IoError::Format("missing `vertices` directive".into()))?;
    let source = source.ok_or_else(|| IoError::Format("missing `source` directive".into()))?;
    if (source as usize) >= num_vertices {
        return Err(IoError::Format(format!(
            "source {source} out of range for {num_vertices} vertices"
        )));
    }
    for &(u, v, _) in &edges {
        if u as usize >= num_vertices || v as usize >= num_vertices {
            return Err(IoError::Format(format!(
                "edge ({u},{v}) out of range for {num_vertices} vertices"
            )));
        }
    }
    Ok(Witness { edges: EdgeList { num_vertices, edges }, source, directed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_with_isolated_vertex() {
        let w = Witness {
            edges: EdgeList::from_edges(5, vec![(0, 1, 3), (1, 2, 7)]),
            source: 0,
            directed: false,
        };
        let mut buf = Vec::new();
        write_witness(&w, &mut buf).unwrap();
        assert_eq!(read_witness(Cursor::new(buf)).unwrap(), w);
    }

    #[test]
    fn directed_flag_roundtrips_and_defaults_to_false() {
        let w =
            Witness { edges: EdgeList::from_edges(3, vec![(0, 1, 2)]), source: 0, directed: true };
        let mut buf = Vec::new();
        write_witness(&w, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().any(|l| l.trim() == "directed"), "{text}");
        assert_eq!(read_witness(Cursor::new(buf)).unwrap(), w);
        // Pre-flag files (no directive) stay undirected.
        let old = read_witness(Cursor::new("vertices 2\nsource 0\nedge 0 1 5\n")).unwrap();
        assert!(!old.directed);
    }

    #[test]
    fn rejects_missing_source() {
        let err = read_witness(Cursor::new("vertices 3\nedge 0 1 2\n")).unwrap_err();
        assert!(err.to_string().contains("source"));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = read_witness(Cursor::new("vertices 2\nsource 0\nedge 0 5 1\n")).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_graph_witness() {
        let w = read_witness(Cursor::new("vertices 1\nsource 0\n")).unwrap();
        assert_eq!(w.edges.num_vertices, 1);
        assert!(w.edges.edges.is_empty());
    }
}
