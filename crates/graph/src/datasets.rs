//! Stand-ins for the paper's evaluation datasets (Table 1).
//!
//! The paper evaluates on ten SNAP / network-repository graphs plus
//! Graph500 Kronecker graphs. Those downloads are not available here,
//! so each dataset is replaced by a **seeded synthetic stand-in** that
//! matches the properties the paper's analysis depends on — vertex/edge
//! ratio, degree skew (power-law hubs vs uniform road meshes) and
//! diameter class — at a configurable fraction of the original size
//! (`scale_shift`: the stand-in has `paper_vertices >> scale_shift`
//! vertices). Real files can be loaded via [`crate::io`] instead and
//! run through the same harness.
//!
//! Vertex labels of every stand-in are shuffled so that, as in real
//! data, vertex id carries no degree information — otherwise
//! property-driven reordering would get its work done for free.

use crate::builder::{build_undirected, EdgeList};
use crate::generate::powerlaw::windowed_preferential_attachment;
use crate::generate::{grid_road, kronecker, uniform_weights, GridConfig, KroneckerConfig};
use crate::{Csr, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Structural family of a stand-in generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Near-planar mesh, uniform tiny degree, huge diameter
    /// (roadNet-TX).
    Road,
    /// Power-law / heavy-tailed degree distribution; `m` is the
    /// preferential-attachment edge count chosen to match the paper's
    /// average degree.
    PowerLaw { m: u32 },
    /// Graph500 Kronecker (`k-n<scale>-<ef>`).
    Kronecker { scale: u32, edgefactor: u32 },
}

/// One dataset row of the paper's Table 1 plus its stand-in recipe.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// The paper's short name (road-TX, Amazon, ...).
    pub name: &'static str,
    /// Vertices in the real graph (Table 1).
    pub paper_vertices: usize,
    /// Directed edges in the real graph (Table 1).
    pub paper_edges: usize,
    /// Table 1 average degree.
    pub paper_avg_deg: f64,
    /// Table 1 max diameter.
    pub paper_diameter: u32,
    /// Stand-in generator family.
    pub family: Family,
}

impl DatasetSpec {
    /// Vertices the stand-in will have at a given shift.
    pub fn standin_vertices(&self, scale_shift: u32) -> usize {
        match self.family {
            Family::Kronecker { scale, .. } => 1usize << scale.saturating_sub(scale_shift).max(8),
            _ => (self.paper_vertices >> scale_shift).max(1 << 10),
        }
    }

    /// Generate the weighted, symmetrized, deduplicated CSR stand-in.
    ///
    /// `scale_shift` divides the paper's vertex count by `2^shift`
    /// (clamped to at least 1024 vertices / SCALE 8); `seed` controls
    /// all randomness, including the paper-style uniform 1..=1000
    /// weights.
    pub fn generate(&self, scale_shift: u32, seed: u64) -> Csr {
        let n = self.standin_vertices(scale_shift);
        let mut list = match self.family {
            Family::Road => {
                // A strip whose long side preserves the paper's hop
                // diameter: shrinking a road network uniformly would
                // shrink its diameter by sqrt(2^shift) and with it the
                // bucket/iteration counts that make road graphs the
                // adversarial case for bucketed SSSP. Keep rows at the
                // real diameter (as long as the vertex budget allows).
                // Keep the strip at least 8 columns wide: narrower
                // strips percolate into fragments under the deletion
                // probability.
                let rows = (self.paper_diameter as usize).min(n / 8).max(1);
                let cols = n.div_ceil(rows);
                // No long-range shortcuts: they would crush the
                // diameter that defines this dataset's behaviour.
                grid_road(GridConfig { rows, cols, deletion_prob: 0.25, shortcuts: 0 }, seed)
            }
            Family::PowerLaw { m } => {
                // Recency window sized so the community-chain depth
                // matches the paper graph's diameter at any scale
                // (calibrated against the double-sweep measurement:
                // hop diameter ≈ 2.2 · n / window).
                let m = m as usize;
                let window = if self.paper_diameter <= 12 {
                    n // shallow graph: plain preferential attachment
                } else {
                    (85 * n / (100 * self.paper_diameter as usize)).max(m + 1)
                };
                windowed_preferential_attachment(n, m, window, seed)
            }
            Family::Kronecker { edgefactor, .. } => {
                let scale = n.trailing_zeros();
                kronecker(KroneckerConfig::new(scale, edgefactor), seed)
            }
        };
        // Kronecker already permutes labels internally; shuffle the rest.
        if !matches!(self.family, Family::Kronecker { .. }) {
            shuffle_labels(&mut list, seed ^ 0xD1B5_4A32_D192_ED03);
        }
        uniform_weights(&mut list, seed ^ 0x94D0_49BB_1331_11EB);
        build_undirected(&list)
    }
}

fn shuffle_labels(list: &mut EdgeList, seed: u64) {
    let n = list.num_vertices;
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    for e in &mut list.edges {
        e.0 = perm[e.0 as usize];
        e.1 = perm[e.1 as usize];
    }
}

/// The ten real-world rows of Table 1, in the paper's order.
pub fn table1() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "road-TX",
            paper_vertices: 1_379_917,
            paper_edges: 1_921_660,
            paper_avg_deg: 1.39,
            paper_diameter: 1054,
            family: Family::Road,
        },
        DatasetSpec {
            name: "Amazon",
            paper_vertices: 403_394,
            paper_edges: 3_387_388,
            paper_avg_deg: 8.39,
            paper_diameter: 21,
            family: Family::PowerLaw { m: 4 },
        },
        DatasetSpec {
            name: "web-GL",
            paper_vertices: 875_713,
            paper_edges: 5_105_039,
            paper_avg_deg: 5.82,
            paper_diameter: 21,
            family: Family::PowerLaw { m: 3 },
        },
        DatasetSpec {
            name: "com-LJ",
            paper_vertices: 3_997_962,
            paper_edges: 34_681_189,
            paper_avg_deg: 8.67,
            paper_diameter: 17,
            family: Family::PowerLaw { m: 4 },
        },
        DatasetSpec {
            name: "soc-PK",
            paper_vertices: 1_632_803,
            paper_edges: 30_622_564,
            paper_avg_deg: 18.75,
            paper_diameter: 11,
            family: Family::PowerLaw { m: 9 },
        },
        DatasetSpec {
            name: "com-OK",
            paper_vertices: 3_072_441,
            paper_edges: 117_185_083,
            paper_avg_deg: 38.14,
            paper_diameter: 9,
            family: Family::PowerLaw { m: 19 },
        },
        DatasetSpec {
            name: "as-Skt",
            paper_vertices: 1_696_415,
            paper_edges: 11_095_298,
            paper_avg_deg: 6.54,
            paper_diameter: 25,
            family: Family::PowerLaw { m: 3 },
        },
        DatasetSpec {
            name: "soc-LJ",
            paper_vertices: 4_847_571,
            paper_edges: 68_993_773,
            paper_avg_deg: 14.23,
            paper_diameter: 16,
            family: Family::PowerLaw { m: 7 },
        },
        DatasetSpec {
            name: "wiki-TK",
            paper_vertices: 2_394_385,
            paper_edges: 5_021_410,
            paper_avg_deg: 2.10,
            paper_diameter: 9,
            family: Family::PowerLaw { m: 1 },
        },
        DatasetSpec {
            name: "soc-TW",
            paper_vertices: 21_297_772,
            paper_edges: 265_025_545,
            paper_avg_deg: 12.44,
            paper_diameter: 18,
            family: Family::PowerLaw { m: 6 },
        },
    ]
}

/// The Kronecker dataset `k-n<scale>-<ef>` used throughout the paper's
/// evaluation (k-n21-16 in Figs. 8/12 and Table 2).
pub fn kronecker_spec(scale: u32, edgefactor: u32) -> DatasetSpec {
    let n = 1usize << scale;
    DatasetSpec {
        name: match (scale, edgefactor) {
            (21, 16) => "k-n21-16",
            _ => "kronecker",
        },
        paper_vertices: n,
        paper_edges: n * edgefactor as usize,
        paper_avg_deg: edgefactor as f64,
        paper_diameter: 7,
        family: Family::Kronecker { scale, edgefactor },
    }
}

/// The six graphs of Fig. 8 / Table 2 / Fig. 12, in paper order.
pub fn fig8_suite() -> Vec<DatasetSpec> {
    let t = table1();
    vec![
        t[0].clone(), // road-TX
        t[1].clone(), // Amazon
        t[2].clone(), // web-GL
        t[3].clone(), // com-LJ
        t[4].clone(), // soc-PK
        kronecker_spec(21, 16),
    ]
}

/// Find a Table 1 spec by paper name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table1().into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn specs_cover_paper_rows() {
        let t = table1();
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].name, "road-TX");
        assert_eq!(t[9].name, "soc-TW");
        assert!(by_name("amazon").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn road_standin_shape() {
        let spec = by_name("road-TX").unwrap();
        let g = spec.generate(7, 1);
        let st = graph_stats(&g);
        // Road networks: no hubs, large diameter relative to size.
        assert!(st.max_degree <= 6, "max degree {}", st.max_degree);
        assert!(
            st.pseudo_diameter as usize > (st.num_vertices as f64).sqrt() as usize / 2,
            "diameter {} too small for road-like mesh of {} vertices",
            st.pseudo_diameter,
            st.num_vertices
        );
    }

    #[test]
    fn powerlaw_standin_shape() {
        let spec = by_name("soc-PK").unwrap();
        let g = spec.generate(8, 1);
        let st = graph_stats(&g);
        // Undirected stand-in's directed avg degree ≈ 2m = paper avg.
        assert!(
            (st.avg_degree - spec.paper_avg_deg).abs() / spec.paper_avg_deg < 0.25,
            "avg {} vs paper {}",
            st.avg_degree,
            spec.paper_avg_deg
        );
        assert!(st.max_degree as f64 > 8.0 * st.avg_degree, "needs hubs");
        // Social graphs: tiny diameter.
        assert!(st.pseudo_diameter < 15, "diameter {}", st.pseudo_diameter);
    }

    #[test]
    fn deterministic() {
        let spec = by_name("Amazon").unwrap();
        assert_eq!(spec.generate(8, 5), spec.generate(8, 5));
    }

    #[test]
    fn kronecker_spec_name() {
        assert_eq!(kronecker_spec(21, 16).name, "k-n21-16");
        let g = kronecker_spec(21, 16).generate(7, 2);
        assert_eq!(g.num_vertices(), 1 << 14);
    }

    #[test]
    fn fig8_suite_order() {
        let names: Vec<_> = fig8_suite().iter().map(|d| d.name).collect();
        assert_eq!(names, ["road-TX", "Amazon", "web-GL", "com-LJ", "soc-PK", "k-n21-16"]);
    }

    #[test]
    fn weights_in_paper_range() {
        let g = by_name("web-GL").unwrap().generate(8, 3);
        assert!(g.weights().iter().all(|&w| (1..=1000).contains(&w)));
    }
}
