//! Edge-list representation and CSR construction.
//!
//! Generators and file loaders produce an [`EdgeList`]; the builder
//! turns it into a [`Csr`], optionally symmetrizing (the paper treats
//! every input as undirected), deduplicating parallel edges (keeping the
//! minimum weight, which is the only one that can matter for shortest
//! paths) and dropping self-loops (which never improve any distance).

use crate::{Csr, VertexId, Weight};

/// A list of weighted directed edges plus a vertex count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices; every endpoint must be `< num_vertices`.
    pub num_vertices: usize,
    /// `(src, dst, weight)` triples.
    pub edges: Vec<(VertexId, VertexId, Weight)>,
}

impl EdgeList {
    /// New empty edge list over `n` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self { num_vertices, edges: Vec::new() }
    }

    /// Construct from parts, panicking on out-of-range endpoints.
    pub fn from_edges(num_vertices: usize, edges: Vec<(VertexId, VertexId, Weight)>) -> Self {
        let n = num_vertices as VertexId;
        for &(u, v, _) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={num_vertices}");
        }
        Self { num_vertices, edges }
    }

    /// Append an edge.
    #[inline]
    pub fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        debug_assert!((u as usize) < self.num_vertices && (v as usize) < self.num_vertices);
        self.edges.push((u, v, w));
    }

    /// Number of (directed) edges currently stored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add the reverse of every edge (same weight). Does not dedup.
    pub fn symmetrize(&mut self) {
        let fwd = self.edges.len();
        self.edges.reserve(fwd);
        for i in 0..fwd {
            let (u, v, w) = self.edges[i];
            if u != v {
                self.edges.push((v, u, w));
            }
        }
    }
}

/// Configurable EdgeList → CSR conversion.
#[derive(Clone, Copy, Debug)]
pub struct CsrBuilder {
    /// Add the reverse of every edge first (undirected semantics).
    pub symmetrize: bool,
    /// Collapse parallel `(u, v)` edges, keeping the minimum weight.
    pub dedup: bool,
    /// Drop `(u, u)` self-loops.
    pub drop_self_loops: bool,
}

impl Default for CsrBuilder {
    /// The paper's preprocessing: undirected, deduplicated, loop-free.
    fn default() -> Self {
        Self { symmetrize: true, dedup: true, drop_self_loops: true }
    }
}

impl CsrBuilder {
    /// A builder that keeps the edge list exactly as given (directed,
    /// multi-edges and loops preserved).
    pub fn directed_raw() -> Self {
        Self { symmetrize: false, dedup: false, drop_self_loops: false }
    }

    /// Build the CSR.
    pub fn build(&self, list: &EdgeList) -> Csr {
        let n = list.num_vertices;
        let mut edges: Vec<(VertexId, VertexId, Weight)> =
            Vec::with_capacity(list.edges.len() * if self.symmetrize { 2 } else { 1 });
        for &(u, v, w) in &list.edges {
            if self.drop_self_loops && u == v {
                continue;
            }
            edges.push((u, v, w));
            if self.symmetrize && u != v {
                edges.push((v, u, w));
            }
        }

        // Sort by (src, dst, weight) so dedup keeps the lightest copy.
        edges.sort_unstable();
        if self.dedup {
            edges.dedup_by_key(|e| (e.0, e.1));
        }

        let mut row_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &edges {
            row_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let mut adjacency = Vec::with_capacity(edges.len());
        let mut weights = Vec::with_capacity(edges.len());
        for &(_, v, w) in &edges {
            adjacency.push(v);
            weights.push(w);
        }
        Csr::from_raw(row_offsets, adjacency, weights)
    }
}

/// Shorthand: undirected, deduplicated, loop-free CSR (the paper's
/// standard preprocessing).
pub fn build_undirected(list: &EdgeList) -> Csr {
    CsrBuilder::default().build(list)
}

/// Shorthand: directed CSR preserving the list verbatim.
pub fn build_directed(list: &EdgeList) -> Csr {
    CsrBuilder::directed_raw().build(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_undirected() {
        let mut el = EdgeList::new(3);
        el.push(2, 0, 7);
        el.push(0, 1, 3);
        let g = build_undirected(&el);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[3, 7]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let el = EdgeList::from_edges(2, vec![(0, 1, 9), (0, 1, 4), (0, 1, 6)]);
        let g = build_undirected(&el);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weights(0), &[4]);
        assert_eq!(g.edge_weights(1), &[4]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let el = EdgeList::from_edges(2, vec![(0, 0, 1), (0, 1, 2)]);
        let g = build_undirected(&el);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn directed_raw_preserves_everything() {
        let el = EdgeList::from_edges(2, vec![(0, 0, 1), (0, 1, 2), (0, 1, 3)]);
        let g = build_directed(&el);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn symmetrize_method_doubles_non_loops() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1, 2), (1, 1, 5)]);
        el.symmetrize();
        assert_eq!(el.len(), 3); // loop not doubled
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = EdgeList::from_edges(2, vec![(0, 5, 1)]);
    }

    #[test]
    fn empty_list_builds_empty_graph() {
        let g = build_undirected(&EdgeList::new(4));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
