//! Graph statistics: degree distribution, components, pseudo-diameter.
//!
//! Used by the Table 1 harness to report the same columns the paper
//! does (#vertices, #edges, #avg_deg, #diameter) for the stand-in
//! datasets, and by tests to validate generator properties.

use crate::{Csr, VertexId};
use std::collections::VecDeque;

/// Summary of a graph's shape.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GraphStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    /// Directed average degree (`m / n`), matching Table 1's convention.
    pub avg_degree: f64,
    pub max_degree: u32,
    /// Lower bound on the diameter from a double BFS sweep on the
    /// largest component (hop count, unweighted).
    pub pseudo_diameter: u32,
    pub num_components: usize,
    pub largest_component: usize,
}

/// Compute all summary statistics.
pub fn graph_stats(g: &Csr) -> GraphStats {
    let n = g.num_vertices();
    let comps = connected_components(g);
    let pseudo_diameter = pseudo_diameter(g);
    let max_degree = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap_or(0);
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        avg_degree: if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 },
        max_degree,
        pseudo_diameter,
        num_components: comps.num_components,
        largest_component: comps.largest,
    }
}

/// Connected-component labelling (treating edges as undirected links —
/// correct for the symmetrized graphs this workspace uses).
pub struct Components {
    /// Component id per vertex.
    pub labels: Vec<u32>,
    pub num_components: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Label components with BFS.
pub fn connected_components(g: &Csr) -> Components {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut num = 0u32;
    let mut largest = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[s as usize] = num;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = num;
                    queue.push_back(v);
                }
            }
        }
        largest = largest.max(size);
        num += 1;
    }
    Components { labels, num_components: num as usize, largest }
}

/// Hop distances from `src` (unweighted BFS); `u32::MAX` = unreachable.
pub fn bfs_levels(g: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    level[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize] + 1;
        for &v in g.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Double-sweep pseudo-diameter: BFS from an arbitrary vertex of the
/// largest component, then BFS from the farthest vertex found; the
/// eccentricity of the second sweep lower-bounds the diameter and is
/// usually tight on road/social graphs.
pub fn pseudo_diameter(g: &Csr) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let comps = connected_components(g);
    // Pick a start vertex inside the largest component.
    let mut sizes = vec![0usize; comps.num_components];
    for &l in &comps.labels {
        sizes[l as usize] += 1;
    }
    let Some(label) = (0..sizes.len()).max_by_key(|&l| sizes[l]) else { return 0 };
    let start = (0..n as VertexId).find(|&v| comps.labels[v as usize] == label as u32).unwrap();
    let l1 = bfs_levels(g, start);
    let far = farthest(&l1);
    let l2 = bfs_levels(g, far);
    l2.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0)
}

fn farthest(levels: &[u32]) -> VertexId {
    levels
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map_or(0, |(v, _)| v as VertexId)
}

/// Gini coefficient of the degree distribution: 0 = perfectly
/// uniform (road meshes), → 1 = extreme hub concentration (the
/// power-law skew §3.2 blames for GPU load imbalance).
pub fn degree_gini(g: &Csr) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degs: Vec<u64> = (0..n as VertexId).map(|v| g.degree(v) as u64).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, 1-indexed.
    let weighted: u128 = degs.iter().enumerate().map(|(i, &d)| (i as u128 + 1) * d as u128).sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Degree value at a given percentile (0–100) of the distribution.
pub fn degree_percentile(g: &Csr, pct: f64) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut degs: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let idx = ((pct / 100.0) * (n as f64 - 1.0)).round() as usize;
    degs[idx.min(n - 1)]
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let n = g.num_vertices();
    let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for v in 0..n as VertexId {
        hist[g.degree(v) as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};

    fn path(n: usize) -> Csr {
        let edges = (0..n as VertexId - 1).map(|i| (i, i + 1, 1)).collect();
        build_undirected(&EdgeList::from_edges(n, edges))
    }

    #[test]
    fn path_diameter() {
        let g = path(10);
        assert_eq!(pseudo_diameter(&g), 9);
        let st = graph_stats(&g);
        assert_eq!(st.num_components, 1);
        assert_eq!(st.largest_component, 10);
        assert_eq!(st.max_degree, 2);
    }

    #[test]
    fn components_counted() {
        // two disjoint edges + isolated vertex
        let el = EdgeList::from_edges(5, vec![(0, 1, 1), (2, 3, 1)]);
        let g = build_undirected(&el);
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3);
        assert_eq!(c.largest, 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_ne!(c.labels[0], c.labels[2]);
    }

    #[test]
    fn bfs_levels_unreachable() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 1)]);
        let g = build_undirected(&el);
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = path(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[1], 2); // endpoints
        assert_eq!(h[2], 5);
    }

    #[test]
    fn gini_and_percentiles() {
        // Uniform degrees → Gini ~ 0.
        let ring: Vec<(VertexId, VertexId, u32)> = (0..20).map(|i| (i, (i + 1) % 20, 1)).collect();
        let g = build_undirected(&EdgeList::from_edges(20, ring));
        assert!(degree_gini(&g) < 0.01);
        assert_eq!(degree_percentile(&g, 50.0), 2);
        // A star → high Gini.
        let star: Vec<(VertexId, VertexId, u32)> = (1..40).map(|i| (0, i, 1)).collect();
        let g = build_undirected(&EdgeList::from_edges(40, star));
        assert!(degree_gini(&g) > 0.45, "gini {}", degree_gini(&g));
        assert_eq!(degree_percentile(&g, 0.0), 1);
        assert_eq!(degree_percentile(&g, 100.0), 39);
    }

    #[test]
    fn stats_are_serializable() {
        // Compile-time check: downstream users can export GraphStats
        // with any serde serializer.
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<GraphStats>();
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::empty(0);
        let st = graph_stats(&g);
        assert_eq!(st.num_vertices, 0);
        assert_eq!(st.pseudo_diameter, 0);
    }
}
