//! Graph substrate for the RDBS reproduction.
//!
//! This crate provides everything the SSSP algorithms need from the
//! graph side:
//!
//! * [`Csr`] — the Compressed Sparse Row representation used by every
//!   kernel, optionally carrying the *heavy-edge offsets* introduced by
//!   the paper's property-driven reordering (§4.1, Fig. 4).
//! * [`builder`] — edge-list ([`EdgeList`]) to CSR conversion with
//!   symmetrization, dedup and self-loop handling.
//! * [`generate`] — seeded, reproducible generators: Graph500-style
//!   Kronecker, R-MAT, 2D grids with deletions (road-like), preferential
//!   attachment power-law, Erdős–Rényi, plus uniform weight assignment
//!   (the paper draws weights uniformly from 1..=1000, §5.1.2).
//! * [`reorder`] — vertex permutations, descending-degree relabeling,
//!   per-vertex ascending-weight edge sorting, heavy-edge offsets and
//!   the combined [`reorder::pro`] pipeline.
//! * [`io`] — plain edge-list, DIMACS `.gr`, MatrixMarket and a compact
//!   binary format.
//! * [`datasets`] — deterministic stand-ins for the paper's Table 1
//!   real-world graphs and the `k-nXX-YY` Kronecker inputs.
//! * [`stats`] — degree distributions, pseudo-diameter, component
//!   counts; used to validate the stand-ins against Table 1.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generate;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod transform;

pub use builder::EdgeList;
pub use csr::Csr;
pub use reorder::Permutation;

/// Vertex identifier. Graphs in this workspace are bounded by `u32`
/// vertex ids (the paper's largest graph, soc-twitter-2010, has 21.3 M
/// vertices — comfortably within range).
pub type VertexId = u32;

/// Edge weight. The paper assigns uniform random integer weights in
/// `1..=1000` to the (unweighted) input graphs.
pub type Weight = u32;

/// Tentative/final shortest-path distance. `u32` suffices for every
/// workload here: the deepest graphs (road networks) have pseudo
/// diameters around a thousand hops and weights at most 1000, so the
/// longest shortest path stays far below `u32::MAX / 2`.
pub type Dist = u32;

/// Sentinel distance for "unreached".
pub const INF: Dist = u32::MAX;
