//! Graph transforms: subgraph induction and component extraction.
//!
//! Real-dataset workflows (the paper's Table 1 graphs are raw SNAP
//! downloads) usually restrict the experiment to the largest connected
//! component so that random sources reach most of the graph. These
//! helpers do that restriction while keeping a mapping back to the
//! original vertex ids.

use crate::stats::connected_components;
use crate::{Csr, VertexId};

/// A subgraph plus the mapping from its ids to the original ids.
pub struct Subgraph {
    pub graph: Csr,
    /// `original[new_id] = old_id`.
    pub original: Vec<VertexId>,
}

/// Induce the subgraph on `keep` (must be strictly increasing).
/// Edges with either endpoint outside `keep` are dropped.
pub fn induce_subgraph(g: &Csr, keep: &[VertexId]) -> Subgraph {
    assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep must be sorted unique");
    let n_old = g.num_vertices();
    let mut new_id = vec![u32::MAX; n_old];
    for (new, &old) in keep.iter().enumerate() {
        assert!((old as usize) < n_old, "keep contains out-of-range vertex {old}");
        new_id[old as usize] = new as u32;
    }
    let n = keep.len();
    let mut row_offsets = vec![0u32; n + 1];
    let mut adjacency = Vec::new();
    let mut weights = Vec::new();
    for (new, &old) in keep.iter().enumerate() {
        for (dst, w) in g.edges(old) {
            let nd = new_id[dst as usize];
            if nd != u32::MAX {
                adjacency.push(nd);
                weights.push(w);
            }
        }
        row_offsets[new + 1] = adjacency.len() as u32;
    }
    Subgraph { graph: Csr::from_raw(row_offsets, adjacency, weights), original: keep.to_vec() }
}

/// Extract the largest connected component.
pub fn largest_component(g: &Csr) -> Subgraph {
    let comps = connected_components(g);
    if g.num_vertices() == 0 {
        return Subgraph { graph: Csr::empty(0), original: Vec::new() };
    }
    let mut sizes = vec![0usize; comps.num_components];
    for &l in &comps.labels {
        sizes[l as usize] += 1;
    }
    let best = (0..sizes.len()).max_by_key(|&l| sizes[l]).unwrap() as u32;
    let keep: Vec<VertexId> =
        (0..g.num_vertices() as VertexId).filter(|&v| comps.labels[v as usize] == best).collect();
    induce_subgraph(g, &keep)
}

/// Drop vertices below a minimum degree (one pass, not iterated — use
/// repeatedly for a k-core-style peel).
pub fn filter_min_degree(g: &Csr, min_degree: u32) -> Subgraph {
    let keep: Vec<VertexId> =
        (0..g.num_vertices() as VertexId).filter(|&v| g.degree(v) >= min_degree).collect();
    induce_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};

    fn two_components() -> Csr {
        // component A: 0-1-2 (triangle), component B: 3-4.
        build_undirected(&EdgeList::from_edges(6, vec![(0, 1, 1), (1, 2, 2), (0, 2, 3), (3, 4, 4)]))
    }

    #[test]
    fn largest_component_extracted() {
        let g = two_components();
        let sub = largest_component(&g);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 6);
        assert_eq!(sub.original, vec![0, 1, 2]);
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn induce_preserves_weights() {
        let g = two_components();
        let sub = induce_subgraph(&g, &[0, 2]);
        assert_eq!(sub.graph.num_vertices(), 2);
        // Only the 0-2 edge (weight 3) survives, both directions.
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.graph.edge_weights(0), &[3]);
        assert_eq!(sub.graph.neighbors(0), &[1]); // new id of old 2
    }

    #[test]
    fn min_degree_filter() {
        let g = two_components(); // degrees: 2,2,2,1,1,0
        let sub = filter_min_degree(&g, 2);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.original, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::empty(3);
        let sub = largest_component(&g);
        assert_eq!(sub.graph.num_vertices(), 1); // one isolated vertex
        let sub = induce_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted unique")]
    fn unsorted_keep_rejected() {
        let g = two_components();
        let _ = induce_subgraph(&g, &[2, 0]);
    }
}
