//! R-MAT recursive-matrix generator (Chakrabarti et al., SDM 2004).
//!
//! Each edge is placed by recursively descending a 2×2 partition of the
//! adjacency matrix with probabilities `(a, b, c, d)`. The paper's
//! synthetic inputs use the Graph500 parameterization
//! `A=0.57, B=0.19, C=0.19, D=0.05` (§5.1.2).

use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::Rng;

/// R-MAT generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices (`n = 2^scale`).
    pub scale: u32,
    /// Average directed edges per vertex (`m = edgefactor * n`).
    pub edgefactor: u32,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level probability noise, as in the Graph500 reference
    /// implementation ("smoothing" to avoid exact self-similarity).
    /// 0.0 disables it.
    pub noise: f64,
}

impl RmatConfig {
    /// The Graph500/paper parameterization (A=0.57, B=0.19, C=0.19).
    pub fn graph500(scale: u32, edgefactor: u32) -> Self {
        Self { scale, edgefactor, a: 0.57, b: 0.19, c: 0.19, noise: 0.0 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an R-MAT edge list (unweighted: all weights 1; use
/// [`super::assign_uniform_weights`] afterwards).
///
/// # Panics
/// Panics if `scale >= 32` or the probabilities are invalid.
pub fn rmat(config: RmatConfig, seed: u64) -> EdgeList {
    assert!(config.scale < 32, "scale must fit u32 vertex ids");
    assert!(
        config.a > 0.0 && config.b >= 0.0 && config.c >= 0.0 && config.d() >= 0.0,
        "invalid R-MAT probabilities"
    );
    let n = 1usize << config.scale;
    let m = n * config.edgefactor as usize;
    let mut r = rng(seed);
    let mut list = EdgeList::new(n);
    list.edges.reserve(m);
    for _ in 0..m {
        let (u, v) = sample_edge(&config, &mut r);
        list.push(u, v, 1);
    }
    list
}

fn sample_edge(config: &RmatConfig, r: &mut impl Rng) -> (VertexId, VertexId) {
    let mut u = 0u32;
    let mut v = 0u32;
    let d = config.d();
    for _ in 0..config.scale {
        let (mut a, mut b, mut c, mut dd) = (config.a, config.b, config.c, d);
        if config.noise > 0.0 {
            // Multiplicative noise per level, then renormalize.
            let jitter = |x: f64, r: &mut dyn rand::RngCore| {
                x * (1.0 - config.noise + 2.0 * config.noise * rand::Rng::gen::<f64>(&mut *r))
            };
            a = jitter(a, r);
            b = jitter(b, r);
            c = jitter(c, r);
            dd = jitter(dd, r);
            let s = a + b + c + dd;
            a /= s;
            b /= s;
            c /= s;
        }
        let x: f64 = r.gen();
        u <<= 1;
        v <<= 1;
        if x < a {
            // top-left: no bits set
        } else if x < a + b {
            v |= 1;
        } else if x < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::graph500(8, 4);
        let a = rmat(cfg, 42);
        let b = rmat(cfg, 42);
        assert_eq!(a, b);
        let c = rmat(cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_and_range() {
        let cfg = RmatConfig::graph500(6, 8);
        let el = rmat(cfg, 7);
        assert_eq!(el.num_vertices, 64);
        assert_eq!(el.len(), 64 * 8);
        assert!(el.edges.iter().all(|&(u, v, _)| u < 64 && v < 64));
    }

    #[test]
    fn skewed_distribution() {
        // With A=0.57 the low-id quadrant should attract clearly more
        // endpoints than the high-id quadrant.
        let cfg = RmatConfig::graph500(10, 16);
        let el = rmat(cfg, 1);
        let n = el.num_vertices as VertexId;
        let low = el.edges.iter().filter(|&&(u, _, _)| u < n / 2).count();
        let high = el.len() - low;
        assert!(low > high * 2, "low {low} high {high}");
    }

    #[test]
    fn noise_changes_output_but_not_counts() {
        let mut cfg = RmatConfig::graph500(7, 4);
        let base = rmat(cfg, 5);
        cfg.noise = 0.1;
        let noisy = rmat(cfg, 5);
        assert_eq!(base.len(), noisy.len());
        assert_ne!(base, noisy);
    }
}
