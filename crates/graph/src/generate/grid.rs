//! Road-network-like generator: a 2D grid with random edge deletions
//! and occasional "highway" shortcuts.
//!
//! Real road networks (the paper's roadNet-TX) are near-planar, have a
//! tiny, nearly uniform degree (Table 1: avg 1.39 directed ≈ 2.8
//! undirected) and an enormous diameter (1054). A sparse grid with
//! random deletions reproduces all three properties, which is exactly
//! what drives the paper's road-TX observations (work inefficiency,
//! many buckets, ADDS winning).

use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::Rng;

/// Grid road-network parameters.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Grid height.
    pub rows: usize,
    /// Grid width.
    pub cols: usize,
    /// Probability each lattice edge is deleted (sparsifies towards the
    /// road-like average degree and raises the diameter).
    pub deletion_prob: f64,
    /// Number of long-range "highway" shortcut edges to add.
    pub shortcuts: usize,
}

impl GridConfig {
    /// A road-like default: 35% deletions, a handful of highways.
    pub fn road(rows: usize, cols: usize) -> Self {
        Self { rows, cols, deletion_prob: 0.35, shortcuts: (rows * cols) / 2048 }
    }
}

/// Generate the road-like grid edge list (weights 1; assign real
/// weights afterwards).
pub fn grid_road(config: GridConfig, seed: u64) -> EdgeList {
    let n = config.rows * config.cols;
    assert!(n > 0, "grid must be non-empty");
    assert!(n <= u32::MAX as usize, "grid too large for u32 ids");
    let mut r = rng(seed);
    let mut list = EdgeList::new(n);
    let id = |row: usize, col: usize| (row * config.cols + col) as VertexId;
    for row in 0..config.rows {
        for col in 0..config.cols {
            if col + 1 < config.cols && r.gen::<f64>() >= config.deletion_prob {
                list.push(id(row, col), id(row, col + 1), 1);
            }
            if row + 1 < config.rows && r.gen::<f64>() >= config.deletion_prob {
                list.push(id(row, col), id(row + 1, col), 1);
            }
        }
    }
    for _ in 0..config.shortcuts {
        let u = r.gen_range(0..n) as VertexId;
        let v = r.gen_range(0..n) as VertexId;
        if u != v {
            list.push(u, v, 1);
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;

    #[test]
    fn deterministic() {
        let cfg = GridConfig::road(20, 20);
        assert_eq!(grid_road(cfg, 9), grid_road(cfg, 9));
    }

    #[test]
    fn no_deletions_gives_full_lattice() {
        let cfg = GridConfig { rows: 4, cols: 5, deletion_prob: 0.0, shortcuts: 0 };
        let el = grid_road(cfg, 0);
        // 4*4 horizontal + 3*5 vertical = 31 edges.
        assert_eq!(el.len(), 31);
        let g = build_undirected(&el);
        // Interior vertex has degree 4.
        assert_eq!(g.degree(6), 4);
        // Corner has degree 2.
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn deletions_reduce_degree() {
        let full =
            grid_road(GridConfig { rows: 30, cols: 30, deletion_prob: 0.0, shortcuts: 0 }, 1);
        let sparse =
            grid_road(GridConfig { rows: 30, cols: 30, deletion_prob: 0.5, shortcuts: 0 }, 1);
        assert!(sparse.len() < full.len() * 2 / 3);
    }

    #[test]
    fn near_uniform_degree() {
        let el = grid_road(GridConfig::road(40, 40), 2);
        let g = build_undirected(&el);
        let max = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(max <= 6, "road graphs must not have hubs (max degree {max})");
    }
}
