//! Edge-weight assignment.
//!
//! The paper's inputs are unweighted graphs; §5.1.2: *"we use the random
//! function that follows uniform distribution to generate different
//! edges' weight values belonging to 1 to 1000"*. These helpers
//! reproduce that, deterministically.
//!
//! Weights are assigned per **undirected pair** `(min(u,v), max(u,v))`
//! by hashing the pair with the seed, so the two directions of an
//! undirected edge always agree — even if weights are assigned before
//! symmetrization or after dedup.

use crate::builder::EdgeList;
use crate::Weight;

/// The paper's weight range.
pub const PAPER_WEIGHT_RANGE: (Weight, Weight) = (1, 1000);

/// Deterministic weight for an undirected pair: a splitmix64-style hash
/// of `(seed, min, max)` folded into `lo..=hi`.
#[inline]
pub fn pair_weight(u: u32, v: u32, lo: Weight, hi: Weight, seed: u64) -> Weight {
    debug_assert!(lo <= hi);
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    let mut x = seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    lo + (x % (hi as u64 - lo as u64 + 1)) as Weight
}

/// Overwrite every edge's weight with a uniform value in `lo..=hi`.
pub fn assign_uniform_weights(list: &mut EdgeList, lo: Weight, hi: Weight, seed: u64) {
    for e in &mut list.edges {
        e.2 = pair_weight(e.0, e.1, lo, hi, seed);
    }
}

/// Convenience: assign the paper's `1..=1000` uniform weights.
pub fn uniform_weights(list: &mut EdgeList, seed: u64) {
    assign_uniform_weights(list, PAPER_WEIGHT_RANGE.0, PAPER_WEIGHT_RANGE.1, seed);
}

/// Weight distribution families for the sensitivity ablation: the
/// light/heavy split behaves very differently when weights are skewed
/// rather than uniform, which Δ-stepping's bucket balance depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightDistribution {
    /// The paper's uniform `1..=1000`.
    Uniform,
    /// Log-normal-like: most edges light, a heavy tail (`exp(N(μ,σ))`
    /// clamped to `1..=1000`).
    LogNormal,
    /// Exponential-like with mean ~150, clamped to `1..=1000`.
    Exponential,
    /// Two-point: 90% weight 10, 10% weight 1000 (an adversarial
    /// bimodal split).
    Bimodal,
}

/// Assign weights from a distribution, deterministically per
/// undirected pair (like [`assign_uniform_weights`]).
pub fn assign_distributed_weights(list: &mut EdgeList, dist: WeightDistribution, seed: u64) {
    for e in &mut list.edges {
        // A uniform u in (0, 1] from the pair hash.
        let raw = pair_weight(e.0, e.1, 1, 1_000_000, seed);
        let u = raw as f64 / 1_000_000.0;
        e.2 = match dist {
            WeightDistribution::Uniform => pair_weight(e.0, e.1, 1, 1000, seed),
            WeightDistribution::LogNormal => {
                // exp(mu + sigma * z) via inverse-ish transform: use
                // -ln(u) twice folded for a cheap normal-ish skew.
                let v = pair_weight(e.0, e.1, 1, 1_000_000, seed ^ 0x5A5A) as f64 / 1_000_000.0;
                let z = (-2.0 * u.max(1e-9).ln()).sqrt() * (std::f64::consts::TAU * v).cos();
                (3.5 + 1.0 * z).exp().clamp(1.0, 1000.0) as Weight
            }
            WeightDistribution::Exponential => {
                ((-u.max(1e-9).ln()) * 150.0).clamp(1.0, 1000.0) as Weight
            }
            WeightDistribution::Bimodal => {
                if u < 0.9 {
                    10
                } else {
                    1000
                }
            }
        }
        .max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    #[test]
    fn weights_in_range_and_deterministic() {
        let mut el = EdgeList::from_edges(10, vec![(0, 1, 0), (2, 3, 0), (4, 5, 0)]);
        uniform_weights(&mut el, 7);
        assert!(el.edges.iter().all(|&(_, _, w)| (1..=1000).contains(&w)));
        let mut el2 = EdgeList::from_edges(10, vec![(0, 1, 0), (2, 3, 0), (4, 5, 0)]);
        uniform_weights(&mut el2, 7);
        assert_eq!(el, el2);
    }

    #[test]
    fn symmetric_pairs_agree() {
        assert_eq!(pair_weight(3, 9, 1, 1000, 5), pair_weight(9, 3, 1, 1000, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = pair_weight(1, 2, 1, 1000, 1);
        let w2 = pair_weight(1, 2, 1, 1000, 2);
        // Not guaranteed for a single pair, but with this hash these
        // two specific seeds differ; the test pins the determinism.
        assert_ne!((w1, 1), (w2, 2));
    }

    #[test]
    fn roughly_uniform() {
        // Mean of 1..=1000 is 500.5; check the empirical mean of many
        // hashed pairs is close.
        let mut sum = 0u64;
        let k = 20_000u32;
        for i in 0..k {
            sum += pair_weight(i, i + 1, 1, 1000, 9) as u64;
        }
        let mean = sum as f64 / k as f64;
        assert!((mean - 500.5).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn degenerate_range() {
        assert_eq!(pair_weight(4, 5, 7, 7, 3), 7);
    }

    #[test]
    fn distributions_deterministic_and_in_range() {
        let edges: Vec<(u32, u32, u32)> = (0..500u32).map(|i| (i, (i + 1) % 500, 0)).collect();
        for dist in [
            WeightDistribution::Uniform,
            WeightDistribution::LogNormal,
            WeightDistribution::Exponential,
            WeightDistribution::Bimodal,
        ] {
            let mut a = EdgeList::from_edges(500, edges.clone());
            let mut b = EdgeList::from_edges(500, edges.clone());
            assign_distributed_weights(&mut a, dist, 9);
            assign_distributed_weights(&mut b, dist, 9);
            assert_eq!(a, b, "{dist:?}");
            assert!(a.edges.iter().all(|&(_, _, w)| (1..=1000).contains(&w)), "{dist:?}");
        }
    }

    #[test]
    fn lognormal_is_light_skewed() {
        let edges: Vec<(u32, u32, u32)> = (0..4000u32).map(|i| (i, (i + 1) % 4000, 0)).collect();
        let mut el = EdgeList::from_edges(4000, edges);
        assign_distributed_weights(&mut el, WeightDistribution::LogNormal, 3);
        let light = el.edges.iter().filter(|&&(_, _, w)| w < 100).count();
        assert!(
            light * 2 > el.len(),
            "log-normal should put most mass on light edges ({light}/{})",
            el.len()
        );
    }

    #[test]
    fn bimodal_split_fractions() {
        let edges: Vec<(u32, u32, u32)> = (0..4000u32).map(|i| (i, (i + 1) % 4000, 0)).collect();
        let mut el = EdgeList::from_edges(4000, edges);
        assign_distributed_weights(&mut el, WeightDistribution::Bimodal, 4);
        let heavy = el.edges.iter().filter(|&&(_, _, w)| w == 1000).count() as f64;
        let frac = heavy / el.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "heavy fraction {frac}");
    }
}
