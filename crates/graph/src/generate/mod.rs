//! Seeded, reproducible graph generators.
//!
//! Every generator takes an explicit `seed` and uses `ChaCha8Rng`, so
//! the same call yields the same graph on any platform — the whole
//! experiment harness is bit-reproducible.

pub mod erdos_renyi;
pub mod grid;
pub mod kronecker;
pub mod powerlaw;
pub mod rmat;
pub mod watts_strogatz;
pub mod weights;

pub use erdos_renyi::erdos_renyi;
pub use grid::{grid_road, GridConfig};
pub use kronecker::{kronecker, KroneckerConfig};
pub use powerlaw::preferential_attachment;
pub use rmat::{rmat, RmatConfig};
pub use watts_strogatz::watts_strogatz;
pub use weights::{
    assign_distributed_weights, assign_uniform_weights, uniform_weights, WeightDistribution,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The workspace-standard seeded RNG.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
