//! Graph500-style Kronecker generator.
//!
//! The Graph500 reference generator is a Kronecker-product sampler that
//! is statistically close to R-MAT with the same initiator matrix (the
//! paper notes this equivalence in §5.1.2). Like the reference code, we
//! additionally **permute vertex labels** after sampling, so vertex id
//! carries no degree information — that matters for the paper's
//! property-driven reordering, which would otherwise get the high-degree
//! vertices pre-sorted for free.

use super::rmat::{rmat, RmatConfig};
use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::seq::SliceRandom;

/// Kronecker generator parameters (a thin wrapper over the R-MAT core
/// with Graph500 defaults and label permutation).
#[derive(Clone, Copy, Debug)]
pub struct KroneckerConfig {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// `m = edgefactor * n` undirected edges sampled.
    pub edgefactor: u32,
}

impl KroneckerConfig {
    /// Graph500 SCALE/edgefactor notation; the paper names these graphs
    /// `k-n<scale>-<edgefactor>`.
    pub fn new(scale: u32, edgefactor: u32) -> Self {
        Self { scale, edgefactor }
    }

    /// The paper's naming, e.g. `k-n21-16`.
    pub fn name(&self) -> String {
        format!("k-n{}-{}", self.scale, self.edgefactor)
    }
}

/// Generate a Kronecker edge list with permuted vertex labels.
/// Weights are 1; assign real weights with
/// [`super::assign_uniform_weights`].
pub fn kronecker(config: KroneckerConfig, seed: u64) -> EdgeList {
    let mut list = rmat(RmatConfig::graph500(config.scale, config.edgefactor), seed);
    // Deterministic label shuffle with an independent stream.
    let n = list.num_vertices;
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    for e in &mut list.edges {
        e.0 = perm[e.0 as usize];
        e.1 = perm[e.1 as usize];
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches_paper_convention() {
        assert_eq!(KroneckerConfig::new(21, 16).name(), "k-n21-16");
    }

    #[test]
    fn deterministic_and_permuted() {
        let cfg = KroneckerConfig::new(8, 4);
        let a = kronecker(cfg, 3);
        let b = kronecker(cfg, 3);
        assert_eq!(a, b);
        // Permutation must change endpoints relative to the raw R-MAT.
        let raw = rmat(RmatConfig::graph500(8, 4), 3);
        assert_ne!(a, raw);
        // ...but preserve counts.
        assert_eq!(a.len(), raw.len());
        assert_eq!(a.num_vertices, raw.num_vertices);
    }

    #[test]
    fn degree_not_correlated_with_id() {
        // After label permutation the top-degree vertex should almost
        // surely not be vertex 0 (it is for raw R-MAT with these params).
        let el = kronecker(KroneckerConfig::new(10, 8), 11);
        let g = crate::builder::build_undirected(&el);
        let max_deg_v = (0..g.num_vertices() as VertexId).max_by_key(|&v| g.degree(v)).unwrap();
        let raw = crate::builder::build_undirected(&rmat(RmatConfig::graph500(10, 8), 11));
        let raw_max = (0..raw.num_vertices() as VertexId).max_by_key(|&v| raw.degree(v)).unwrap();
        assert_eq!(raw_max, 0, "R-MAT concentrates degree on vertex 0");
        assert_ne!(max_deg_v, 0, "permutation should move the hub");
    }
}
