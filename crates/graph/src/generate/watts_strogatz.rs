//! Watts–Strogatz small-world generator.
//!
//! A ring lattice (each vertex linked to its `k` nearest neighbours on
//! each side) with each edge rewired to a random endpoint with
//! probability `p`. Sweeping `p` from 0 to 1 moves the graph from
//! high-diameter lattice to random graph — useful as a *controlled
//! diameter knob* in ablations of the bucket count and of synchronous
//! iteration depth.

use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::Rng;

/// Generate a Watts–Strogatz ring: `n` vertices, `k` neighbours per
/// side (degree `2k` before rewiring), rewiring probability `p`.
///
/// # Panics
/// Panics if `n <= 2 * k` or `p` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> EdgeList {
    assert!(k >= 1 && n > 2 * k, "need n > 2k (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut r = rng(seed ^ 0x57A7_5057);
    let mut list = EdgeList::new(n);
    for v in 0..n {
        for j in 1..=k {
            let mut u = (v + j) % n;
            if r.gen::<f64>() < p {
                // Rewire to a uniform random non-self endpoint.
                loop {
                    u = r.gen_range(0..n);
                    if u != v {
                        break;
                    }
                }
            }
            list.push(v as VertexId, u as VertexId, 1);
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use crate::stats::{graph_stats, pseudo_diameter};

    #[test]
    fn deterministic_and_counts() {
        let a = watts_strogatz(100, 3, 0.1, 5);
        assert_eq!(a, watts_strogatz(100, 3, 0.1, 5));
        assert_eq!(a.len(), 300);
    }

    #[test]
    fn zero_p_is_a_lattice() {
        let g = build_undirected(&watts_strogatz(60, 2, 0.0, 1));
        let st = graph_stats(&g);
        assert_eq!(st.max_degree, 4);
        // Ring lattice diameter = ceil((n/2)/k) = 15.
        assert_eq!(st.pseudo_diameter, 15);
        assert_eq!(st.num_components, 1);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = build_undirected(&watts_strogatz(400, 2, 0.0, 3));
        let small_world = build_undirected(&watts_strogatz(400, 2, 0.2, 3));
        assert!(
            pseudo_diameter(&small_world) < pseudo_diameter(&lattice) / 2,
            "small-world {} vs lattice {}",
            pseudo_diameter(&small_world),
            pseudo_diameter(&lattice)
        );
    }

    #[test]
    #[should_panic(expected = "need n > 2k")]
    fn rejects_tiny_ring() {
        let _ = watts_strogatz(4, 2, 0.0, 0);
    }
}
