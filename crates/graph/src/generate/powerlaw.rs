//! Preferential-attachment (Barabási–Albert) power-law generator.
//!
//! Used for stand-ins of the paper's social/web graphs whose degree
//! distributions follow a power law (§3.2): a few hub vertices with
//! enormous degree, most vertices with a handful of edges — the shape
//! that makes vertex-centric GPU SSSP load-imbalanced.

use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::Rng;

/// Generate a preferential-attachment graph: starts from a small clique
/// of `m + 1` vertices; every further vertex attaches `m` edges to
/// existing vertices chosen proportionally to their current degree.
///
/// # Panics
/// Panics if `n <= m` or `m == 0`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than attachments");
    let mut r = rng(seed);
    let mut list = EdgeList::new(n);
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique over vertices 0..=m.
    for u in 0..=m as VertexId {
        for v in 0..u {
            list.push(u, v, 1);
            pool.push(u);
            pool.push(v);
        }
    }
    for u in (m + 1)..n {
        let u = u as VertexId;
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m {
            let v = pool[r.gen_range(0..pool.len())];
            guard += 1;
            if v == u {
                continue;
            }
            // Tolerate occasional parallel edges (the CSR builder dedups)
            // but avoid degenerate loops when the pool is tiny.
            if guard > 16 * m && attached > 0 {
                break;
            }
            list.push(u, v, 1);
            pool.push(u);
            pool.push(v);
            attached += 1;
        }
    }
    list
}

/// Preferential attachment with a **recency window**: each new vertex
/// attaches `m` edges degree-proportionally, but only among the
/// endpoints contributed by the most recent `window` vertices.
///
/// Plain preferential attachment always produces diameter ~5–6, while
/// several of the paper's graphs (Amazon 21, web-GL 21, com-LJ 17)
/// combine power-law hubs with a much deeper structure — and that
/// depth is what bounds the iteration count of synchronous GPU SSSP.
/// The window turns the graph into a chain of hub-and-spoke
/// communities whose hop diameter is ≈ `n / window`, independent of
/// the absolute size — so a scaled-down stand-in keeps the paper
/// graph's diameter.
///
/// `window >= n` degenerates to plain preferential attachment.
pub fn windowed_preferential_attachment(n: usize, m: usize, window: usize, seed: u64) -> EdgeList {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than attachments");
    assert!(window > m, "window must exceed attachment count");
    let mut r = rng(seed ^ 0xA5A5_1234);
    let mut list = EdgeList::new(n);
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for u in 0..=m as VertexId {
        for v in 0..u {
            list.push(u, v, 1);
            pool.push(u);
            pool.push(v);
        }
    }
    // Each vertex contributes ~2m endpoints; the active pool region is
    // the suffix covering the last `window` vertices.
    let span = 2 * m * window;
    for u in (m + 1)..n {
        let u = u as VertexId;
        let lo = pool.len().saturating_sub(span);
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m {
            let v = pool[r.gen_range(lo..pool.len())];
            guard += 1;
            if v == u {
                continue;
            }
            if guard > 16 * m && attached > 0 {
                break;
            }
            list.push(u, v, 1);
            pool.push(u);
            pool.push(v);
            attached += 1;
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;

    #[test]
    fn deterministic() {
        assert_eq!(preferential_attachment(200, 3, 5), preferential_attachment(200, 3, 5));
    }

    #[test]
    fn edge_count() {
        let m = 4;
        let n = 300;
        let el = preferential_attachment(n, m, 1);
        // Clique: C(m+1, 2) edges; then (n - m - 1) * m attachments.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(el.len(), expected);
    }

    #[test]
    fn has_hubs() {
        let el = preferential_attachment(2000, 4, 3);
        let g = build_undirected(&el);
        let max = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 8.0 * avg, "expected hub (max {max}, avg {avg:.1})");
    }

    #[test]
    fn connected() {
        let el = preferential_attachment(500, 2, 7);
        let g = build_undirected(&el);
        let comps = crate::stats::connected_components(&g);
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn windowed_is_deterministic_and_connected() {
        let a = windowed_preferential_attachment(800, 3, 100, 4);
        assert_eq!(a, windowed_preferential_attachment(800, 3, 100, 4));
        let g = build_undirected(&a);
        assert_eq!(crate::stats::connected_components(&g).num_components, 1);
    }

    #[test]
    fn window_stretches_diameter() {
        let plain = build_undirected(&preferential_attachment(3000, 3, 1));
        let deep = build_undirected(&windowed_preferential_attachment(3000, 3, 150, 1));
        let d_plain = crate::stats::pseudo_diameter(&plain);
        let d_deep = crate::stats::pseudo_diameter(&deep);
        assert!(
            d_deep >= d_plain * 2,
            "windowed diameter {d_deep} should far exceed plain {d_plain}"
        );
    }

    #[test]
    fn huge_window_matches_plain_shape() {
        // window >= n behaves like plain preferential attachment.
        let el = windowed_preferential_attachment(1000, 3, 1000, 2);
        let g = build_undirected(&el);
        assert!(crate::stats::pseudo_diameter(&g) <= 8);
    }
}
