//! Erdős–Rényi G(n, m) generator: `m` uniformly random edges.
//!
//! Used in tests and as a locality-free control in the ablation
//! benches (no skew, no structure — the worst case for reordering).

use super::rng;
use crate::builder::EdgeList;
use crate::VertexId;
use rand::Rng;

/// Sample `m` edges uniformly at random over `n` vertices (endpoints
/// independent; self-loops possible and left for the builder to drop).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n > 0 && n <= u32::MAX as usize);
    let mut r = rng(seed);
    let mut list = EdgeList::new(n);
    list.edges.reserve(m);
    for _ in 0..m {
        let u = r.gen_range(0..n) as VertexId;
        let v = r.gen_range(0..n) as VertexId;
        list.push(u, v, 1);
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_determinism() {
        let a = erdos_renyi(100, 400, 2);
        assert_eq!(a.len(), 400);
        assert_eq!(a, erdos_renyi(100, 400, 2));
        assert_ne!(a, erdos_renyi(100, 400, 3));
    }

    #[test]
    fn endpoints_in_range() {
        let el = erdos_renyi(50, 1000, 1);
        assert!(el.edges.iter().all(|&(u, v, _)| u < 50 && v < 50));
    }
}
