//! Heavy-edge offsets (PRO step 3).
//!
//! §4.1 / Fig. 4 (c): *"to quickly locate the heavy edges in phase 2 of
//! Δ-stepping algorithm, the offset of heavy edges is also added to row
//! list."* With rows sorted by ascending weight, `heavy_offsets[v]` is
//! the absolute edge index of `v`'s first heavy edge (`w >= delta`);
//! light edges are `row[v]..heavy_offsets[v]`, heavy edges are
//! `heavy_offsets[v]..row[v + 1]`.
//!
//! The paper notes the offset *"can be changed immediately in phase 1
//! ... it can adapt itself to the change of Δ value"* — with sorted
//! rows, recomputation for a new Δ is one binary search per vertex,
//! exposed as [`recompute_heavy_offsets`].

use crate::{Csr, VertexId, Weight};

/// Compute and attach heavy offsets for `delta`. Requires every row to
/// be weight-sorted (run [`super::sort_edges_by_weight`] first).
///
/// # Panics
/// Panics if any row is not sorted by ascending weight.
pub fn attach_heavy_offsets(g: &mut Csr, delta: Weight) {
    let offsets = compute_heavy_offsets(g, delta);
    g.set_heavy_offsets(offsets, delta);
}

/// Compute heavy offsets without attaching.
pub fn compute_heavy_offsets(g: &Csr, delta: Weight) -> Vec<u32> {
    let n = g.num_vertices();
    let mut offsets = vec![0u32; n];
    for v in 0..n as VertexId {
        assert!(g.is_weight_sorted(v), "vertex {v} not weight-sorted");
        let r = g.edge_range(v);
        let split = g.edge_weights(v).partition_point(|&w| w < delta);
        offsets[v as usize] = (r.start + split) as u32;
    }
    offsets
}

/// Recompute the offsets in place for a new delta (the adaptive-Δ path
/// of §4.3 changes the bucket width between buckets).
pub fn recompute_heavy_offsets(g: &mut Csr, delta: Weight) {
    attach_heavy_offsets(g, delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_split_light_heavy() {
        let mut g = Csr::from_raw(vec![0, 3, 5], vec![1, 1, 1, 0, 0], vec![1, 2, 8, 4, 9]);
        attach_heavy_offsets(&mut g, 3);
        assert_eq!(g.heavy_offsets().unwrap(), &[2, 3]);
        assert_eq!(g.light_range(0, 3), Some(0..2));
        assert_eq!(g.light_range(1, 3), Some(3..3));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn all_light_and_all_heavy() {
        let mut g = Csr::from_raw(vec![0, 2], vec![0, 0], vec![1, 2]);
        attach_heavy_offsets(&mut g, 100);
        assert_eq!(g.heavy_offsets().unwrap(), &[2]); // all light
        attach_heavy_offsets(&mut g, 1);
        assert_eq!(g.heavy_offsets().unwrap(), &[0]); // all heavy
    }

    #[test]
    fn recompute_for_new_delta() {
        let mut g = Csr::from_raw(vec![0, 3], vec![0, 0, 0], vec![2, 5, 9]);
        attach_heavy_offsets(&mut g, 4);
        assert_eq!(g.heavy_offsets().unwrap(), &[1]);
        recompute_heavy_offsets(&mut g, 6);
        assert_eq!(g.heavy_offsets().unwrap(), &[2]);
        assert_eq!(g.heavy_delta(), Some(6));
    }

    #[test]
    #[should_panic(expected = "not weight-sorted")]
    fn requires_sorted_rows() {
        let mut g = Csr::from_raw(vec![0, 2], vec![0, 0], vec![9, 1]);
        attach_heavy_offsets(&mut g, 5);
    }
}
