//! Property-driven reordering (paper §4.1, Fig. 4).
//!
//! The PRO preprocessing has three steps, each available on its own:
//!
//! 1. [`degree::degree_descending`] — relabel vertices by descending
//!    degree so frequently-touched hubs share cache lines;
//! 2. [`weight_sort::sort_edges_by_weight`] — per vertex, sort the
//!    adjacency/value lists by ascending weight so light edges form a
//!    prefix (no per-edge light/heavy branch → no warp divergence);
//! 3. [`heavy_offset::attach_heavy_offsets`] — record, per vertex, the
//!    first heavy-edge index for a given Δ in the row list.
//!
//! [`pro`] runs all three and returns the permutation used, so results
//! can be mapped back to original vertex ids.

pub mod alternatives;
pub mod degree;
pub mod heavy_offset;
pub mod permutation;
pub mod weight_sort;

pub use alternatives::{bfs_order, degree_ascending, random_order};
pub use degree::degree_descending;
pub use heavy_offset::attach_heavy_offsets;
pub use permutation::Permutation;
pub use weight_sort::sort_edges_by_weight;

use crate::{Csr, Weight};

/// The full property-driven reordering pipeline of §4.1: relabel by
/// descending degree, sort each adjacency by ascending weight, attach
/// heavy offsets for `delta`.
///
/// Returns the reordered CSR and the [`Permutation`] mapping
/// **old vertex id → new vertex id**.
///
/// ```
/// use rdbs_graph::builder::{build_undirected, EdgeList};
/// use rdbs_graph::reorder::pro;
///
/// let el = EdgeList::from_edges(4, vec![(0, 1, 900), (1, 2, 30), (1, 3, 700)]);
/// let g = build_undirected(&el);
/// let (reordered, perm) = pro(&g, 100);
/// // Vertex 1 has the highest degree, so it becomes vertex 0...
/// assert_eq!(perm.new_id(1), 0);
/// // ...its edges are weight-sorted, and the heavy offset marks the
/// // first edge with weight >= 100.
/// assert_eq!(reordered.edge_weights(0), &[30, 700, 900]);
/// assert_eq!(reordered.light_range(0, 100), Some(0..1));
/// ```
pub fn pro(graph: &Csr, delta: Weight) -> (Csr, Permutation) {
    let perm = degree_descending(graph);
    let mut g = perm.apply_to_graph(graph);
    sort_edges_by_weight(&mut g);
    attach_heavy_offsets(&mut g, delta);
    (g, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};
    use crate::VertexId;

    /// The exact graph of the paper's Fig. 4 (a): 5 vertices.
    /// Edges (undirected, weighted):
    /// 0-1 (10? no — see figure): the figure shows vertices 0..4 with
    /// degrees 2, 4, 2, 3, 3. We reconstruct a graph with those degrees
    /// and check the reordering properties the figure illustrates.
    fn fig4_like() -> crate::Csr {
        let el = EdgeList::from_edges(
            5,
            vec![(0, 1, 15), (0, 3, 2), (1, 2, 9), (1, 3, 1), (1, 4, 4), (3, 4, 2), (2, 4, 9)],
        );
        build_undirected(&el)
    }

    #[test]
    fn pro_pipeline_properties() {
        let g = fig4_like();
        let delta = 3;
        let (rg, perm) = pro(&g, delta);
        // Topology preserved.
        assert_eq!(rg.num_edges(), g.num_edges());
        assert_eq!(rg.num_vertices(), g.num_vertices());
        // Degrees descending in new id order.
        let degs: Vec<u32> = (0..rg.num_vertices() as VertexId).map(|v| rg.degree(v)).collect();
        assert!(degs.windows(2).all(|p| p[0] >= p[1]), "degrees {degs:?}");
        // Weights sorted per vertex; heavy offsets valid.
        assert!(rg.is_fully_weight_sorted());
        assert!(rg.validate().is_ok());
        assert_eq!(rg.heavy_delta(), Some(delta));
        // Permutation is a bijection consistent with degree order:
        // vertex 1 (degree 4) must become vertex 0.
        assert_eq!(perm.new_id(1), 0);
    }

    #[test]
    fn pro_preserves_edge_multiset() {
        let g = fig4_like();
        let (rg, perm) = pro(&g, 5);
        let mut orig: Vec<(VertexId, VertexId, Weight)> =
            g.all_edges().map(|(u, v, w)| (perm.new_id(u), perm.new_id(v), w)).collect();
        let mut reord: Vec<_> = rg.all_edges().collect();
        orig.sort_unstable();
        reord.sort_unstable();
        assert_eq!(orig, reord);
    }
}
