//! Alternative vertex orderings, for ablating PRO's degree-descending
//! choice (§4.1 justifies it with "vertices with high degrees are
//! frequently used"; these alternatives test that justification).
//!
//! * [`random_order`] — a seeded shuffle: the locality *floor* (any
//!   structure in the input labelling is destroyed);
//! * [`bfs_order`] — breadth-first discovery order from a seed vertex:
//!   the classic locality-oriented relabeling (neighbours end up close
//!   in memory), degree-agnostic;
//! * [`degree_ascending`] — the deliberate inverse of PRO's step 1.

use super::permutation::Permutation;
use crate::{Csr, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// A seeded random relabeling.
pub fn random_order(g: &Csr, seed: u64) -> Permutation {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0x04D3_04D3));
    // `order[new] = old`; invert to old → new.
    let mut old_to_new = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        old_to_new[old as usize] = new as VertexId;
    }
    Permutation::from_old_to_new(old_to_new)
}

/// BFS discovery order from `seed_vertex`, unreached vertices appended
/// in id order.
pub fn bfs_order(g: &Csr, seed_vertex: VertexId) -> Permutation {
    let n = g.num_vertices();
    let mut old_to_new = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    if (seed_vertex as usize) < n {
        old_to_new[seed_vertex as usize] = next;
        next += 1;
        queue.push_back(seed_vertex);
    }
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if old_to_new[v as usize] == u32::MAX {
                old_to_new[v as usize] = next;
                next += 1;
                queue.push_back(v);
            }
        }
    }
    for slot in &mut old_to_new {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    Permutation::from_old_to_new(old_to_new)
}

/// Ascending-degree relabeling (PRO's inverse).
pub fn degree_ascending(g: &Csr) -> Permutation {
    let n = g.num_vertices();
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    ids.sort_by_key(|&v| (g.degree(v), v));
    let mut old_to_new = vec![0 as VertexId; n];
    for (new, &old) in ids.iter().enumerate() {
        old_to_new[old as usize] = new as VertexId;
    }
    Permutation::from_old_to_new(old_to_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};
    use crate::generate::preferential_attachment;

    fn graph() -> Csr {
        build_undirected(&preferential_attachment(200, 3, 7))
    }

    #[test]
    fn random_is_a_seeded_bijection() {
        let g = graph();
        let p = random_order(&g, 3);
        assert_eq!(p, random_order(&g, 3));
        assert_ne!(p, random_order(&g, 4));
        assert_eq!(p.compose(&p.inverse()), Permutation::identity(g.num_vertices()));
    }

    #[test]
    fn bfs_order_places_neighbours_nearby() {
        let el = EdgeList::from_edges(6, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1)]);
        let g = build_undirected(&el);
        let p = bfs_order(&g, 0);
        assert_eq!(p.new_id(0), 0);
        // Direct neighbours get the next ids.
        assert!(p.new_id(1) <= 2 && p.new_id(2) <= 2);
        // Unreached vertex 5 goes last.
        assert_eq!(p.new_id(5), 5);
    }

    #[test]
    fn ascending_is_descending_reversed() {
        let g = graph();
        let asc = degree_ascending(&g);
        let rg = asc.apply_to_graph(&g);
        let degs: Vec<u32> = (0..rg.num_vertices() as u32).map(|v| rg.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
    }
}
