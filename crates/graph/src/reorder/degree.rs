//! Descending-degree vertex relabeling (PRO step 1).
//!
//! §4.1: *"vertices with high degrees are frequently used ... we reorder
//! the vertices in descending order by degree and reassign the index for
//! them. In this way, vertices with high degrees are assigned low vertex
//! id and stored together."* Ties are broken by original id, making the
//! permutation deterministic.

use super::permutation::Permutation;
use crate::{Csr, VertexId};

/// Compute the descending-degree permutation (old → new id).
pub fn degree_descending(g: &Csr) -> Permutation {
    let n = g.num_vertices();
    let order: Vec<VertexId> = (0..n as VertexId).collect();
    // Sort vertex ids by (degree desc, id asc) — a counting sort over
    // degrees keeps this O(n + m) even for huge graphs.
    let max_deg = order.iter().map(|&v| g.degree(v)).max().unwrap_or(0) as usize;
    let mut buckets = vec![0u32; max_deg + 2];
    for &v in &order {
        buckets[g.degree(v) as usize + 1] += 1;
    }
    // Prefix sums over descending degree: position of first vertex with
    // degree d = count of vertices with degree > d.
    let mut start = vec![0u32; max_deg + 1];
    let mut acc = 0u32;
    for d in (0..=max_deg).rev() {
        start[d] = acc;
        acc += buckets[d + 1];
    }
    let mut old_to_new = vec![0 as VertexId; n];
    for &v in &order {
        let d = g.degree(v) as usize;
        old_to_new[v as usize] = start[d];
        start[d] += 1;
    }
    Permutation::from_old_to_new(old_to_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_undirected, EdgeList};

    #[test]
    fn orders_by_degree_with_stable_ties() {
        // degrees: v0=1, v1=3, v2=1, v3=2, v4=1
        let el = EdgeList::from_edges(5, vec![(1, 0, 1), (1, 2, 1), (1, 3, 1), (3, 4, 1)]);
        let g = build_undirected(&el);
        let p = degree_descending(&g);
        assert_eq!(p.new_id(1), 0); // highest degree first
        assert_eq!(p.new_id(3), 1);
        // Ties (v0, v2, v4 with degree 1) keep original relative order.
        assert_eq!(p.new_id(0), 2);
        assert_eq!(p.new_id(2), 3);
        assert_eq!(p.new_id(4), 4);
    }

    #[test]
    fn relabeled_graph_has_monotone_degrees() {
        let el = crate::generate::preferential_attachment(300, 3, 4);
        let g = build_undirected(&el);
        let p = degree_descending(&g);
        let rg = p.apply_to_graph(&g);
        let degs: Vec<u32> = (0..rg.num_vertices() as VertexId).map(|v| rg.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = Csr::empty(3);
        let p = degree_descending(&g);
        assert_eq!(p, Permutation::identity(3));
    }
}
