//! Per-vertex ascending-weight edge sorting (PRO step 2).
//!
//! §4.1: *"the relaxation of edges with small weight values has a high
//! possibility for valid updates. Hence, for each vertex, we further
//! reorder the adjacent vertices in adjacency list and value list in
//! ascending order of weight."* After this, light edges (`w < Δ`) form
//! a prefix of every row, removing the per-edge branch of phase 1/2.

use crate::Csr;

/// Sort every vertex's `(adjacency, weights)` pair by ascending weight
/// in place. Ties are broken by destination id for determinism. Any
/// attached heavy offsets are invalidated and cleared.
pub fn sort_edges_by_weight(g: &mut Csr) {
    let n = g.num_vertices();
    let (rows, adj, ws) = g.edges_mut();
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        let r = rows[v] as usize..rows[v + 1] as usize;
        if r.len() <= 1 {
            continue;
        }
        scratch.clear();
        scratch.extend(ws[r.clone()].iter().copied().zip(adj[r.clone()].iter().copied()));
        scratch.sort_unstable();
        for (i, &(w, d)) in scratch.iter().enumerate() {
            ws[r.start + i] = w;
            adj[r.start + i] = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_each_row() {
        let mut g = Csr::from_raw(vec![0, 3, 5], vec![1, 0, 1, 0, 1], vec![9, 2, 5, 7, 3]);
        sort_edges_by_weight(&mut g);
        assert_eq!(g.edge_weights(0), &[2, 5, 9]);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
        assert_eq!(g.edge_weights(1), &[3, 7]);
        assert_eq!(g.neighbors(1), &[1, 0]);
        assert!(g.is_fully_weight_sorted());
    }

    #[test]
    fn tie_break_by_destination() {
        let mut g = Csr::from_raw(vec![0, 3, 3, 3], vec![2, 0, 1], vec![5, 5, 5]);
        sort_edges_by_weight(&mut g);
        assert_eq!(g.neighbors(0), &[0, 1, 2]);
    }

    #[test]
    fn clears_heavy_offsets() {
        let mut g = Csr::from_raw(vec![0, 2], vec![0, 0], vec![1, 9]);
        crate::reorder::attach_heavy_offsets(&mut g, 5);
        assert!(g.heavy_offsets().is_some());
        sort_edges_by_weight(&mut g);
        assert!(g.heavy_offsets().is_none());
    }
}
