//! Vertex permutations: relabeling maps with graph/array application.

use crate::{Csr, VertexId};

/// A bijective relabeling of vertices, stored as **old id → new id**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    old_to_new: Vec<VertexId>,
}

impl Permutation {
    /// Build from an old→new map, validating bijectivity.
    ///
    /// # Panics
    /// Panics if the map is not a permutation of `0..len`.
    pub fn from_old_to_new(old_to_new: Vec<VertexId>) -> Self {
        let n = old_to_new.len();
        let mut seen = vec![false; n];
        for &x in &old_to_new {
            assert!((x as usize) < n, "permutation entry {x} out of range");
            assert!(!seen[x as usize], "duplicate permutation entry {x}");
            seen[x as usize] = true;
        }
        Self { old_to_new }
    }

    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self { old_to_new: (0..n as VertexId).collect() }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Whether this permutes zero vertices.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// New id of an old vertex.
    #[inline]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// The inverse map, **new id → old id**.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as VertexId; self.len()];
        for (old, &new) in self.old_to_new.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Permutation { old_to_new: inv }
    }

    /// Compose: apply `self` first, then `then` (`old → then(self(old))`).
    pub fn compose(&self, then: &Permutation) -> Permutation {
        assert_eq!(self.len(), then.len());
        Permutation { old_to_new: self.old_to_new.iter().map(|&mid| then.new_id(mid)).collect() }
    }

    /// Relabel a graph: vertex `v` becomes `new_id(v)`; adjacency
    /// entries are rewritten and rows rebuilt in new-id order. Edge
    /// order within a row follows the old row order (callers that need
    /// weight-sorted rows run [`super::sort_edges_by_weight`] after).
    pub fn apply_to_graph(&self, g: &Csr) -> Csr {
        let n = g.num_vertices();
        assert_eq!(n, self.len());
        let inv = self.inverse();
        let mut row_offsets = vec![0u32; n + 1];
        for new_v in 0..n {
            let old_v = inv.new_id(new_v as VertexId);
            row_offsets[new_v + 1] = row_offsets[new_v] + g.degree(old_v);
        }
        let m = g.num_edges();
        let mut adjacency = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        for new_v in 0..n {
            let old_v = inv.new_id(new_v as VertexId);
            for (dst, w) in g.edges(old_v) {
                adjacency.push(self.new_id(dst));
                weights.push(w);
            }
        }
        Csr::from_raw(row_offsets, adjacency, weights)
    }

    /// Relabel a per-vertex array indexed by **old** ids into one
    /// indexed by **new** ids.
    pub fn apply_to_array<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        let mut out = vec![values[0]; values.len()];
        for (old, &new) in self.old_to_new.iter().enumerate() {
            out[new as usize] = values[old];
        }
        out
    }

    /// Map a per-vertex array indexed by **new** ids back to old order.
    pub fn unapply_to_array<T: Copy>(&self, values: &[T]) -> Vec<T> {
        self.inverse().apply_to_array(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert_eq!(p.new_id(2), 2);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_old_to_new(vec![2, 0, 3, 1]);
        assert_eq!(p.compose(&p.inverse()), Permutation::identity(4));
        assert_eq!(p.inverse().compose(&p), Permutation::identity(4));
    }

    #[test]
    fn array_roundtrip() {
        let p = Permutation::from_old_to_new(vec![2, 0, 1]);
        let vals = [10, 20, 30];
        let new = p.apply_to_array(&vals);
        assert_eq!(new, vec![20, 30, 10]);
        assert_eq!(p.unapply_to_array(&new), vals);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_bijection() {
        let _ = Permutation::from_old_to_new(vec![0, 0, 1]);
    }

    #[test]
    fn graph_relabel_preserves_structure() {
        // path 0 - 1 - 2 with weights 5, 7.
        let g = Csr::from_raw(vec![0, 1, 3, 4], vec![1, 0, 2, 1], vec![5, 5, 7, 7]);
        let p = Permutation::from_old_to_new(vec![2, 1, 0]); // reverse
        let rg = p.apply_to_graph(&g);
        // New vertex 2 is old 0: degree 1, neighbour new-id of old 1 = 1.
        assert_eq!(rg.neighbors(2), &[1]);
        assert_eq!(rg.edge_weights(2), &[5]);
        assert_eq!(rg.neighbors(1), &[2, 0]);
        assert_eq!(rg.edge_weights(1), &[5, 7]);
        assert_eq!(rg.neighbors(0), &[1]);
    }
}
