//! Compressed Sparse Row graph representation.
//!
//! The layout mirrors Fig. 1 (c) of the paper: a `row list` of offsets,
//! an `adjacency list` of destination vertices and a `value list` of
//! edge weights. After property-driven reordering (Fig. 4 (c)) a fourth
//! array is attached: per-vertex *heavy-edge offsets*, pointing at the
//! first adjacent edge whose weight is `>= delta` (edges are then sorted
//! by ascending weight, so light edges form a prefix).

use crate::{Dist, VertexId, Weight, INF};

/// A directed weighted graph in CSR form.
///
/// Invariants (checked by [`Csr::validate`] and enforced by the
/// constructors):
/// * `row_offsets.len() == num_vertices() + 1`, non-decreasing,
///   `row_offsets[0] == 0`, `row_offsets[n] == num_edges()`;
/// * `adjacency.len() == weights.len() == num_edges()`;
/// * every adjacency entry is `< num_vertices()`;
/// * if present, `heavy_offsets[v]` lies within `v`'s edge range and all
///   edges before it are light (`w < delta`) and all at/after are heavy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    row_offsets: Vec<u32>,
    adjacency: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Absolute edge index where vertex `v`'s heavy edges start, for the
    /// delta the offsets were computed with. `None` until
    /// [`crate::reorder::heavy_offset::attach_heavy_offsets`] runs.
    heavy_offsets: Option<Vec<u32>>,
    /// The delta value the heavy offsets were computed against.
    heavy_delta: Option<Weight>,
}

impl Csr {
    /// Build a CSR directly from its raw arrays.
    ///
    /// ```
    /// use rdbs_graph::Csr;
    /// // 0 -> 1 (w 2), 0 -> 2 (w 5), 1 -> 2 (w 1)
    /// let g = Csr::from_raw(vec![0, 2, 3, 3], vec![1, 2, 2], vec![2, 5, 1]);
    /// assert_eq!(g.num_vertices(), 3);
    /// assert_eq!(g.neighbors(0), &[1, 2]);
    /// assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(2, 1)]);
    /// ```
    ///
    /// # Panics
    /// Panics if the arrays violate the CSR invariants.
    pub fn from_raw(row_offsets: Vec<u32>, adjacency: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        Self::try_from_raw(row_offsets, adjacency, weights).expect("invalid CSR arrays")
    }

    /// Like [`Csr::from_raw`] but returns the first invariant
    /// violation instead of panicking — for loaders that handle
    /// untrusted input (e.g. [`crate::io::binary`]).
    pub fn try_from_raw(
        row_offsets: Vec<u32>,
        adjacency: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Result<Self, String> {
        let csr = Self { row_offsets, adjacency, weights, heavy_offsets: None, heavy_delta: None };
        csr.validate()?;
        Ok(csr)
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            row_offsets: vec![0; n + 1],
            adjacency: Vec::new(),
            weights: Vec::new(),
            heavy_offsets: None,
            heavy_delta: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Edge index range `[start, end)` of `v`'s adjacency.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.row_offsets[v as usize] as usize..self.row_offsets[v as usize + 1] as usize
    }

    /// The neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[self.edge_range(v)]
    }

    /// The weights of `v`'s out-edges, parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.edge_range(v)]
    }

    /// Iterate `(destination, weight)` pairs of `v`'s out-edges.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let r = self.edge_range(v);
        self.adjacency[r.clone()].iter().copied().zip(self.weights[r].iter().copied())
    }

    /// Iterate every directed edge as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Raw row-offset array (length `n + 1`).
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adjacency
    }

    /// Raw weight array.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// The heavy-edge offset array, if attached.
    #[inline]
    pub fn heavy_offsets(&self) -> Option<&[u32]> {
        self.heavy_offsets.as_deref()
    }

    /// The delta the heavy offsets were computed for.
    #[inline]
    pub fn heavy_delta(&self) -> Option<Weight> {
        self.heavy_delta
    }

    /// Attach a heavy-offset array (see [`crate::reorder::heavy_offset`]).
    pub(crate) fn set_heavy_offsets(&mut self, offsets: Vec<u32>, delta: Weight) {
        debug_assert_eq!(offsets.len(), self.num_vertices());
        self.heavy_offsets = Some(offsets);
        self.heavy_delta = Some(delta);
    }

    /// Drop any attached heavy offsets (used when re-sorting edges).
    pub fn clear_heavy_offsets(&mut self) {
        self.heavy_offsets = None;
        self.heavy_delta = None;
    }

    /// Mutable access to the adjacency/weight arrays for in-place
    /// per-vertex reordering. Clears heavy offsets since they may no
    /// longer be valid.
    pub(crate) fn edges_mut(&mut self) -> (&[u32], &mut [VertexId], &mut [Weight]) {
        self.heavy_offsets = None;
        self.heavy_delta = None;
        (&self.row_offsets, &mut self.adjacency, &mut self.weights)
    }

    /// `v`'s light-edge range `[start, heavy_start)` for weight
    /// threshold `delta`.
    ///
    /// If heavy offsets for exactly this delta are attached this is an
    /// O(1) lookup; otherwise, if the adjacency is weight-sorted, a
    /// binary search; otherwise `None` (the caller must scan).
    pub fn light_range(&self, v: VertexId, delta: Weight) -> Option<std::ops::Range<usize>> {
        let r = self.edge_range(v);
        if let (Some(offsets), Some(hd)) = (&self.heavy_offsets, self.heavy_delta) {
            if hd == delta {
                return Some(r.start..offsets[v as usize] as usize);
            }
        }
        if self.is_weight_sorted(v) {
            let ws = &self.weights[r.clone()];
            let split = ws.partition_point(|&w| w < delta);
            return Some(r.start..r.start + split);
        }
        None
    }

    /// Number of light edges (`w < delta`) of `v`, scanning if needed.
    pub fn light_degree(&self, v: VertexId, delta: Weight) -> u32 {
        match self.light_range(v, delta) {
            Some(r) => r.len() as u32,
            None => self.edge_weights(v).iter().filter(|&&w| w < delta).count() as u32,
        }
    }

    /// Whether `v`'s edges are sorted by ascending weight.
    pub fn is_weight_sorted(&self, v: VertexId) -> bool {
        self.edge_weights(v).windows(2).all(|p| p[0] <= p[1])
    }

    /// Whether every vertex's edges are sorted by ascending weight.
    pub fn is_fully_weight_sorted(&self) -> bool {
        (0..self.num_vertices() as VertexId).all(|v| self.is_weight_sorted(v))
    }

    /// Maximum edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Mean edge weight, or 0.0 for an edgeless graph.
    pub fn mean_weight(&self) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        self.weights.iter().map(|&w| w as f64).sum::<f64>() / self.weights.len() as f64
    }

    /// An upper bound on any finite shortest-path distance:
    /// `(n - 1) * max_weight`, saturating. Useful as a guard against
    /// distance overflow in debug assertions.
    pub fn distance_bound(&self) -> Dist {
        (self.num_vertices() as u64)
            .saturating_sub(1)
            .saturating_mul(self.max_weight() as u64)
            .min(INF as u64 - 1) as Dist
    }

    /// Verify all CSR invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_offsets.is_empty() {
            return Err("row_offsets must have at least one entry".into());
        }
        if self.row_offsets[0] != 0 {
            return Err("row_offsets[0] must be 0".into());
        }
        if !self.row_offsets.windows(2).all(|p| p[0] <= p[1]) {
            return Err("row_offsets must be non-decreasing".into());
        }
        let m = *self.row_offsets.last().unwrap() as usize;
        if m != self.adjacency.len() {
            return Err(format!(
                "row_offsets end ({m}) != adjacency len ({})",
                self.adjacency.len()
            ));
        }
        if self.adjacency.len() != self.weights.len() {
            return Err(format!(
                "adjacency len ({}) != weights len ({})",
                self.adjacency.len(),
                self.weights.len()
            ));
        }
        let n = self.num_vertices() as VertexId;
        if let Some(&bad) = self.adjacency.iter().find(|&&d| d >= n) {
            return Err(format!("adjacency entry {bad} out of range (n = {n})"));
        }
        if let (Some(offsets), Some(delta)) = (&self.heavy_offsets, self.heavy_delta) {
            if offsets.len() != self.num_vertices() {
                return Err("heavy_offsets length mismatch".into());
            }
            for v in 0..n {
                let r = self.edge_range(v);
                let h = offsets[v as usize] as usize;
                if h < r.start || h > r.end {
                    return Err(format!("heavy offset of {v} outside edge range"));
                }
                if self.weights[r.start..h].iter().any(|&w| w >= delta) {
                    return Err(format!("light prefix of {v} contains heavy edge"));
                }
                if self.weights[h..r.end].iter().any(|&w| w < delta) {
                    return Err(format!("heavy suffix of {v} contains light edge"));
                }
            }
        }
        Ok(())
    }

    /// Total bytes of the raw arrays (for memory accounting in the
    /// experiment harness).
    pub fn memory_bytes(&self) -> usize {
        self.row_offsets.len() * 4
            + self.adjacency.len() * 4
            + self.weights.len() * 4
            + self.heavy_offsets.as_ref().map_or(0, |h| h.len() * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1 (w 2), 0 -> 2 (w 5), 1 -> 3 (w 1), 2 -> 3 (w 1)
        Csr::from_raw(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3], vec![2, 5, 1, 1])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[2, 5]);
        assert_eq!(g.edges(1).collect::<Vec<_>>(), vec![(3, 1)]);
    }

    #[test]
    fn all_edges_enumerates_in_csr_order() {
        let g = diamond();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 5), (1, 3, 1), (2, 3, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.max_weight(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn light_degree_by_scan_and_sorted() {
        let g = diamond();
        // vertex 0 weights [2, 5]; sorted, so light_range applies.
        assert_eq!(g.light_degree(0, 3), 1);
        assert_eq!(g.light_degree(0, 6), 2);
        assert_eq!(g.light_degree(0, 1), 0);
        assert_eq!(g.light_range(0, 3), Some(0..1));
    }

    #[test]
    fn light_range_unsorted_returns_none() {
        // weights [5, 2] unsorted
        let g = Csr::from_raw(vec![0, 2, 2], vec![1, 1], vec![5, 2]);
        assert!(g.light_range(0, 3).is_none());
        assert_eq!(g.light_degree(0, 3), 1);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn out_of_range_adjacency_panics() {
        let _ = Csr::from_raw(vec![0, 1], vec![7], vec![1]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn decreasing_offsets_panic() {
        let _ = Csr::from_raw(vec![0, 2, 1], vec![0, 0], vec![1, 1]);
    }

    #[test]
    fn distance_bound_saturates() {
        let g = diamond();
        assert_eq!(g.distance_bound(), 3 * 5);
    }

    #[test]
    fn validate_catches_weight_len_mismatch() {
        let g = Csr {
            row_offsets: vec![0, 1],
            adjacency: vec![0],
            weights: vec![],
            heavy_offsets: None,
            heavy_delta: None,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn mean_weight() {
        let g = diamond();
        assert!((g.mean_weight() - 2.25).abs() < 1e-12);
        assert_eq!(Csr::empty(1).mean_weight(), 0.0);
    }
}
