//! The sanitized conformance matrix: every GPU entry point × graph
//! family with the memory-model sanitizer armed, and one invariant —
//! **zero violations**.
//!
//! The differential matrix ([`crate::runner`]) checks *answers*; the
//! chaos matrix ([`crate::chaos`]) checks answers under injected
//! faults; this matrix checks *accesses*: every kernel the repo ships
//! must respect the snapshot / volatile / atomic discipline that makes
//! BASYN's barrier-free phase 1 (§4.3) correct on real hardware, not
//! just under the simulator's sequential execution. A cell is green
//! only when the entry point's answer matches the Dijkstra oracle
//! *and* its run produced no [`SanViolation`].
//!
//! [`planted_race_specimen`] is the detector's liveness check: a
//! deliberately racy kernel that must produce a violation carrying
//! lane ids, the buffer label and the address — run first by the CLI
//! so "zero violations" can never mean "detector asleep".

use crate::graphs::{self, GraphCase};
use rdbs_core::gpu::{
    run_gpu_on, FrontierKind, MultiGpuConfig, MultiGpuState, RdbsConfig, Variant,
};
use rdbs_core::seq::dijkstra;
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::validate::check_against;
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::{Device, DeviceConfig, SanCheck, SanConfig, SanViolation};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One sanitized entry point.
#[derive(Clone, Copy, Debug)]
pub struct SanEntry {
    /// Stable id used in reports and filters (e.g. `gpu/full`).
    pub id: &'static str,
    pub(crate) kind: EntryKind,
    /// `--frontier` override: sanitize every RDBS-backed surface of
    /// this entry on this frontier layout instead of its own.
    frontier: Option<FrontierKind>,
}

impl SanEntry {
    /// Sanitize this entry on `kind`'s frontier layout (`--frontier`).
    #[must_use]
    pub fn with_frontier(mut self, kind: FrontierKind) -> Self {
        self.frontier = Some(kind);
        self
    }

    pub(crate) fn apply_variant(&self, v: Variant) -> Variant {
        match (self.frontier, v) {
            (Some(kind), Variant::Rdbs(cfg)) => Variant::Rdbs(cfg.with_frontier(kind)),
            (_, v) => v,
        }
    }

    pub(crate) fn apply_service(&self, config: ServiceConfig) -> ServiceConfig {
        match self.frontier {
            Some(kind) => config.with_frontier(kind),
            None => config,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum EntryKind {
    Gpu(Variant),
    MultiGpu(usize),
    /// The resident batched service's pooled entry point: a warm-up
    /// query then the real one, so the sanitized run crosses pool
    /// recycling (the uninit check's main quarry).
    Service,
    /// The service's concurrent scheduler: a four-source batch spread
    /// across four command streams, so the sanitized run interleaves
    /// in-flight queries — any cross-lane buffer sharing shows up as a
    /// race or uninit read.
    ServiceConcurrent,
}

/// Every GPU entry point: the baseline, all RDBS ablation toggles,
/// multi-GPU at k ∈ {1, 2, 4}, and the pooled service.
pub fn san_entries() -> Vec<SanEntry> {
    let entry = |id, kind| SanEntry { id, kind, frontier: None };
    vec![
        entry("gpu/bl", EntryKind::Gpu(Variant::Baseline)),
        entry("gpu/sync-delta", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::sync_delta()))),
        entry("gpu/basyn", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::basyn_only()))),
        entry("gpu/basyn-pro", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::basyn_pro()))),
        entry("gpu/basyn-adwl", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::basyn_adwl()))),
        entry("gpu/full", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::full()))),
        entry("multi-gpu/k1", EntryKind::MultiGpu(1)),
        entry("multi-gpu/k2", EntryKind::MultiGpu(2)),
        entry("multi-gpu/k4", EntryKind::MultiGpu(4)),
        entry("service/pooled", EntryKind::Service),
        entry("service/concurrent", EntryKind::ServiceConcurrent),
    ]
}

/// The reduced sweep: the synchronous baseline, the fully asynchronous
/// single-device entry (widest race surface), the multi-GPU exchange,
/// the pooled service (buffer-recycle surface) and the concurrent
/// scheduler (cross-lane isolation surface).
pub fn quick_san_entries() -> Vec<SanEntry> {
    san_entries()
        .into_iter()
        .filter(|e| {
            matches!(
                e.id,
                "gpu/bl" | "gpu/full" | "multi-gpu/k2" | "service/pooled" | "service/concurrent"
            )
        })
        .collect()
}

/// What to sweep.
#[derive(Clone, Debug, Default)]
pub struct SanOptions {
    /// Reduced sweep: quick graph families, four entries, one source.
    pub quick: bool,
    /// Only entries whose id contains this substring.
    pub entry_filter: Option<String>,
    /// Only families whose name contains this substring.
    pub graph_filter: Option<String>,
    /// Sanitize every RDBS-backed entry on this frontier layout
    /// (`--frontier`); `None` keeps each entry's own.
    pub frontier: Option<FrontierKind>,
}

/// One (entry, graph, source) cell of the sanitized matrix.
#[derive(Clone, Debug)]
pub struct SanCell {
    pub entry_id: &'static str,
    pub graph: &'static str,
    pub source: VertexId,
    /// Recorded violations (capped; `total` has the true count).
    pub violations: Vec<SanViolation>,
    pub total: u64,
    /// Oracle mismatch, if the answer was wrong.
    pub mismatch: Option<String>,
    /// Panic message, if the cell crashed.
    pub panic: Option<String>,
}

impl SanCell {
    /// Green = ran to completion, correct answer, zero violations.
    pub fn is_clean(&self) -> bool {
        self.total == 0 && self.mismatch.is_none() && self.panic.is_none()
    }
}

/// Outcome of a sanitized sweep.
#[derive(Debug, Default)]
pub struct SanMatrixReport {
    pub cells: Vec<SanCell>,
}

impl SanMatrixReport {
    pub fn is_green(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(SanCell::is_clean)
    }

    /// Total violations across all cells.
    pub fn total_violations(&self) -> u64 {
        self.cells.iter().map(|c| c.total).sum()
    }

    pub fn dirty_cells(&self) -> impl Iterator<Item = &SanCell> {
        self.cells.iter().filter(|c| !c.is_clean())
    }
}

fn substring(filter: &Option<String>, s: &str) -> bool {
    match filter {
        Some(f) => s.contains(f.as_str()),
        None => true,
    }
}

/// Run one entry point on `graph` with the sanitizer armed from
/// before the first device allocation.
pub fn run_cell(entry: &SanEntry, graph: &Csr, oracle_dist: &[u32], source: VertexId) -> SanCell {
    let outcome = catch_unwind(AssertUnwindSafe(|| match entry.kind {
        EntryKind::Gpu(variant) => {
            let mut device = Device::new(DeviceConfig::test_tiny());
            device.arm_sanitizer(SanConfig::default());
            let run = run_gpu_on(&mut device, graph, source, entry.apply_variant(variant));
            (run.result.dist, device.san_violations().to_vec(), device.san_total())
        }
        EntryKind::MultiGpu(k) => {
            let config = MultiGpuConfig {
                num_devices: k,
                device: DeviceConfig::test_tiny(),
                interconnect_gbps: 50.0,
                exchange_latency_us: 5.0,
                delta0: None,
            };
            let mut state = MultiGpuState::new(graph, &config);
            state.arm_sanitizer(SanConfig::default());
            let run = state.run(source);
            let violations: Vec<SanViolation> =
                state.san_violations().into_iter().map(|(_, v)| v).collect();
            let total = state.san_total();
            (run.result.dist, violations, total)
        }
        EntryKind::Service => {
            let config = entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()));
            let mut svc = SsspService::new(graph, config);
            svc.arm_sanitizer(SanConfig::default());
            // Warm query first: the real query then runs entirely on
            // recycled (re-poisoned) pool buffers.
            let n = graph.num_vertices();
            let warm = VertexId::try_from((source as usize + 1) % n).expect("vertex id fits");
            let _ = svc.query(warm);
            let result = svc.query(source);
            (result.dist, svc.san_violations(), svc.san_total())
        }
        EntryKind::ServiceConcurrent => {
            let config =
                entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(4));
            let mut svc = SsspService::new(graph, config);
            svc.arm_sanitizer(SanConfig::default());
            // Four sources in flight at once: the scored one plus
            // three offsets, each on its own leased lane.
            let n = graph.num_vertices();
            let other = |k: usize| VertexId::try_from((source as usize + k) % n).expect("fits");
            let batch = [source, other(1), other(2), other(3)];
            let mut results = svc.batch(&batch);
            let result = results.swap_remove(0);
            (result.dist, svc.san_violations(), svc.san_total())
        }
    }));
    match outcome {
        Ok((dist, violations, total)) => {
            let mismatch = check_against(oracle_dist, &dist).err().map(|m| m.to_string());
            SanCell {
                entry_id: entry.id,
                graph: "",
                source,
                violations,
                total,
                mismatch,
                panic: None,
            }
        }
        Err(payload) => SanCell {
            entry_id: entry.id,
            graph: "",
            source,
            violations: Vec::new(),
            total: 0,
            mismatch: None,
            panic: Some(crate::runner::panic_message(payload.as_ref())),
        },
    }
}

/// Sweep the sanitized matrix. `progress` is called once per cell.
pub fn run_sanitize(opts: &SanOptions, mut progress: impl FnMut(&SanCell)) -> SanMatrixReport {
    let entries: Vec<SanEntry> = if opts.quick { quick_san_entries() } else { san_entries() }
        .into_iter()
        .filter(|e| substring(&opts.entry_filter, e.id))
        .map(|e| match opts.frontier {
            Some(kind) => e.with_frontier(kind),
            None => e,
        })
        .collect();
    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() }
            .into_iter()
            .filter(|g| substring(&opts.graph_filter, g.name))
            .collect();

    let mut report = SanMatrixReport::default();
    for family in &families {
        let graph = family.build();
        let sources = family.sources(graph.num_vertices());
        let sources = if opts.quick { &sources[..1] } else { &sources[..] };
        for &source in sources {
            let oracle = dijkstra(&graph, source);
            for entry in &entries {
                let mut cell = run_cell(entry, &graph, &oracle.dist, source);
                cell.graph = family.name;
                progress(&cell);
                report.cells.push(cell);
            }
        }
    }
    report
}

/// The planted-race regression specimen: a kernel where every lane
/// plain-stores the same word of a labelled buffer inside one wave.
/// Returns the violations the detector produced — callers assert the
/// report names the check, both lane ids, the buffer label and the
/// address. If this comes back empty the detector is broken and any
/// green matrix is meaningless.
pub fn planted_race_specimen() -> Vec<SanViolation> {
    let mut device = Device::new(DeviceConfig::test_tiny());
    device.arm_sanitizer(SanConfig::default());
    let victim = device.alloc("specimen-victim", 4);
    device.fill(victim, 0);
    let mut session = device.wave_session("planted-race");
    session.wave(8, 1, |lane| {
        // All eight lanes plain-store word 0 — a textbook last-writer
        // race — and lane 0's later plain load races the stores too.
        lane.st(victim, 0, lane.tid() as u32);
        if lane.tid() == 0 {
            let _ = lane.ld(victim, 1);
        }
    });
    device.san_violations().to_vec()
}

/// Quick check that the specimen fires with a fully descriptive
/// report; used by the CLI before every sweep.
pub fn specimen_detected() -> Result<(), String> {
    let violations = planted_race_specimen();
    let Some(v) = violations.iter().find(|v| v.check == SanCheck::WriteWriteRace) else {
        return Err("planted write-write race was not detected".into());
    };
    if v.buffer != "specimen-victim" {
        return Err(format!("report lost the buffer label: {v}"));
    }
    if v.lanes[0] == v.lanes[1] {
        return Err(format!("report does not name two distinct lanes: {v}"));
    }
    if v.addr == 0 {
        return Err(format!("report carries no address: {v}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: the quick sanitized matrix must be
    /// entirely clean — right answers and zero violations.
    #[test]
    fn quick_sanitized_matrix_is_clean() {
        let report = run_sanitize(&SanOptions { quick: true, ..Default::default() }, |_| {});
        assert!(!report.cells.is_empty());
        let dirty: Vec<String> = report
            .dirty_cells()
            .map(|c| {
                let mut lines = vec![format!(
                    "{} on {} (source {}): {} violation(s){}{}",
                    c.entry_id,
                    c.graph,
                    c.source,
                    c.total,
                    c.mismatch.as_deref().map(|m| format!(", mismatch: {m}")).unwrap_or_default(),
                    c.panic.as_deref().map(|p| format!(", panic: {p}")).unwrap_or_default(),
                )];
                lines.extend(c.violations.iter().take(5).map(|v| format!("  {v}")));
                lines.join("\n")
            })
            .collect();
        assert!(report.is_green(), "sanitized matrix is dirty:\n{}", dirty.join("\n"));
    }

    /// The detector liveness check.
    #[test]
    fn planted_race_specimen_is_detected() {
        specimen_detected().unwrap();
        let v = planted_race_specimen();
        let ww = v.iter().find(|v| v.check == SanCheck::WriteWriteRace).unwrap();
        assert_eq!(ww.lanes, [0, 1]);
        assert_eq!(ww.buffer, "specimen-victim");
        assert!(ww.addr >= 0x1000, "flat device address expected, got {:#x}", ww.addr);
        assert_eq!(ww.kernel, "planted-race");
    }

    #[test]
    fn filters_restrict_the_sweep() {
        let opts = SanOptions {
            quick: true,
            entry_filter: Some("gpu/bl".into()),
            graph_filter: Some("erdos".into()),
            ..Default::default()
        };
        let report = run_sanitize(&opts, |_| {});
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].entry_id, "gpu/bl");
    }

    /// The wheel and MLMQ frontiers must respect the same snapshot /
    /// volatile / atomic discipline as the single queue: rerouting the
    /// quick RDBS entries through `--frontier` stays violation-free.
    #[test]
    fn frontier_axis_is_violation_free() {
        for kind in [FrontierKind::Wheel, FrontierKind::Mlmq] {
            let opts = SanOptions {
                quick: true,
                entry_filter: Some("gpu/full".into()),
                graph_filter: Some("erdos".into()),
                frontier: Some(kind),
            };
            let report = run_sanitize(&opts, |_| {});
            assert!(!report.cells.is_empty());
            assert!(report.is_green(), "{kind:?} frontier is dirty: {:?}", report.cells);
        }
    }
}
