//! Delta-debugging failure minimization.
//!
//! Given a failing (graph, source, Δ₀) instance for one
//! implementation, greedily remove edges (ddmin-style chunked
//! removal), drop vertices, and reduce weights while the mismatch
//! persists, converging on a minimal witness — typically a handful of
//! vertices — plus the exact CLI command that replays it.

use crate::registry::Implementation;
use crate::runner::{run_case, FailureKind};
use rdbs_core::seq::dijkstra;
use rdbs_core::{VertexId, Weight};
use rdbs_graph::builder::{build_directed, build_undirected, EdgeList};
use rdbs_graph::io::witness::Witness;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Shrinking budget: maximum number of predicate evaluations (each is
/// one full implementation run on a candidate graph). The instances
/// the matrix sweeps are small, so the greedy passes converge far
/// below this.
const MAX_EVALS: usize = 4000;

/// A minimized failing instance.
#[derive(Debug)]
pub struct ShrunkWitness {
    /// The minimal graph + source (the serializable part).
    pub witness: Witness,
    /// How the minimal instance still fails.
    pub failure: FailureKind,
    /// Δ₀ the failure was reproduced under (None → per-impl default).
    pub delta0: Option<Weight>,
    /// Implementation id the witness indicts.
    pub impl_id: &'static str,
    /// Predicate evaluations spent.
    pub evals: usize,
}

impl ShrunkWitness {
    /// The copy-pasteable replay command for `path`, the file the
    /// witness was (or will be) serialized to.
    pub fn repro_command(&self, path: &str) -> String {
        let delta = match self.delta0 {
            Some(d) => format!(" --delta0 {d}"),
            None => String::new(),
        };
        format!("rdbs-cli verify --impl {} --witness {path}{delta}", self.impl_id)
    }
}

/// Does `imp` still fail on this instance? Panics count as failures;
/// an instance whose *oracle* panics is rejected (never shrink toward
/// inputs the reference itself cannot handle). `directed` controls how
/// the candidate edge list becomes a CSR — a directed failure must be
/// minimized against directed rebuilds, or symmetrization would mask
/// (or manufacture) the divergence.
fn fails(
    imp: &Implementation,
    el: &EdgeList,
    source: VertexId,
    delta0: Option<Weight>,
    directed: bool,
) -> Option<FailureKind> {
    if (source as usize) >= el.num_vertices {
        return None;
    }
    let graph = if directed { build_directed(el) } else { build_undirected(el) };
    let oracle = catch_unwind(AssertUnwindSafe(|| dijkstra(&graph, source))).ok()?;
    run_case(imp, &graph, &oracle.dist, source, delta0).err()
}

/// Minimize a failing instance. The caller must have established that
/// `imp` fails on `(el, source, delta0)` (with the same `directed`
/// build mode); panics otherwise.
pub fn shrink(
    imp: &Implementation,
    el: &EdgeList,
    source: VertexId,
    delta0: Option<Weight>,
) -> ShrunkWitness {
    shrink_built(imp, el, source, delta0, false)
}

/// [`shrink`] for an explicit CSR build mode; `directed = true`
/// minimizes a directed-CSR failure and marks the witness so replay
/// rebuilds the same shape.
pub fn shrink_built(
    imp: &Implementation,
    el: &EdgeList,
    source: VertexId,
    delta0: Option<Weight>,
    directed: bool,
) -> ShrunkWitness {
    let evals = std::cell::Cell::new(0usize);
    let check = |candidate: &EdgeList, src: VertexId| -> Option<FailureKind> {
        if evals.get() >= MAX_EVALS {
            return None;
        }
        evals.set(evals.get() + 1);
        fails(imp, candidate, src, delta0, directed)
    };

    let mut failure = check(el, source).expect("shrink() requires a failing instance");
    let mut cur = el.clone();
    let mut src = source;

    loop {
        let before = (cur.edges.len(), cur.num_vertices, weight_sum(&cur));

        // Pass 1: ddmin over edges — remove chunks, halving the chunk
        // size when no chunk can go.
        let mut chunk = cur.edges.len().div_ceil(2).max(1);
        while chunk >= 1 {
            let mut i = 0;
            let mut removed_any = false;
            while i < cur.edges.len() {
                let hi = (i + chunk).min(cur.edges.len());
                let mut candidate = cur.clone();
                candidate.edges.drain(i..hi);
                if let Some(f) = check(&candidate, src) {
                    cur = candidate;
                    failure = f;
                    removed_any = true;
                    // Re-test the same index: the next chunk slid down.
                } else {
                    i = hi;
                }
            }
            if chunk == 1 && !removed_any {
                break;
            }
            chunk = if removed_any { chunk } else { chunk / 2 };
        }

        // Pass 2: drop unused vertices, compacting ids (source
        // included in the remap).
        if let Some((candidate, new_src)) = compact_vertices(&cur, src) {
            if candidate.num_vertices < cur.num_vertices {
                if let Some(f) = check(&candidate, new_src) {
                    cur = candidate;
                    src = new_src;
                    failure = f;
                }
            }
        }

        // Pass 3: weight reduction — each edge to 1, else halved
        // repeatedly.
        for e in 0..cur.edges.len() {
            while cur.edges[e].2 > 1 {
                let mut candidate = cur.clone();
                let w = candidate.edges[e].2;
                candidate.edges[e].2 = if w > 2 { w / 2 } else { 1 };
                match check(&candidate, src) {
                    Some(f) => {
                        cur = candidate;
                        failure = f;
                    }
                    None => break,
                }
            }
        }

        let after = (cur.edges.len(), cur.num_vertices, weight_sum(&cur));
        if after == before || evals.get() >= MAX_EVALS {
            break;
        }
    }

    ShrunkWitness {
        witness: Witness { edges: cur, source: src, directed },
        failure,
        delta0,
        impl_id: imp.id,
        evals: evals.get(),
    }
}

fn weight_sum(el: &EdgeList) -> u64 {
    el.edges.iter().map(|&(_, _, w)| w as u64).sum()
}

/// Remove vertices no edge touches (keeping the source) and relabel
/// the rest densely. Returns `None` when nothing can be dropped.
fn compact_vertices(el: &EdgeList, source: VertexId) -> Option<(EdgeList, VertexId)> {
    let n = el.num_vertices;
    let mut used = vec![false; n];
    used[source as usize] = true;
    for &(u, v, _) in &el.edges {
        used[u as usize] = true;
        used[v as usize] = true;
    }
    if used.iter().all(|&u| u) {
        return None;
    }
    let mut remap = vec![0 as VertexId; n];
    let mut next = 0 as VertexId;
    for (old, &keep) in used.iter().enumerate() {
        if keep {
            remap[old] = next;
            next += 1;
        }
    }
    let edges =
        el.edges.iter().map(|&(u, v, w)| (remap[u as usize], remap[v as usize], w)).collect();
    Some((EdgeList { num_vertices: next as usize, edges }, remap[source as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{by_id, FAULT_OFF_BY_ONE};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    #[test]
    fn compact_drops_isolated_vertices() {
        let el = EdgeList::from_edges(10, vec![(2, 5, 3)]);
        let (small, src) = compact_vertices(&el, 5).unwrap();
        assert_eq!(small.num_vertices, 2);
        assert_eq!(small.edges, vec![(0, 1, 3)]);
        assert_eq!(src, 1);
    }

    #[test]
    fn off_by_one_fault_shrinks_to_tiny_witness() {
        // The acceptance scenario: the injected fault on a real matrix
        // instance must minimize to a witness of at most 20 vertices.
        let imp = by_id(FAULT_OFF_BY_ONE).unwrap();
        let mut el = erdos_renyi(300, 1500, 1);
        uniform_weights(&mut el, 11);
        let shrunk = shrink(&imp, &el, 0, None);
        assert!(
            shrunk.witness.edges.num_vertices <= 20,
            "witness too large: {} vertices",
            shrunk.witness.edges.num_vertices
        );
        // The minimal instance still fails.
        assert!(fails(&imp, &shrunk.witness.edges, shrunk.witness.source, shrunk.delta0, false)
            .is_some());
        assert!(!shrunk.witness.directed);
        let cmd = shrunk.repro_command("witness.txt");
        assert!(cmd.contains("--impl fault/off-by-one"));
        assert!(cmd.contains("--witness witness.txt"));
    }

    #[test]
    fn directed_failure_shrinks_with_directed_rebuilds() {
        // The fault specimen also diverges on directed CSRs; the
        // shrinker must minimize against directed rebuilds and mark
        // the witness, so replay reconstructs the same graph shape.
        let imp = by_id(FAULT_OFF_BY_ONE).unwrap();
        let mut el = erdos_renyi(200, 1200, 4);
        uniform_weights(&mut el, 13);
        assert!(fails(&imp, &el, 0, None, true).is_some(), "specimen passes directed? pick a seed");
        let shrunk = shrink_built(&imp, &el, 0, None, true);
        assert!(shrunk.witness.directed);
        assert!(shrunk.witness.edges.num_vertices <= 20);
        // Still fails under directed rebuild — and the witness marks it.
        assert!(fails(&imp, &shrunk.witness.edges, shrunk.witness.source, None, true).is_some());
    }
}
