//! The chaos matrix: every device fault model × recovered entry point
//! × graph family, with one invariant — **no silent wrong answer**.
//!
//! Each cell runs an SSSP entry point through the detect-and-recover
//! layer ([`rdbs_core::recover`]) with a seeded [`FaultSpec`] armed,
//! then grades the *final* distances against the Dijkstra oracle:
//!
//! * **Correct** — the answer matches, either because the run was
//!   clean, the faults happened to be benign, or a recovery-ladder
//!   rung repaired them (the cell records which);
//! * **Error** — the cell raised an explicit error instead of
//!   answering (a panic that escaped the harness). Loud failure is an
//!   acceptable outcome; lying is not;
//! * **SilentWrong** — wrong distances presented as good. This is the
//!   invariant violation the matrix exists to rule out, and the only
//!   verdict that makes a sweep red.
//!
//! Message-channel fault models only apply to the multi-GPU entry
//! point; on single-device entries they have no injection sites and
//! are skipped rather than swept as trivially-clean cells.
//!
//! The `gpu/refault` entry re-arms the same fault spec on the rung-2
//! recovery rerun (persistent-fault semantics), so the recovery path
//! itself executes under fire: the ladder's audit gate on the rerun's
//! output — not fault-free luck — is what keeps that cell honest.

use crate::graphs::{self, GraphCase};
use rdbs_core::gpu::{FrontierKind, MultiGpuConfig, RdbsConfig, Variant};
use rdbs_core::recover::{
    run_gpu_recovered, run_gpu_recovered_refault, run_multi_recovered,
    run_service_concurrent_recovered, run_service_recovered, run_service_traffic_recovered,
    RecoveryOutcome, RecoveryReport,
};
use rdbs_core::seq::dijkstra;
use rdbs_core::service::ServiceConfig;
use rdbs_core::validate::{check_against, Mismatch};
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::{DeviceConfig, FaultModel, FaultSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which recovered entry point a chaos cell exercises.
#[derive(Clone, Copy, Debug)]
pub struct ChaosEntry {
    /// Stable id used in reports and filters (e.g. `gpu/full`).
    pub id: &'static str,
    kind: EntryKind,
    /// `--frontier` override: run every RDBS-backed surface of this
    /// entry on this frontier layout instead of its registered one.
    frontier: Option<FrontierKind>,
}

#[derive(Clone, Copy, Debug)]
enum EntryKind {
    Gpu(Variant),
    /// Same as `Gpu`, but with persistent-fault semantics: the spec
    /// is re-armed on the rung-2 rerun device, so the recovery path
    /// itself runs under fire and must still never lie.
    GpuRefault(Variant),
    MultiGpu(usize),
    /// The resident batched service's pooled entry point (full RDBS
    /// on one device; the faulted query runs on recycled buffers).
    Service,
    /// The service's concurrent scheduler: the scored query flies in a
    /// three-source batch across four command streams, so injections
    /// land while sibling queries are in flight.
    ServiceConcurrent,
    /// The service's open-loop traffic tier: the scored query is the
    /// first arrival, a past-deadline arrival exercises typed
    /// shedding, and the graded answer is a cache replay — injections
    /// must never hide behind the answer cache or the shed path.
    ServiceTraffic,
    /// The MLMQ spill path under fire: the service runs the scored
    /// query on a deliberately under-provisioned multi-level frontier,
    /// so hot-level overflow spills into the deferred level while
    /// faults land. A faulted spill must never go silently wrong —
    /// real loss surfaces as a counted host fallback, never a lie.
    ServiceSpill,
}

impl ChaosEntry {
    /// Whether message-channel fault models have injection sites here.
    pub fn carries_messages(&self) -> bool {
        matches!(self.kind, EntryKind::MultiGpu(k) if k > 1)
    }

    /// Run every RDBS-backed surface of this entry on `kind`'s
    /// frontier layout (`--frontier`). The dedicated spill entry keeps
    /// its own MLMQ layout — its id names the layout it exists to
    /// exercise.
    #[must_use]
    pub fn with_frontier(mut self, kind: FrontierKind) -> Self {
        if !matches!(self.kind, EntryKind::ServiceSpill) {
            self.frontier = Some(kind);
        }
        self
    }

    fn apply_variant(&self, v: Variant) -> Variant {
        match (self.frontier, v) {
            (Some(kind), Variant::Rdbs(cfg)) => Variant::Rdbs(cfg.with_frontier(kind)),
            (_, v) => v,
        }
    }

    fn apply_service(&self, config: ServiceConfig) -> ServiceConfig {
        match self.frontier {
            Some(kind) => config.with_frontier(kind),
            None => config,
        }
    }

    /// The single-device kernel variant this entry runs, when it has
    /// one — used by the adversarial scout to profile the entry's
    /// memory accesses under the sanitizer.
    pub(crate) fn scout_variant(&self) -> Option<Variant> {
        let variant = match self.kind {
            EntryKind::Gpu(v) | EntryKind::GpuRefault(v) => v,
            EntryKind::MultiGpu(_) => return None,
            // Every service tier runs full RDBS on one device.
            EntryKind::Service | EntryKind::ServiceConcurrent | EntryKind::ServiceTraffic => {
                Variant::Rdbs(RdbsConfig::full())
            }
            EntryKind::ServiceSpill => {
                Variant::Rdbs(RdbsConfig::full().with_frontier(FrontierKind::Mlmq))
            }
        };
        Some(self.apply_variant(variant))
    }
}

/// Every entry point the full chaos sweep covers.
pub fn chaos_entries() -> Vec<ChaosEntry> {
    let entry = |id, kind| ChaosEntry { id, kind, frontier: None };
    vec![
        entry("gpu/full", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::full()))),
        entry("gpu/sync-delta", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::sync_delta()))),
        entry("gpu/basyn", EntryKind::Gpu(Variant::Rdbs(RdbsConfig::basyn_only()))),
        entry("gpu/refault", EntryKind::GpuRefault(Variant::Rdbs(RdbsConfig::full()))),
        entry("multi-gpu/k2", EntryKind::MultiGpu(2)),
        entry("service/pooled", EntryKind::Service),
        entry("service/concurrent", EntryKind::ServiceConcurrent),
        entry("service/traffic", EntryKind::ServiceTraffic),
        entry("service/mlmq-spill", EntryKind::ServiceSpill),
    ]
}

/// The reduced sweep: the asynchronous single-device entry (widest
/// fault surface), the persistent-fault entry (recovery path under
/// fire), the multi-GPU exchange (message models), the pooled service
/// entry (buffer-reuse surface), the concurrent scheduler (faults
/// under in-flight concurrency), the traffic tier (faults behind the
/// answer cache and the shedding path), and the under-provisioned
/// MLMQ frontier (faults landing on the cross-level spill path).
pub fn quick_chaos_entries() -> Vec<ChaosEntry> {
    chaos_entries()
        .into_iter()
        .filter(|e| {
            matches!(
                e.id,
                "gpu/full"
                    | "gpu/refault"
                    | "multi-gpu/k2"
                    | "service/pooled"
                    | "service/concurrent"
                    | "service/traffic"
                    | "service/mlmq-spill"
            )
        })
        .collect()
}

/// Per-model default injection rate: high enough that faults actually
/// land on the small matrix graphs, low enough that runs terminate.
/// (`BitFlip` corrupts persistently and can hit row offsets, so it is
/// kept rare; the drop/duplicate models need many opportunities to
/// matter.)
pub fn default_rate(model: FaultModel) -> f64 {
    match model {
        FaultModel::BitFlip => 0.002,
        FaultModel::DroppedAtomicMin => 0.25,
        FaultModel::DuplicatedAtomicMin => 0.25,
        FaultModel::FailedChildLaunch => 0.25,
        FaultModel::StaleRead => 0.1,
        FaultModel::LostMessage => 0.4,
        FaultModel::DuplicatedMessage => 0.4,
        FaultModel::ReorderedMessage => 0.4,
    }
}

/// What to sweep.
#[derive(Clone, Debug, Default)]
pub struct ChaosOptions {
    /// Reduced sweep: quick graph families, two entries, one seed.
    pub quick: bool,
    /// Only fault models whose name contains this substring.
    pub model_filter: Option<String>,
    /// Only entries whose id contains this substring.
    pub entry_filter: Option<String>,
    /// Only families whose name contains this substring.
    pub graph_filter: Option<String>,
    /// Override every model's default injection rate.
    pub rate: Option<f64>,
    /// Fault seeds to sweep; empty picks the defaults (`[1]` quick,
    /// `[1, 2]` full). A single explicit seed replays one schedule.
    pub seeds: Vec<u64>,
    /// Run every RDBS-backed entry on this frontier layout
    /// (`--frontier`); `None` keeps each entry's own.
    pub frontier: Option<FrontierKind>,
}

impl ChaosOptions {
    fn effective_seeds(&self) -> Vec<u64> {
        if !self.seeds.is_empty() {
            self.seeds.clone()
        } else if self.quick {
            vec![1]
        } else {
            vec![1, 2]
        }
    }
}

/// How a cell's final answer graded against the oracle.
#[derive(Clone, Debug)]
pub enum CellVerdict {
    /// Final distances match Dijkstra.
    Correct,
    /// The cell errored out loudly instead of answering.
    Error(String),
    /// Wrong distances presented as good — the invariant violation.
    SilentWrong(Mismatch),
}

impl std::fmt::Display for CellVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellVerdict::Correct => write!(f, "correct"),
            CellVerdict::Error(msg) => write!(f, "explicit error: {msg}"),
            CellVerdict::SilentWrong(m) => write!(f, "SILENT WRONG ANSWER: {m}"),
        }
    }
}

/// One (entry, model, graph, seed) cell of the chaos matrix.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    pub entry_id: &'static str,
    pub model: FaultModel,
    pub graph: &'static str,
    pub source: VertexId,
    pub seed: u64,
    pub rate: f64,
    /// The recovery evidence (`None` only when the cell errored before
    /// the recovery layer could report).
    pub report: Option<RecoveryReport>,
    pub verdict: CellVerdict,
}

impl ChaosCell {
    /// Whether any detector fired on the faulted attempt.
    pub fn detected(&self) -> bool {
        self.report.as_ref().is_some_and(rdbs_core::recover::RecoveryReport::detected)
    }

    pub fn outcome(&self) -> Option<RecoveryOutcome> {
        self.report.as_ref().map(|r| r.outcome)
    }

    pub fn injections(&self) -> u64 {
        self.report.as_ref().map_or(0, |r| r.injections)
    }
}

/// Outcome of a chaos sweep.
#[derive(Debug, Default)]
pub struct ChaosReport {
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// Green iff no cell returned a silently wrong answer. Explicitly
    /// errored cells stay green: the guarantee is about lying, not
    /// about surviving every fault.
    pub fn is_green(&self) -> bool {
        self.silent_wrong().next().is_none()
    }

    /// The violating cells, if any.
    pub fn silent_wrong(&self) -> impl Iterator<Item = &ChaosCell> {
        self.cells.iter().filter(|c| matches!(c.verdict, CellVerdict::SilentWrong(_)))
    }

    /// Cell counts: `(clean, recovered, degraded, errored, silent_wrong)`.
    pub fn tally(&self) -> (usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0);
        for c in &self.cells {
            match (&c.verdict, c.outcome()) {
                (CellVerdict::SilentWrong(_), _) => t.4 += 1,
                (CellVerdict::Error(_), _) => t.3 += 1,
                (_, Some(RecoveryOutcome::Clean)) => t.0 += 1,
                (_, Some(RecoveryOutcome::Recovered)) => t.1 += 1,
                (_, Some(RecoveryOutcome::Degraded)) => t.2 += 1,
                // Exhausted cells are always graded `Error` by
                // `run_cell`, so this arm is unreachable in practice —
                // kept exhaustive so a new outcome can't slip through.
                (_, Some(RecoveryOutcome::Exhausted)) | (_, None) => t.3 += 1,
            }
        }
        t
    }
}

fn substring(filter: &Option<String>, s: &str) -> bool {
    match filter {
        Some(f) => s.contains(f.as_str()),
        None => true,
    }
}

/// The under-provisioned MLMQ service the spill entry runs: each
/// lane's frontier gets about a third of the vertex count in logical
/// slots, so hot-level sub-queues overflow into the deferred level on
/// dense buckets, while the level pair still holds enough total slots
/// that a fault-free run never drops work. Real loss under fire is
/// still possible (that is the point) — it must surface as a typed
/// overflow and a counted host fallback through `batch`.
pub(crate) fn spill_service_config(graph: &Csr) -> ServiceConfig {
    let capacity = (graph.num_vertices() as u32 / 3).max(8);
    ServiceConfig::rdbs(DeviceConfig::test_tiny())
        .with_streams(2)
        .with_frontier(FrontierKind::Mlmq)
        .with_queue_capacity(capacity)
}

/// Run one chaos cell and grade it.
pub fn run_cell(
    entry: &ChaosEntry,
    graph: &Csr,
    oracle_dist: &[u32],
    source: VertexId,
    spec: FaultSpec,
) -> (Option<RecoveryReport>, CellVerdict) {
    let attempt = catch_unwind(AssertUnwindSafe(|| match entry.kind {
        EntryKind::Gpu(variant) => run_gpu_recovered(
            graph,
            source,
            entry.apply_variant(variant),
            DeviceConfig::test_tiny(),
            Some(spec),
        ),
        EntryKind::GpuRefault(variant) => run_gpu_recovered_refault(
            graph,
            source,
            entry.apply_variant(variant),
            DeviceConfig::test_tiny(),
            Some(spec),
        ),
        EntryKind::MultiGpu(k) => {
            let config = MultiGpuConfig {
                num_devices: k,
                device: DeviceConfig::test_tiny(),
                interconnect_gbps: 50.0,
                exchange_latency_us: 5.0,
                delta0: None,
            };
            run_multi_recovered(graph, source, &config, Some(spec))
        }
        EntryKind::Service => {
            let config = entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()));
            run_service_recovered(graph, source, config, Some(spec))
        }
        EntryKind::ServiceConcurrent => {
            let config =
                entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(4));
            run_service_concurrent_recovered(graph, source, config, Some(spec))
        }
        EntryKind::ServiceTraffic => {
            let config =
                entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(2));
            run_service_traffic_recovered(graph, source, config, Some(spec))
        }
        EntryKind::ServiceSpill => {
            let config = spill_service_config(graph);
            run_service_concurrent_recovered(graph, source, config, Some(spec))
        }
    }));
    match attempt {
        Ok(run) => grade_run(oracle_dist, run),
        Err(payload) => (None, CellVerdict::Error(crate::runner::panic_message(payload.as_ref()))),
    }
}

/// Grade a completed recovered run against the oracle. An
/// [`RecoveryOutcome::Exhausted`] run carries best-effort,
/// *uncertified* distances — it is graded as a loud error before any
/// oracle comparison, so an exhausted ladder can never be mistaken for
/// (or graded as) a silent wrong answer.
pub(crate) fn grade_run(
    oracle_dist: &[u32],
    run: rdbs_core::recover::RecoveredRun,
) -> (Option<RecoveryReport>, CellVerdict) {
    let verdict = if run.report.outcome == RecoveryOutcome::Exhausted {
        CellVerdict::Error(format!("recovery budget exhausted ({})", run.report.budget))
    } else {
        match check_against(oracle_dist, &run.result.dist) {
            Ok(()) => CellVerdict::Correct,
            Err(m) => CellVerdict::SilentWrong(m),
        }
    };
    (Some(run.report), verdict)
}

/// Sweep the chaos matrix. `progress` is called once per cell as it
/// completes; pass a no-op closure when output is unwanted.
pub fn run_chaos(opts: &ChaosOptions, mut progress: impl FnMut(&ChaosCell)) -> ChaosReport {
    let entries: Vec<ChaosEntry> = if opts.quick { quick_chaos_entries() } else { chaos_entries() }
        .into_iter()
        .filter(|e| substring(&opts.entry_filter, e.id))
        .map(|e| match opts.frontier {
            Some(kind) => e.with_frontier(kind),
            None => e,
        })
        .collect();
    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() }
            .into_iter()
            .filter(|g| substring(&opts.graph_filter, g.name))
            .collect();
    let models: Vec<FaultModel> =
        FaultModel::ALL.into_iter().filter(|m| substring(&opts.model_filter, m.name())).collect();
    let seeds = opts.effective_seeds();

    let mut report = ChaosReport::default();
    for family in &families {
        let graph = family.build();
        let source = family.sources(graph.num_vertices())[0];
        let oracle = dijkstra(&graph, source);
        for entry in &entries {
            for &model in &models {
                if model.is_message_model() && !entry.carries_messages() {
                    continue;
                }
                let rate = opts.rate.unwrap_or_else(|| default_rate(model));
                for &seed in &seeds {
                    let spec = FaultSpec::new(model, rate, seed);
                    let (cell_report, verdict) =
                        run_cell(entry, &graph, &oracle.dist, source, spec);
                    let cell = ChaosCell {
                        entry_id: entry.id,
                        model,
                        graph: family.name,
                        source,
                        seed,
                        rate,
                        report: cell_report,
                        verdict,
                    };
                    progress(&cell);
                    report.cells.push(cell);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{by_id, FAULT_OFF_BY_ONE};
    use rdbs_core::validate::audit_sssp;

    /// The acceptance gate: the quick chaos matrix must have zero
    /// silently-wrong cells — every cell is oracle-correct (clean or
    /// recovered) or an explicit error.
    #[test]
    fn quick_chaos_matrix_has_no_silent_wrong_answers() {
        let report = run_chaos(&ChaosOptions { quick: true, ..Default::default() }, |_| {});
        assert!(!report.cells.is_empty());
        let wrong: Vec<String> = report
            .silent_wrong()
            .map(|c| {
                format!("{}/{} on {} seed {}: {}", c.entry_id, c.model, c.graph, c.seed, c.verdict)
            })
            .collect();
        assert!(report.is_green(), "silent wrong answers:\n{}", wrong.join("\n"));
    }

    /// At least one quick cell must actually detect and climb the
    /// ladder — otherwise the matrix proves nothing about recovery.
    #[test]
    fn quick_chaos_matrix_exercises_recovery() {
        let report = run_chaos(&ChaosOptions { quick: true, ..Default::default() }, |_| {});
        assert!(report.cells.iter().any(|c| c.injections() > 0), "no cell injected anything");
        assert!(
            report.cells.iter().any(super::ChaosCell::detected),
            "no cell detected a fault — rates too low to mean anything"
        );
    }

    #[test]
    fn filters_restrict_the_sweep() {
        let opts = ChaosOptions {
            quick: true,
            model_filter: Some("dropped-atomic".into()),
            entry_filter: Some("gpu/full".into()),
            graph_filter: Some("erdos".into()),
            seeds: vec![7],
            ..Default::default()
        };
        let report = run_chaos(&opts, |_| {});
        assert_eq!(report.cells.len(), 1);
        let c = &report.cells[0];
        assert_eq!(c.model, FaultModel::DroppedAtomicMin);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn chaos_cells_replay_deterministically() {
        let opts = ChaosOptions {
            quick: true,
            model_filter: Some("bit-flip".into()),
            entry_filter: Some("gpu/full".into()),
            seeds: vec![3],
            ..Default::default()
        };
        let a = run_chaos(&opts, |_| {});
        let b = run_chaos(&opts, |_| {});
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.injections(), y.injections());
            assert_eq!(x.detected(), y.detected());
            assert_eq!(x.outcome(), y.outcome());
        }
    }

    /// Regression: an exhausted recovery budget surfaces as a loud
    /// `Error` cell verdict — never compared against the oracle, never
    /// `SilentWrong`, even when the carried best-effort distances are
    /// wrong.
    #[test]
    fn exhausted_budget_grades_as_error_not_silent_wrong() {
        use rdbs_core::gpu::RdbsConfig;
        use rdbs_core::recover::{run_gpu_recovered_budgeted, RecoveryBudget};

        // The adversarial 199-hop path from the recover tests: rung 1
        // cannot certify inside its round budget, so one rung exhausts.
        let mut el = rdbs_graph::builder::EdgeList::new(200);
        for i in 0..199u32 {
            el.push(i + 1, i, 1);
        }
        let g = rdbs_graph::builder::build_directed(&el);
        let source = 199;
        let oracle = dijkstra(&g, source);
        let spec = FaultSpec::new(FaultModel::DroppedAtomicMin, 1.0, 0);
        let run = run_gpu_recovered_budgeted(
            &g,
            source,
            Variant::Rdbs(RdbsConfig::full()),
            DeviceConfig::test_tiny(),
            Some(spec),
            RecoveryBudget { max_rungs: 1, repair_rounds: 32 },
        );
        assert_eq!(run.report.outcome, RecoveryOutcome::Exhausted, "{}", run.report);
        assert_ne!(run.result.dist, oracle.dist, "exhausted run accidentally correct");
        let (report, verdict) = grade_run(&oracle.dist, run);
        assert!(
            matches!(&verdict, CellVerdict::Error(msg) if msg.contains("budget exhausted")),
            "expected a loud budget-exhausted error, got: {verdict}"
        );
        assert_eq!(report.unwrap().outcome, RecoveryOutcome::Exhausted);

        // And the tally counts it as an errored cell.
        let cell = ChaosCell {
            entry_id: "gpu/full",
            model: FaultModel::DroppedAtomicMin,
            graph: "path-199",
            source,
            seed: 0,
            rate: 1.0,
            report: None,
            verdict,
        };
        let report = ChaosReport { cells: vec![cell] };
        assert!(report.is_green());
        assert_eq!(report.tally(), (0, 0, 0, 1, 0));
    }

    /// The spill-path invariant: with faults landing while the
    /// under-provisioned MLMQ frontier spills across levels, no cell
    /// may present a wrong answer as good — every outcome is correct
    /// (possibly via a counted host fallback) or a loud error.
    #[test]
    fn faulted_mlmq_spill_is_never_silently_wrong() {
        let opts = ChaosOptions {
            quick: true,
            entry_filter: Some("mlmq-spill".into()),
            ..Default::default()
        };
        let report = run_chaos(&opts, |_| {});
        assert!(!report.cells.is_empty(), "the spill entry swept nothing");
        assert!(
            report.cells.iter().any(|c| c.injections() > 0),
            "no fault ever landed on the spill path"
        );
        let wrong: Vec<String> = report
            .silent_wrong()
            .map(|c| format!("{}/{}: {}", c.model, c.graph, c.verdict))
            .collect();
        assert!(report.is_green(), "faulted spill lied:\n{}", wrong.join("\n"));
    }

    /// The spill entry's under-provisioning must be absorbed by the
    /// level pair when no faults are armed: the batch completes
    /// without escalation and without host fallback, so a red spill
    /// cell can only ever be the fault's doing.
    #[test]
    fn spill_entry_config_is_clean_without_faults() {
        use rdbs_core::service::SsspService;

        for family in graphs::quick_families() {
            let graph = family.build();
            let source = family.sources(graph.num_vertices())[0];
            let oracle = dijkstra(&graph, source);
            let mut svc = SsspService::new(&graph, spill_service_config(&graph));
            let results = svc.batch(&[source, (source + 1) % graph.num_vertices() as u32]);
            check_against(&oracle.dist, &results[0].dist).unwrap();
            let stats = svc.stats();
            assert_eq!(stats.escalations, 0, "{}: MLMQ must spill, not escalate", family.name);
            assert_eq!(stats.fallbacks, 0, "{}: fault-free spill dropped work", family.name);
        }
    }

    /// `--frontier` reroutes every RDBS-backed entry: the quick sweep
    /// stays green on the wheel and MLMQ layouts too.
    #[test]
    fn chaos_frontier_axis_stays_green() {
        for kind in [FrontierKind::Wheel, FrontierKind::Mlmq] {
            let opts = ChaosOptions {
                quick: true,
                model_filter: Some("dropped-atomic".into()),
                entry_filter: Some("gpu/full".into()),
                graph_filter: Some("erdos".into()),
                frontier: Some(kind),
                ..Default::default()
            };
            let report = run_chaos(&opts, |_| {});
            assert!(!report.cells.is_empty());
            assert!(report.is_green(), "{kind:?} frontier lied under faults");
        }
    }

    /// Regression for the PR-1 fault specimen: the deliberately broken
    /// Dijkstra must be caught by the oracle-free audit alone — the
    /// detection layer cannot depend on having an oracle around.
    #[test]
    fn off_by_one_specimen_is_caught_by_the_audit() {
        let specimen = by_id(FAULT_OFF_BY_ONE).unwrap();
        let mut caught = false;
        for family in graphs::quick_families() {
            let g = family.build();
            let source = family.sources(g.num_vertices())[0];
            let r = specimen.run(&g, source, None);
            let audit = audit_sssp(&g, source, &r.dist);
            let oracle = dijkstra(&g, source);
            if r.dist != oracle.dist {
                assert!(
                    !audit.is_clean(),
                    "{}: specimen is wrong but the audit saw nothing",
                    family.name
                );
                caught = true;
            }
        }
        assert!(caught, "specimen never diverged on the quick families");
    }
}
