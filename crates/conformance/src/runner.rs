//! The differential runner: every registered implementation × every
//! graph family × every seeded source, each compared exactly against
//! the Dijkstra oracle. Panics inside an implementation are caught and
//! reported as failures rather than aborting the sweep.

use crate::graphs::{self, GraphCase};
use crate::registry::{self, Implementation};
use rdbs_core::seq::dijkstra;
use rdbs_core::validate::{check_against, Mismatch};
use rdbs_core::{Csr, VertexId, Weight};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What to sweep.
#[derive(Clone, Debug, Default)]
pub struct MatrixOptions {
    /// Reduced sweep (two families, one source) for fast smoke runs.
    pub quick: bool,
    /// Only run implementations whose id contains this substring.
    pub impl_filter: Option<String>,
    /// Only run families whose name contains this substring.
    pub graph_filter: Option<String>,
    /// Also run the deliberately broken registry entries
    /// (demonstrates the shrinker/localizer pipeline).
    pub include_faults: bool,
    /// Override Δ₀ for every width-parameterized implementation.
    pub delta0: Option<Weight>,
    /// Run every RDBS-backed implementation on this frontier layout
    /// (`--frontier`); `None` keeps each entry's own.
    pub frontier: Option<rdbs_core::gpu::FrontierKind>,
}

/// How one case failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// Distances disagree with the oracle.
    Mismatch(Mismatch),
    /// The implementation panicked.
    Panic(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Mismatch(m) => write!(f, "{m}"),
            FailureKind::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// One failing (implementation, graph, source) cell.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    pub impl_id: &'static str,
    pub graph: &'static str,
    pub source: VertexId,
    pub kind: FailureKind,
}

/// Outcome of a matrix sweep.
#[derive(Debug, Default)]
pub struct MatrixReport {
    /// Cells executed.
    pub cases_run: usize,
    /// Implementations swept.
    pub impls_run: usize,
    /// Families swept.
    pub graphs_run: usize,
    /// Every failing cell, in sweep order.
    pub failures: Vec<CaseFailure>,
}

impl MatrixReport {
    /// No failures?
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run one implementation on one instance and compare against the
/// oracle's distances.
pub fn run_case(
    imp: &Implementation,
    graph: &Csr,
    oracle_dist: &[u32],
    source: VertexId,
    delta0: Option<Weight>,
) -> Result<(), FailureKind> {
    let result = catch_unwind(AssertUnwindSafe(|| imp.run(graph, source, delta0)));
    match result {
        Ok(r) => check_against(oracle_dist, &r.dist).map_err(FailureKind::Mismatch),
        Err(payload) => Err(FailureKind::Panic(panic_message(&payload))),
    }
}

/// Extract a printable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(std::string::ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

/// Sweep the full differential matrix.
///
/// `progress` is called once per (implementation, graph, source) cell
/// with the cell's coordinates and whether it passed; pass a no-op
/// closure when output is unwanted.
pub fn run_matrix(
    opts: &MatrixOptions,
    mut progress: impl FnMut(&str, &str, VertexId, bool),
) -> MatrixReport {
    let impls: Vec<Implementation> =
        if opts.include_faults { registry::with_faults() } else { registry::all() }
            .into_iter()
            .filter(|i| match &opts.impl_filter {
                Some(f) => i.id.contains(f.as_str()),
                None => true,
            })
            .map(|i| match opts.frontier {
                Some(kind) => i.with_frontier(kind),
                None => i,
            })
            .collect();

    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() }
            .into_iter()
            .filter(|g| match &opts.graph_filter {
                Some(f) => g.name.contains(f.as_str()),
                None => true,
            })
            .collect();

    let mut report =
        MatrixReport { impls_run: impls.len(), graphs_run: families.len(), ..Default::default() };

    for family in &families {
        let graph = family.build();
        let mut sources = family.sources(graph.num_vertices());
        if opts.quick {
            sources.truncate(1);
        }
        for &source in &sources {
            let oracle = dijkstra(&graph, source);
            for imp in &impls {
                report.cases_run += 1;
                let outcome = run_case(imp, &graph, &oracle.dist, source, opts.delta0);
                progress(imp.id, family.name, source, outcome.is_ok());
                if let Err(kind) = outcome {
                    report.failures.push(CaseFailure {
                        impl_id: imp.id,
                        graph: family.name,
                        source,
                        kind,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_green() {
        let report =
            run_matrix(&MatrixOptions { quick: true, ..Default::default() }, |_, _, _, _| {});
        assert!(report.is_green(), "failures: {:?}", report.failures);
        assert!(report.cases_run > 0);
    }

    #[test]
    fn injected_fault_is_caught() {
        let opts = MatrixOptions {
            quick: true,
            include_faults: true,
            impl_filter: Some("fault/".into()),
            ..Default::default()
        };
        let report = run_matrix(&opts, |_, _, _, _| {});
        assert!(!report.is_green(), "the fault specimen must fail");
        assert!(report.failures.iter().all(|f| f.impl_id == crate::registry::FAULT_OFF_BY_ONE));
    }

    #[test]
    fn filters_restrict_the_sweep() {
        let opts = MatrixOptions {
            quick: true,
            impl_filter: Some("seq/dijkstra".into()),
            graph_filter: Some("erdos".into()),
            ..Default::default()
        };
        let mut cells = 0;
        let report = run_matrix(&opts, |_, _, _, _| cells += 1);
        assert_eq!(report.impls_run, 1);
        assert_eq!(report.graphs_run, 1);
        assert_eq!(report.cases_run, cells);
    }
}
