//! The implementation registry: every public SSSP entry point in the
//! workspace, addressable by a stable string id and runnable through
//! one uniform signature `(graph, source, Δ₀) → SsspResult`.
//!
//! The differential runner enumerates [`all()`]; the CLI and the
//! shrinker look entries up with [`by_id()`]. A deliberately broken
//! implementation ([`FAULT_OFF_BY_ONE`]) is kept out of [`all()`] and
//! exists to demonstrate (and regression-test) the shrinker and
//! localizer end to end.

use rdbs_core::gpu::{multi_gpu_sssp, run_gpu, FrontierKind, MultiGpuConfig, RdbsConfig, Variant};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::stats::{SsspResult, UpdateStats};
use rdbs_core::{cpu, default_delta, saturating_relax, seq, Csr, VertexId, Weight, INF};
use rdbs_gpu_sim::{Device, DeviceConfig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Worker count for the CPU-parallel implementations (kept small so
/// the full matrix stays fast and deterministic to schedule).
const THREADS: usize = 2;

/// Id of the deliberately broken implementation (an off-by-one loop
/// bound that skips the last out-edge of every vertex).
pub const FAULT_OFF_BY_ONE: &str = "fault/off-by-one";

/// Which layer of the workspace an implementation lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Sequential references (`rdbs-core::seq`).
    Seq,
    /// Native-thread CPU implementations (`rdbs-core::cpu`).
    Cpu,
    /// Simulated-GPU RDBS and its ablations (`rdbs-core::gpu`).
    Gpu,
    /// The multi-GPU port.
    MultiGpu,
    /// The resident batched service (`rdbs-core::service`).
    Service,
    /// Comparators (`rdbs-baselines`).
    Baseline,
    /// The graph-framework integration (`rdbs-framework`).
    Framework,
    /// Deliberately broken (shrinker/localizer self-test only).
    Fault,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    Dijkstra,
    BellmanFord,
    Dial,
    DeltaStepping,
    CpuParallel,
    CpuAsync,
    Gpu(Variant),
    MultiGpu(usize),
    Service,
    ServiceConcurrent,
    ServiceTraffic,
    Adds,
    NearFar,
    FrontierBf,
    PqDelta,
    RhoStepping,
    SepGraph,
    Framework,
    FaultOffByOne,
}

/// One runnable SSSP entry point.
#[derive(Clone, Copy, Debug)]
pub struct Implementation {
    /// Stable id, `family/name` (e.g. `gpu/basyn-pro`).
    pub id: &'static str,
    pub family: Family,
    kind: Kind,
    /// Frontier-layout override (`--frontier`): applied to the RDBS
    /// config of GPU and service entries; `None` keeps each entry's
    /// own layout. Non-RDBS entries ignore it.
    frontier: Option<FrontierKind>,
}

impl Implementation {
    /// Run this entry on the given frontier layout (where it has one).
    #[must_use]
    pub fn with_frontier(mut self, frontier: FrontierKind) -> Self {
        self.frontier = Some(frontier);
        self
    }

    /// Apply the frontier override to an RDBS config.
    fn apply_frontier(&self, cfg: &mut RdbsConfig) {
        if let Some(f) = self.frontier {
            cfg.frontier = f;
        }
    }
    /// Run this implementation. `delta0` overrides the bucket width
    /// where the algorithm has one (ignored otherwise); `None` uses
    /// each implementation's own default.
    pub fn run(&self, graph: &Csr, source: VertexId, delta0: Option<Weight>) -> SsspResult {
        let delta = || delta0.unwrap_or_else(|| default_delta(graph)).max(1);
        match self.kind {
            Kind::Dijkstra => seq::dijkstra(graph, source),
            Kind::BellmanFord => seq::bellman_ford(graph, source),
            Kind::Dial => seq::dial(graph, source),
            Kind::DeltaStepping => seq::delta_stepping(graph, source, delta()),
            Kind::CpuParallel => cpu::parallel_delta_stepping(graph, source, delta(), THREADS),
            Kind::CpuAsync => cpu::async_bucket_sssp(graph, source, delta(), THREADS),
            Kind::Gpu(variant) => {
                let variant = match variant {
                    Variant::Rdbs(mut cfg) => {
                        cfg.delta0 = delta0.or(cfg.delta0);
                        self.apply_frontier(&mut cfg);
                        Variant::Rdbs(cfg)
                    }
                    v => v,
                };
                run_gpu(graph, source, variant, DeviceConfig::test_tiny()).result
            }
            Kind::MultiGpu(k) => {
                let config = MultiGpuConfig {
                    num_devices: k,
                    device: DeviceConfig::test_tiny(),
                    interconnect_gbps: 50.0,
                    exchange_latency_us: 5.0,
                    delta0,
                };
                multi_gpu_sssp(graph, source, &config).result
            }
            Kind::Service | Kind::ServiceConcurrent => {
                let mut cfg = RdbsConfig::full();
                cfg.delta0 = delta0;
                self.apply_frontier(&mut cfg);
                // The concurrent entry spreads the batch across four
                // command streams (clamped to the batch size), so the
                // matrix differentials the scheduler's lane isolation
                // against every one-shot entry.
                let streams = if matches!(self.kind, Kind::ServiceConcurrent) { 4 } else { 1 };
                let mut svc = SsspService::new(
                    graph,
                    ServiceConfig {
                        backend: rdbs_core::service::Backend::Gpu(Variant::Rdbs(cfg)),
                        device: DeviceConfig::test_tiny(),
                        delta0,
                        streams,
                        queue_capacity: None,
                    },
                );
                // Warm-up on a different source first, so the scored
                // query runs on recycled pooled buffers — the matrix
                // differentials pooled-reuse against every one-shot
                // entry, not just a fresh service.
                let n = graph.num_vertices() as u32;
                let warm = if n > 1 { (source + 1) % n } else { source };
                svc.batch(&[warm, source]).pop().expect("batch of two returns two results")
            }
            Kind::ServiceTraffic => {
                use rdbs_core::service::cache::CacheConfig;
                use rdbs_core::service::traffic::{
                    ArrivalProcess, Outcome, Query, SourceMix, TrafficConfig,
                };
                let mut cfg = RdbsConfig::full();
                cfg.delta0 = delta0;
                self.apply_frontier(&mut cfg);
                let mut svc = SsspService::new(
                    graph,
                    ServiceConfig {
                        backend: rdbs_core::service::Backend::Gpu(Variant::Rdbs(cfg)),
                        device: DeviceConfig::test_tiny(),
                        delta0,
                        streams: 2,
                        queue_capacity: None,
                    },
                );
                // The scored query arrives first (an empty admission
                // predictor always admits it); a late repeat replays it
                // from the answer cache, so the matrix differentials
                // the cache path — the returned bits ARE the cached
                // bits — against every one-shot entry.
                let n = graph.num_vertices() as u32;
                let warm = if n > 1 { (source + 1) % n } else { source };
                let generous = 1e12;
                let queries = [
                    Query { source, arrival_ms: 0.0, deadline_ms: generous },
                    Query { source: warm, arrival_ms: 0.0, deadline_ms: generous },
                    Query { source, arrival_ms: 1e6, deadline_ms: generous },
                ];
                let tcfg = TrafficConfig {
                    arrivals: ArrivalProcess::Poisson { qps: 1.0 }, // unused: explicit queries
                    offered: queries.len(),
                    seed: 0,
                    slo_ms: generous,
                    tight_slo_ms: None,
                    tight_every: 0,
                    sources: SourceMix::Uniform,
                    shed_margin: 1.0,
                    cache: Some(CacheConfig::default()),
                    approx_on_shed: false,
                };
                let report = svc.serve_queries(&queries, &tcfg);
                match report.outcomes.into_iter().nth(2).expect("three outcomes") {
                    Outcome::Exact { result, .. } => result,
                    other => panic!("the cached repeat must be exact, got {other:?}"),
                }
            }
            Kind::Adds => {
                let mut device = Device::new(DeviceConfig::test_tiny());
                rdbs_baselines::adds(&mut device, graph, source, delta())
            }
            Kind::NearFar => {
                let mut device = Device::new(DeviceConfig::test_tiny());
                rdbs_baselines::near_far(&mut device, graph, source, delta())
            }
            Kind::FrontierBf => {
                let mut device = Device::new(DeviceConfig::test_tiny());
                rdbs_baselines::frontier_bf(&mut device, graph, source)
            }
            Kind::PqDelta => rdbs_baselines::pq_delta_stepping(graph, source, THREADS, None),
            Kind::RhoStepping => rdbs_baselines::rho_stepping(graph, source, THREADS, 0.3),
            Kind::SepGraph => {
                let mut device = Device::new(DeviceConfig::test_tiny());
                rdbs_baselines::sep_graph(&mut device, graph, source).0
            }
            Kind::Framework => {
                rdbs_framework::algorithms::sssp(DeviceConfig::test_tiny(), graph, source).0
            }
            Kind::FaultOffByOne => faulty_dijkstra_off_by_one(graph, source),
        }
    }

    /// Whether the localizer's relaxation tracing covers this
    /// implementation (the instrumented kernels live in
    /// `seq::delta_stepping`, `gpu::rdbs`, and — via the sharded
    /// sink's worker handles — `cpu::parallel_delta` and
    /// `cpu::async_bucket`).
    pub fn traced(&self) -> bool {
        matches!(
            self.kind,
            Kind::DeltaStepping | Kind::Gpu(Variant::Rdbs(_)) | Kind::CpuParallel | Kind::CpuAsync
        )
    }
}

/// Every conforming entry point, in registry order. The Dijkstra
/// oracle itself is included as a self-check of the harness.
pub fn all() -> Vec<Implementation> {
    use Family::*;
    let imp = |id, family, kind| Implementation { id, family, kind, frontier: None };
    vec![
        imp("seq/dijkstra", Seq, Kind::Dijkstra),
        imp("seq/bellman-ford", Seq, Kind::BellmanFord),
        imp("seq/dial", Seq, Kind::Dial),
        imp("seq/delta-stepping", Seq, Kind::DeltaStepping),
        imp("cpu/parallel-delta", Cpu, Kind::CpuParallel),
        imp("cpu/async-bucket", Cpu, Kind::CpuAsync),
        imp("gpu/bl", Gpu, Kind::Gpu(Variant::Baseline)),
        imp("gpu/sync-delta", Gpu, Kind::Gpu(Variant::Rdbs(RdbsConfig::sync_delta()))),
        imp("gpu/basyn", Gpu, Kind::Gpu(Variant::Rdbs(RdbsConfig::basyn_only()))),
        imp("gpu/basyn-pro", Gpu, Kind::Gpu(Variant::Rdbs(RdbsConfig::basyn_pro()))),
        imp("gpu/basyn-adwl", Gpu, Kind::Gpu(Variant::Rdbs(RdbsConfig::basyn_adwl()))),
        imp("gpu/full", Gpu, Kind::Gpu(Variant::Rdbs(RdbsConfig::full()))),
        imp(
            "gpu/full-wheel",
            Gpu,
            Kind::Gpu(Variant::Rdbs(RdbsConfig::full().with_frontier(FrontierKind::Wheel))),
        ),
        imp(
            "gpu/full-mlmq",
            Gpu,
            Kind::Gpu(Variant::Rdbs(RdbsConfig::full().with_frontier(FrontierKind::Mlmq))),
        ),
        imp("multi-gpu/k1", MultiGpu, Kind::MultiGpu(1)),
        imp("multi-gpu/k2", MultiGpu, Kind::MultiGpu(2)),
        imp("multi-gpu/k4", MultiGpu, Kind::MultiGpu(4)),
        imp("service/pooled", Service, Kind::Service),
        imp("service/concurrent", Service, Kind::ServiceConcurrent),
        imp("service/traffic", Service, Kind::ServiceTraffic),
        imp("baseline/adds", Baseline, Kind::Adds),
        imp("baseline/near-far", Baseline, Kind::NearFar),
        imp("baseline/frontier-bf", Baseline, Kind::FrontierBf),
        imp("baseline/pq-delta", Baseline, Kind::PqDelta),
        imp("baseline/rho-stepping", Baseline, Kind::RhoStepping),
        imp("baseline/sep-graph", Baseline, Kind::SepGraph),
        imp("framework/sssp", Framework, Kind::Framework),
    ]
}

/// [`all()`] plus the deliberately broken implementation.
pub fn with_faults() -> Vec<Implementation> {
    let mut v = all();
    v.push(Implementation {
        id: FAULT_OFF_BY_ONE,
        family: Family::Fault,
        kind: Kind::FaultOffByOne,
        frontier: None,
    });
    v
}

/// Look an implementation up by its exact id (including faults).
pub fn by_id(id: &str) -> Option<Implementation> {
    with_faults().into_iter().find(|i| i.id == id)
}

/// Dijkstra with a classic off-by-one loop bound: the last out-edge of
/// every vertex with two or more neighbours is never relaxed. Kept as
/// a live fault specimen so the shrinker and localizer are exercised
/// against a real wrong answer, not a mock.
fn faulty_dijkstra_off_by_one(graph: &Csr, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut stats = UpdateStats::default();
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        let degree = graph.degree(u) as usize;
        // BUG (intentional): `degree - 1` drops the final edge.
        for (v, w) in graph.edges(u).take(degree.saturating_sub(1)) {
            let nd = saturating_relax(d, w);
            stats.checks += 1;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                stats.total_updates += 1;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { source, dist, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    #[test]
    fn ids_are_unique_and_resolvable() {
        let impls = with_faults();
        for (i, a) in impls.iter().enumerate() {
            for b in &impls[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate id");
            }
            assert_eq!(by_id(a.id).unwrap().id, a.id);
        }
        assert!(by_id("no/such-impl").is_none());
    }

    #[test]
    fn every_registered_impl_solves_a_path() {
        let el = EdgeList::from_edges(4, (0..3).map(|i| (i, i + 1, 2)).collect());
        let g = build_undirected(&el);
        for imp in all() {
            let r = imp.run(&g, 0, None);
            assert_eq!(r.dist, vec![0, 2, 4, 6], "{}", imp.id);
        }
    }

    #[test]
    fn fault_specimen_is_actually_wrong() {
        // A star: vertex 0 connects to 1, 2, 3. The faulty Dijkstra
        // drops 0's last edge, so one leaf stays unreachable.
        let el = EdgeList::from_edges(4, vec![(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        let g = build_undirected(&el);
        let r = by_id(FAULT_OFF_BY_ONE).unwrap().run(&g, 0, None);
        let oracle = seq::dijkstra(&g, 0);
        assert_ne!(r.dist, oracle.dist);
    }
}
