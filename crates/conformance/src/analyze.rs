//! The static-verification matrix: every GPU entry point × frontier
//! layout with the access-IR recorder armed, verified by the
//! schedule-universal analyzer ([`rdbs_statan::verify`]).
//!
//! The sanitized matrix ([`crate::sanitize`]) checks the accesses the
//! schedule that ran happened to produce; this matrix checks **all**
//! schedules at once: the retained IR summarizes every access a race
//! window saw, and the verifier quantifies over every interleaving of
//! it. A kernel certified [`rdbs_statan::Verdict::RaceFree`] here
//! cannot be made racy by any lane permutation the schedule fuzzer
//! could ever draw.
//!
//! Two liveness specimens gate every sweep (run first by the CLI so a
//! green matrix can never mean "verifier asleep"):
//!
//! * [`planted_race_static`] — PR 4's planted write-write race, which
//!   the dynamic sanitizer also catches; the static verifier must
//!   flag it too.
//! * [`schedule_hidden_specimen`] — a publish/consume pair (plain
//!   store cross-lane against a volatile read) that is **invisible to
//!   the dynamic sanitizer under every lane order** (it records no
//!   volatile reads) yet is a real race: the reader can observe a
//!   half-published state. Only the static verifier catches it.

use crate::graphs::{self, GraphCase};
use crate::sanitize::{san_entries, EntryKind, SanEntry};
use rdbs_core::gpu::{run_gpu_on, FrontierKind, MultiGpuConfig, MultiGpuState, Variant};
use rdbs_core::seq::dijkstra;
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::validate::check_against;
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::{AccessIr, Device, DeviceConfig, HazardKind, SanConfig};
use rdbs_statan::{Analysis, QueueClass, Verdict};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What to analyze.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeOptions {
    /// Reduced sweep: quick graph families and the quick entry subset.
    pub quick: bool,
    /// Only entries whose id contains this substring.
    pub entry_filter: Option<String>,
    /// Analyze only this frontier layout instead of each entry's full
    /// applicable axis.
    pub frontier: Option<FrontierKind>,
}

/// One `entry@frontier` cell: the merged analysis of that entry point
/// across every graph family and source it ran on.
#[derive(Clone, Debug)]
pub struct AnalyzedCell {
    /// Entry id (e.g. `gpu/full`).
    pub entry_id: &'static str,
    /// Frontier layout the entry ran on.
    pub frontier: FrontierKind,
    /// Merged verifier output across all runs of this cell.
    pub analysis: Analysis,
    /// Runs merged into the analysis (families × sources, × devices
    /// inside each run).
    pub runs: u64,
    /// First oracle mismatch, if any run answered wrong.
    pub mismatch: Option<String>,
    /// First panic message, if any run crashed.
    pub panic: Option<String>,
}

impl AnalyzedCell {
    /// Stable cell key, `entry@frontier`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.entry_id, self.frontier.name())
    }

    /// Green = every run completed with the right answer, no kernel is
    /// `Racy`, and no queue is `Overflowing`.
    pub fn is_clean(&self) -> bool {
        self.panic.is_none()
            && self.mismatch.is_none()
            && self.analysis.worst_verdict() != Verdict::Racy
            && self.analysis.worst_queue_class() != QueueClass::Overflowing
    }
}

/// Outcome of a static-verification sweep.
#[derive(Debug, Default)]
pub struct AnalyzeReport {
    /// One cell per `entry@frontier`, in sweep order.
    pub cells: Vec<AnalyzedCell>,
}

impl AnalyzeReport {
    /// Green = at least one cell ran and every cell is clean.
    pub fn is_green(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(AnalyzedCell::is_clean)
    }

    /// Cells that are not clean.
    pub fn red_cells(&self) -> impl Iterator<Item = &AnalyzedCell> {
        self.cells.iter().filter(|c| !c.is_clean())
    }
}

/// The frontier layouts an entry is actually sensitive to: RDBS-backed
/// single-device entries and the service route their frontier through
/// [`FrontierKind`]; the synchronous baseline and the multi-GPU
/// exchange do not, so re-running them per layout would only duplicate
/// identical certificates.
fn frontier_axis(entry: &SanEntry, forced: Option<FrontierKind>) -> Vec<FrontierKind> {
    let sensitive = matches!(
        entry.kind,
        EntryKind::Gpu(Variant::Rdbs(_)) | EntryKind::Service | EntryKind::ServiceConcurrent
    );
    match (forced, sensitive) {
        (Some(kind), true) => vec![kind],
        (Some(kind), false) => {
            // A forced layout still runs the insensitive entries once,
            // under their canonical single-layout key, so the matrix
            // keeps full registry coverage.
            if kind == FrontierKind::Single {
                vec![FrontierKind::Single]
            } else {
                Vec::new()
            }
        }
        (None, true) => FrontierKind::ALL.to_vec(),
        (None, false) => vec![FrontierKind::Single],
    }
}

/// Run one entry point once with the IR recorder armed and verify the
/// retained IR. Returns the per-device analyses merged.
fn run_verified(
    entry: &SanEntry,
    graph: &Csr,
    oracle_dist: &[u32],
    source: VertexId,
) -> Result<(Analysis, Option<String>), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| match entry.kind {
        EntryKind::Gpu(variant) => {
            let mut device = Device::new(DeviceConfig::test_tiny());
            device.arm_ir();
            let run = run_gpu_on(&mut device, graph, source, entry.apply_variant(variant));
            let ir = device.take_ir().expect("IR was armed");
            (run.result.dist, vec![ir])
        }
        EntryKind::MultiGpu(k) => {
            let config = MultiGpuConfig {
                num_devices: k,
                device: DeviceConfig::test_tiny(),
                interconnect_gbps: 50.0,
                exchange_latency_us: 5.0,
                delta0: None,
            };
            let mut state = MultiGpuState::new(graph, &config);
            state.arm_ir();
            let run = state.run(source);
            (run.result.dist, state.take_irs())
        }
        EntryKind::Service => {
            let config = entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()));
            let mut svc = SsspService::new(graph, config);
            svc.arm_ir();
            let n = graph.num_vertices();
            let warm = VertexId::try_from((source as usize + 1) % n).expect("vertex id fits");
            let _ = svc.query(warm);
            let result = svc.query(source);
            (result.dist, svc.take_irs())
        }
        EntryKind::ServiceConcurrent => {
            let config =
                entry.apply_service(ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(4));
            let mut svc = SsspService::new(graph, config);
            svc.arm_ir();
            let n = graph.num_vertices();
            let other = |k: usize| VertexId::try_from((source as usize + k) % n).expect("fits");
            let batch = [source, other(1), other(2), other(3)];
            let mut results = svc.batch(&batch);
            let result = results.swap_remove(0);
            (result.dist, svc.take_irs())
        }
    }));
    match outcome {
        Ok((dist, irs)) => {
            let mismatch = check_against(oracle_dist, &dist).err().map(|m| m.to_string());
            let mut analysis = Analysis::default();
            for ir in &irs {
                analysis.merge(rdbs_statan::verify(ir));
            }
            Ok((analysis, mismatch))
        }
        Err(payload) => Err(crate::runner::panic_message(payload.as_ref())),
    }
}

fn substring(filter: &Option<String>, s: &str) -> bool {
    match filter {
        Some(f) => s.contains(f.as_str()),
        None => true,
    }
}

/// Sweep the static-verification matrix: registry × frontier axis ×
/// graph families, one merged cell per `entry@frontier`. `progress` is
/// called once per completed cell.
pub fn run_analyze(
    opts: &AnalyzeOptions,
    mut progress: impl FnMut(&AnalyzedCell),
) -> AnalyzeReport {
    let entries: Vec<SanEntry> =
        if opts.quick { crate::sanitize::quick_san_entries() } else { san_entries() }
            .into_iter()
            .filter(|e| substring(&opts.entry_filter, e.id))
            .collect();
    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() };

    let mut report = AnalyzeReport::default();
    for entry in &entries {
        for kind in frontier_axis(entry, opts.frontier) {
            let entry = entry.with_frontier(kind);
            let mut cell = AnalyzedCell {
                entry_id: entry.id,
                frontier: kind,
                analysis: Analysis::default(),
                runs: 0,
                mismatch: None,
                panic: None,
            };
            for family in &families {
                let graph = family.build();
                // One source per family: certificates quantify over
                // schedules, not inputs, so extra sources only re-walk
                // the same kernels; one covers the code paths.
                let source = family.sources(graph.num_vertices())[0];
                let oracle = dijkstra(&graph, source);
                match run_verified(&entry, &graph, &oracle.dist, source) {
                    Ok((analysis, mismatch)) => {
                        cell.analysis.merge(analysis);
                        cell.runs += 1;
                        if cell.mismatch.is_none() {
                            cell.mismatch =
                                mismatch.map(|m| format!("{} (source {source}): {m}", family.name));
                        }
                    }
                    Err(panic) => {
                        if cell.panic.is_none() {
                            cell.panic = Some(format!("{}: {panic}", family.name));
                        }
                    }
                }
            }
            progress(&cell);
            report.cells.push(cell);
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Liveness specimens
// ---------------------------------------------------------------------------

/// Run the schedule-hidden publish/consume specimen once: lane 0
/// plain-stores a word that lane 1 volatile-reads in the same live
/// wave. Returns the dynamic sanitizer's violation count and the
/// retained IR. With `fuzz_seed` set, the wave's lane order is the
/// seeded permutation instead of ascending.
fn hidden_specimen_run(fuzz_seed: Option<u64>) -> (u64, AccessIr) {
    let mut device = Device::new(DeviceConfig::test_tiny());
    device.arm_sanitizer(SanConfig::default());
    device.arm_ir();
    if let Some(seed) = fuzz_seed {
        device.arm_schedule_fuzz(seed);
    }
    let victim = device.alloc("hidden-victim", 4);
    device.fill(victim, 0);
    {
        let mut session = device.wave_session("hidden-publish");
        session.wave(8, 1, |lane| {
            // The publish side lacks atomic discipline: under the lane
            // order where 1 runs mid-store, the consumer observes a
            // half-published state. The dynamic sanitizer records plain
            // stores, atomics and plain loads — never volatile reads —
            // so NO lane order makes this pair visible to it.
            if lane.tid() == 0 {
                lane.st(victim, 0, 0xDEAD);
            } else if lane.tid() == 1 {
                let _ = lane.ld_volatile(victim, 0);
            }
        });
    }
    (device.san_total(), device.take_ir().expect("IR was armed"))
}

/// Outcome of the schedule-hidden specimen across the dynamic
/// sanitizer, the schedule fuzzer, and the static verifier.
#[derive(Debug)]
pub struct HiddenSpecimen {
    /// Dynamic violations under the default ascending lane order.
    pub dynamic_violations: u64,
    /// Dynamic violations summed across all fuzzed permutations.
    pub fuzz_violations: u64,
    /// Permutations fuzzed.
    pub fuzz_seeds: u64,
    /// The static verifier's analysis of the same run.
    pub analysis: Analysis,
}

/// Run the schedule-hidden specimen under the default lane order, 32
/// fuzzed permutations, and the static verifier.
pub fn schedule_hidden_specimen() -> HiddenSpecimen {
    let (dynamic_violations, ir) = hidden_specimen_run(None);
    let mut fuzz_violations = 0;
    let fuzz_seeds = 32;
    for seed in 0..fuzz_seeds {
        let (v, _) = hidden_specimen_run(Some(seed));
        fuzz_violations += v;
    }
    HiddenSpecimen {
        dynamic_violations,
        fuzz_violations,
        fuzz_seeds,
        analysis: rdbs_statan::verify(&ir),
    }
}

/// PR 4's planted write-write race, re-run with the IR recorder armed
/// and statically verified: eight lanes plain-store one word in one
/// wave. The dynamic sanitizer catches this one too
/// ([`crate::sanitize::planted_race_specimen`]); the static verifier
/// must agree.
pub fn planted_race_static() -> Analysis {
    let mut device = Device::new(DeviceConfig::test_tiny());
    device.arm_ir();
    let victim = device.alloc("specimen-victim", 4);
    device.fill(victim, 0);
    {
        let mut session = device.wave_session("planted-race");
        session.wave(8, 1, |lane| {
            lane.st(victim, 0, lane.tid() as u32);
            if lane.tid() == 0 {
                let _ = lane.ld(victim, 1);
            }
        });
    }
    rdbs_statan::verify(&device.take_ir().expect("IR was armed"))
}

/// The verifier's liveness gate, run by the CLI before every sweep:
/// both specimens must come back `Racy` with the right hazard kinds,
/// and the hidden one must be invisible to the dynamic sanitizer both
/// unfuzzed and across 32 permutations. If this fails, a green matrix
/// proves nothing.
pub fn specimens_caught_statically() -> Result<(), String> {
    let planted = planted_race_static();
    let Some(cert) = planted.kernels.get("planted-race") else {
        return Err("planted-race specimen produced no kernel certificate".into());
    };
    if cert.verdict != Verdict::Racy {
        return Err(format!(
            "planted write-write race not flagged statically (verdict {})",
            cert.verdict.name()
        ));
    }
    if !cert.findings.iter().any(|h| h.kind == HazardKind::WriteWrite) {
        return Err("planted specimen's findings cite no write-write hazard".into());
    }

    let hidden = schedule_hidden_specimen();
    if hidden.dynamic_violations != 0 {
        return Err(format!(
            "hidden specimen is not schedule-hidden: dynamic sanitizer saw {} violation(s)",
            hidden.dynamic_violations
        ));
    }
    if hidden.fuzz_violations != 0 {
        return Err(format!(
            "hidden specimen is not schedule-hidden: {} violation(s) across {} permutations",
            hidden.fuzz_violations, hidden.fuzz_seeds
        ));
    }
    let Some(cert) = hidden.analysis.kernels.get("hidden-publish") else {
        return Err("hidden specimen produced no kernel certificate".into());
    };
    if cert.verdict != Verdict::Racy {
        return Err(format!(
            "hidden specimen not flagged statically (verdict {})",
            cert.verdict.name()
        ));
    }
    if !cert.findings.iter().any(|h| h.kind == HazardKind::UnsanctionedPublish) {
        return Err("hidden specimen's findings cite no unsanctioned-publish hazard".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Serialization + baseline diffing
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the full report as deterministic JSON (the CLI's `--json`).
pub fn report_json(report: &AnalyzeReport) -> String {
    let mut out = String::from("{\n  \"format\": \"rdbs-analyze-v1\",\n  \"cells\": [");
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\n      \"cell\": \"{}\",", esc(&cell.key())));
        out.push_str(&format!("\n      \"clean\": {},", cell.is_clean()));
        out.push_str(&format!("\n      \"runs\": {},", cell.runs));
        out.push_str(&format!("\n      \"devices\": {},", cell.analysis.devices));
        out.push_str(&format!("\n      \"windows\": {},", cell.analysis.windows));
        out.push_str(&format!(
            "\n      \"peak_window_words\": {},",
            cell.analysis.peak_window_words
        ));
        match &cell.mismatch {
            Some(m) => out.push_str(&format!("\n      \"mismatch\": \"{}\",", esc(m))),
            None => out.push_str("\n      \"mismatch\": null,"),
        }
        match &cell.panic {
            Some(p) => out.push_str(&format!("\n      \"panic\": \"{}\",", esc(p))),
            None => out.push_str("\n      \"panic\": null,"),
        }
        out.push_str("\n      \"kernels\": [");
        for (j, cert) in cell.analysis.kernels.values().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let sanctions: Vec<String> =
                cert.sanctions.iter().map(|k| format!("\"{}\"", k.name())).collect();
            let findings: Vec<String> =
                cert.findings.iter().map(|h| format!("\"{}\"", esc(&h.to_string()))).collect();
            out.push_str(&format!(
                "\n        {{\"kernel\": \"{}\", \"verdict\": \"{}\", \"sanctions\": [{}], \
                 \"findings\": [{}], \"waves\": {}, \"max_lanes\": {}, \"gangs_checked\": {}, \
                 \"gangs_divergent\": {}, \"child_divergent\": {}}}",
                esc(cert.kernel),
                cert.verdict.name(),
                sanctions.join(", "),
                findings.join(", "),
                cert.waves,
                cert.max_lanes,
                cert.gangs_checked,
                cert.gangs_divergent,
                cert.child_divergent,
            ));
        }
        out.push_str("\n      ],");
        out.push_str("\n      \"queues\": [");
        for (j, q) in cell.analysis.queues.values().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"label\": \"{}\", \"class\": \"{}\", \"capacity\": {}, \
                 \"spill\": {}, \"pushes\": {}, \"high_water\": {}, \"max_window_pushes\": {}, \
                 \"drops\": {}, \"window_bounded\": {}}}",
                esc(q.label),
                q.class.name(),
                q.capacity,
                q.spill,
                q.pushes,
                q.high_water,
                q.max_window_pushes,
                q.drops,
                q.window_bounded(),
            ));
        }
        out.push_str("\n      ],");
        out.push_str("\n      \"hot_words\": [");
        for (j, (buf, idx, n)) in cell.analysis.hot_words(10).into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"buffer\": \"{}\", \"index\": {idx}, \"atomics\": {n}}}",
                esc(buf)
            ));
        }
        out.push_str("\n      ],");
        out.push_str("\n      \"buffers\": [");
        for (j, (label, t)) in cell.analysis.buffers.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"label\": \"{}\", \"loads\": {}, \"stores\": {}, \"atomics\": {}, \
                 \"same_word\": {}, \"unit_stride\": {}, \"strided\": {}, \"scatter\": {}}}",
                esc(label),
                t.loads,
                t.stores,
                t.atomics,
                t.same_word,
                t.unit_stride,
                t.strided,
                t.scatter,
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The flat certificate map the baseline stores: one line per
/// certificate, `"<cell> kernel <name>"` or `"<cell> queue <label>"`
/// mapped to its verdict / class name. Deterministic (sorted keys).
pub fn certificate_map(report: &AnalyzeReport) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for cell in &report.cells {
        let key = cell.key();
        for cert in cell.analysis.kernels.values() {
            map.insert(format!("{key} kernel {}", cert.kernel), cert.verdict.name().to_string());
        }
        for q in cell.analysis.queues.values() {
            map.insert(format!("{key} queue {}", q.label), q.class.name().to_string());
        }
    }
    map
}

/// Render the committed certificate baseline (`--write`).
pub fn baseline_json(report: &AnalyzeReport) -> String {
    let map = certificate_map(report);
    let mut out = String::from("{\n  \"format\": \"rdbs-certificates-v1\",\n  \"certs\": {");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": \"{}\"", esc(k), esc(v)));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parse a baseline file written by [`baseline_json`]. Line-oriented
/// on purpose: the file is machine-written, so `"key": "value"` pairs
/// one per line are a stable contract.
pub fn parse_baseline(text: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, rest)) = rest.split_once("\": \"") else { continue };
        let Some(val) = rest.strip_suffix('"') else { continue };
        if key == "format" {
            continue;
        }
        map.insert(key.to_string(), val.to_string());
    }
    map
}

/// Result of diffing a fresh report against the committed baseline.
#[derive(Debug, Default)]
pub struct BaselineCheck {
    /// Regressions: lost certificates, downgraded verdicts, new red
    /// certificates, or broken runs. Any entry here is a red build.
    pub failures: Vec<String>,
    /// Benign drift: upgrades and new green certificates. The baseline
    /// is stale; refresh with `--write`.
    pub notes: Vec<String>,
}

impl BaselineCheck {
    /// True when nothing regressed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Severity rank of a certificate value; `None` if unparseable.
fn severity(kind: &str, value: &str) -> Option<u8> {
    match kind {
        "kernel" => Verdict::parse(value).map(|v| v as u8),
        "queue" => QueueClass::parse(value).map(|c| c as u8),
        _ => None,
    }
}

fn cert_kind(key: &str) -> &'static str {
    if key.contains(" kernel ") {
        "kernel"
    } else if key.contains(" queue ") {
        "queue"
    } else {
        "unknown"
    }
}

/// Diff `report` against the committed baseline text: fail on any
/// certificate that disappeared, got worse, or arrived red; note (but
/// allow) upgrades and new green certificates.
pub fn check_baseline(report: &AnalyzeReport, baseline: &str) -> BaselineCheck {
    let mut check = BaselineCheck::default();
    for cell in report.red_cells() {
        let key = cell.key();
        if let Some(p) = &cell.panic {
            check.failures.push(format!("{key}: panicked: {p}"));
        }
        if let Some(m) = &cell.mismatch {
            check.failures.push(format!("{key}: wrong answer: {m}"));
        }
    }
    let base = parse_baseline(baseline);
    if base.is_empty() {
        check.failures.push("baseline is empty or unparseable".to_string());
        return check;
    }
    let current = certificate_map(report);
    for (key, base_val) in &base {
        let kind = cert_kind(key);
        match current.get(key) {
            None => {
                check.failures.push(format!("lost certificate: {key} (was {base_val})"));
            }
            Some(cur_val) => match (severity(kind, base_val), severity(kind, cur_val)) {
                (Some(b), Some(c)) if c > b => {
                    check.failures.push(format!("regressed: {key}: {base_val} -> {cur_val}"));
                }
                (Some(b), Some(c)) if c < b => {
                    check.notes.push(format!(
                        "improved: {key}: {base_val} -> {cur_val} (refresh with --write)"
                    ));
                }
                (Some(_), Some(_)) => {}
                _ => {
                    check
                        .failures
                        .push(format!("unparseable certificate: {key}: {base_val} / {cur_val}"));
                }
            },
        }
    }
    for (key, cur_val) in &current {
        if base.contains_key(key) {
            continue;
        }
        match severity(cert_kind(key), cur_val) {
            Some(s) if s >= 2 => {
                check.failures.push(format!("new red certificate: {key}: {cur_val}"));
            }
            Some(_) => {
                check.notes.push(format!("new certificate: {key}: {cur_val} (adopt with --write)"));
            }
            None => {
                check.failures.push(format!("unparseable certificate: {key}: {cur_val}"));
            }
        }
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: the quick static matrix must be green —
    /// every kernel certified `RaceFree` or `SanctionedRacy`, every
    /// queue `Bounded` or `Spilling`, right answers everywhere.
    #[test]
    fn quick_static_matrix_is_green() {
        let report = run_analyze(&AnalyzeOptions { quick: true, ..Default::default() }, |_| {});
        assert!(!report.cells.is_empty());
        let red: Vec<String> = report
            .red_cells()
            .map(|c| {
                let mut lines = vec![format!(
                    "{}: worst verdict {}, worst queue {}{}{}",
                    c.key(),
                    c.analysis.worst_verdict().name(),
                    c.analysis.worst_queue_class().name(),
                    c.mismatch.as_deref().map(|m| format!(", mismatch: {m}")).unwrap_or_default(),
                    c.panic.as_deref().map(|p| format!(", panic: {p}")).unwrap_or_default(),
                )];
                for cert in c.analysis.kernels.values() {
                    lines.extend(cert.findings.iter().take(3).map(|h| format!("  {h}")));
                }
                lines.join("\n")
            })
            .collect();
        assert!(report.is_green(), "static matrix is red:\n{}", red.join("\n"));
    }

    /// Satellite 4's core claim, end to end: the hidden specimen is
    /// invisible to the dynamic sanitizer under the default order AND
    /// 32 fuzzed permutations, yet the static verifier flags it; the
    /// PR-4 planted race is flagged statically too.
    #[test]
    fn specimens_gate_the_verifier() {
        specimens_caught_statically().unwrap();
        let hidden = schedule_hidden_specimen();
        assert_eq!(hidden.dynamic_violations, 0, "dynamic sanitizer must miss it");
        assert_eq!(hidden.fuzz_violations, 0, "32-permutation fuzz must miss it");
        let cert = &hidden.analysis.kernels["hidden-publish"];
        assert_eq!(cert.verdict, Verdict::Racy);
        assert!(cert.findings.iter().any(|h| h.kind == HazardKind::UnsanctionedPublish));
        assert!(
            cert.findings.iter().any(|h| h.buffer == "hidden-victim"),
            "finding names the buffer"
        );
    }

    /// The frontier axis only multiplies entries that actually route
    /// through the frontier abstraction.
    #[test]
    fn frontier_axis_matches_sensitivity() {
        let entries = san_entries();
        let axis_of = |id: &str| {
            let e = entries.iter().find(|e| e.id == id).unwrap();
            frontier_axis(e, None).len()
        };
        assert_eq!(axis_of("gpu/bl"), 1);
        assert_eq!(axis_of("multi-gpu/k2"), 1);
        assert_eq!(axis_of("gpu/full"), 3);
        assert_eq!(axis_of("service/pooled"), 3);
    }

    /// Baseline round-trip and regression detection.
    #[test]
    fn baseline_diff_flags_regressions_only() {
        let report = run_analyze(
            &AnalyzeOptions {
                quick: true,
                entry_filter: Some("gpu/full".into()),
                frontier: Some(FrontierKind::Single),
            },
            |_| {},
        );
        let baseline = baseline_json(&report);
        // Round-trip: the freshly-written baseline matches itself.
        let clean = check_baseline(&report, &baseline);
        assert!(clean.ok(), "self-check failed: {:?}", clean.failures);
        assert!(clean.notes.is_empty(), "self-check drifted: {:?}", clean.notes);

        // A downgraded kernel and a vanished queue are both failures.
        let map = certificate_map(&report);
        let kernel_key = map.keys().find(|k| k.contains(" kernel ")).unwrap().clone();
        let doctored = baseline
            .replace(
                &format!("\"{kernel_key}\": \"race-free\""),
                &format!("\"{kernel_key}\": \"racy\""),
            )
            .replace(
                &format!("\"{kernel_key}\": \"sanctioned-racy\""),
                &format!("\"{kernel_key}\": \"racy\""),
            );
        let diff = check_baseline(&report, &doctored);
        assert!(
            diff.notes.iter().any(|n| n.contains("improved")),
            "downgrading the baseline should read as an improvement: {:?}",
            diff.notes
        );

        // Losing a certificate (baseline has one the run no longer
        // produces) is a failure.
        let mut with_ghost = parse_baseline(&baseline);
        with_ghost.insert("ghost@single kernel ghost".into(), "race-free".into());
        let ghost_text = {
            let mut s = String::from("{\n  \"certs\": {");
            for (i, (k, v)) in with_ghost.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\n    \"{k}\": \"{v}\""));
            }
            s.push_str("\n  }\n}\n");
            s
        };
        let diff = check_baseline(&report, &ghost_text);
        assert!(
            diff.failures.iter().any(|f| f.contains("lost certificate")),
            "missing cert must fail: {:?}",
            diff.failures
        );
    }

    /// The JSON writers escape and stay parseable by our own reader.
    #[test]
    fn baseline_json_round_trips() {
        let report = run_analyze(
            &AnalyzeOptions { quick: true, entry_filter: Some("gpu/bl".into()), frontier: None },
            |_| {},
        );
        let text = baseline_json(&report);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed, certificate_map(&report));
        // The rich report renders without panicking and names the cell.
        let rich = report_json(&report);
        assert!(rich.contains("\"cell\": \"gpu/bl@single\""));
    }
}
