//! The graph families and seeded sources the differential matrix
//! sweeps. Instances are deterministic (fixed generator seeds), small
//! enough that the full matrix finishes in seconds, and chosen to
//! cover the regimes where SSSP implementations historically diverge:
//! dense random, power-law skew, Kronecker skew with isolated
//! vertices, high-diameter grid, and a graph with unreachable
//! components.

use rdbs_graph::builder::{build_undirected, EdgeList};
use rdbs_graph::generate::{
    erdos_renyi, grid_road, kronecker, preferential_attachment, uniform_weights, GridConfig,
    KroneckerConfig,
};
use rdbs_graph::{Csr, VertexId};

/// Seeded source vertices each instance is searched from (taken modulo
/// the vertex count).
pub const SOURCES: [VertexId; 3] = [0, 7, 42];

/// One named, reproducible graph instance.
pub struct GraphCase {
    /// Stable name used in reports and filters.
    pub name: &'static str,
    build_edges: fn() -> EdgeList,
}

impl GraphCase {
    /// The raw (directed, pre-symmetrization) edge list — what the
    /// shrinker mutates.
    pub fn edge_list(&self) -> EdgeList {
        (self.build_edges)()
    }

    /// The CSR instance the matrix actually runs on.
    pub fn build(&self) -> Csr {
        build_undirected(&self.edge_list())
    }

    /// Sources for an instance of `n` vertices.
    pub fn sources(&self, n: usize) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for s in SOURCES {
            let s = s % n.max(1) as VertexId;
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }
}

fn weighted(mut el: EdgeList, seed: u64) -> EdgeList {
    uniform_weights(&mut el, seed);
    el
}

/// Every family in the matrix.
pub fn families() -> Vec<GraphCase> {
    vec![
        GraphCase { name: "erdos-renyi", build_edges: || weighted(erdos_renyi(300, 1500, 1), 11) },
        GraphCase {
            name: "powerlaw",
            build_edges: || weighted(preferential_attachment(400, 4, 2), 12),
        },
        GraphCase {
            name: "kronecker",
            build_edges: || weighted(kronecker(KroneckerConfig::new(9, 6), 3), 13),
        },
        GraphCase {
            name: "grid",
            build_edges: || weighted(grid_road(GridConfig::road(24, 24), 4), 14),
        },
        GraphCase {
            name: "disconnected",
            build_edges: || {
                let mut el = erdos_renyi(200, 400, 5);
                el.num_vertices = 260; // 60 isolated vertices
                weighted(el, 15)
            },
        },
    ]
}

/// The reduced sweep for `verify --quick`: the two most
/// divergence-prone families, first source only.
pub fn quick_families() -> Vec<GraphCase> {
    families().into_iter().filter(|f| matches!(f.name, "erdos-renyi" | "disconnected")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic() {
        for f in families() {
            let a = f.edge_list();
            let b = f.edge_list();
            assert_eq!(a, b, "{} not reproducible", f.name);
            assert!(!f.sources(a.num_vertices).is_empty());
        }
    }

    #[test]
    fn disconnected_family_has_isolated_vertices() {
        let f = families().into_iter().find(|f| f.name == "disconnected").unwrap();
        let g = f.build();
        assert_eq!(g.num_vertices(), 260);
        assert!((0..260).any(|v| g.degree(v) == 0));
    }

    #[test]
    fn sources_deduplicate_on_tiny_graphs() {
        let f = &families()[0];
        assert_eq!(f.sources(1), vec![0]);
    }
}
