//! Adversarial chaos: sanitizer-guided fault placement search and
//! seeded schedule fuzzing.
//!
//! The plain chaos matrix ([`crate::chaos`]) sprays faults uniformly
//! and asks "did anything lie?". This module replaces spraying with a
//! **budgeted placement search** that actively hunts for the fault
//! placements that hurt the most:
//!
//! 1. **Scout** — run the entry fault-free with the memory-model
//!    sanitizer armed and harvest an access profile
//!    ([`rdbs_gpu_sim::AccessProfile`]): the hottest contended words,
//!    the atomic-vs-plain overlap sites, and every kernel's wave
//!    window. The Dijkstra oracle contributes the *deep frontier* —
//!    the last-settled vertices, whose distances depend on the longest
//!    relaxation chains and are therefore the most fragile.
//! 2. **Search** — spend a fixed budget of injection runs on
//!    [`FaultSpec`]s pinned to those targets via [`FaultTarget`]
//!    (site, index window, wave window, stream), first sampling the
//!    target pool, then mutating the best candidate found so far
//!    (rate bumps, seed redraws, target swaps, window widening).
//! 3. **Score** — each candidate is graded by how deep it drove the
//!    recovery ladder: `clean(0) < repair-sweep(1) < sync-rerun(2) <
//!    degraded / explicit error(3) < silent-wrong(4 — jackpot)`. A
//!    silent wrong answer is the invariant violation the whole
//!    robustness layer exists to rule out, so finding one is the
//!    search's jackpot *and* a red build.
//!
//! The same budget is also spent on **uniformly sampled** untargeted
//! plans at the matrix default rates, so every sweep reports the
//! targeted-vs-uniform margin — the evidence that scouting pays.
//!
//! Every scored candidate that survives into the **corpus** is
//! serialized as one plain-text `key=value` line ([`corpus_lines`])
//! and replays bit-for-bit through the ordinary chaos cell runner
//! ([`replay_case`]): same spec, same score, same verdict.
//!
//! Schedule fuzzing ([`fuzz_schedules`]) attacks the other
//! nondeterminism axis: each quick entry is re-executed with the
//! device's seeded lane-permutation fuzzer armed
//! ([`rdbs_gpu_sim::Device::arm_schedule_fuzz`]) *and* the sanitizer
//! watching, across many permutation seeds. Green requires every
//! permuted run to stay oracle-correct with zero violations, and the
//! planted-race specimen to stay detected under permutation — a
//! sanitizer that goes blind when the schedule shifts is worthless.

use crate::chaos::{self, default_rate, CellVerdict, ChaosEntry};
use crate::graphs::{self, GraphCase};
use rdbs_core::gpu::{run_gpu_on, FrontierKind};
use rdbs_core::recover::{RecoveryOutcome, RecoveryReport, RecoveryStep};
use rdbs_core::seq::dijkstra;
use rdbs_core::validate::check_against;
use rdbs_core::{Csr, VertexId, INF};
use rdbs_gpu_sim::{Device, DeviceConfig, FaultModel, FaultSpec, FaultTarget, SanCheck, SanConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// Deterministic search PRNG (splitmix64, same generator the fault and
// schedule plans use — the whole search is a pure function of its seed).
// ---------------------------------------------------------------------------

struct SearchRng {
    state: u64,
}

impl SearchRng {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Scoring: recovery-ladder depth.
// ---------------------------------------------------------------------------

/// Jackpot score: a silently wrong answer.
pub const SCORE_SILENT_WRONG: u32 = 4;

/// How deep a graded cell drove the recovery ladder. Monotone in
/// damage: `0` clean, `1` repair sweep sufficed, `2` needed the
/// synchronous rerun, `3` degraded to sequential / errored loudly /
/// exhausted its budget, `4` silent wrong answer (the jackpot — and a
/// red build).
pub fn ladder_depth(report: Option<&RecoveryReport>, verdict: &CellVerdict) -> u32 {
    match verdict {
        CellVerdict::SilentWrong(_) => SCORE_SILENT_WRONG,
        CellVerdict::Error(_) => 3,
        CellVerdict::Correct => match report.map(|r| r.outcome) {
            Some(RecoveryOutcome::Degraded | RecoveryOutcome::Exhausted) => 3,
            Some(RecoveryOutcome::Recovered) => {
                let steps = report.map_or(&[][..], |r| r.steps.as_slice());
                if steps.iter().any(|s| matches!(s, RecoveryStep::SyncRerun { .. })) {
                    2
                } else {
                    1
                }
            }
            Some(RecoveryOutcome::Clean) | None => 0,
        },
    }
}

/// Human label for a ladder-depth score.
pub fn depth_label(score: u32) -> &'static str {
    match score {
        0 => "clean",
        1 => "repair-sweep",
        2 => "sync-rerun",
        3 => "degraded/error",
        _ => "SILENT-WRONG",
    }
}

// ---------------------------------------------------------------------------
// Scouting: access profile + deep frontier → target pool.
// ---------------------------------------------------------------------------

/// What the fault-free sanitized scouting pass learned about an entry
/// on one graph.
#[derive(Clone, Debug, Default)]
pub struct ScoutIntel {
    /// Hottest contended words: shared between lanes *and* hit by
    /// atomics, `(buffer, index)`.
    pub hot_words: Vec<(&'static str, u32)>,
    /// Most-loaded buffers (loads summed across words) — read-hot
    /// topology whose corruption propagates to every consumer.
    pub hot_read_buffers: Vec<&'static str>,
    /// Atomic-vs-plain overlap sites, `(buffer, index)`.
    pub overlap_words: Vec<(&'static str, u32)>,
    /// Per-kernel `(name, first_wave, last_wave)` windows.
    pub kernel_windows: Vec<(&'static str, u64, u64)>,
    /// Total waves the fault-free run executed.
    pub waves: u64,
    /// Deepest-settled vertices (largest finite oracle distance) — the
    /// audit's most fragile tight-edge chains end here.
    pub deep_vertices: Vec<VertexId>,
}

/// How many top sites / deep vertices the scout keeps per category.
const SCOUT_KEEP: usize = 6;

/// Run the entry's kernel variant fault-free under the sanitizer and
/// harvest targeting intel. Entries without a single-device kernel
/// variant (the multi-GPU exchange) still get the oracle-derived deep
/// frontier; their profile-derived pools stay empty and the search
/// falls back to generic exchange/site targets.
pub fn scout(entry: &ChaosEntry, graph: &Csr, source: VertexId, oracle_dist: &[u32]) -> ScoutIntel {
    let mut intel = ScoutIntel::default();
    if let Some(variant) = entry.scout_variant() {
        let mut device = Device::new(DeviceConfig::test_tiny());
        device.arm_sanitizer(SanConfig::default());
        let ran = catch_unwind(AssertUnwindSafe(|| {
            let _ = run_gpu_on(&mut device, graph, source, variant);
        }))
        .is_ok();
        if ran {
            if let Some(profile) = device.san_profile() {
                intel.hot_words = profile
                    .hottest_contended(SCOUT_KEEP)
                    .into_iter()
                    .map(|(b, i, _)| (b, i))
                    .collect();
                intel.hot_read_buffers =
                    profile.hottest_buffers(SCOUT_KEEP).into_iter().map(|(b, _)| b).collect();
                intel.overlap_words =
                    profile.overlap_sites(SCOUT_KEEP).into_iter().map(|(b, i, _)| (b, i)).collect();
                intel.kernel_windows = profile.kernel_windows();
                intel.waves = profile.waves();
            }
        }
    }
    let mut reached: Vec<(u32, VertexId)> = oracle_dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INF && d > 0)
        .map(|(v, &d)| (d, v as VertexId))
        .collect();
    reached.sort_by(|a, b| b.cmp(a)); // deepest first, deterministic
    intel.deep_vertices = reached.into_iter().take(SCOUT_KEEP).map(|(_, v)| v).collect();
    intel
}

/// The deterministic opening book of the search: `(model, rate,
/// target)` pairings ranked by expected damage, derived straight from
/// the scouted intel. A bit flip in read-hot topology hits every
/// downstream consumer; a total atomic-min drop on a contended
/// distance word starves the longest relaxation chains; a stale read
/// at an atomic/plain overlap site resurrects dead snapshots; a failed
/// child launch inside a kernel's own wave window severs dynamic
/// parallelism where it actually fires.
fn playbook(entry: &ChaosEntry, intel: &ScoutIntel) -> Vec<(FaultModel, f64, FaultTarget)> {
    let mut book: Vec<(FaultModel, f64, FaultTarget)> = Vec::new();
    let site_pin = |site| FaultTarget { site: Some(site), index: None, wave: None, stream: None };
    for &site in &intel.hot_read_buffers {
        book.push((FaultModel::BitFlip, 1.0, site_pin(site)));
    }
    let mut seen_hot: Vec<&'static str> = Vec::new();
    for &(site, _) in &intel.hot_words {
        if !seen_hot.contains(&site) {
            seen_hot.push(site);
            book.push((FaultModel::DroppedAtomicMin, 1.0, site_pin(site)));
            book.push((FaultModel::DuplicatedAtomicMin, 1.0, site_pin(site)));
        }
    }
    let mut seen_overlap: Vec<&'static str> = Vec::new();
    for &(site, _) in &intel.overlap_words {
        if !seen_overlap.contains(&site) {
            seen_overlap.push(site);
            book.push((FaultModel::StaleRead, 1.0, site_pin(site)));
        }
    }
    for &(kernel, lo, hi) in &intel.kernel_windows {
        // Only dynamically launched kernels have a launch to fail.
        if kernel.contains("child") {
            book.push((
                FaultModel::FailedChildLaunch,
                1.0,
                FaultTarget { site: Some(kernel), index: None, wave: Some((lo, hi)), stream: None },
            ));
        }
    }
    for &v in &intel.deep_vertices {
        let window = (v.saturating_sub(1), v.saturating_add(1));
        book.push((
            FaultModel::DroppedAtomicMin,
            1.0,
            FaultTarget { site: Some("dist"), index: Some(window), wave: None, stream: None },
        ));
    }
    if entry.carries_messages() {
        for model in
            [FaultModel::LostMessage, FaultModel::DuplicatedMessage, FaultModel::ReorderedMessage]
        {
            book.push((model, 1.0, site_pin("exchange")));
        }
    }
    book
}

/// Build the pool of candidate [`FaultTarget`]s the search draws from.
fn target_pool(entry: &ChaosEntry, intel: &ScoutIntel) -> Vec<FaultTarget> {
    let mut pool: Vec<FaultTarget> = Vec::new();
    let mut push = |t: FaultTarget| {
        if !pool.contains(&t) {
            pool.push(t);
        }
    };
    for &(site, idx) in intel.hot_words.iter().chain(&intel.overlap_words) {
        push(FaultTarget { site: Some(site), index: Some((idx, idx)), wave: None, stream: None });
        push(FaultTarget { site: Some(site), index: None, wave: None, stream: None });
    }
    for &site in &intel.hot_read_buffers {
        push(FaultTarget { site: Some(site), index: None, wave: None, stream: None });
    }
    for &(kernel, lo, hi) in &intel.kernel_windows {
        // Wave pins bite for every model; the site doubles as the
        // child-kernel name pin for failed-launch faults.
        push(FaultTarget { site: None, index: None, wave: Some((lo, hi)), stream: None });
        push(FaultTarget { site: Some(kernel), index: None, wave: Some((lo, hi)), stream: None });
    }
    for &v in &intel.deep_vertices {
        // The deep frontier lives in the distance/pending arrays.
        let window = (v.saturating_sub(1), v.saturating_add(1));
        push(FaultTarget { site: Some("dist"), index: Some(window), wave: None, stream: None });
        push(FaultTarget { site: Some("pending"), index: Some(window), wave: None, stream: None });
    }
    if entry.carries_messages() {
        push(FaultTarget { site: Some("exchange"), index: None, wave: None, stream: None });
        push(FaultTarget { site: Some("exchange"), index: Some((0, 3)), wave: None, stream: None });
    }
    if pool.is_empty() {
        pool.push(FaultTarget::ANY);
    }
    pool
}

fn models_for(entry: &ChaosEntry) -> Vec<FaultModel> {
    FaultModel::ALL
        .into_iter()
        .filter(|m| !m.is_message_model() || entry.carries_messages())
        .collect()
}

/// The rate ladder the search climbs; mutation bumps toward 1.0.
const RATES: [f64; 3] = [0.1, 0.5, 1.0];

// ---------------------------------------------------------------------------
// The search.
// ---------------------------------------------------------------------------

/// One scored injection candidate (targeted or uniform).
#[derive(Clone, Debug)]
pub struct Candidate {
    pub spec: FaultSpec,
    /// Ladder depth, 0..=4 — see [`ladder_depth`].
    pub score: u32,
    /// `"correct"`, `"error"` or `"silent-wrong"`.
    pub verdict: &'static str,
    pub outcome: Option<RecoveryOutcome>,
    pub injections: u64,
}

fn verdict_name(v: &CellVerdict) -> &'static str {
    match v {
        CellVerdict::Correct => "correct",
        CellVerdict::Error(_) => "error",
        CellVerdict::SilentWrong(_) => "silent-wrong",
    }
}

/// The placement search for one `(entry, graph)` cell pair.
#[derive(Clone, Debug)]
pub struct AttackRun {
    pub entry_id: &'static str,
    pub graph: &'static str,
    pub source: VertexId,
    /// Scouting summary: waves profiled and targets pooled.
    pub waves: u64,
    pub pool_size: usize,
    /// Replayable worst-case corpus, deepest-first.
    pub corpus: Vec<Candidate>,
    /// Best ladder depth a *targeted* candidate reached.
    pub best_targeted: u32,
    /// Best ladder depth an equal-budget *uniform* candidate reached.
    pub best_uniform: u32,
    /// Silent-wrong candidates found (targeted + uniform) — any makes
    /// the sweep red.
    pub silent_wrong: usize,
}

/// What to search and how hard.
#[derive(Clone, Debug)]
pub struct AdversaryOptions {
    /// Reduced sweep: quick entries × quick graph families.
    pub quick: bool,
    /// Only entries whose id contains this substring.
    pub entry_filter: Option<String>,
    /// Only families whose name contains this substring.
    pub graph_filter: Option<String>,
    /// Injection budget per `(entry, graph)` per arm: the total number
    /// of faults either arm (targeted search / uniform baseline) may
    /// inject, enforced device-side via [`FaultSpec::with_cap`] — a
    /// candidate plan is capped at the arm's remaining budget, so
    /// neither arm can overspend. Placement is exactly what the budget
    /// makes scarce: at equal injections, where they land is all that
    /// differs.
    pub budget: u64,
    /// Hard cap on candidate evaluations per arm (bounds wall-clock
    /// when plans inject little).
    pub max_evals: u32,
    /// Search seed: the whole sweep is a pure function of
    /// `(seed, budget, max_evals)`.
    pub seed: u64,
    /// Corpus entries kept per `(entry, graph)`.
    pub corpus_keep: usize,
    /// Attack every RDBS-backed entry on this frontier layout
    /// (`--frontier`); `None` keeps each entry's own.
    pub frontier: Option<FrontierKind>,
}

impl Default for AdversaryOptions {
    fn default() -> Self {
        Self {
            quick: true,
            entry_filter: None,
            graph_filter: None,
            budget: 64,
            max_evals: 12,
            seed: 1,
            corpus_keep: 4,
            frontier: None,
        }
    }
}

/// Outcome of an adversarial sweep.
#[derive(Clone, Debug, Default)]
pub struct AdversaryReport {
    pub runs: Vec<AttackRun>,
}

impl AdversaryReport {
    /// Green iff no candidate — targeted or uniform — produced a
    /// silently wrong answer.
    pub fn is_green(&self) -> bool {
        self.runs.iter().all(|r| r.silent_wrong == 0)
    }

    /// Whether any run's targeted search strictly beat its equal-budget
    /// uniform baseline.
    pub fn targeted_beats_uniform(&self) -> bool {
        self.runs.iter().any(|r| r.best_targeted > r.best_uniform)
    }
}

fn substring(filter: &Option<String>, s: &str) -> bool {
    filter.as_ref().is_none_or(|f| s.contains(f.as_str()))
}

fn sample_target(rng: &mut SearchRng, pool: &[FaultTarget]) -> FaultTarget {
    pool[rng.below(pool.len())]
}

fn sample_fresh(rng: &mut SearchRng, models: &[FaultModel], pool: &[FaultTarget]) -> FaultSpec {
    let model = models[rng.below(models.len())];
    let rate = RATES[rng.below(RATES.len())];
    let seed = rng.next_u64() % 1024;
    FaultSpec::new(model, rate, seed).with_target(sample_target(rng, pool))
}

/// Mutate the best candidate so far toward more damage: bump the rate
/// up the ladder, redraw the plan seed, swap the target, or widen the
/// target's windows.
fn mutate(rng: &mut SearchRng, best: FaultSpec, pool: &[FaultTarget]) -> FaultSpec {
    let mut spec = best;
    match rng.below(4) {
        0 => {
            let next =
                RATES.iter().copied().find(|&r| r > spec.rate).unwrap_or(RATES[RATES.len() - 1]);
            spec.rate = next;
        }
        1 => spec.seed = rng.next_u64() % 1024,
        2 => spec.target = Some(sample_target(rng, pool)),
        _ => {
            let mut t = spec.target.unwrap_or(FaultTarget::ANY);
            if let Some((lo, hi)) = t.index {
                t.index = Some((lo.saturating_sub(2), hi.saturating_add(2)));
            }
            if let Some((lo, hi)) = t.wave {
                t.wave = Some((lo.saturating_sub(1), hi.saturating_add(1)));
            }
            spec.target = Some(t);
        }
    }
    spec
}

/// Run the budgeted placement search for one `(entry, graph)` pair.
/// Deterministic in `(opts.seed, opts.budget)`: same corpus, same
/// scores, same worst plan.
pub fn attack(entry: &ChaosEntry, family: &GraphCase, opts: &AdversaryOptions) -> AttackRun {
    let graph = family.build();
    let source = family.sources(graph.num_vertices())[0];
    let oracle = dijkstra(&graph, source);
    let intel = scout(entry, &graph, source, &oracle.dist);
    let pool = target_pool(entry, &intel);
    let book = playbook(entry, &intel);
    let models = models_for(entry);

    // Independent deterministic streams for the targeted search and the
    // uniform baseline, both derived from (seed, entry, graph).
    let mix = |tag: u64| {
        let mut h = opts.seed ^ tag;
        for b in entry.id.bytes().chain(family.name.bytes()) {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
        }
        h
    };
    let mut rng = SearchRng::new(mix(0x5EED));
    let mut best: Option<Candidate> = None;
    let mut corpus: Vec<Candidate> = Vec::new();
    let mut silent_wrong = 0usize;
    let mut spent = 0u64;

    // Per-candidate allowance: an even split of the injection budget
    // across the evaluation slots, so one opportunity-rich placement
    // (e.g. a bit flip pinned to the most-loaded buffer) cannot starve
    // the rest of the opening book.
    let allowance = (opts.budget / u64::from(opts.max_evals.max(1))).max(1);

    let mut i = 0u32;
    while spent < opts.budget && i < opts.max_evals {
        // Opening book first (deterministic damage-ranked pairings from
        // the scouted intel), then mutate the best plan found so far,
        // falling back to fresh pool samples until something scores.
        // Every candidate is capped at its allowance and at the arm's
        // remaining injection budget, so the search can never
        // overspend.
        let spec = if let Some(&(model, rate, target)) = book.get(i as usize) {
            FaultSpec::new(model, rate, rng.next_u64() % 1024).with_target(target)
        } else {
            match &best {
                Some(b) if b.score > 0 => mutate(&mut rng, b.spec, &pool),
                _ => sample_fresh(&mut rng, &models, &pool),
            }
        }
        .with_cap(allowance.min(opts.budget - spent));
        let (report, verdict) = chaos::run_cell(entry, &graph, &oracle.dist, source, spec);
        let score = ladder_depth(report.as_ref(), &verdict);
        let cand = Candidate {
            spec,
            score,
            verdict: verdict_name(&verdict),
            outcome: report.as_ref().map(|r| r.outcome),
            injections: report.as_ref().map_or(0, |r| r.injections),
        };
        spent += cand.injections;
        if matches!(verdict, CellVerdict::SilentWrong(_)) {
            silent_wrong += 1;
        }
        if best.as_ref().is_none_or(|b| cand.score > b.score) {
            best = Some(cand.clone());
        }
        corpus.push(cand);
        i += 1;
    }
    let best_targeted = best.as_ref().map_or(0, |b| b.score);

    // The uniform baseline: untargeted plans at the matrix default
    // rates, spending the same injection budget under the same cap
    // discipline.
    let mut urng = SearchRng::new(mix(0x0F_F5E7));
    let mut best_uniform = 0u32;
    let mut uspent = 0u64;
    let mut uevals = 0u32;
    while uspent < opts.budget && uevals < opts.max_evals {
        let model = models[urng.below(models.len())];
        let spec = FaultSpec::new(model, default_rate(model), urng.next_u64() % 1024)
            .with_cap(allowance.min(opts.budget - uspent));
        let (report, verdict) = chaos::run_cell(entry, &graph, &oracle.dist, source, spec);
        uspent += report.as_ref().map_or(0, |r| r.injections);
        if matches!(verdict, CellVerdict::SilentWrong(_)) {
            silent_wrong += 1;
        }
        best_uniform = best_uniform.max(ladder_depth(report.as_ref(), &verdict));
        uevals += 1;
    }

    // Deepest-first corpus, discovery order breaking ties (stable sort
    // keeps determinism).
    corpus.sort_by_key(|c| std::cmp::Reverse(c.score));
    corpus.truncate(opts.corpus_keep);

    AttackRun {
        entry_id: entry.id,
        graph: family.name,
        source,
        waves: intel.waves,
        pool_size: pool.len(),
        corpus,
        best_targeted,
        best_uniform,
        silent_wrong,
    }
}

/// Sweep the adversarial search over entries × families. `progress` is
/// called once per completed `(entry, graph)` attack.
pub fn run_adversary(
    opts: &AdversaryOptions,
    mut progress: impl FnMut(&AttackRun),
) -> AdversaryReport {
    let entries: Vec<ChaosEntry> =
        if opts.quick { chaos::quick_chaos_entries() } else { chaos::chaos_entries() }
            .into_iter()
            .filter(|e| substring(&opts.entry_filter, e.id))
            .map(|e| match opts.frontier {
                Some(kind) => e.with_frontier(kind),
                None => e,
            })
            .collect();
    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() }
            .into_iter()
            .filter(|g| substring(&opts.graph_filter, g.name))
            .collect();
    let mut report = AdversaryReport::default();
    for family in &families {
        for entry in &entries {
            let run = attack(entry, family, opts);
            progress(&run);
            report.runs.push(run);
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Corpus serialization + replay.
// ---------------------------------------------------------------------------

fn fmt_opt_u32_range(r: Option<(u32, u32)>) -> String {
    r.map_or_else(|| "-".into(), |(lo, hi)| format!("{lo}..{hi}"))
}

fn fmt_opt_u64_range(r: Option<(u64, u64)>) -> String {
    r.map_or_else(|| "-".into(), |(lo, hi)| format!("{lo}..{hi}"))
}

/// Serialize a sweep's corpus: one `key=value` line per kept
/// candidate, `#`-prefixed header. Every line replays through
/// [`parse_corpus_line`] + [`replay_case`] to the same score and
/// verdict.
pub fn corpus_lines(report: &AdversaryReport) -> String {
    let mut out =
        String::from("# rdbs adversarial corpus v1: one fault placement per line, deepest first\n");
    for run in &report.runs {
        for c in &run.corpus {
            let t = c.spec.target.unwrap_or(FaultTarget::ANY);
            out.push_str(&format!(
                "entry={} graph={} source={} model={} rate={} seed={} cap={} site={} index={} \
                 wave={} stream={} score={} verdict={}\n",
                run.entry_id,
                run.graph,
                run.source,
                c.spec.model.name(),
                c.spec.rate,
                c.spec.seed,
                c.spec.cap.map_or_else(|| "-".into(), |n| n.to_string()),
                t.site.unwrap_or("-"),
                fmt_opt_u32_range(t.index),
                fmt_opt_u64_range(t.wave),
                t.stream.map_or_else(|| "-".into(), |s| s.to_string()),
                c.score,
                c.verdict,
            ));
        }
    }
    out
}

/// One parsed corpus line, ready to replay.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusCase {
    pub entry_id: String,
    pub graph: String,
    pub source: VertexId,
    pub spec: FaultSpec,
    /// Score and verdict recorded at search time.
    pub score: u32,
    pub verdict: String,
}

/// Intern a parsed site name. Buffer labels in the simulator are all
/// `&'static str` compile-time constants, so a round-tripped name
/// almost always matches one of the known labels; an unknown name is
/// leaked once (corpus files are small and bounded).
fn intern_site(name: &str) -> &'static str {
    const KNOWN: [&str; 14] = [
        "row_offsets",
        "adjacency",
        "weights",
        "heavy_offsets",
        "dist",
        "pending",
        "queue_tail",
        "queue_overflow",
        "bl_mask",
        "mg_dirty",
        "mg_pending",
        "exchange",
        "relax",
        "drain",
    ];
    if let Some(k) = KNOWN.iter().find(|&&k| k == name) {
        return k;
    }
    Box::leak(name.to_owned().into_boxed_str())
}

fn parse_range<T: std::str::FromStr + Copy>(s: &str) -> Option<Option<(T, T)>> {
    if s == "-" {
        return Some(None);
    }
    let (lo, hi) = s.split_once("..")?;
    Some(Some((lo.parse().ok()?, hi.parse().ok()?)))
}

/// Parse one corpus line (`None` for headers, blanks and junk).
pub fn parse_corpus_line(line: &str) -> Option<CorpusCase> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut kv = std::collections::BTreeMap::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        kv.insert(k, v);
    }
    let model_name = *kv.get("model")?;
    let model = FaultModel::ALL.into_iter().find(|m| m.name() == model_name)?;
    let site = match *kv.get("site")? {
        "-" => None,
        s => Some(intern_site(s)),
    };
    let index = parse_range::<u32>(kv.get("index")?)?;
    let wave = parse_range::<u64>(kv.get("wave")?)?;
    let stream = match *kv.get("stream")? {
        "-" => None,
        s => Some(s.parse().ok()?),
    };
    let mut spec =
        FaultSpec::new(model, kv.get("rate")?.parse().ok()?, kv.get("seed")?.parse().ok()?)
            .with_target(FaultTarget { site, index, wave, stream });
    spec.cap = match *kv.get("cap")? {
        "-" => None,
        s => Some(s.parse().ok()?),
    };
    Some(CorpusCase {
        entry_id: (*kv.get("entry")?).to_string(),
        graph: (*kv.get("graph")?).to_string(),
        source: kv.get("source")?.parse().ok()?,
        spec,
        score: kv.get("score")?.parse().ok()?,
        verdict: (*kv.get("verdict")?).to_string(),
    })
}

/// Replay a corpus case through the ordinary chaos cell runner.
/// Returns `(score, verdict)` — a healthy corpus replays every line to
/// its recorded values. `None` when the entry or graph no longer
/// exists.
pub fn replay_case(case: &CorpusCase) -> Option<(u32, &'static str)> {
    let entry = chaos::chaos_entries().into_iter().find(|e| e.id == case.entry_id)?;
    let family = graphs::families().into_iter().find(|f| f.name == case.graph)?;
    let graph = family.build();
    let oracle = dijkstra(&graph, case.source);
    let (report, verdict) = chaos::run_cell(&entry, &graph, &oracle.dist, case.source, case.spec);
    Some((ladder_depth(report.as_ref(), &verdict), verdict_name(&verdict)))
}

// ---------------------------------------------------------------------------
// Schedule fuzzing.
// ---------------------------------------------------------------------------

/// What to fuzz and how many permutations.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Reduced sweep: quick entries × quick families.
    pub quick: bool,
    /// Only entries whose id contains this substring.
    pub entry_filter: Option<String>,
    /// Lane-permutation seeds per `(entry, graph)`.
    pub perms: u32,
    /// Base seed the permutation seeds derive from.
    pub seed: u64,
    /// Fuzz every RDBS-backed entry on this frontier layout
    /// (`--frontier`); `None` keeps each entry's own.
    pub frontier: Option<FrontierKind>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self { quick: true, entry_filter: None, perms: 32, seed: 1, frontier: None }
    }
}

/// One permuted execution of one entry on one graph.
#[derive(Clone, Debug)]
pub struct FuzzCell {
    pub entry_id: &'static str,
    pub graph: &'static str,
    pub source: VertexId,
    pub perm_seed: u64,
    /// Oracle-correct under the permuted schedule.
    pub correct: bool,
    /// Sanitizer violations under the permuted schedule (must be 0).
    pub violations: u64,
    pub panic: Option<String>,
}

impl FuzzCell {
    pub fn is_clean(&self) -> bool {
        self.correct && self.violations == 0 && self.panic.is_none()
    }
}

/// Outcome of a schedule-fuzzing sweep.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub cells: Vec<FuzzCell>,
    /// The planted-race specimen stayed detected under every
    /// permutation seed — proof the sanitizer does not go blind when
    /// the schedule shifts.
    pub specimen_alive: bool,
}

impl FuzzReport {
    /// Green iff every permuted run was oracle-correct with zero
    /// violations and the permuted specimen stayed detected.
    pub fn is_green(&self) -> bool {
        self.specimen_alive && self.cells.iter().all(FuzzCell::is_clean)
    }

    pub fn dirty_cells(&self) -> impl Iterator<Item = &FuzzCell> {
        self.cells.iter().filter(|c| !c.is_clean())
    }
}

/// The planted-race specimen re-armed under one permutation seed:
/// every lane of one wave plain-stores the same word while the seeded
/// lane permuter shuffles execution order. Returns whether the
/// write-write race was still detected.
pub fn permuted_specimen_detected(perm_seed: u64) -> bool {
    let mut device = Device::new(DeviceConfig::test_tiny());
    device.arm_sanitizer(SanConfig::default());
    device.arm_schedule_fuzz(perm_seed);
    let victim = device.alloc("specimen-victim", 4);
    device.fill(victim, 0);
    let mut session = device.wave_session("planted-race");
    session.wave(8, 1, |lane| {
        lane.st(victim, 0, lane.tid() as u32);
    });
    device.san_violations().iter().any(|v| v.check == SanCheck::WriteWriteRace)
}

/// Re-execute each entry's kernel variant under `perms` seeded lane
/// permutations with the sanitizer armed. `progress` fires per cell.
pub fn fuzz_schedules(opts: &FuzzOptions, mut progress: impl FnMut(&FuzzCell)) -> FuzzReport {
    let entries: Vec<ChaosEntry> =
        if opts.quick { chaos::quick_chaos_entries() } else { chaos::chaos_entries() }
            .into_iter()
            .filter(|e| substring(&opts.entry_filter, e.id) && e.scout_variant().is_some())
            .map(|e| match opts.frontier {
                Some(kind) => e.with_frontier(kind),
                None => e,
            })
            .collect();
    let families: Vec<GraphCase> =
        if opts.quick { graphs::quick_families() } else { graphs::families() };

    let mut report = FuzzReport { cells: Vec::new(), specimen_alive: true };
    let mut rng = SearchRng::new(opts.seed);
    let perm_seeds: Vec<u64> = (0..opts.perms).map(|_| rng.next_u64()).collect();

    report.specimen_alive = perm_seeds.iter().all(|&s| permuted_specimen_detected(s));

    for family in &families {
        let graph = family.build();
        let source = family.sources(graph.num_vertices())[0];
        let oracle = dijkstra(&graph, source);
        for entry in &entries {
            let Some(variant) = entry.scout_variant() else { continue };
            for &perm_seed in &perm_seeds {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut device = Device::new(DeviceConfig::test_tiny());
                    device.arm_sanitizer(SanConfig::default());
                    device.arm_schedule_fuzz(perm_seed);
                    let run = run_gpu_on(&mut device, &graph, source, variant);
                    (run.result.dist, device.san_total())
                }));
                let cell = match outcome {
                    Ok((dist, violations)) => FuzzCell {
                        entry_id: entry.id,
                        graph: family.name,
                        source,
                        perm_seed,
                        correct: check_against(&oracle.dist, &dist).is_ok(),
                        violations,
                        panic: None,
                    },
                    Err(payload) => FuzzCell {
                        entry_id: entry.id,
                        graph: family.name,
                        source,
                        perm_seed,
                        correct: false,
                        violations: 0,
                        panic: Some(crate::runner::panic_message(payload.as_ref())),
                    },
                };
                progress(&cell);
                report.cells.push(cell);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> AdversaryOptions {
        AdversaryOptions {
            quick: true,
            entry_filter: Some("gpu/full".into()),
            graph_filter: Some("erdos".into()),
            budget: 48,
            max_evals: 6,
            seed: 1,
            corpus_keep: 3,
            frontier: None,
        }
    }

    #[test]
    fn scout_harvests_profile_and_deep_frontier() {
        let entry = chaos::chaos_entries().into_iter().find(|e| e.id == "gpu/full").unwrap();
        let family =
            graphs::quick_families().into_iter().find(|f| f.name == "erdos-renyi").unwrap();
        let graph = family.build();
        let source = family.sources(graph.num_vertices())[0];
        let oracle = dijkstra(&graph, source);
        let intel = scout(&entry, &graph, source, &oracle.dist);
        assert!(intel.waves > 0, "sanitized scout saw no waves");
        assert!(!intel.kernel_windows.is_empty(), "no kernel windows profiled");
        assert!(!intel.deep_vertices.is_empty(), "no deep frontier derived");
        // The distance array is the contended heart of the algorithm —
        // the profile must surface it as a target.
        let pool = target_pool(&entry, &intel);
        assert!(
            pool.iter().any(|t| t.site == Some("dist")),
            "target pool never pins the distance array: {pool:?}"
        );
    }

    #[test]
    fn search_is_deterministic_in_seed_and_budget() {
        let opts = small_opts();
        let a = run_adversary(&opts, |_| {});
        let b = run_adversary(&opts, |_| {});
        assert_eq!(corpus_lines(&a), corpus_lines(&b));
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.best_targeted, y.best_targeted);
            assert_eq!(x.best_uniform, y.best_uniform);
        }
    }

    #[test]
    fn corpus_round_trips_and_replays_to_recorded_verdicts() {
        let report = run_adversary(&small_opts(), |_| {});
        let text = corpus_lines(&report);
        let cases: Vec<CorpusCase> = text.lines().filter_map(parse_corpus_line).collect();
        let kept: usize = report.runs.iter().map(|r| r.corpus.len()).sum();
        assert_eq!(cases.len(), kept);
        for case in &cases {
            let (score, verdict) = replay_case(case).expect("replay target vanished");
            assert_eq!(score, case.score, "replayed score diverged for {case:?}");
            assert_eq!(verdict, case.verdict, "replayed verdict diverged for {case:?}");
        }
    }

    #[test]
    fn adversarial_search_never_finds_silent_wrong() {
        // The acceptance gate: a targeted search hunting for the
        // jackpot must still come up empty — the robustness layer
        // holds under adversarial placement, not just uniform spray.
        let report = run_adversary(&AdversaryOptions { budget: 64, ..small_opts() }, |_| {});
        assert!(report.is_green(), "adversarial search found a silent wrong answer");
    }

    #[test]
    fn targeted_search_beats_uniform_at_equal_budget() {
        // The reason the adversary exists: at the same injection
        // budget, scouted placement must drive the recovery ladder
        // strictly deeper than uniform spray on at least one entry.
        // On the refaulting entry the scouted book reaches the
        // degraded rung (3) while uniform spray at this budget stalls
        // at the repair sweep (1).
        let opts = AdversaryOptions {
            quick: true,
            entry_filter: Some("gpu/refault".into()),
            graph_filter: Some("erdos".into()),
            budget: 32,
            max_evals: 12,
            seed: 3,
            corpus_keep: 4,
            frontier: None,
        };
        let report = run_adversary(&opts, |_| {});
        assert!(report.is_green());
        let run = &report.runs[0];
        assert!(
            run.best_targeted > run.best_uniform,
            "targeted {} ({}) did not beat uniform {} ({})",
            run.best_targeted,
            depth_label(run.best_targeted),
            run.best_uniform,
            depth_label(run.best_uniform),
        );
    }

    #[test]
    fn schedule_fuzz_quick_sweep_is_clean_and_specimen_stays_alive() {
        let opts = FuzzOptions {
            quick: true,
            entry_filter: Some("gpu/full".into()),
            perms: 8,
            seed: 1,
            frontier: None,
        };
        let report = fuzz_schedules(&opts, |_| {});
        assert!(!report.cells.is_empty());
        assert!(report.specimen_alive, "sanitizer went blind under permutation");
        let dirty: Vec<String> = report
            .dirty_cells()
            .map(|c| {
                format!(
                    "{} on {} perm {}: correct={} violations={} panic={:?}",
                    c.entry_id, c.graph, c.perm_seed, c.correct, c.violations, c.panic
                )
            })
            .collect();
        assert!(report.is_green(), "permuted schedules broke:\n{}", dirty.join("\n"));
    }

    #[test]
    fn ladder_depth_orders_outcomes() {
        use rdbs_core::recover::RecoveryBudget;
        let mk = |outcome, steps: Vec<RecoveryStep>| RecoveryReport {
            fault: None,
            injections: 0,
            fault_events: Vec::new(),
            monotonicity_hits: 0,
            flagged: 0,
            panic: None,
            steps,
            budget: RecoveryBudget::default(),
            outcome,
        };
        let clean = mk(RecoveryOutcome::Clean, vec![]);
        assert_eq!(ladder_depth(Some(&clean), &CellVerdict::Correct), 0);
        let swept = mk(
            RecoveryOutcome::Recovered,
            vec![RecoveryStep::RepairSweep { rounds: 1, relaxations: 5, clean: true }],
        );
        assert_eq!(ladder_depth(Some(&swept), &CellVerdict::Correct), 1);
        let rerun = mk(
            RecoveryOutcome::Recovered,
            vec![
                RecoveryStep::RepairSweep { rounds: 32, relaxations: 5, clean: false },
                RecoveryStep::SyncRerun { clean: true },
            ],
        );
        assert_eq!(ladder_depth(Some(&rerun), &CellVerdict::Correct), 2);
        let degraded = mk(RecoveryOutcome::Degraded, vec![RecoveryStep::SequentialFallback]);
        assert_eq!(ladder_depth(Some(&degraded), &CellVerdict::Correct), 3);
        assert_eq!(ladder_depth(None, &CellVerdict::Error("boom".into())), 3);
    }
}
