//! # Conformance harness for the RDBS workspace
//!
//! Keeps every SSSP implementation honest against the Dijkstra oracle,
//! and turns any disagreement into a minimal, replayable artifact:
//!
//! * [`registry`] — every public SSSP entry point (sequential
//!   references, CPU-parallel, the simulated-GPU RDBS with all
//!   ablation toggles, the multi-GPU port at k ∈ {1, 2, 4}, every
//!   baseline comparator, and the framework integration) behind one
//!   uniform `(graph, source, Δ₀) → SsspResult` signature.
//! * [`runner`] — the differential matrix: implementations × graph
//!   families × seeded sources, each compared exactly against the
//!   oracle; panics are caught and reported as failures.
//! * [`shrink`] — delta-debugging minimization of a failing instance
//!   (chunked edge removal, vertex compaction, weight reduction) down
//!   to a witness of a few vertices, plus the exact CLI replay
//!   command.
//! * [`localize`] — replays the failing implementation with the
//!   relaxation trace sink in `rdbs_core::stats::trace` armed and
//!   reports the first bucket/phase/edge where settled distances
//!   depart from the oracle.
//! * [`chaos`] — the fault-injection matrix: every device fault model
//!   × detect-and-recover entry point × graph family, each cell graded
//!   correct / explicitly-errored / silently-wrong; the sweep is green
//!   only when no cell lies.
//! * [`sanitize`] — the memory-model matrix: every GPU entry point run
//!   with the wave-level sanitizer armed; green only when every cell
//!   is correct *and* produced zero violations, with a planted-race
//!   specimen proving the detector itself is alive.
//! * [`adversary`] — the adversarial layer on top of both: a budgeted
//!   placement search that scouts each entry's sanitizer access
//!   profile and the oracle's deep frontier, then pins fault plans to
//!   the hottest targets and scores them by recovery-ladder depth
//!   (keeping a replayable worst-case corpus); plus a seeded
//!   lane-permutation schedule fuzzer that re-executes race windows
//!   under shuffled interleavings with the sanitizer watching.
//!
//! The whole pipeline is reachable from the command line via
//! `rdbs-cli verify` (differential matrix), `rdbs-cli chaos`
//! (fault-injection matrix) and `rdbs-cli sanitize` (memory-model
//! matrix), all exiting non-zero on violation.

pub mod adversary;
pub mod analyze;
pub mod chaos;
pub mod graphs;
pub mod localize;
pub mod registry;
pub mod runner;
pub mod sanitize;
pub mod shrink;

pub use analyze::{
    baseline_json, check_baseline, planted_race_static, report_json, run_analyze,
    schedule_hidden_specimen, specimens_caught_statically, AnalyzeOptions, AnalyzeReport,
    AnalyzedCell, BaselineCheck,
};

pub use adversary::{
    corpus_lines, depth_label, fuzz_schedules, ladder_depth, parse_corpus_line, replay_case,
    run_adversary, AdversaryOptions, AdversaryReport, AttackRun, Candidate, CorpusCase, FuzzCell,
    FuzzOptions, FuzzReport, ScoutIntel,
};
pub use chaos::{
    chaos_entries, run_chaos, CellVerdict, ChaosCell, ChaosEntry, ChaosOptions, ChaosReport,
};
pub use graphs::{families, GraphCase};
pub use localize::{localize, Divergence};
pub use registry::{all, by_id, with_faults, Family, Implementation, FAULT_OFF_BY_ONE};
pub use runner::{run_matrix, CaseFailure, FailureKind, MatrixOptions, MatrixReport};
pub use sanitize::{
    planted_race_specimen, run_sanitize, san_entries, specimen_detected, SanCell, SanEntry,
    SanMatrixReport, SanOptions,
};
pub use shrink::{shrink, shrink_built, ShrunkWitness};
