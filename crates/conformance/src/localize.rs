//! First-divergence localization.
//!
//! Replays a failing implementation with the relaxation trace sink in
//! `rdbs_core::stats::trace` armed and pinpoints where its settled
//! distances first depart from the Dijkstra oracle: either the first
//! *impossible* relaxation (a write below the true shortest distance —
//! an over-eager fault) or, when the implementation under-relaxes, the
//! earliest-settled mismatched vertex together with the oracle edge it
//! failed to apply.

use crate::registry::Implementation;
use crate::runner::panic_message;
use rdbs_core::seq::dijkstra;
use rdbs_core::stats::trace::{self, RelaxEvent};
use rdbs_core::{saturating_relax, Csr, Dist, VertexId, Weight, INF};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Event-buffer capacity for a localization replay. Matrix instances
/// perform a few thousand relaxations; anything past the cap is
/// counted, not stored.
const TRACE_CAP: usize = 1 << 20;

/// Where a failing implementation first departs from the oracle.
#[derive(Debug)]
pub struct Divergence {
    pub impl_id: &'static str,
    /// The earliest-settled vertex with a wrong distance.
    pub vertex: VertexId,
    pub expected: Dist,
    pub actual: Dist,
    /// First relaxation that wrote a distance *below* the oracle's
    /// shortest (impossible in a correct run).
    pub first_bad_event: Option<RelaxEvent>,
    /// Last traced relaxation that wrote the mismatched vertex.
    pub last_write: Option<RelaxEvent>,
    /// An oracle-tight in-edge `(parent, weight)` of the mismatched
    /// vertex the implementation failed to relax (under-relaxation).
    pub missing_edge: Option<(VertexId, Weight)>,
    /// Events captured (0 for uninstrumented implementations).
    pub events: usize,
    /// Events past the buffer cap.
    pub dropped: u64,
    /// Whether the implementation has trace instrumentation at all.
    pub traced: bool,
    /// Panic message, when the replay died instead of mismatching.
    pub panic: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = &self.panic {
            return write!(f, "{}: replay panicked: {p}", self.impl_id);
        }
        writeln!(
            f,
            "{}: first divergence at vertex {}: expected {}, got {}",
            self.impl_id,
            self.vertex,
            fmt_dist(self.expected),
            fmt_dist(self.actual)
        )?;
        if let Some(e) = &self.first_bad_event {
            writeln!(
                f,
                "  first impossible relaxation: bucket {} {} layer {}: edge {} -> {} wrote {} (oracle {})",
                e.bucket, e.phase, e.layer, e.src, e.dst, e.new, fmt_dist(self.expected)
            )?;
        }
        if let Some(e) = &self.last_write {
            writeln!(
                f,
                "  last write to vertex {}: bucket {} {} layer {}: edge {} -> {} lowered {} to {}",
                self.vertex,
                e.bucket,
                e.phase,
                e.layer,
                e.src,
                e.dst,
                fmt_dist(e.old),
                e.new
            )?;
        }
        if let Some((p, w)) = self.missing_edge {
            writeln!(
                f,
                "  never relaxed the oracle-tight edge {} -> {} (weight {})",
                p, self.vertex, w
            )?;
        }
        if self.traced {
            write!(f, "  ({} relaxations traced, {} dropped)", self.events, self.dropped)
        } else {
            write!(f, "  (implementation is not trace-instrumented; oracle-side localization only)")
        }
    }
}

fn fmt_dist(d: Dist) -> String {
    if d == INF {
        "INF".into()
    } else {
        d.to_string()
    }
}

/// Replay `imp` on the instance with tracing armed. Returns `None`
/// when the run matches the oracle (nothing to localize).
pub fn localize(
    imp: &Implementation,
    graph: &Csr,
    source: VertexId,
    delta0: Option<Weight>,
) -> Option<Divergence> {
    let oracle = dijkstra(graph, source);
    trace::start(TRACE_CAP);
    let outcome = catch_unwind(AssertUnwindSafe(|| imp.run(graph, source, delta0)));
    let (events, dropped) = trace::take();

    let dist = match outcome {
        Ok(r) => r.dist,
        Err(payload) => {
            return Some(Divergence {
                impl_id: imp.id,
                vertex: source,
                expected: 0,
                actual: 0,
                first_bad_event: None,
                last_write: None,
                missing_edge: None,
                events: events.len(),
                dropped,
                traced: imp.traced(),
                panic: Some(panic_message(&payload)),
            })
        }
    };

    // Earliest divergence in oracle settling order: the mismatched
    // vertex with the smallest true distance (ties by id).
    let (vertex, &expected) = oracle
        .dist
        .iter()
        .enumerate()
        .filter(|&(v, &e)| dist.get(v).is_some_and(|&a| a != e))
        .min_by_key(|&(v, &e)| (e, v))?;
    let vertex = vertex as VertexId;
    let actual = dist.get(vertex as usize).copied().unwrap_or(INF);

    let first_bad_event = events
        .iter()
        .find(|e| (e.dst as usize) < oracle.dist.len() && e.new < oracle.dist[e.dst as usize])
        .cloned();
    let last_write = events.iter().rev().find(|e| e.dst == vertex).cloned();
    // An in-edge that realizes the oracle distance (rows are symmetric
    // in this workspace's undirected CSRs, so out-edges suffice).
    let missing_edge = (actual > expected)
        .then(|| {
            graph
                .edges(vertex)
                .find(|&(p, w)| saturating_relax(oracle.dist[p as usize], w) == expected)
        })
        .flatten();

    Some(Divergence {
        impl_id: imp.id,
        vertex,
        expected,
        actual,
        first_bad_event,
        last_write,
        missing_edge,
        events: events.len(),
        dropped,
        traced: imp.traced(),
        panic: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{by_id, FAULT_OFF_BY_ONE};
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn matrix_graph() -> Csr {
        let mut el = erdos_renyi(300, 1500, 1);
        uniform_weights(&mut el, 11);
        build_undirected(&el)
    }

    #[test]
    fn correct_impl_has_no_divergence() {
        let g = matrix_graph();
        let imp = by_id("seq/delta-stepping").unwrap();
        assert!(localize(&imp, &g, 0, None).is_none());
    }

    #[test]
    fn traced_impl_records_events() {
        // delta-stepping is instrumented: a correct run leaves no
        // divergence, but the sink must capture real events during an
        // armed replay (checked via the trace module directly).
        let g = matrix_graph();
        trace::start(1 << 20);
        let _ = rdbs_core::seq::delta_stepping(&g, 0, 100);
        let (events, _) = trace::take();
        assert!(!events.is_empty());
    }

    #[test]
    fn gpu_rdbs_full_records_events_in_caller_ids() {
        let g = matrix_graph();
        let oracle = dijkstra(&g, 0);
        trace::start(1 << 20);
        let imp = by_id("gpu/full").unwrap();
        let r = imp.run(&g, 0, None);
        let (events, _) = trace::take();
        assert!(!events.is_empty());
        assert_eq!(r.dist, oracle.dist);
        // Events were remapped out of the PRO labelling: every final
        // write matches the oracle in *caller* ids.
        for e in &events {
            assert!(e.new >= oracle.dist[e.dst as usize], "write below oracle: {e:?}");
        }
    }

    #[test]
    fn cpu_kernels_record_events_through_worker_shards() {
        // The multi-threaded CPU kernels run their relaxations on
        // worker threads; the sharded sink must still capture them on
        // the armed host thread, so the localizer no longer falls back
        // to oracle-side analysis for these implementations.
        let g = matrix_graph();
        let oracle = dijkstra(&g, 0);
        for id in ["cpu/parallel-delta", "cpu/async-bucket"] {
            let imp = by_id(id).unwrap();
            assert!(imp.traced(), "{id} must be marked traced");
            trace::start(1 << 20);
            let r = imp.run(&g, 0, None);
            let (events, _) = trace::take();
            assert!(!events.is_empty(), "{id} recorded no events");
            assert_eq!(r.dist, oracle.dist, "{id}");
            // Merged stream is in (bucket, phase, layer) order.
            let key =
                |e: &RelaxEvent| (e.bucket, matches!(e.phase, trace::Phase::Heavy) as u8, e.layer);
            assert!(events.windows(2).all(|w| key(&w[0]) <= key(&w[1])), "{id} out of order");
            // No correct run writes below the oracle distance.
            for e in &events {
                assert!(e.new >= oracle.dist[e.dst as usize], "{id} write below oracle: {e:?}");
            }
        }
    }

    #[test]
    fn under_relaxation_reports_missing_edge() {
        // Star graph: the fault drops vertex 0's last out-edge, so one
        // leaf is unreachable; the localizer should name the edge.
        let el = EdgeList::from_edges(4, vec![(0, 1, 1), (0, 2, 2), (0, 3, 3)]);
        let g = build_undirected(&el);
        let imp = by_id(FAULT_OFF_BY_ONE).unwrap();
        let d = localize(&imp, &g, 0, None).expect("fault must diverge");
        assert_eq!(d.actual, INF);
        let (p, _) = d.missing_edge.expect("missing oracle edge identified");
        assert_eq!(p, 0);
        assert!(d.panic.is_none());
    }
}
