//! Cross-family properties of the pluggable frontier and the dynamic
//! structure's input contract. The MLMQ reorders relaxations far more
//! aggressively than the single workload-queue layout (lane-hashed
//! sub-queues, spill to the deferred level), so the property worth
//! pinning is end-to-end: on every graph family, driven through the
//! concurrent service with real stream overlap, its final distances
//! are exactly Dijkstra's.

use proptest::prelude::*;
use rdbs_conformance::families;
use rdbs_core::dynamic::DynamicSssp;
use rdbs_core::gpu::FrontierKind;
use rdbs_core::seq::dijkstra;
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::VertexId;
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::builder::build_directed;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// MLMQ ≡ Dijkstra on every family, through a 4-stream service
    /// batch (queries genuinely overlap), with the queues either amply
    /// provisioned or under-provisioned so the spill path carries real
    /// traffic. Spill must absorb the pressure on-device: zero host
    /// fallbacks in every configuration.
    #[test]
    fn mlmq_matches_dijkstra_across_families(
        family_idx in 0usize..5,
        source_salt in 0u32..1000,
        under_provision in any::<bool>(),
    ) {
        let fams = families();
        let family = &fams[family_idx % fams.len()];
        let graph = family.build();
        let n = graph.num_vertices() as u32;

        let mut config = ServiceConfig::rdbs(DeviceConfig::test_tiny())
            .with_streams(4)
            .with_frontier(FrontierKind::Mlmq);
        if under_provision {
            // 4 × (n/3) total MLMQ slots still exceed the n distinct
            // pending vertices, so spills defer work instead of
            // dropping it.
            config = config.with_queue_capacity((n / 3).max(8));
        }

        let mut sources: Vec<VertexId> = family.sources(n as usize);
        sources.push(source_salt % n);
        let mut service = SsspService::new(&graph, config);
        let results = service.batch(&sources);

        for (source, result) in sources.iter().zip(&results) {
            let oracle = dijkstra(&graph, *source);
            prop_assert_eq!(
                &oracle.dist, &result.dist,
                "MLMQ diverged from Dijkstra on {} source {}", family.name, source
            );
        }
        let stats = service.stats();
        prop_assert!(
            stats.inflight_peak > 1,
            "4-stream batch must overlap, peak {}", stats.inflight_peak
        );
        prop_assert_eq!(stats.fallbacks, 0, "spill must absorb pressure on-device");
    }
}

/// Collapse parallel edges to the per-direction minimum — the same
/// normalization `DynamicSssp` applies — so the test can decide
/// symmetry independently of the code under test.
fn min_adjacency(graph: &rdbs_core::Csr) -> Vec<HashMap<VertexId, u32>> {
    let mut adj: Vec<HashMap<VertexId, u32>> = vec![HashMap::new(); graph.num_vertices()];
    for (u, v, w) in graph.all_edges() {
        let e = adj[u as usize].entry(v).or_insert(w);
        *e = (*e).min(w);
    }
    adj
}

/// Rebuilding any family's raw (pre-symmetrization) edge list as a
/// directed CSR must be rejected by `DynamicSssp::try_new` with a
/// typed error naming a genuinely asymmetric edge, while the
/// undirected build of the same list is always accepted.
#[test]
fn directed_rebuild_is_rejected_with_typed_error_per_family() {
    let mut rejected = 0;
    for family in families() {
        let directed = build_directed(&family.edge_list());
        let adj = min_adjacency(&directed);
        let symmetric = adj.iter().enumerate().all(|(u, nbrs)| {
            nbrs.iter().all(|(&v, &w)| adj[v as usize].get(&(u as VertexId)) == Some(&w))
        });

        match DynamicSssp::try_new(&directed, 0) {
            Err(e) => {
                assert!(!symmetric, "{}: symmetric input must not be rejected", family.name);
                assert_ne!(
                    adj[e.v as usize].get(&e.u),
                    Some(&e.weight),
                    "{}: reported edge {} -> {} (weight {}) has an equal-weight reverse",
                    family.name,
                    e.u,
                    e.v,
                    e.weight
                );
                rejected += 1;
            }
            Ok(_) => assert!(symmetric, "{}: asymmetric input must be rejected", family.name),
        }

        let undirected = DynamicSssp::try_new(&family.build(), 0)
            .unwrap_or_else(|e| panic!("{}: undirected build rejected: {e}", family.name));
        assert_eq!(undirected.dist(), &dijkstra(&family.build(), 0).dist[..]);
    }
    assert!(rejected >= 1, "no family exercised the rejection path");
}
