//! Property: sanitizer output is deterministic. The simulator is
//! sequential and the sanitizer's shadow state is updated in program
//! order, so the same (entry, graph, source) cell must render a
//! byte-identical violation report on every run — that is what makes
//! `rdbs-cli sanitize` reports replayable evidence rather than a
//! flaky signal.

use proptest::prelude::*;
use rdbs_conformance::graphs::quick_families;
use rdbs_conformance::sanitize::{planted_race_specimen, run_cell, san_entries};
use rdbs_core::seq::dijkstra;

/// Render everything observable about a cell, violations included,
/// exactly as a report consumer would see it.
fn render(cell: &rdbs_conformance::SanCell) -> String {
    let mut out = format!(
        "{} {} source {} total {} mismatch {:?} panic {:?}\n",
        cell.entry_id, cell.graph, cell.source, cell.total, cell.mismatch, cell.panic
    );
    for v in &cell.violations {
        out.push_str(&format!("  {v}\n"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn sanitizer_reports_are_byte_identical_across_runs(
        entry_pick in 0usize..64,
        family_pick in 0usize..64,
        source_pick in 0usize..8,
    ) {
        let entries = san_entries();
        let entry = &entries[entry_pick % entries.len()];
        let families = quick_families();
        let family = &families[family_pick % families.len()];
        let graph = family.build();
        let sources = family.sources(graph.num_vertices());
        let source = sources[source_pick % sources.len()];
        let oracle = dijkstra(&graph, source);

        let first = render(&run_cell(entry, &graph, &oracle.dist, source));
        let second = render(&run_cell(entry, &graph, &oracle.dist, source));
        prop_assert_eq!(first, second);
    }
}

/// The planted-race specimen is the one cell guaranteed to produce
/// violations, so it pins down determinism of non-empty reports.
#[test]
fn specimen_report_is_byte_identical_across_runs() {
    let render =
        |vs: &[rdbs_gpu_sim::SanViolation]| vs.iter().map(|v| format!("{v}\n")).collect::<String>();
    let first = render(&planted_race_specimen());
    let second = render(&planted_race_specimen());
    assert!(!first.is_empty(), "specimen produced no violations");
    assert_eq!(first, second);
}
