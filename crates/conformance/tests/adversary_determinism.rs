//! Properties of the adversarial placement search. The search is a
//! pure function of `(seed, budget, max_evals)`: scouting, the opening
//! book, mutation and the uniform baseline all draw from seeded
//! splitmix64 streams, and the simulator underneath is sequential. So
//! the same options must render a byte-identical corpus every run, and
//! every corpus line must replay — through `parse_corpus_line` and a
//! fresh device — to exactly the score and verdict it recorded.

use proptest::prelude::*;
use rdbs_conformance::{
    corpus_lines, parse_corpus_line, replay_case, run_adversary, AdversaryOptions, CorpusCase,
};

fn opts(entry: &str, budget: u64, seed: u64) -> AdversaryOptions {
    AdversaryOptions {
        quick: true,
        entry_filter: Some(entry.into()),
        graph_filter: Some("erdos".into()),
        budget,
        max_evals: 6,
        seed,
        corpus_keep: 3,
        frontier: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn search_renders_byte_identical_corpus_per_seed_and_budget(
        entry_pick in 0usize..2,
        budget in 8u64..48,
        seed in 0u64..1000,
    ) {
        let entry = ["gpu/full", "gpu/refault"][entry_pick];
        let o = opts(entry, budget, seed);
        let a = run_adversary(&o, |_| {});
        let b = run_adversary(&o, |_| {});
        prop_assert_eq!(corpus_lines(&a), corpus_lines(&b));
        prop_assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            prop_assert_eq!(x.best_targeted, y.best_targeted);
            prop_assert_eq!(x.best_uniform, y.best_uniform);
            prop_assert_eq!(x.silent_wrong, y.silent_wrong);
            // The worst plan itself — not just its score — must agree.
            let worst = |r: &rdbs_conformance::AttackRun| {
                r.corpus.first().map(|c| format!("{:?}", c.spec))
            };
            prop_assert_eq!(worst(x), worst(y));
        }
    }

    #[test]
    fn every_corpus_entry_replays_to_its_recorded_verdict(
        budget in 8u64..40,
        seed in 0u64..1000,
    ) {
        let report = run_adversary(&opts("gpu/refault", budget, seed), |_| {});
        let text = corpus_lines(&report);
        let cases: Vec<CorpusCase> = text.lines().filter_map(parse_corpus_line).collect();
        let kept: usize = report.runs.iter().map(|r| r.corpus.len()).sum();
        prop_assert_eq!(cases.len(), kept, "corpus text dropped cases:\n{}", text);
        for case in &cases {
            let (score, verdict) = replay_case(case).expect("replay target vanished");
            prop_assert_eq!(score, case.score, "score diverged for {:?}", case);
            prop_assert_eq!(verdict, case.verdict, "verdict diverged for {:?}", case);
        }
    }
}
