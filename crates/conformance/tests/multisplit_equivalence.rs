//! The multisplit conformance property: the warp-aggregated scatter is
//! a pure *issue-width* optimization. For every graph family, every
//! frontier layout, both provisioning regimes and a 4-stream service
//! batch, the aggregated publish path must reproduce the per-push
//! scalar path bit for bit — the same distance vectors, the same
//! escalation/fallback ladder, and the same per-queue drain accounting
//! (logical pushes, drops and high-water marks read back from the
//! retained access IR). One leader `atomicAdd` reserving a slot range
//! for a warp must account exactly like the per-element `atomicAdd`s it
//! replaced.
//!
//! A second property re-runs both paths under seeded lane-permutation
//! fuzzing ([`SsspService::arm_schedule_fuzz`]): with the interleaving
//! shuffled, the aggregated path must still answer every query with
//! the oracle distances the scalar path produces.

use proptest::prelude::*;
use rdbs_conformance::families;
use rdbs_core::gpu::{FrontierKind, ScatterMode};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::{Dist, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use std::collections::BTreeMap;

/// Everything the equivalence gate compares between the two scatter
/// modes of one configuration.
#[derive(Debug, PartialEq)]
struct Observed {
    dists: Vec<Vec<Dist>>,
    escalations: u64,
    fallbacks: u64,
    /// Per-queue (pushes, drops, high_water) from the static analysis
    /// of the retained access IR — the drain accounting.
    queues: BTreeMap<&'static str, (u64, u64, u64)>,
}

fn run(
    graph: &rdbs_core::Csr,
    sources: &[VertexId],
    kind: FrontierKind,
    scatter: ScatterMode,
    capacity: Option<u32>,
    fuzz_seed: Option<u64>,
) -> Observed {
    let mut config = ServiceConfig::rdbs(DeviceConfig::test_tiny())
        .with_streams(4)
        .with_frontier(kind)
        .with_scatter(scatter);
    if let Some(cap) = capacity {
        config = config.with_queue_capacity(cap);
    }
    let mut svc = SsspService::new(graph, config);
    svc.arm_ir();
    if let Some(seed) = fuzz_seed {
        svc.arm_schedule_fuzz(seed);
    }
    let results = svc.batch(sources);
    let stats = svc.stats();
    let mut analysis = rdbs_statan::Analysis::default();
    for ir in svc.take_irs() {
        analysis.merge(rdbs_statan::verify(&ir));
    }
    Observed {
        dists: results.into_iter().map(|r| r.dist).collect(),
        escalations: stats.escalations,
        fallbacks: stats.fallbacks,
        queues: analysis
            .queues
            .iter()
            .map(|(&label, q)| (label, (q.pushes, q.drops, q.high_water)))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Canonical schedule: the aggregated path is indistinguishable
    /// from the scalar oracle in every observable the drain sees.
    #[test]
    fn multisplit_matches_scalar_bit_for_bit(
        family_idx in 0usize..5,
        frontier_idx in 0usize..3,
        source_salt in 0u32..1000,
        under_provision in any::<bool>(),
    ) {
        let fams = families();
        let family = &fams[family_idx % fams.len()];
        let graph = family.build();
        let n = graph.num_vertices() as u32;
        let kind = FrontierKind::ALL[frontier_idx % FrontierKind::ALL.len()];
        let capacity = under_provision.then(|| (n / 3).max(8));

        let mut sources: Vec<VertexId> = family.sources(4);
        sources.push(source_salt % n);
        let scalar = run(&graph, &sources, kind, ScatterMode::Scalar, capacity, None);
        let multi = run(&graph, &sources, kind, ScatterMode::Multisplit, capacity, None);

        prop_assert_eq!(
            &scalar.dists, &multi.dists,
            "{}/{}: multisplit distances diverge from scalar", family.name, kind.name()
        );
        prop_assert_eq!(
            (scalar.escalations, scalar.fallbacks),
            (multi.escalations, multi.fallbacks),
            "{}/{}: multisplit changed the overflow ladder", family.name, kind.name()
        );
        prop_assert_eq!(
            &scalar.queues, &multi.queues,
            "{}/{}: multisplit changed the per-queue push/drop/high-water accounting",
            family.name, kind.name()
        );
    }

    /// Fuzzed schedules: lane-permutation fuzzing reorders the scalar
    /// path's pushes (they land in execution order) while the
    /// aggregated flush always places a warp's payloads in canonical
    /// lane order — so drained work may legitimately be *ordered*
    /// differently between the modes mid-query. The fixed point must
    /// not move: both modes still answer with identical distance
    /// vectors and neither degrades to a host fallback.
    #[test]
    fn multisplit_matches_scalar_under_lane_permutations(
        family_idx in 0usize..5,
        frontier_idx in 0usize..3,
        fuzz_seed in 1u64..1_000_000,
    ) {
        let fams = families();
        let family = &fams[family_idx % fams.len()];
        let graph = family.build();
        let kind = FrontierKind::ALL[frontier_idx % FrontierKind::ALL.len()];

        let sources: Vec<VertexId> = family.sources(3);
        let scalar =
            run(&graph, &sources, kind, ScatterMode::Scalar, None, Some(fuzz_seed));
        let multi =
            run(&graph, &sources, kind, ScatterMode::Multisplit, None, Some(fuzz_seed));

        prop_assert_eq!(
            &scalar.dists, &multi.dists,
            "{}/{} seed {}: permuted multisplit distances diverge from permuted scalar",
            family.name, kind.name(), fuzz_seed
        );
        prop_assert_eq!(scalar.fallbacks, 0, "scalar degraded under permutation");
        prop_assert_eq!(multi.fallbacks, 0, "multisplit degraded under permutation");
    }
}
