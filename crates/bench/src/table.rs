//! Plain-text table printing matching the paper's row/column layout.

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as CSV (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `p` decimals.
pub fn f(x: f64, p: usize) -> String {
    format!("{x:.p$}")
}

/// Format a speedup like the paper's `(4.48×)`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["graph", "ms"]);
        t.row(vec!["road-TX".into(), "8.86".into()]);
        t.row(vec!["k-n21-16".into(), "4.47".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].ends_with("8.86"));
        // Columns aligned: both data lines equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f(2.46913, 2), "2.47");
        assert_eq!(speedup(4.476), "4.48x");
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["with,comma".into(), "quote\"inside".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"quote\"\"inside\"");
    }
}
