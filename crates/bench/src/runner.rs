//! Run helpers: source selection, multi-source averaging, graph prep.

use rdbs_core::gpu::{run_gpu, GpuRun, Variant};
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::DatasetSpec;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pick `k` distinct random starting vertices with nonzero degree
/// (§5.1.3: "we select 64 different starting vertices randomly").
pub fn pick_sources(graph: &Csr, k: usize, seed: u64) -> Vec<VertexId> {
    let candidates: Vec<VertexId> =
        (0..graph.num_vertices() as VertexId).filter(|&v| graph.degree(v) > 0).collect();
    if candidates.is_empty() {
        return vec![0];
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_50BC);
    let mut picked = candidates;
    picked.shuffle(&mut rng);
    picked.truncate(k.max(1));
    picked
}

/// Generate a dataset stand-in (cached weights, symmetrized).
pub fn prepared_graph(spec: &DatasetSpec, scale_shift: u32, seed: u64) -> Csr {
    spec.generate(scale_shift, seed)
}

/// Average simulated milliseconds of a GPU variant over sources.
/// Returns `(mean_ms, mean_gteps, last_run)`.
pub fn average_gpu(
    graph: &Csr,
    sources: &[VertexId],
    variant: Variant,
    device: DeviceConfig,
) -> (f64, f64, GpuRun) {
    assert!(!sources.is_empty());
    let mut total_ms = 0.0;
    let mut total_gteps = 0.0;
    let mut last = None;
    for &s in sources {
        let run = run_gpu(graph, s, variant, device.clone());
        total_ms += run.elapsed_ms;
        total_gteps += run.gteps;
        last = Some(run);
    }
    let k = sources.len() as f64;
    (total_ms / k, total_gteps / k, last.unwrap())
}

/// Average a closure-measured runtime (wall clock, for CPU baselines).
pub fn average_ms(sources: &[VertexId], mut run: impl FnMut(VertexId) -> f64) -> f64 {
    assert!(!sources.is_empty());
    let total: f64 = sources.iter().map(|&s| run(s)).sum();
    total / sources.len() as f64
}

/// Wall-clock one invocation in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};

    #[test]
    fn sources_distinct_and_connected() {
        let el = EdgeList::from_edges(10, vec![(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let g = build_undirected(&el);
        let s = pick_sources(&g, 3, 1);
        assert_eq!(s.len(), 3);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 3);
        assert!(s.iter().all(|&v| g.degree(v) > 0));
        // Deterministic.
        assert_eq!(s, pick_sources(&g, 3, 1));
    }

    #[test]
    fn sources_clamped_to_candidates() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 1)]);
        let g = build_undirected(&el);
        assert_eq!(pick_sources(&g, 10, 2).len(), 2);
    }

    #[test]
    fn time_ms_measures() {
        let (ms, x) = time_ms(|| 21 + 21);
        assert_eq!(x, 42);
        assert!(ms >= 0.0);
    }
}
