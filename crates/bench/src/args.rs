//! Minimal flag parsing shared by every experiment binary.

use rdbs_gpu_sim::DeviceConfig;

/// Common harness flags.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Datasets are generated at `paper_vertices >> scale_shift`.
    pub scale_shift: u32,
    /// Number of random starting vertices to average over.
    pub sources: usize,
    /// Base seed for all randomness.
    pub seed: u64,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Keep real-hardware launch/barrier overheads instead of scaling
    /// them down with the dataset shrink.
    pub raw_overheads: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale_shift: 6,
            sources: 4,
            seed: 42,
            device: DeviceConfig::v100(),
            raw_overheads: false,
        }
    }
}

impl HarnessArgs {
    /// Parse `std::env::args`, exiting with usage on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale-shift" => out.scale_shift = expect_num(&mut it, &flag) as u32,
                "--sources" => out.sources = expect_num(&mut it, &flag) as usize,
                "--seed" => out.seed = expect_num(&mut it, &flag),
                "--device" => {
                    let v = it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
                    out.device = match v.to_ascii_uppercase().as_str() {
                        "V100" => DeviceConfig::v100(),
                        "T4" => DeviceConfig::t4(),
                        other => usage(&format!("unknown device '{other}'")),
                    };
                }
                "--full" => {
                    out.scale_shift = 0;
                    out.sources = 64;
                }
                "--raw-overheads" => out.raw_overheads = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        // Time-scale-preserving shrink: datasets are 2^shift smaller,
        // so the fixed per-launch overheads and cache capacities
        // shrink by the same factor to keep kernel-vs-overhead ratios
        // and working-set-vs-cache ratios faithful to paper scale
        // (see DeviceConfig::with_overhead_scale / with_cache_scale).
        if !out.raw_overheads && out.scale_shift > 0 {
            let f = 1.0 / (1u64 << out.scale_shift) as f64;
            out.device = out.device.clone().with_overhead_scale(f).with_cache_scale(f);
        }
        out
    }
}

fn expect_num(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale-shift N] [--sources K] [--seed S] [--device V100|T4] [--full]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(s.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale_shift, 6);
        assert_eq!(a.sources, 4);
        assert_eq!(a.device.name, "V100");
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale-shift", "3", "--sources", "8", "--seed", "7", "--device", "T4"]);
        assert_eq!(a.scale_shift, 3);
        assert_eq!(a.sources, 8);
        assert_eq!(a.seed, 7);
        assert_eq!(a.device.name, "T4");
    }

    #[test]
    fn full_mode() {
        let a = parse(&["--full"]);
        assert_eq!(a.scale_shift, 0);
        assert_eq!(a.sources, 64);
    }
}
