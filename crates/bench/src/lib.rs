//! Shared harness utilities for the per-figure/table experiment
//! binaries (`src/bin/fig*.rs`, `src/bin/table*.rs`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale-shift N   shrink datasets to paper_size / 2^N   (default 6)
//! --sources K       starting vertices averaged per figure (default 4;
//!                   the paper uses 64)
//! --seed S          base RNG seed                         (default 42)
//! --device V100|T4  simulated GPU                         (default V100)
//! --full            paper-scale datasets (scale-shift 0, 64 sources)
//! ```

pub mod args;
pub mod runner;
pub mod table;

pub use args::HarnessArgs;
pub use runner::{average_gpu, average_ms, pick_sources, prepared_graph, time_ms};
pub use table::Table;
