//! Fig. 2 — active vertices per bucket of classic Δ-stepping.
//!
//! The paper runs the Graph500 reference Δ-stepping on Kronecker
//! graphs of SCALE 24 and 25 (edgefactor 16, empirical Δ = 0.1) and
//! plots the number of active vertices in each bucket: a sharp early
//! peak followed by a long tail. Paper scales need >100 GB; the
//! default here is SCALE 16/17 (`--scale-shift` rescales; `--full`
//! restores 24/25 if you have the memory and patience).

use rdbs_bench::{HarnessArgs, Table};
use rdbs_core::seq::delta_stepping_traced;
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let scales: [u32; 2] = [
        24u32.saturating_sub(args.scale_shift).max(10),
        25u32.saturating_sub(args.scale_shift).max(11),
    ];
    println!(
        "Fig. 2 — Δ-stepping bucket occupancy (Kronecker SCALE {}/{} standing in for 24/25, ef=16, Δ = 0.1·max_w)\n",
        scales[0], scales[1]
    );

    let mut series = Vec::new();
    for &scale in &scales {
        let mut el = kronecker(KroneckerConfig::new(scale, 16), args.seed);
        uniform_weights(&mut el, args.seed + 1);
        let g = build_undirected(&el);
        let delta = (g.max_weight() / 10).max(1);
        let source = rdbs_bench::pick_sources(&g, 1, args.seed)[0];
        let run = delta_stepping_traced(&g, source, delta, None);
        let occupancy: Vec<u64> = run.buckets.iter().map(|b| b.active).collect();
        series.push((scale, occupancy));
    }

    let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0).min(16);
    let mut table = Table::new(&[
        "bucket id",
        &format!("SCALE={} active", series[0].0),
        &format!("SCALE={} active", series[1].0),
    ]);
    for b in 0..max_len {
        table.row(vec![
            b.to_string(),
            series[0].1.get(b).copied().unwrap_or(0).to_string(),
            series[1].1.get(b).copied().unwrap_or(0).to_string(),
        ]);
    }
    table.print();

    for (scale, occ) in &series {
        let peak = occ.iter().enumerate().max_by_key(|(_, &c)| c).map_or(0, |(i, _)| i);
        println!(
            "\nSCALE={scale}: {} buckets, peak at bucket {peak} ({} active) — the paper's rise-then-tail shape",
            occ.len(),
            occ[peak]
        );
    }
}
