//! Fig. 1 — the motivation micro-example.
//!
//! Reproduces the paper's analysis of the 8-vertex/13-edge graph of
//! Fig. 1 (a): a synchronous push SSSP from vertex 0 is traced and its
//! valid updates, invalid updates and invalid checks are counted
//! ("there are 2 valid updates, 7 invalid updates, and 5 invalid
//! checks" — exact numbers depend on the figure's weights, which the
//! PDF only renders graphically; the *shape* — a majority of the
//! relaxation work being wasted — is the reproduction target).

use rdbs_core::seq::{bellman_ford, dijkstra};
use rdbs_graph::builder::{build_undirected, EdgeList};

fn main() {
    let el = EdgeList::from_edges(
        8,
        vec![
            (0, 1, 5),
            (0, 2, 1),
            (0, 3, 3),
            (1, 3, 1),
            (2, 3, 1),
            (0, 5, 1),
            (3, 5, 1),
            (0, 7, 6),
            (3, 7, 3),
            (1, 4, 1),
            (2, 6, 1),
            (4, 6, 7),
            (6, 7, 4),
        ],
    );
    let g = build_undirected(&el);
    println!("Fig. 1 motivation example: 8 vertices, 13 undirected edges, source 0\n");

    let sync = bellman_ford(&g, 0);
    let oracle = dijkstra(&g, 0);
    assert_eq!(sync.dist, oracle.dist, "sanity: sync result must match Dijkstra");

    let valid = rdbs_core::UpdateStats::valid_updates(&sync.dist);
    let invalid_updates = sync.stats.total_updates - valid;
    let invalid_checks = sync.stats.checks - sync.stats.total_updates;
    println!("synchronous push execution (Fig. 1 (b) analogue):");
    println!("  rounds (barriers)     : {}", sync.stats.phase1_layers[0]);
    println!("  checks                : {}", sync.stats.checks);
    println!("  total updates         : {}", sync.stats.total_updates);
    println!("  valid updates         : {valid}");
    println!("  invalid updates       : {invalid_updates}");
    println!("  invalid checks        : {invalid_checks}");
    println!();
    println!("Dijkstra (work-optimal) on the same graph:");
    println!("  checks                : {}", oracle.stats.checks);
    println!("  updates               : {}", oracle.stats.total_updates);
    println!();
    println!("final distances: {:?}", sync.dist);
}
