//! Diagnostic: per-kernel time breakdown for BL vs RDBS vs ADDS on one
//! dataset. Not a paper artifact — used to calibrate the cost model.

use rdbs_bench::{pick_sources, HarnessArgs};
use rdbs_core::default_delta;
use rdbs_core::gpu::{bl, rdbs::rdbs, RdbsConfig};
use rdbs_gpu_sim::Device;
use rdbs_graph::datasets::by_name;
use std::collections::BTreeMap;

fn summarize(label: &str, device: &Device) {
    let mut by_name: BTreeMap<&'static str, (u64, f64, u64)> = BTreeMap::new();
    for r in device.reports() {
        let e = by_name.entry(r.name).or_insert((0, 0.0, 0));
        e.0 += 1;
        e.1 += r.total_ns;
        e.2 += r.warp_instructions;
    }
    println!("== {label}: total {:.3} ms ==", device.elapsed_ms());
    let c = device.counters();
    println!(
        "   launches {} children {} barriers {} | warp insts {} | dram bytes {} | hit {:.1}%",
        c.kernel_launches,
        c.child_kernel_launches,
        c.barriers,
        c.inst_executed,
        c.dram_bytes(),
        c.global_hit_rate()
    );
    let mut rows: Vec<_> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap());
    for (name, (count, ns, insts)) in rows {
        println!("   {name:<18} waves {count:>6}  time {:.3} ms  insts {insts}", ns / 1e6);
    }
    let launch_ms = c.kernel_launches as f64 * device.config().kernel_launch_us / 1e3
        + c.child_kernel_launches as f64 * device.config().child_launch_us / 1e3
        + c.barriers as f64 * device.config().barrier_us / 1e3;
    println!("   overheads (launch+barrier): {launch_ms:.3} ms\n");
}

fn main() {
    let args = HarnessArgs::parse();
    let name = std::env::var("DIAG_DATASET").unwrap_or_else(|_| "soc-PK".into());
    let spec = if name == "k-n21-16" {
        rdbs_graph::datasets::kronecker_spec(21, 16)
    } else {
        by_name(&name).expect("unknown dataset")
    };
    let g = spec.generate(args.scale_shift, args.seed);
    println!(
        "dataset {} : {} vertices, {} edges, delta0 {}\n",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        default_delta(&g)
    );
    let s = pick_sources(&g, 1, args.seed)[0];

    let mut d = Device::new(args.device.clone());
    let r = bl(&mut d, &g, s);
    println!("BL updates {} checks {}", r.stats.total_updates, r.stats.checks);
    summarize("BL", &d);

    let mut d = Device::new(args.device.clone());
    let run = rdbs(&mut d, &g, s, RdbsConfig::basyn_only());
    println!(
        "RDBS(basyn) updates {} checks {} buckets {}",
        run.result.stats.total_updates,
        run.result.stats.checks,
        run.buckets.len()
    );
    summarize("RDBS basyn_only", &d);

    let (pg, perm) = rdbs_graph::reorder::pro(&g, default_delta(&g));
    let mut d = Device::new(args.device.clone());
    let run = rdbs(&mut d, &pg, perm.new_id(s), RdbsConfig::full());
    println!(
        "RDBS(full) updates {} checks {} buckets {}",
        run.result.stats.total_updates,
        run.result.stats.checks,
        run.buckets.len()
    );
    summarize("RDBS full", &d);

    let mut d = Device::new(args.device.clone());
    let r = rdbs_baselines::adds(&mut d, &g, s, default_delta(&g));
    println!("ADDS updates {} checks {}", r.stats.total_updates, r.stats.checks);
    summarize("ADDS", &d);
}
