//! Fig. 10 — nvprof-style profiling: RDBS vs ADDS.
//!
//! Reports the four metrics the paper profiles on the six evaluation
//! graphs: warp-level global load instructions (a), global store
//! instructions (b), atomic instructions (c) and the L1 global hit
//! rate (d). Paper: RDBS executes 0.41×/0.57× the loads/stores of
//! ADDS on average, 39.6% fewer atomics, and gains 3.59% hit rate.

use rdbs_baselines::run_adds;
use rdbs_bench::{pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_graph::datasets::fig8_suite;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Fig. 10 — profiling counters, RDBS vs ADDS ({} | scale-shift {})\n",
        args.device.name, args.scale_shift
    );
    let mut t = Table::new(&[
        "graph",
        "loads ADDS",
        "loads RDBS",
        "stores ADDS",
        "stores RDBS",
        "atomics ADDS",
        "atomics RDBS",
        "hit% ADDS",
        "hit% RDBS",
    ]);
    let (mut load_ratio, mut store_ratio, mut atomic_drop, mut hit_gain) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let specs = fig8_suite();
    for spec in &specs {
        let g = spec.generate(args.scale_shift, args.seed);
        let source = pick_sources(&g, 1, args.seed)[0];
        let rdbs = run_gpu(&g, source, Variant::Rdbs(RdbsConfig::full()), args.device.clone());
        let adds = run_adds(&g, source, args.device.clone());
        let (cr, ca) = (&rdbs.counters, &adds.counters);
        t.row(vec![
            spec.name.to_string(),
            ca.inst_executed_global_loads.to_string(),
            cr.inst_executed_global_loads.to_string(),
            ca.inst_executed_global_stores.to_string(),
            cr.inst_executed_global_stores.to_string(),
            ca.inst_executed_atomics.to_string(),
            cr.inst_executed_atomics.to_string(),
            format!("{:.2}", ca.global_hit_rate()),
            format!("{:.2}", cr.global_hit_rate()),
        ]);
        load_ratio +=
            cr.inst_executed_global_loads as f64 / ca.inst_executed_global_loads.max(1) as f64;
        store_ratio +=
            cr.inst_executed_global_stores as f64 / ca.inst_executed_global_stores.max(1) as f64;
        atomic_drop +=
            1.0 - cr.inst_executed_atomics as f64 / ca.inst_executed_atomics.max(1) as f64;
        hit_gain += cr.global_hit_rate() - ca.global_hit_rate();
        eprintln!("  done {}", spec.name);
    }
    t.print();
    let k = specs.len() as f64;
    println!(
        "\naverages: RDBS loads {:.2}x of ADDS (paper 0.41x), stores {:.2}x (paper 0.57x), atomics -{:.1}% (paper -39.6%), hit rate +{:.2} pts (paper +3.59)",
        load_ratio / k,
        store_ratio / k,
        100.0 * atomic_drop / k,
        hit_gain / k
    );
}
