//! Fig. 11 — scalability with graph scale: GTEPS of RDBS and speedup
//! vs ADDS across SCALE × edgefactor.
//!
//! Paper: SCALE {22,23,24} × edgefactor {8,16,32,64}; GTEPS rises with
//! edgefactor (8.8 → 40.1) and mildly with SCALE; speedup over ADDS
//! grows from 13.5× to 68.7×. Defaults here shift SCALE down by
//! `--scale-shift` (22→16 etc. at the default 6).

use rdbs_baselines::run_adds;
use rdbs_bench::{pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let scales: Vec<u32> =
        [22u32, 23, 24].iter().map(|s| s.saturating_sub(args.scale_shift).max(10)).collect();
    let edgefactors = [8u32, 16, 32, 64];
    println!(
        "Fig. 11 — scalability: GTEPS and speedup vs ADDS (Kronecker SCALE {:?} standing in for [22,23,24], {})\n",
        scales, args.device.name
    );
    let mut t = Table::new(&["SCALE", "edgefactor", "RDBS GTEPS", "ADDS GTEPS", "speedup"]);
    for (si, &scale) in scales.iter().enumerate() {
        for &ef in &edgefactors {
            let mut el = kronecker(KroneckerConfig::new(scale, ef), args.seed + si as u64);
            uniform_weights(&mut el, args.seed + 17);
            let g = build_undirected(&el);
            let source = pick_sources(&g, 1, args.seed)[0];
            let rdbs = run_gpu(&g, source, Variant::Rdbs(RdbsConfig::full()), args.device.clone());
            let adds = run_adds(&g, source, args.device.clone());
            t.row(vec![
                format!("{} (paper {})", scale, 22 + si),
                ef.to_string(),
                format!("{:.2}", rdbs.gteps),
                format!("{:.2}", adds.gteps),
                format!("{:.2}x", adds.elapsed_ms / rdbs.elapsed_ms),
            ]);
            eprintln!("  done scale {scale} ef {ef}");
        }
    }
    t.print();
    println!("\n(paper: higher edgefactor → higher GTEPS; fixed ef + larger SCALE → better GTEPS; avg speedup 34.2x)");
}
