//! Fig. 8 — speedup of each optimization combination over the BL
//! baseline on the six evaluation graphs.
//!
//! Paper: BASYN+PRO 1.36–9.97×, BASYN+ADWL 1.47–45.88×,
//! BASYN+PRO+ADWL 1.38–53.44× over BL, with the largest wins on
//! k-n21-16 and the smallest on road-TX.

use rdbs_bench::{average_gpu, pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::Variant;
use rdbs_graph::datasets::fig8_suite;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Fig. 8 — optimization speedups over BL ({} | scale-shift {} | {} sources)\n",
        args.device.name, args.scale_shift, args.sources
    );
    let variants = Variant::fig8_variants();
    let mut t = Table::new(&["dataset", "BL ms", "BASYN+PRO", "BASYN+ADWL", "BASYN+PRO+ADWL"]);
    for spec in fig8_suite() {
        let g = spec.generate(args.scale_shift, args.seed);
        let sources = pick_sources(&g, args.sources, args.seed);
        let mut cells = vec![spec.name.to_string()];
        let (bl_ms, _, _) = average_gpu(&g, &sources, variants[0], args.device.clone());
        cells.push(format!("{bl_ms:.3}"));
        for &v in &variants[1..] {
            let (ms, _, run) = average_gpu(&g, &sources, v, args.device.clone());
            // Sanity: every variant must produce correct distances.
            rdbs_core::validate::check_relaxed(&g, run.result.source, &run.result.dist)
                .expect("variant produced wrong distances");
            cells.push(format!("{:.2}x", bl_ms / ms));
        }
        t.row(cells);
        eprintln!("  done {}", spec.name);
    }
    t.print();
    println!("\n(paper: BASYN+PRO avg 5.15x, BASYN+ADWL avg 16.37x, full avg 19.60x; road-TX smallest, k-n21-16 largest)");
}
