//! Fig. 9 — work efficiency: total/valid update ratio of RDBS per
//! graph, the ADDS/RDBS workload ratio, and the performance speedup.
//!
//! Paper: RDBS ratios 1.06 (k-n21-16) … 6.83 (road-TX), average 2.22;
//! ADDS performs 1.33–2.18× more updates than RDBS on every graph.

use rdbs_baselines::run_adds;
use rdbs_bench::{pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_graph::datasets::{kronecker_spec, table1};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Fig. 9 — work efficiency (total updates / valid updates), RDBS vs ADDS ({} | scale-shift {})\n",
        args.device.name, args.scale_shift
    );
    // Paper order: k-n21-16, web-GL, soc-PK, com-LJ, soc-TW, as-Skt,
    // soc-LJ, wiki-TK, com-OK, road-TX.
    let order = [
        "web-GL", "soc-PK", "com-LJ", "soc-TW", "as-Skt", "soc-LJ", "wiki-TK", "com-OK", "road-TX",
    ];
    let mut specs = vec![kronecker_spec(21, 16)];
    for name in order {
        specs.push(table1().into_iter().find(|d| d.name == name).unwrap());
    }

    let mut t = Table::new(&[
        "graph",
        "RDBS works/|v|",
        "ADDS works/|v|",
        "workload ratio",
        "speedup vs ADDS",
    ]);
    let mut ratios = Vec::new();
    for spec in &specs {
        let g = spec.generate(args.scale_shift, args.seed);
        let source = pick_sources(&g, 1, args.seed)[0];
        let rdbs = run_gpu(&g, source, Variant::Rdbs(RdbsConfig::full()), args.device.clone());
        let adds = run_adds(&g, source, args.device.clone());

        let rdbs_ratio = rdbs.result.work_ratio().unwrap_or(f64::NAN);
        let adds_ratio = adds.result.work_ratio().unwrap_or(f64::NAN);
        let workload =
            adds.result.stats.total_updates as f64 / rdbs.result.stats.total_updates.max(1) as f64;
        ratios.push(rdbs_ratio);
        t.row(vec![
            spec.name.to_string(),
            format!("{rdbs_ratio:.2}"),
            format!("{adds_ratio:.2}"),
            format!("{workload:.2}x"),
            format!("{:.2}x", adds.elapsed_ms / rdbs.elapsed_ms),
        ]);
        eprintln!("  done {}", spec.name);
    }
    t.print();
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\naverage RDBS total/valid ratio: {avg:.2} (paper: 2.22; road-TX worst at 6.83, k-n21-16 best at 1.06)");
}
