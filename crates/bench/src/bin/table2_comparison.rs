//! Table 2 — running time vs the state of the art.
//!
//! Columns match the paper: PQ-Δ* on the CPU (wall clock, native
//! threads), ADDS on the GPU (simulated), RDBS (simulated), with
//! speedups relative to RDBS in parentheses. Paper: RDBS beats PQ-Δ*
//! by 4.5–17.4× and ADDS by 0.91–21× (ADDS wins only on road-TX).

use rdbs_baselines::{pq_delta_stepping, run_adds};
use rdbs_bench::{average_gpu, average_ms, pick_sources, time_ms, HarnessArgs, Table};
use rdbs_core::cpu::default_threads;
use rdbs_core::gpu::{RdbsConfig, Variant};
use rdbs_graph::datasets::fig8_suite;

fn main() {
    let args = HarnessArgs::parse();
    let threads = default_threads();
    println!(
        "Table 2 — runtime (ms) vs existing work ({} | scale-shift {} | {} sources | CPU threads {})\n",
        args.device.name, args.scale_shift, args.sources, threads
    );
    let mut t = Table::new(&["graph", "PQ-D* (CPU)", "ADDS (GPU)", "RDBS"]);
    for spec in fig8_suite() {
        let g = spec.generate(args.scale_shift, args.seed);
        let sources = pick_sources(&g, args.sources, args.seed);

        let (rdbs_ms, _, _) =
            average_gpu(&g, &sources, Variant::Rdbs(RdbsConfig::full()), args.device.clone());

        let adds_ms = average_ms(&sources, |s| {
            let run = run_adds(&g, s, args.device.clone());
            run.elapsed_ms
        });

        let pq_ms = average_ms(&sources, |s| {
            let (ms, r) = time_ms(|| pq_delta_stepping(&g, s, threads, None));
            assert_eq!(r.dist[s as usize], 0);
            ms
        });

        t.row(vec![
            spec.name.to_string(),
            format!("{pq_ms:.2} ({:.2}x)", pq_ms / rdbs_ms),
            format!("{adds_ms:.2} ({:.2}x)", adds_ms / rdbs_ms),
            format!("{rdbs_ms:.2}"),
        ]);
        eprintln!("  done {}", spec.name);
    }
    t.print();
    println!("\n(paper: PQ-D* avg 10.32x slower; ADDS 0.91x on road-TX — its only win — up to 21x on k-n21-16)");
    println!(
        "(CPU numbers are wall clock on this host; GPU numbers are simulated-device milliseconds)"
    );
}
