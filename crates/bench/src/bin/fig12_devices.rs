//! Fig. 12 — RDBS runtime on different GPUs (V100 vs T4).
//!
//! Paper: V100 outperforms T4 by 1.47–2.58×, consistent with the
//! 2–3× theoretical gap in CUDA cores and memory bandwidth.

use rdbs_bench::{average_gpu, pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::{RdbsConfig, Variant};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::fig8_suite;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Fig. 12 — RDBS runtime on T4 vs V100 (scale-shift {} | {} sources)\n",
        args.scale_shift, args.sources
    );
    // Paper's x-axis order: Amazon, road-TX, web-GL, com-LJ, soc-PK, k-n21-16.
    let mut specs = fig8_suite();
    specs.swap(0, 1);
    let mut t = Table::new(&["dataset", "T4 ms", "V100 ms", "V100 speedup"]);
    for spec in &specs {
        let g = spec.generate(args.scale_shift, args.seed);
        let sources = pick_sources(&g, args.sources, args.seed);
        let variant = Variant::Rdbs(RdbsConfig::full());
        let (t4_ms, _, _) = average_gpu(&g, &sources, variant, DeviceConfig::t4());
        let (v100_ms, _, _) = average_gpu(&g, &sources, variant, DeviceConfig::v100());
        t.row(vec![
            spec.name.to_string(),
            format!("{t4_ms:.3}"),
            format!("{v100_ms:.3}"),
            format!("{:.2}x", t4_ms / v100_ms),
        ]);
        eprintln!("  done {}", spec.name);
    }
    t.print();
    println!("\n(paper: 1.47x–2.58x, matching the 2–3x theoretical compute/bandwidth gap)");
}
