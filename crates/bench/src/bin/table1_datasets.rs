//! Table 1 — dataset properties.
//!
//! Prints, for every real-world graph of the paper, the paper's
//! reported numbers next to the generated stand-in's measured numbers
//! so the structural match (degree, skew, diameter class) is auditable.

use rdbs_bench::HarnessArgs;
use rdbs_bench::Table;
use rdbs_graph::datasets::table1;
use rdbs_graph::stats::graph_stats;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1 — real-world datasets and their synthetic stand-ins (scale-shift {})\n",
        args.scale_shift
    );
    let mut t = Table::new(&[
        "graph",
        "paper #v",
        "paper #e",
        "paper avg",
        "paper diam",
        "standin #v",
        "standin #e",
        "standin avg",
        "standin diam",
        "max deg",
    ]);
    for spec in table1() {
        let g = spec.generate(args.scale_shift, args.seed);
        let st = graph_stats(&g);
        t.row(vec![
            spec.name.to_string(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            format!("{:.2}", spec.paper_avg_deg),
            spec.paper_diameter.to_string(),
            st.num_vertices.to_string(),
            st.num_edges.to_string(),
            format!("{:.2}", st.avg_degree),
            st.pseudo_diameter.to_string(),
            st.max_degree.to_string(),
        ]);
    }
    t.print();
    println!("\n(Stand-in edges are directed counts after symmetrization + dedup; diameters are double-sweep pseudo-diameters.)");
}
