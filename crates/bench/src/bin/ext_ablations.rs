//! Extension experiments: ablations of the design choices DESIGN.md
//! calls out, beyond the paper's own Fig. 8 study.
//!
//! 1. **Vertex-ordering ablation** — PRO's descending-degree relabel
//!    vs random, BFS and ascending-degree orderings (all with
//!    weight-sorted rows and heavy offsets, isolating the *ordering*
//!    choice).
//! 2. **Δ₀ sensitivity** — the Dijkstra ↔ Bellman-Ford spectrum.
//! 3. **Weight-distribution sensitivity** — uniform vs log-normal vs
//!    exponential vs bimodal weights.
//! 4. **GPU comparator lineup** — every GPU SSSP in the workspace on
//!    one graph.

use rdbs_baselines::{adds, frontier_bf, near_far, sep_graph};
use rdbs_bench::{pick_sources, HarnessArgs, Table};
use rdbs_core::default_delta;
use rdbs_core::gpu::rdbs::{rdbs, RdbsConfig};
use rdbs_core::gpu::{bl, run_gpu, Variant};
use rdbs_gpu_sim::Device;
use rdbs_graph::builder::build_undirected;
use rdbs_graph::datasets::kronecker_spec;
use rdbs_graph::generate::{
    assign_distributed_weights, kronecker, KroneckerConfig, WeightDistribution,
};
use rdbs_graph::reorder::{
    attach_heavy_offsets, bfs_order, degree_ascending, degree_descending, random_order,
    sort_edges_by_weight, Permutation,
};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Extension — design-choice ablations ({} | scale-shift {})\n",
        args.device.name, args.scale_shift
    );
    ordering_ablation(&args);
    delta_sensitivity(&args);
    weight_distribution(&args);
    comparator_lineup(&args);
}

fn ordering_ablation(args: &HarnessArgs) {
    println!("## 1. Vertex-ordering ablation (k-n21-16 stand-in, BASYN+ADWL fixed, rows weight-sorted)\n");
    let g = kronecker_spec(21, 16).generate(args.scale_shift, args.seed);
    let source = pick_sources(&g, 1, args.seed)[0];
    let delta0 = default_delta(&g);
    let orderings: Vec<(&str, Permutation)> = vec![
        ("degree-desc (PRO)", degree_descending(&g)),
        ("degree-asc", degree_ascending(&g)),
        ("bfs", bfs_order(&g, source)),
        ("random", random_order(&g, args.seed)),
        ("input order", Permutation::identity(g.num_vertices())),
    ];
    let mut t = Table::new(&["ordering", "sim ms", "hit %", "warp insts"]);
    for (name, perm) in orderings {
        let mut pg = perm.apply_to_graph(&g);
        sort_edges_by_weight(&mut pg);
        attach_heavy_offsets(&mut pg, delta0);
        let mut dev = Device::new(args.device.clone());
        let run = rdbs(&mut dev, &pg, perm.new_id(source), RdbsConfig::full());
        assert_eq!(run.result.reached(), run.result.reached());
        t.row(vec![
            name.into(),
            format!("{:.4}", dev.elapsed_ms()),
            format!("{:.2}", dev.counters().global_hit_rate()),
            dev.counters().inst_executed.to_string(),
        ]);
    }
    t.print();
    println!();
}

fn delta_sensitivity(args: &HarnessArgs) {
    println!("## 2. Δ₀ sensitivity (k-n21-16 stand-in, full RDBS)\n");
    let g = kronecker_spec(21, 16).generate(args.scale_shift, args.seed);
    let source = pick_sources(&g, 1, args.seed)[0];
    let mut t = Table::new(&["delta0", "sim ms", "buckets", "total updates", "work ratio"]);
    for delta0 in [1u32, 10, 100, 500, 1000, 10_000, 1_000_000] {
        let cfg = RdbsConfig { delta0: Some(delta0), ..RdbsConfig::full() };
        let run = run_gpu(&g, source, Variant::Rdbs(cfg), args.device.clone());
        t.row(vec![
            delta0.to_string(),
            format!("{:.4}", run.elapsed_ms),
            run.buckets.len().to_string(),
            run.result.stats.total_updates.to_string(),
            format!("{:.2}", run.result.work_ratio().unwrap_or(f64::NAN)),
        ]);
    }
    t.print();
    println!("\n(Δ → 1 approaches Dijkstra: minimal updates, many buckets; Δ → ∞ approaches Bellman-Ford)\n");
}

fn weight_distribution(args: &HarnessArgs) {
    println!(
        "## 3. Weight-distribution sensitivity (SCALE {} ef 16, full RDBS)\n",
        21 - args.scale_shift.min(13)
    );
    let scale = (21 - args.scale_shift.min(13)).max(8);
    let mut t = Table::new(&["distribution", "sim ms", "buckets", "work ratio"]);
    for (name, dist) in [
        ("uniform(1,1000)", WeightDistribution::Uniform),
        ("log-normal", WeightDistribution::LogNormal),
        ("exponential", WeightDistribution::Exponential),
        ("bimodal 90/10", WeightDistribution::Bimodal),
    ] {
        let mut el = kronecker(KroneckerConfig::new(scale, 16), args.seed);
        assign_distributed_weights(&mut el, dist, args.seed + 5);
        let g = build_undirected(&el);
        let source = pick_sources(&g, 1, args.seed)[0];
        let run = run_gpu(&g, source, Variant::Rdbs(RdbsConfig::full()), args.device.clone());
        t.row(vec![
            name.into(),
            format!("{:.4}", run.elapsed_ms),
            run.buckets.len().to_string(),
            format!("{:.2}", run.result.work_ratio().unwrap_or(f64::NAN)),
        ]);
    }
    t.print();
    println!();
}

fn comparator_lineup(args: &HarnessArgs) {
    println!("## 4. Full GPU comparator lineup (k-n21-16 stand-in)\n");
    let g = kronecker_spec(21, 16).generate(args.scale_shift, args.seed);
    let source = pick_sources(&g, 1, args.seed)[0];
    let delta0 = default_delta(&g);
    let mut t = Table::new(&["implementation", "sim ms", "total updates", "launches"]);

    let rdbs_run = run_gpu(&g, source, Variant::Rdbs(RdbsConfig::full()), args.device.clone());
    t.row(vec![
        "RDBS (full)".into(),
        format!("{:.4}", rdbs_run.elapsed_ms),
        rdbs_run.result.stats.total_updates.to_string(),
        rdbs_run.counters.kernel_launches.to_string(),
    ]);
    let mut row = |name: &str, f: &mut dyn FnMut(&mut Device) -> rdbs_core::SsspResult| {
        let mut dev = Device::new(args.device.clone());
        let r = f(&mut dev);
        t.row(vec![
            name.into(),
            format!("{:.4}", dev.elapsed_ms()),
            r.stats.total_updates.to_string(),
            dev.counters().kernel_launches.to_string(),
        ]);
    };
    row("BL (topology sync)", &mut |d| bl(d, &g, source));
    row("Frontier-BF", &mut |d| frontier_bf(d, &g, source));
    row("Near-Far", &mut |d| near_far(d, &g, source, delta0));
    row("ADDS", &mut |d| adds(d, &g, source, delta0));
    row("SEP-Graph hybrid", &mut |d| sep_graph(d, &g, source).0);
    // The Gunrock-style framework SSSP (generality penalty, §1/§6.2).
    let (fw, engine) = rdbs_framework::algorithms::sssp(args.device.clone(), &g, source);
    t.row(vec![
        "framework (Gunrock-style)".into(),
        format!("{:.4}", engine.elapsed_ms()),
        fw.stats.total_updates.to_string(),
        (engine.iterations() as u64 + 1).to_string(),
    ]);
    t.print();
}
