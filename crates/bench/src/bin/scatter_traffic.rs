//! Per-buffer attribution of the multisplit scatter's global-atomic
//! reduction: run the stress-regime batch of the `multisplit` bench
//! under both scatter modes and print which device buffers lost their
//! atomic traffic (the queue tails, slot arrays and mask words the
//! warp-aggregated publish collapses). Source of the before/after
//! table in `EXPERIMENTS.md`.

use rdbs_core::gpu::{FrontierKind, ScatterMode};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::VertexId;
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;
use std::collections::BTreeMap;

const BATCH: u64 = 16;

fn main() {
    let g = kronecker_spec(21, 16).generate(8, 42);
    let n = g.num_vertices();
    let srcs: Vec<VertexId> =
        (0..BATCH).map(|i| ((i * 2_654_435_761) % n as u64) as VertexId).collect();
    let stress_cap = (n as u32 / 4).max(8);
    for kind in FrontierKind::ALL {
        // label -> [scalar atomics, multisplit atomics]
        let mut by_label: BTreeMap<&'static str, [u64; 2]> = BTreeMap::new();
        let mut totals = [0u64; 2];
        for (i, scatter) in ScatterMode::ALL.into_iter().rev().enumerate() {
            let config = ServiceConfig::rdbs(
                DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0),
            )
            .with_streams(4)
            .with_frontier(kind)
            .with_scatter(scatter)
            .with_queue_capacity(stress_cap);
            let mut svc = SsspService::new(&g, config);
            let _ = svc.batch(&srcs);
            totals[i] = svc.device_counters().expect("gpu backend").inst_executed_global_atomics;
            for (label, _, _, atomics) in svc.buffer_traffic().expect("gpu backend") {
                by_label.entry(label).or_default()[i] += atomics;
            }
            let mut by_kernel: BTreeMap<&'static str, u64> = BTreeMap::new();
            for r in svc.kernel_reports().expect("gpu backend") {
                *by_kernel.entry(r.name).or_default() += r.atomics;
            }
            let mut rows: Vec<_> = by_kernel.into_iter().filter(|&(_, a)| a > 0).collect();
            rows.sort_by_key(|&(_, a)| std::cmp::Reverse(a));
            println!("  [{} {}] atomic instructions by kernel:", scatter.name(), kind.name());
            for (name, atomics) in rows {
                println!("    {name:<22} {atomics:>9}");
            }
        }
        println!(
            "frontier {} (stress, capacity {stress_cap}): atomic ops {} -> {} ({:.2}x)",
            kind.name(),
            totals[0],
            totals[1],
            totals[0] as f64 / totals[1] as f64
        );
        let mut rows: Vec<_> = by_label.into_iter().filter(|(_, a)| a[0] + a[1] > 0).collect();
        rows.sort_by_key(|&(_, a)| std::cmp::Reverse(a[0]));
        println!("  {:<18} {:>10} {:>10}", "buffer", "scalar", "multisplit");
        for (label, [scalar, multi]) in rows {
            println!("  {label:<18} {scalar:>10} {multi:>10}");
        }
    }
}
