//! Fig. 3 — phase-1 layer activity and valid vs total updates in the
//! peak bucket of classic Δ-stepping.
//!
//! The paper reports, for Kronecker SCALE 24/25: >20 phase-1
//! iterations in the peak bucket and total updates ~4.5× the valid
//! updates (SCALE 25: 30,741,651 total vs 6,843,263 valid). This
//! harness prints the same two series at the scaled-down SCALE.

use rdbs_bench::{HarnessArgs, Table};
use rdbs_core::seq::{delta_stepping_traced, dijkstra};
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let scales: [u32; 2] = [
        24u32.saturating_sub(args.scale_shift).max(10),
        25u32.saturating_sub(args.scale_shift).max(11),
    ];
    println!(
        "Fig. 3 — phase-1 iterations of the peak bucket (Kronecker SCALE {}/{}, ef=16, Δ = 0.1·max_w)\n",
        scales[0], scales[1]
    );

    let mut rows: Vec<(u32, Vec<u64>, u64, u64)> = Vec::new();
    for &scale in &scales {
        let mut el = kronecker(KroneckerConfig::new(scale, 16), args.seed);
        uniform_weights(&mut el, args.seed + 1);
        let g = build_undirected(&el);
        let delta = (g.max_weight() / 10).max(1);
        let source = rdbs_bench::pick_sources(&g, 1, args.seed)[0];
        let oracle = dijkstra(&g, source);
        let run = delta_stepping_traced(&g, source, delta, Some(&oracle.dist));
        let peak = run.peak_bucket().expect("graph must have at least one bucket");
        let b = &run.buckets[peak];
        rows.push((scale, b.layer_active.clone(), b.phase1_updates, b.phase1_valid_updates));
    }

    let max_iter = rows.iter().map(|(_, l, _, _)| l.len()).max().unwrap_or(0).min(32);
    let mut table = Table::new(&[
        "iteration",
        &format!("SCALE={} active", rows[0].0),
        &format!("SCALE={} active", rows[1].0),
    ]);
    for i in 0..max_iter {
        table.row(vec![
            (i + 1).to_string(),
            rows[0].1.get(i).copied().unwrap_or(0).to_string(),
            rows[1].1.get(i).copied().unwrap_or(0).to_string(),
        ]);
    }
    table.print();
    println!();
    for (scale, layers, total, valid) in &rows {
        let ratio = if *valid > 0 { *total as f64 / *valid as f64 } else { f64::NAN };
        println!(
            "SCALE={scale}: {} phase-1 iterations in peak bucket; total updates {total}, valid updates {valid} (ratio {ratio:.2}x; paper: 4.49x at SCALE 25)",
            layers.len()
        );
    }
}
