//! Extension experiment (paper §7 future work): multi-GPU scaling of
//! the bucketed SSSP across device counts and graph scales.

use rdbs_bench::{pick_sources, HarnessArgs, Table};
use rdbs_core::gpu::{multi_gpu_sssp, MultiGpuConfig};
use rdbs_graph::datasets::kronecker_spec;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Extension — multi-GPU scaling (V100s over NVLink model | scale-shift {})\n",
        args.scale_shift
    );
    let mut t = Table::new(&[
        "graph",
        "devices",
        "total ms",
        "compute ms",
        "exchange ms",
        "MB moved",
        "speedup vs 1",
    ]);
    for ef in [16u32, 32] {
        let spec = kronecker_spec(21, ef);
        let g = spec.generate(args.scale_shift, args.seed);
        let source = pick_sources(&g, 1, args.seed)[0];
        let mut base = 0.0;
        for k in [1usize, 2, 4, 8] {
            let mut cfg = MultiGpuConfig::v100s(k);
            cfg.device = args.device.clone();
            // Same time-scale-preserving shrink as launch overheads:
            // the fixed per-exchange latency shrinks with the dataset.
            cfg.exchange_latency_us /= (1u64 << args.scale_shift) as f64;
            let run = multi_gpu_sssp(&g, source, &cfg);
            if k == 1 {
                base = run.elapsed_ms;
            }
            t.row(vec![
                format!("k-n21-{ef}"),
                k.to_string(),
                format!("{:.4}", run.elapsed_ms),
                format!("{:.4}", run.elapsed_ms - run.exchange_ms),
                format!("{:.4}", run.exchange_ms),
                format!("{:.2}", run.exchanged_bytes as f64 / 1e6),
                format!("{:.2}x", base / run.elapsed_ms),
            ]);
        }
        eprintln!("  done k-n21-{ef}");
    }
    t.print();
    println!("\n(1-D replicated-distance partitioning: compute scales with 1/k, the exchange grows with k — the trade-off motivating the paper's future work)");
}
