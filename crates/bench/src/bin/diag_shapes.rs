//! Diagnostic probe for the shape tests (not a paper artifact).
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_core::seq::{delta_stepping_traced, dijkstra};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::builder::build_undirected;
use rdbs_graph::datasets::kronecker_spec;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};

fn main() {
    for scale in [12u32, 13, 14] {
        let mut el = kronecker(KroneckerConfig::new(scale, 16), 1);
        uniform_weights(&mut el, 2);
        let g = build_undirected(&el);
        let oracle = dijkstra(&g, 1);
        let run = delta_stepping_traced(&g, 1, g.max_weight() / 10, Some(&oracle.dist));
        let occ: Vec<u64> = run.buckets.iter().map(|b| b.active).collect();
        let peak = run.peak_bucket().unwrap();
        let b = &run.buckets[peak];
        println!(
            "scale {scale}: occ {:?} peak {peak} layers {} upd {} valid {}",
            &occ[..occ.len().min(12)],
            b.layer_active.len(),
            b.phase1_updates,
            b.phase1_valid_updates
        );
    }
    for shift in [8u32, 7, 6] {
        let g = kronecker_spec(21, 16).generate(shift, 5);
        let f = 1.0 / (1u64 << shift) as f64;
        let v = run_gpu(
            &g,
            2,
            Variant::Rdbs(RdbsConfig::full()),
            DeviceConfig::v100().with_overhead_scale(f).with_cache_scale(f),
        );
        let t = run_gpu(
            &g,
            2,
            Variant::Rdbs(RdbsConfig::full()),
            DeviceConfig::t4().with_overhead_scale(f).with_cache_scale(f),
        );
        println!(
            "shift {shift}: v100 {:.4} t4 {:.4} ratio {:.2}",
            v.elapsed_ms,
            t.elapsed_ms,
            t.elapsed_ms / v.elapsed_ms
        );
    }
}
