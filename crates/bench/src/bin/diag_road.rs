//! Diagnostic: road stand-in connectivity (not a paper artifact).
use rdbs_graph::datasets::by_name;
use rdbs_graph::stats::graph_stats;
fn main() {
    for shift in [9u32, 6, 4] {
        let g = by_name("road-TX").unwrap().generate(shift, 42);
        let st = graph_stats(&g);
        println!(
            "shift {shift}: n {} largest component {} ({:.1}%) comps {} diam {}",
            st.num_vertices,
            st.largest_component,
            100.0 * st.largest_component as f64 / st.num_vertices as f64,
            st.num_components,
            st.pseudo_diameter
        );
    }
}
