//! Simulator micro-benchmarks: host-side throughput of the SIMT
//! replay engine on characteristic kernel patterns (coalesced vs
//! scattered loads, contended vs spread atomics, dynamic parallelism).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdbs_gpu_sim::{Device, DeviceConfig};

const N: usize = 1 << 14;

fn bench_memory_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_memory_patterns");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function("coalesced_load", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceConfig::v100());
            let buf = d.alloc("a", N);
            let out = d.alloc("o", N);
            d.launch("coalesced", N as u64, |lane| {
                let i = lane.tid() as u32;
                let x = lane.ld(buf, i);
                lane.st(out, i, x + 1);
            });
            d.elapsed_ms()
        });
    });

    group.bench_function("scattered_load", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceConfig::v100());
            let buf = d.alloc("a", N);
            let out = d.alloc("o", N);
            d.launch("scattered", N as u64, |lane| {
                let i = lane.tid() as u32;
                let j = (i.wrapping_mul(2654435761)) % N as u32;
                let x = lane.ld(buf, j);
                lane.st(out, i, x + 1);
            });
            d.elapsed_ms()
        });
    });

    group.bench_function("contended_atomics", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceConfig::v100());
            let cell = d.alloc("c", 1);
            d.launch("atomic_storm", N as u64, |lane| {
                lane.atomic_add(cell, 0, 1);
            });
            d.read_word(cell, 0)
        });
    });

    group.bench_function("dynamic_parallelism", |b| {
        b.iter(|| {
            let mut d = Device::new(DeviceConfig::v100());
            let out = d.alloc("o", N);
            d.launch("parent", 32, move |lane| {
                let base = lane.tid() as u32 * (N as u32 / 32);
                lane.launch_child("child", (N / 32) as u64, move |cl| {
                    let i = base + cl.tid() as u32;
                    cl.st(out, i, i);
                });
            });
            d.counters().child_kernel_launches
        });
    });

    group.finish();
}

criterion_group!(benches, bench_memory_patterns);
criterion_main!(benches);
