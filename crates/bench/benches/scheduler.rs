//! Concurrent-scheduler bench: batch throughput of the resident
//! service answered sequentially vs spread across 2 and 4 simulated
//! command streams, on the default Kronecker configuration. Each
//! configuration is timed over several host repetitions (median + MAD
//! after outlier fencing), and the simulator's deterministic clock
//! gives the noise-free makespan the speedup claim is graded on.
//!
//! Writes the machine-readable record to `results/BENCH_pr5.json`.

use criterion::robust_stats;
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::stats::BatchStats;
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;
use std::fmt::Write as _;
use std::time::Instant;

const BATCH: usize = 16;
const REPS: usize = 9;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, 42)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn sources(n: usize) -> Vec<VertexId> {
    (0..BATCH as u64).map(|i| ((i * 2_654_435_761) % n as u64) as VertexId).collect()
}

/// One measured configuration of the scheduler.
struct Row {
    name: &'static str,
    streams: usize,
    host_median_ms: f64,
    host_mad_ms: f64,
    kept: usize,
    rejected: usize,
    stats: BatchStats,
}

impl Row {
    /// Deterministic simulated batch throughput, queries per second.
    fn sim_qps(&self) -> f64 {
        BATCH as f64 / (self.stats.sim_batch_ms / 1e3)
    }
}

fn measure(g: &Csr, srcs: &[VertexId], name: &'static str, streams: usize) -> Row {
    let mut host_ms = Vec::with_capacity(REPS);
    let mut stats = None;
    for _ in 0..REPS {
        // Fresh service per rep: identical cold-pool state, so the
        // simulated clock is bit-identical across reps.
        let config = ServiceConfig::rdbs(device()).with_streams(streams);
        let mut svc = SsspService::new(g, config);
        let started = Instant::now();
        let results = svc.batch(srcs);
        host_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(results.len(), srcs.len());
        stats = Some(svc.stats().clone());
    }
    let stats = stats.expect("at least one rep ran");
    assert_eq!(stats.fallbacks, 0, "{name}: batch degraded to the host oracle");
    let r = robust_stats(&host_ms);
    Row {
        name,
        streams,
        host_median_ms: r.median,
        host_mad_ms: r.mad,
        kept: r.kept,
        rejected: r.rejected,
        stats,
    }
}

fn json_row(out: &mut String, row: &Row, last: bool) {
    let p50 = row.stats.sim_latency_percentile_ms(50.0).unwrap_or(0.0);
    let p99 = row.stats.sim_latency_percentile_ms(99.0).unwrap_or(0.0);
    writeln!(
        out,
        "    {{\n      \"name\": \"{}\",\n      \"streams\": {},\n      \
         \"host_median_ms\": {:.4},\n      \"host_mad_ms\": {:.4},\n      \
         \"host_samples_kept\": {},\n      \"host_samples_rejected\": {},\n      \
         \"sim_batch_ms\": {:.4},\n      \"sim_qps\": {:.2},\n      \
         \"sim_p50_ms\": {:.4},\n      \"sim_p99_ms\": {:.4},\n      \
         \"inflight_peak\": {},\n      \"escalations\": {},\n      \
         \"fallbacks\": {}\n    }}{}",
        row.name,
        row.streams,
        row.host_median_ms,
        row.host_mad_ms,
        row.kept,
        row.rejected,
        row.stats.sim_batch_ms,
        row.sim_qps(),
        p50,
        p99,
        row.stats.inflight_peak,
        row.stats.escalations,
        row.stats.fallbacks,
        if last { "" } else { "," },
    )
    .expect("writing to a String cannot fail");
}

fn main() {
    let g = graph();
    let srcs = sources(g.num_vertices());
    println!(
        "scheduler bench: kronecker scale-13 ef16 ({} vertices, {} edges), batch {BATCH}",
        g.num_vertices(),
        g.num_edges()
    );

    let rows = [
        measure(&g, &srcs, "sequential", 1),
        measure(&g, &srcs, "streams2", 2),
        measure(&g, &srcs, "streams4", 4),
    ];
    let seq_ms = rows[0].stats.sim_batch_ms;
    for row in &rows {
        println!(
            "  {:<12} host {:8.3} ms ±{:6.3}  sim makespan {:8.3} ms ({:6.2}x)  \
             qps {:8.1}  peak {}  esc {}",
            row.name,
            row.host_median_ms,
            row.host_mad_ms,
            row.stats.sim_batch_ms,
            seq_ms / row.stats.sim_batch_ms,
            row.sim_qps(),
            row.stats.inflight_peak,
            row.stats.escalations,
        );
    }

    let speedup4 = seq_ms / rows[2].stats.sim_batch_ms;
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"concurrent_scheduler\",\n");
    writeln!(
        out,
        "  \"graph\": {{\"family\": \"kronecker\", \"scale\": 13, \"edgefactor\": 16, \
         \"seed\": 42, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    )
    .unwrap();
    writeln!(out, "  \"device\": \"v100 (overhead/cache scaled 1/256)\",").unwrap();
    writeln!(out, "  \"batch\": {BATCH},").unwrap();
    writeln!(out, "  \"host_reps\": {REPS},").unwrap();
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut out, row, i + 1 == rows.len());
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        "  \"sim_speedup_streams2\": {:.4},\n  \"sim_speedup_streams4\": {:.4},\n  \
         \"acceptance_streams4_ge_1_5x\": {}\n}}",
        seq_ms / rows[1].stats.sim_batch_ms,
        speedup4,
        speedup4 >= 1.5
    )
    .unwrap();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_pr5.json");
    std::fs::write(path, &out).expect("write results/BENCH_pr5.json");
    println!("wrote {path}");
    assert!(
        speedup4 >= 1.5,
        "acceptance: --streams 4 sim speedup {speedup4:.2}x is below the 1.5x floor"
    );
}
