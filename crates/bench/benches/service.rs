//! Resident-service bench: the amortization claim in numbers. A batch
//! of sources answered by the pooled [`rdbs_core::service`] vs the
//! same batch re-running the one-shot entry point (fresh device +
//! upload + allocation per query), plus the pool's acquire/release
//! round-trip cost in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_core::service::{Backend, ServiceConfig, SsspService};
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::{Device, DeviceConfig};
use rdbs_graph::datasets::kronecker_spec;

const BATCH: usize = 16;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, 42)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn sources(n: usize) -> Vec<VertexId> {
    (0..BATCH as u64).map(|i| ((i * 2_654_435_761) % n as u64) as VertexId).collect()
}

fn bench_batch_vs_one_shot(c: &mut Criterion) {
    let g = graph();
    let srcs = sources(g.num_vertices());
    let variant = Variant::Rdbs(RdbsConfig::full());
    let mut group = c.benchmark_group("service_batch16_k-n13-16");
    group.sample_size(10);

    group.bench_function("one_shot_x16", |b| {
        b.iter(|| {
            srcs.iter().map(|&s| run_gpu(&g, s, variant, device()).result.dist[7]).sum::<u32>()
        });
    });
    group.bench_function("service_resident_x16", |b| {
        b.iter(|| {
            let config = ServiceConfig {
                backend: Backend::Gpu(variant),
                device: device(),
                delta0: None,
                streams: 1,
                queue_capacity: None,
            };
            let mut svc = SsspService::new(&g, config);
            svc.batch(&srcs).iter().map(|r| r.dist[7]).sum::<u32>()
        });
    });
    group.finish();
}

fn bench_pool_roundtrip(c: &mut Criterion) {
    use rdbs_core::service::pool::BufferPool;
    let mut device = Device::new(DeviceConfig::test_tiny());
    let mut pool = BufferPool::new();
    let mut group = c.benchmark_group("buffer_pool");
    group.bench_function("acquire_release_64k_words", |b| {
        b.iter(|| {
            let buf = pool.acquire(&mut device, "bench", 65_536);
            pool.release(&mut device, buf);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_one_shot, bench_pool_roundtrip);
criterion_main!(benches);
