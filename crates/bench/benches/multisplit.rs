//! Scatter-mode bench: the resident service answering the same
//! 4-stream batch with the per-element scalar publish path (one tail
//! `atomicAdd` plus one slot `atomicExch` per push) versus the
//! warp-aggregated multisplit scatter (one tail `atomicAdd` per
//! (warp × bucket), coalesced reserved stores into the won range), on
//! every frontier layout and in both provisioning regimes of the
//! frontier bench. The claim graded here: the aggregated path cuts
//! `inst_executed_global_atomics` at least 2x in the stress regime on
//! at least one frontier, with bit-identical distances and no change
//! in escalations or fallbacks.
//!
//! Writes the machine-readable record to `results/BENCH_pr10.json`.

use criterion::robust_stats;
use rdbs_core::gpu::{FrontierKind, ScatterMode};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::stats::BatchStats;
use rdbs_core::{Csr, Dist, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;
use std::fmt::Write as _;
use std::time::Instant;

const BATCH: usize = 16;
const REPS: usize = 5;
/// Same stress provisioning as the frontier bench, so the scalar rows
/// reproduce the `BENCH_pr8.json` counters exactly.
const STRESS_DIVISOR: u32 = 4;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, 42)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn sources(n: usize) -> Vec<VertexId> {
    (0..BATCH as u64).map(|i| ((i * 2_654_435_761) % n as u64) as VertexId).collect()
}

/// One measured (scatter, frontier, provisioning) configuration.
struct Row {
    scatter: ScatterMode,
    frontier: FrontierKind,
    regime: &'static str,
    capacity: Option<u32>,
    host_median_ms: f64,
    stats: BatchStats,
    global_atomics: u64,
    /// Distance vectors of the whole batch, for the bit-identity gate.
    dists: Vec<Vec<Dist>>,
}

fn measure(
    g: &Csr,
    srcs: &[VertexId],
    scatter: ScatterMode,
    kind: FrontierKind,
    regime: &'static str,
    capacity: Option<u32>,
) -> Row {
    let mut host_ms = Vec::with_capacity(REPS);
    let mut stats = None;
    let mut global_atomics = 0;
    let mut dists = Vec::new();
    for _ in 0..REPS {
        // Fresh service per rep: identical cold-pool state, so the
        // simulated clock and counters are bit-identical across reps.
        let mut config =
            ServiceConfig::rdbs(device()).with_streams(4).with_frontier(kind).with_scatter(scatter);
        if let Some(cap) = capacity {
            config = config.with_queue_capacity(cap);
        }
        let mut svc = SsspService::new(g, config);
        let started = Instant::now();
        let results = svc.batch(srcs);
        host_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(results.len(), srcs.len());
        dists = results.into_iter().map(|r| r.dist).collect();
        stats = Some(svc.stats().clone());
        global_atomics = svc.device_counters().expect("gpu backend").inst_executed_global_atomics;
    }
    let stats = stats.expect("at least one rep ran");
    assert_eq!(
        stats.fallbacks,
        0,
        "{}/{}/{regime}: batch degraded to the host oracle",
        scatter.name(),
        kind.name()
    );
    Row {
        scatter,
        frontier: kind,
        regime,
        capacity,
        host_median_ms: robust_stats(&host_ms).median,
        stats,
        global_atomics,
        dists,
    }
}

fn json_row(out: &mut String, row: &Row, last: bool) {
    writeln!(
        out,
        "    {{\n      \"scatter\": \"{}\",\n      \"frontier\": \"{}\",\n      \
         \"regime\": \"{}\",\n      \"queue_capacity\": {},\n      \
         \"host_median_ms\": {:.4},\n      \"sim_batch_ms\": {:.4},\n      \
         \"inst_executed_global_atomics\": {},\n      \"escalations\": {},\n      \
         \"fallbacks\": {}\n    }}{}",
        row.scatter.name(),
        row.frontier.name(),
        row.regime,
        row.capacity.map_or("null".into(), |c| c.to_string()),
        row.host_median_ms,
        row.stats.sim_batch_ms,
        row.global_atomics,
        row.stats.escalations,
        row.stats.fallbacks,
        if last { "" } else { "," },
    )
    .expect("writing to a String cannot fail");
}

fn main() {
    let g = graph();
    let srcs = sources(g.num_vertices());
    let stress_cap = (g.num_vertices() as u32 / STRESS_DIVISOR).max(8);
    println!(
        "multisplit bench: kronecker scale-13 ef16 ({} vertices, {} edges), batch {BATCH}, \
         stress capacity {stress_cap}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for scatter in ScatterMode::ALL {
        for kind in FrontierKind::ALL {
            rows.push(measure(&g, &srcs, scatter, kind, "ample", None));
        }
        for kind in FrontierKind::ALL {
            rows.push(measure(&g, &srcs, scatter, kind, "stress", Some(stress_cap)));
        }
    }
    for row in &rows {
        println!(
            "  {:<10} {:<8} {:<8} host {:8.3} ms  sim {:8.3} ms  atomics {:>9}  esc {}  fb {}",
            row.scatter.name(),
            row.frontier.name(),
            row.regime,
            row.host_median_ms,
            row.stats.sim_batch_ms,
            row.global_atomics,
            row.stats.escalations,
            row.stats.fallbacks,
        );
    }

    let find = |scatter: ScatterMode, kind: FrontierKind, regime: &str| {
        rows.iter()
            .find(|r| r.scatter == scatter && r.frontier == kind && r.regime == regime)
            .expect("row measured")
    };

    // Bit-identity gate: the aggregated publish is a pure scheduling
    // change — every (frontier, regime) pair must answer the whole
    // batch with the exact distance vectors of the scalar path.
    for kind in FrontierKind::ALL {
        for regime in ["ample", "stress"] {
            let scalar = find(ScatterMode::Scalar, kind, regime);
            let multi = find(ScatterMode::Multisplit, kind, regime);
            assert_eq!(
                scalar.dists,
                multi.dists,
                "{}/{regime}: multisplit distances diverge from scalar",
                kind.name()
            );
            assert_eq!(
                multi.stats.escalations,
                scalar.stats.escalations,
                "{}/{regime}: multisplit changed the escalation count",
                kind.name()
            );
        }
    }

    let mut best_ratio = 0.0f64;
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"multisplit_scatter\",\n");
    writeln!(
        out,
        "  \"graph\": {{\"family\": \"kronecker\", \"scale\": 13, \"edgefactor\": 16, \
         \"seed\": 42, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    )
    .unwrap();
    writeln!(out, "  \"device\": \"v100 (overhead/cache scaled 1/256)\",").unwrap();
    writeln!(out, "  \"batch\": {BATCH},").unwrap();
    writeln!(out, "  \"streams\": 4,").unwrap();
    writeln!(out, "  \"host_reps\": {REPS},").unwrap();
    writeln!(out, "  \"stress_queue_capacity\": {stress_cap},").unwrap();
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut out, row, i + 1 == rows.len());
    }
    out.push_str("  ],\n  \"stress_atomics_scalar_over_multisplit\": {\n");
    for (i, kind) in FrontierKind::ALL.into_iter().enumerate() {
        let scalar = find(ScatterMode::Scalar, kind, "stress");
        let multi = find(ScatterMode::Multisplit, kind, "stress");
        let ratio = scalar.global_atomics as f64 / multi.global_atomics as f64;
        best_ratio = best_ratio.max(ratio);
        writeln!(
            out,
            "    \"{}\": {:.4}{}",
            kind.name(),
            ratio,
            if i + 1 == FrontierKind::ALL.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(
        out,
        "  }},\n  \"acceptance_stress_atomics_halved\": {},\n  \
         \"acceptance_bit_identical_distances\": true,\n  \
         \"acceptance_no_new_escalations\": true\n}}",
        best_ratio >= 2.0,
    )
    .unwrap();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_pr10.json");
    std::fs::write(path, &out).expect("write results/BENCH_pr10.json");
    println!("wrote {path}");
    assert!(
        best_ratio >= 2.0,
        "acceptance: best stress-regime atomic reduction {best_ratio:.2}x is below 2x"
    );
}
