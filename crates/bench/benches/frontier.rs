//! Frontier-layout bench: the resident service answering a 4-stream
//! batch with each pluggable frontier (single workload queues, bucket
//! wheel, MLMQ), in two provisioning regimes — ample queues, and
//! deliberately under-provisioned queues so overflow pressure is real.
//! The claims graded here are the MLMQ headline: fewer global-memory
//! atomic instructions than the single layout (lane-hashed sub-queues
//! spread the tail counters), and under overflow stress the spill
//! level absorbs the pressure on-device where the single layout climbs
//! the escalation ladder — with zero host fallbacks either way.
//!
//! Writes the machine-readable record to `results/BENCH_pr8.json`.

use criterion::robust_stats;
use rdbs_core::gpu::{FrontierKind, ScatterMode};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::stats::BatchStats;
use rdbs_core::{Csr, VertexId};
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;
use std::fmt::Write as _;
use std::time::Instant;

const BATCH: usize = 16;
const REPS: usize = 5;
/// Under-provisioned per-queue capacity for the stress regime, as a
/// divisor of the vertex count. Small enough that frontier-heavy
/// buckets overflow the single layout's workload queues; the MLMQ's
/// aggregate slots (4x the configured capacity across levels and
/// sub-queues) still cover every pending vertex, so spills defer work
/// instead of dropping it.
const STRESS_DIVISOR: u32 = 4;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, 42)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn sources(n: usize) -> Vec<VertexId> {
    (0..BATCH as u64).map(|i| ((i * 2_654_435_761) % n as u64) as VertexId).collect()
}

/// One measured (frontier, provisioning) configuration.
struct Row {
    frontier: FrontierKind,
    regime: &'static str,
    capacity: Option<u32>,
    host_median_ms: f64,
    host_mad_ms: f64,
    stats: BatchStats,
    global_atomics: u64,
}

impl Row {
    fn sim_qps(&self) -> f64 {
        BATCH as f64 / (self.stats.sim_batch_ms / 1e3)
    }
}

fn measure(
    g: &Csr,
    srcs: &[VertexId],
    kind: FrontierKind,
    regime: &'static str,
    capacity: Option<u32>,
) -> Row {
    let mut host_ms = Vec::with_capacity(REPS);
    let mut stats = None;
    let mut global_atomics = 0;
    for _ in 0..REPS {
        // Fresh service per rep: identical cold-pool state, so the
        // simulated clock and counters are bit-identical across reps.
        // Scalar scatter pins the publish path this record was graded
        // under; the scatter-mode axis has its own bench (multisplit).
        let mut config = ServiceConfig::rdbs(device())
            .with_streams(4)
            .with_frontier(kind)
            .with_scatter(ScatterMode::Scalar);
        if let Some(cap) = capacity {
            config = config.with_queue_capacity(cap);
        }
        let mut svc = SsspService::new(g, config);
        let started = Instant::now();
        let results = svc.batch(srcs);
        host_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(results.len(), srcs.len());
        stats = Some(svc.stats().clone());
        global_atomics = svc.device_counters().expect("gpu backend").inst_executed_global_atomics;
    }
    let stats = stats.expect("at least one rep ran");
    assert_eq!(stats.fallbacks, 0, "{}/{regime}: batch degraded to the host oracle", kind.name());
    let r = robust_stats(&host_ms);
    Row {
        frontier: kind,
        regime,
        capacity,
        host_median_ms: r.median,
        host_mad_ms: r.mad,
        stats,
        global_atomics,
    }
}

fn json_row(out: &mut String, row: &Row, last: bool) {
    writeln!(
        out,
        "    {{\n      \"frontier\": \"{}\",\n      \"regime\": \"{}\",\n      \
         \"queue_capacity\": {},\n      \"host_median_ms\": {:.4},\n      \
         \"host_mad_ms\": {:.4},\n      \"sim_batch_ms\": {:.4},\n      \
         \"sim_qps\": {:.2},\n      \"inst_executed_global_atomics\": {},\n      \
         \"inflight_peak\": {},\n      \"escalations\": {},\n      \
         \"fallbacks\": {}\n    }}{}",
        row.frontier.name(),
        row.regime,
        row.capacity.map_or("null".into(), |c| c.to_string()),
        row.host_median_ms,
        row.host_mad_ms,
        row.stats.sim_batch_ms,
        row.sim_qps(),
        row.global_atomics,
        row.stats.inflight_peak,
        row.stats.escalations,
        row.stats.fallbacks,
        if last { "" } else { "," },
    )
    .expect("writing to a String cannot fail");
}

fn main() {
    let g = graph();
    let srcs = sources(g.num_vertices());
    let stress_cap = (g.num_vertices() as u32 / STRESS_DIVISOR).max(8);
    println!(
        "frontier bench: kronecker scale-13 ef16 ({} vertices, {} edges), batch {BATCH}, \
         stress capacity {stress_cap}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for kind in FrontierKind::ALL {
        rows.push(measure(&g, &srcs, kind, "ample", None));
    }
    for kind in FrontierKind::ALL {
        rows.push(measure(&g, &srcs, kind, "stress", Some(stress_cap)));
    }
    for row in &rows {
        println!(
            "  {:<8} {:<8} host {:8.3} ms ±{:6.3}  sim makespan {:8.3} ms  qps {:8.1}  \
             atomics {:>9}  esc {}  fb {}",
            row.frontier.name(),
            row.regime,
            row.host_median_ms,
            row.host_mad_ms,
            row.stats.sim_batch_ms,
            row.sim_qps(),
            row.global_atomics,
            row.stats.escalations,
            row.stats.fallbacks,
        );
    }

    let find = |kind: FrontierKind, regime: &str| {
        rows.iter().find(|r| r.frontier == kind && r.regime == regime).expect("row measured")
    };
    let single_stress = find(FrontierKind::Single, "stress");
    let mlmq_stress = find(FrontierKind::Mlmq, "stress");
    let mlmq_ample = find(FrontierKind::Mlmq, "ample");
    let single_ample = find(FrontierKind::Single, "ample");
    let atomics_ratio = mlmq_stress.global_atomics as f64 / single_stress.global_atomics as f64;

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"pluggable_frontier\",\n");
    writeln!(
        out,
        "  \"graph\": {{\"family\": \"kronecker\", \"scale\": 13, \"edgefactor\": 16, \
         \"seed\": 42, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    )
    .unwrap();
    writeln!(out, "  \"device\": \"v100 (overhead/cache scaled 1/256)\",").unwrap();
    writeln!(out, "  \"batch\": {BATCH},").unwrap();
    writeln!(out, "  \"streams\": 4,").unwrap();
    writeln!(out, "  \"host_reps\": {REPS},").unwrap();
    writeln!(out, "  \"stress_queue_capacity\": {stress_cap},").unwrap();
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut out, row, i + 1 == rows.len());
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        "  \"stress_atomics_mlmq_over_single\": {:.4},\n  \
         \"ample_atomics_mlmq_over_single\": {:.4},\n  \
         \"acceptance_mlmq_fewer_stress_atomics\": {},\n  \
         \"acceptance_single_escalated_under_stress\": {},\n  \
         \"acceptance_mlmq_spilled_on_device\": {}\n}}",
        atomics_ratio,
        mlmq_ample.global_atomics as f64 / single_ample.global_atomics as f64,
        mlmq_stress.global_atomics < single_stress.global_atomics,
        single_stress.stats.escalations > 0,
        mlmq_stress.stats.escalations == 0 && mlmq_stress.stats.fallbacks == 0,
    )
    .unwrap();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_pr8.json");
    std::fs::write(path, &out).expect("write results/BENCH_pr8.json");
    println!("wrote {path}");
    assert!(
        mlmq_stress.global_atomics < single_stress.global_atomics,
        "acceptance: MLMQ stress atomics {} not below single {}",
        mlmq_stress.global_atomics,
        single_stress.global_atomics
    );
    assert!(
        single_stress.stats.escalations > 0,
        "acceptance: the stress capacity must push the single layout into the escalation ladder"
    );
    assert!(
        mlmq_stress.stats.escalations == 0 && mlmq_stress.stats.fallbacks == 0,
        "acceptance: MLMQ must absorb the same pressure via spill, on-device"
    );
}
