//! Ablation benches for the design choices DESIGN.md calls out:
//! per-optimization variants, bucket-width sensitivity, adaptive vs
//! fixed Δ. (Criterion measures host wall-clock of simulating each
//! configuration; the *simulated* times are what the fig08 harness
//! binary reports.)

use criterion::{criterion_group, criterion_main, Criterion};
use rdbs_baselines::run_adds;
use rdbs_core::gpu::{run_gpu, RdbsConfig, Variant};
use rdbs_core::Csr;
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, 42)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn bench_variants(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("gpu_variants_k-n13-16");
    group.sample_size(10);

    for variant in [
        Variant::Baseline,
        Variant::Rdbs(RdbsConfig::basyn_only()),
        Variant::Rdbs(RdbsConfig::basyn_pro()),
        Variant::Rdbs(RdbsConfig::basyn_adwl()),
        Variant::Rdbs(RdbsConfig::full()),
        Variant::Rdbs(RdbsConfig::sync_delta()),
    ] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| run_gpu(&g, 3, variant, device()).elapsed_ms);
        });
    }
    group.bench_function("ADDS", |b| b.iter(|| run_adds(&g, 3, device()).elapsed_ms));
    group.finish();
}

fn bench_delta_sensitivity(c: &mut Criterion) {
    // Ablation: bucket width Δ₀ — the Dijkstra↔Bellman-Ford spectrum
    // of §2.2.
    let g = graph();
    let mut group = c.benchmark_group("delta0_sensitivity");
    group.sample_size(10);
    for delta0 in [10u32, 100, 1000, 10_000] {
        let cfg = RdbsConfig { delta0: Some(delta0), ..RdbsConfig::full() };
        group.bench_function(format!("delta0_{delta0}"), |b| {
            b.iter(|| run_gpu(&g, 3, Variant::Rdbs(cfg), device()).elapsed_ms);
        });
    }
    group.finish();
}

fn bench_adaptive_vs_fixed_delta(c: &mut Criterion) {
    // Ablation: Eq. 1–2 adaptive width (BASYN) vs fixed width
    // synchronous processing.
    let g = graph();
    let mut group = c.benchmark_group("adaptive_delta");
    group.sample_size(10);
    group.bench_function("adaptive_eq12", |b| {
        b.iter(|| run_gpu(&g, 3, Variant::Rdbs(RdbsConfig::basyn_only()), device()).elapsed_ms);
    });
    group.bench_function("fixed_sync", |b| {
        b.iter(|| run_gpu(&g, 3, Variant::Rdbs(RdbsConfig::sync_delta()), device()).elapsed_ms);
    });
    group.finish();
}

criterion_group!(benches, bench_variants, bench_delta_sensitivity, bench_adaptive_vs_fixed_delta);
criterion_main!(benches);
