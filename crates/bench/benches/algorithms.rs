//! Wall-clock benchmarks of the native CPU SSSP implementations —
//! real (non-simulated) performance numbers, the basis of Table 2's
//! CPU column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdbs_baselines::pq_delta_stepping;
use rdbs_core::cpu::{async_bucket_sssp, parallel_delta_stepping};
use rdbs_core::seq::{bellman_ford, delta_stepping, dijkstra};
use rdbs_core::{default_delta, Csr};
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};

fn graph() -> Csr {
    let mut el = kronecker(KroneckerConfig::new(13, 8), 42);
    uniform_weights(&mut el, 7);
    build_undirected(&el)
}

fn bench_cpu_sssp(c: &mut Criterion) {
    let g = graph();
    let delta = default_delta(&g);
    let threads = rdbs_core::cpu::default_threads();
    let mut group = c.benchmark_group("cpu_sssp_k-n13-8");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.sample_size(10);

    group.bench_function("dijkstra", |b| b.iter(|| dijkstra(&g, 1).reached()));
    group.bench_function("bellman_ford", |b| b.iter(|| bellman_ford(&g, 1).reached()));
    group.bench_function("delta_stepping", |b| b.iter(|| delta_stepping(&g, 1, delta).reached()));
    group.bench_function(BenchmarkId::new("parallel_delta", threads), |b| {
        b.iter(|| parallel_delta_stepping(&g, 1, delta, threads).reached());
    });
    group.bench_function(BenchmarkId::new("async_bucket", threads), |b| {
        b.iter(|| async_bucket_sssp(&g, 1, delta, threads).reached());
    });
    group.bench_function(BenchmarkId::new("pq_delta", threads), |b| {
        b.iter(|| pq_delta_stepping(&g, 1, threads, None).reached());
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_sssp);
criterion_main!(benches);
