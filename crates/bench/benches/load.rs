//! Open-loop load bench: qps-vs-p99 curves for the service's traffic
//! tier at several stream counts, on the default Kronecker
//! configuration. Each point offers a seeded Poisson workload at a
//! multiple of the measured per-stream service rate and records what
//! admission control answered, shed, and how the answered sojourn tail
//! behaved against the SLO. A second experiment runs a skewed
//! (hot-source) mix with the answer cache enabled and certifies every
//! cache hit bit-identical to a fresh device run.
//!
//! The load-bearing claims graded here:
//!
//! * at overload the tier *sheds* (typed rejections) instead of
//!   letting the answered tail blow the SLO — answered p99 stays at
//!   or under the SLO on every point of every curve;
//! * a skewed source mix produces a non-zero cache hit rate, and the
//!   hits are bit-identical to fresh answers.
//!
//! Writes the machine-readable record to `results/BENCH_load.json`.

use rdbs_core::service::traffic::{AnswerSource, Outcome, SourceMix, TrafficConfig, TrafficReport};
use rdbs_core::service::{ServiceConfig, SsspService};
use rdbs_core::Csr;
use rdbs_gpu_sim::DeviceConfig;
use rdbs_graph::datasets::kronecker_spec;
use std::fmt::Write as _;

const OFFERED: usize = 96;
const SEED: u64 = 42;
const STREAM_COUNTS: [usize; 2] = [1, 4];
const LOAD_MULTS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];
// Conservative admission: per-source service times on the Kronecker
// graph spread to ~2x the EWMA, so the margin reserves that much.
const SHED_MARGIN: f64 = 2.0;

fn graph() -> Csr {
    kronecker_spec(21, 16).generate(8, SEED)
}

fn device() -> DeviceConfig {
    DeviceConfig::v100().with_overhead_scale(1.0 / 256.0).with_cache_scale(1.0 / 256.0)
}

fn service(g: &Csr, streams: usize) -> SsspService {
    SsspService::new(g, ServiceConfig::rdbs(device()).with_streams(streams))
}

/// One cold query's simulated service time, ms — the unit the sweep's
/// rates and SLOs are expressed in.
fn probe_service_ms(g: &Csr) -> f64 {
    let mut svc = service(g, 1);
    svc.query(0);
    svc.stats().per_query_sim_ms[0]
}

struct Point {
    mult: f64,
    qps: f64,
    report: TrafficReport,
}

fn measure(g: &Csr, streams: usize, mult: f64, qps: f64, slo_ms: f64) -> Point {
    // Fresh service per point: identical cold state, bit-identical
    // simulated clock across reruns.
    let mut svc = service(g, streams);
    let mut cfg = TrafficConfig::poisson(qps, OFFERED, slo_ms, SEED);
    cfg.shed_margin = SHED_MARGIN;
    let before = svc.stats();
    let report = svc.serve_open_loop(&cfg);
    let after = svc.stats();
    report
        .check_accounting(&before, &after)
        .unwrap_or_else(|m| panic!("streams {streams} x{mult}: accounting inconsistency: {m}"));
    Point { mult, qps, report }
}

fn json_point(out: &mut String, p: &Point, last: bool) {
    let r = &p.report;
    writeln!(
        out,
        "      {{\"load_mult\": {:.2}, \"qps\": {:.1}, \"offered\": {}, \
         \"answered\": {}, \"shed\": {}, \"answered_p50_ms\": {:.4}, \
         \"answered_p99_ms\": {:.4}, \"deadline_violations\": {}, \
         \"makespan_ms\": {:.4}}}{}",
        p.mult,
        p.qps,
        r.offered,
        r.exact,
        r.shed,
        r.answered_percentile_ms(50.0).unwrap_or(0.0),
        r.answered_percentile_ms(99.0).unwrap_or(0.0),
        r.deadline_violations,
        r.makespan_ms,
        if last { "" } else { "," },
    )
    .expect("writing to a String cannot fail");
}

fn main() {
    let g = graph();
    let service_ms = probe_service_ms(&g);
    let slo_ms = 4.0 * service_ms;
    println!(
        "load bench: kronecker scale-13 ef16 ({} vertices, {} edges), \
         service {service_ms:.3} ms, SLO {slo_ms:.3} ms, {OFFERED} offered per point",
        g.num_vertices(),
        g.num_edges()
    );

    // Sweep: per stream count, offered load from well under to 4x over
    // the saturation rate of that many streams.
    let mut curves: Vec<(usize, Vec<Point>)> = Vec::new();
    for &streams in &STREAM_COUNTS {
        let saturation_qps = streams as f64 * 1e3 / service_ms;
        let mut points = Vec::new();
        for &mult in &LOAD_MULTS {
            let p = measure(&g, streams, mult, mult * saturation_qps, slo_ms);
            println!(
                "  streams {streams} x{mult:<4} qps {:9.1}: answered {:3} shed {:3}  \
                 p50 {:8.4} ms  p99 {:8.4} ms  makespan {:9.3} ms",
                p.qps,
                p.report.exact,
                p.report.shed,
                p.report.answered_percentile_ms(50.0).unwrap_or(0.0),
                p.report.answered_percentile_ms(99.0).unwrap_or(0.0),
                p.report.makespan_ms,
            );
            points.push(p);
        }
        curves.push((streams, points));
    }

    // Acceptance (a): every point's answered p99 meets the SLO, and
    // the overloaded tail of every curve actually shed load.
    let mut p99_ok = true;
    let mut sheds_at_overload = true;
    for (streams, points) in &curves {
        for p in points {
            if let Some(p99) = p.report.answered_percentile_ms(99.0) {
                if p99 > slo_ms + 1e-9 {
                    println!(
                        "FAIL: streams {streams} x{} answered p99 {p99:.4} ms > SLO {slo_ms:.4}",
                        p.mult
                    );
                    p99_ok = false;
                }
            }
        }
        let overloaded = points.last().expect("sweep is non-empty");
        if overloaded.report.shed == 0 {
            println!("FAIL: streams {streams} x{} shed nothing at overload", overloaded.mult);
            sheds_at_overload = false;
        }
    }

    // Experiment 2 — skewed sources with the cache on: hits must occur
    // and replay bit-identical answers.
    let mut svc = service(&g, STREAM_COUNTS[1]);
    let mut cfg = TrafficConfig::poisson(0.5 * 1e3 / service_ms, OFFERED, 1e9, SEED).with_cache();
    cfg.sources = SourceMix::Hot { hot_sources: 8, hot_weight: 0.8 };
    let before = svc.stats();
    let cache_report = svc.serve_open_loop(&cfg);
    let after = svc.stats();
    cache_report
        .check_accounting(&before, &after)
        .unwrap_or_else(|m| panic!("cache experiment: accounting inconsistency: {m}"));
    let mut fresh = service(&g, 1);
    let mut bit_identical = true;
    for o in &cache_report.outcomes {
        if let Outcome::Exact { result, via: AnswerSource::Cache, .. } = o {
            if fresh.query(result.source).dist != result.dist {
                bit_identical = false;
            }
        }
    }
    let hit_rate = cache_report.hit_rate();
    println!(
        "  cache (hot 8 @ 0.8): {} hits / {} offered ({:.1}%), bit-identical: {}",
        cache_report.cache_hits,
        cache_report.offered,
        100.0 * hit_rate,
        bit_identical
    );

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"open_loop_load\",\n");
    writeln!(
        out,
        "  \"graph\": {{\"family\": \"kronecker\", \"scale\": 13, \"edgefactor\": 16, \
         \"seed\": {SEED}, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    )
    .unwrap();
    writeln!(out, "  \"device\": \"v100 (overhead/cache scaled 1/256)\",").unwrap();
    writeln!(out, "  \"arrivals\": \"poisson (seeded, simulated time)\",").unwrap();
    writeln!(out, "  \"offered_per_point\": {OFFERED},").unwrap();
    writeln!(out, "  \"service_ms\": {service_ms:.4},").unwrap();
    writeln!(out, "  \"slo_ms\": {slo_ms:.4},").unwrap();
    writeln!(out, "  \"shed_margin\": {SHED_MARGIN},").unwrap();
    out.push_str("  \"curves\": [\n");
    for (ci, (streams, points)) in curves.iter().enumerate() {
        writeln!(out, "    {{\"streams\": {streams}, \"points\": [").unwrap();
        for (i, p) in points.iter().enumerate() {
            json_point(&mut out, p, i + 1 == points.len());
        }
        writeln!(out, "    ]}}{}", if ci + 1 == curves.len() { "" } else { "," }).unwrap();
    }
    out.push_str("  ],\n");
    writeln!(
        out,
        "  \"cache\": {{\"source_mix\": \"hot 8 @ 0.8\", \"offered\": {}, \"hits\": {}, \
         \"hit_rate\": {:.4}, \"bit_identical\": {}}},",
        cache_report.offered, cache_report.cache_hits, hit_rate, bit_identical
    )
    .unwrap();
    writeln!(
        out,
        "  \"acceptance_answered_p99_le_slo\": {p99_ok},\n  \
         \"acceptance_sheds_at_overload\": {sheds_at_overload},\n  \
         \"acceptance_cache_hits_bit_identical\": {}\n}}",
        hit_rate > 0.0 && bit_identical
    )
    .unwrap();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_load.json");
    std::fs::write(path, &out).expect("write results/BENCH_load.json");
    println!("wrote {path}");
    assert!(p99_ok, "acceptance: an answered p99 exceeded the SLO");
    assert!(sheds_at_overload, "acceptance: an overloaded curve shed nothing");
    assert!(hit_rate > 0.0, "acceptance: the hot mix produced no cache hits");
    assert!(bit_identical, "acceptance: a cache hit diverged from a fresh answer");
}
