//! Adversarial-search bench: wall-clock cost of the budgeted placement
//! search (scout + targeted arm + equal-budget uniform baseline) and
//! the schedule fuzzer on the quick GPU entries, with the quality
//! gates asserted — zero silent-wrong answers anywhere, and the
//! targeted arm strictly beating uniform spray on at least one cell.
//!
//! Writes the machine-readable record to `results/BENCH_adversary.json`.

use criterion::robust_stats;
use rdbs_conformance::{fuzz_schedules, run_adversary, AdversaryOptions, FuzzOptions};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 7;

struct Row {
    name: &'static str,
    host_median_ms: f64,
    host_mad_ms: f64,
    cells: usize,
    deepest: u32,
    targeted_wins: usize,
}

fn measure_search(name: &'static str, budget: u64, max_evals: u32) -> Row {
    let opts = AdversaryOptions {
        quick: true,
        entry_filter: Some("gpu/".into()),
        graph_filter: Some("erdos".into()),
        budget,
        max_evals,
        seed: 3,
        corpus_keep: 4,
        frontier: None,
    };
    let mut host_ms = Vec::with_capacity(REPS);
    let mut report = None;
    for _ in 0..REPS {
        let started = Instant::now();
        let r = run_adversary(&opts, |_| {});
        host_ms.push(started.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    let report = report.expect("at least one rep ran");
    assert!(report.is_green(), "{name}: adversarial search found a silent wrong answer");
    assert!(
        report.targeted_beats_uniform(),
        "{name}: targeted placement never beat equal-budget uniform spray"
    );
    let r = robust_stats(&host_ms);
    Row {
        name,
        host_median_ms: r.median,
        host_mad_ms: r.mad,
        cells: report.runs.len(),
        deepest: report.runs.iter().map(|x| x.best_targeted).max().unwrap_or(0),
        targeted_wins: report.runs.iter().filter(|x| x.best_targeted > x.best_uniform).count(),
    }
}

fn measure_fuzz(name: &'static str, perms: u32) -> Row {
    let opts = FuzzOptions {
        quick: true,
        entry_filter: Some("gpu/".into()),
        perms,
        seed: 1,
        frontier: None,
    };
    let mut host_ms = Vec::with_capacity(REPS);
    let mut report = None;
    for _ in 0..REPS {
        let started = Instant::now();
        let r = fuzz_schedules(&opts, |_| {});
        host_ms.push(started.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    let report = report.expect("at least one rep ran");
    assert!(report.is_green(), "{name}: a permuted schedule broke or the specimen went blind");
    let r = robust_stats(&host_ms);
    Row {
        name,
        host_median_ms: r.median,
        host_mad_ms: r.mad,
        cells: report.cells.len(),
        deepest: 0,
        targeted_wins: 0,
    }
}

fn main() {
    // Faulted attempts are allowed to panic (recovery catches them and
    // the search scores the outcome) — keep the default hook from
    // spraying backtraces over the bench output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let rows = [
        measure_search("search_budget32", 32, 8),
        measure_search("search_budget64", 64, 12),
        measure_fuzz("fuzz_perms16", 16),
        measure_fuzz("fuzz_perms32", 32),
    ];
    std::panic::set_hook(prev_hook);
    for row in &rows {
        println!(
            "  {:<16} host {:8.3} ms ±{:6.3}  {} cells  deepest rung {}  targeted wins {}",
            row.name,
            row.host_median_ms,
            row.host_mad_ms,
            row.cells,
            row.deepest,
            row.targeted_wins,
        );
    }

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"adversary\",\n");
    writeln!(out, "  \"host_reps\": {REPS},").unwrap();
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"host_median_ms\": {:.4}, \"host_mad_ms\": {:.4}, \
             \"cells\": {}, \"deepest_rung\": {}, \"targeted_wins\": {}}}{}",
            row.name,
            row.host_median_ms,
            row.host_mad_ms,
            row.cells,
            row.deepest,
            row.targeted_wins,
            if i + 1 == rows.len() { "" } else { "," },
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("cannot create results/");
    std::fs::write("results/BENCH_adversary.json", out).expect("cannot write bench record");
    println!("adversary bench: wrote results/BENCH_adversary.json");
}
