//! Preprocessing cost: the property-driven reordering pipeline
//! (degree relabel, per-row weight sort, heavy offsets) and graph
//! construction, at two scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdbs_graph::builder::build_undirected;
use rdbs_graph::generate::{kronecker, uniform_weights, KroneckerConfig};
use rdbs_graph::reorder;
use rdbs_graph::Csr;

fn graph(scale: u32) -> Csr {
    let mut el = kronecker(KroneckerConfig::new(scale, 8), 42);
    uniform_weights(&mut el, 7);
    build_undirected(&el)
}

fn bench_pro_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pro_preprocessing");
    group.sample_size(10);
    for scale in [11u32, 13] {
        let g = graph(scale);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("full_pro", scale), &g, |b, g| {
            b.iter(|| reorder::pro(g, 100).0.num_edges());
        });
        group.bench_with_input(BenchmarkId::new("degree_relabel", scale), &g, |b, g| {
            b.iter(|| reorder::degree_descending(g).len());
        });
        group.bench_with_input(BenchmarkId::new("weight_sort", scale), &g, |b, g| {
            b.iter(|| {
                let mut h = g.clone();
                reorder::sort_edges_by_weight(&mut h);
                h.num_edges()
            });
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_construction");
    group.sample_size(10);
    for scale in [11u32, 13] {
        let mut el = kronecker(KroneckerConfig::new(scale, 8), 42);
        uniform_weights(&mut el, 7);
        group.throughput(Throughput::Elements(el.len() as u64));
        group.bench_with_input(BenchmarkId::new("build_undirected", scale), &el, |b, el| {
            b.iter(|| build_undirected(el).num_edges());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pro_pipeline, bench_build);
criterion_main!(benches);
