//! Workload classification for adaptive load balancing (paper §4.2).
//!
//! Active vertices are classified by their number of *light* edges:
//!
//! * `< β = 32` → **small** list, processed by the parent thread;
//! * `β ..= α-1` (`α = 256`) → **medium** list, processed by one Warp
//!   (32 lanes);
//! * `>= α` → **large** list, processed via dynamic parallelism with
//!   Block-granularity child kernels (256 threads; vertices above 4096
//!   light edges get `⌈n/4096⌉` blocks — in the simulator, a child
//!   kernel with one thread per edge).
//!
//! Deviation from the paper: §4.2's text reads `⌊n/4096⌋` blocks, but a
//! floor leaves the remainder edges (up to 4095 of them) uncovered —
//! the simulator's child kernel relaxes one thread per edge, so the
//! cost model must charge for every edge. We use ceiling division; the
//! paper's floor is assumed to be shorthand for the usual grid-size
//! round-up.

/// Warp-granularity threshold β (number of light edges).
pub const BETA: u32 = 32;
/// Block-granularity threshold α.
pub const ALPHA: u32 = 256;
/// Edges per block above which multiple blocks are assigned.
pub const BLOCK_EDGE_LIMIT: u32 = 4096;

/// Which workload list an active vertex belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Parent thread handles the edges itself.
    Small,
    /// One warp (32 lanes) cooperates.
    Medium,
    /// One or more blocks via a dynamic child kernel.
    Large,
}

/// Classify by light-edge count (§4.2's α/β rules).
#[inline]
pub fn classify(light_edges: u32) -> WorkloadClass {
    if light_edges >= ALPHA {
        WorkloadClass::Large
    } else if light_edges >= BETA {
        WorkloadClass::Medium
    } else {
        WorkloadClass::Small
    }
}

/// Number of 256-thread blocks assigned to a large vertex: one per
/// 4096 light edges, rounded *up* so remainder edges are still owned
/// by a block (ceiling division; see the module doc for why this
/// deviates from the paper's `⌊n/4096⌋` wording).
#[inline]
pub fn blocks_for(light_edges: u32) -> u32 {
    if light_edges <= BLOCK_EDGE_LIMIT {
        1
    } else {
        light_edges.div_ceil(BLOCK_EDGE_LIMIT)
    }
}

/// List index used for the three device-side queues.
impl WorkloadClass {
    pub const COUNT: usize = 3;

    #[inline]
    pub fn index(self) -> usize {
        match self {
            WorkloadClass::Small => 0,
            WorkloadClass::Medium => 1,
            WorkloadClass::Large => 2,
        }
    }

    /// Gang width used when the wave engine processes this list.
    #[inline]
    pub fn gang_width(self) -> u32 {
        match self {
            WorkloadClass::Small => 1,
            WorkloadClass::Medium => 32,
            WorkloadClass::Large => 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(0), WorkloadClass::Small);
        assert_eq!(classify(6), WorkloadClass::Small); // paper's example
        assert_eq!(classify(31), WorkloadClass::Small);
        assert_eq!(classify(32), WorkloadClass::Medium);
        assert_eq!(classify(224), WorkloadClass::Medium); // paper's example
        assert_eq!(classify(255), WorkloadClass::Medium);
        assert_eq!(classify(256), WorkloadClass::Large);
        assert_eq!(classify(4000), WorkloadClass::Large); // paper's example
    }

    #[test]
    fn block_assignment() {
        assert_eq!(blocks_for(300), 1);
        assert_eq!(blocks_for(4096), 1);
        assert_eq!(blocks_for(8192), 2);
        // A remainder demands one extra block: 8193 edges do not fit in
        // two 4096-edge blocks.
        assert_eq!(blocks_for(8193), 3);
        assert_eq!(blocks_for(10_000), 3); // ⌈10000/4096⌉
    }

    #[test]
    fn list_indices_distinct() {
        let idx: Vec<_> = [WorkloadClass::Small, WorkloadClass::Medium, WorkloadClass::Large]
            .iter()
            .map(|c| c.index())
            .collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(WorkloadClass::Small.gang_width(), 1);
        assert_eq!(WorkloadClass::Medium.gang_width(), 32);
        assert_eq!(WorkloadClass::Large.gang_width(), 256);
    }
}
