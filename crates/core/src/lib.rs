//! # RDBS SSSP algorithms
//!
//! The paper's contribution (§4): a Δ-stepping SSSP for GPU combining
//!
//! * **PRO** — property-driven reordering (preprocessing, lives in
//!   `rdbs-graph::reorder`; toggled via [`gpu::RdbsConfig`]),
//! * **ADWL** — adaptive load balancing (small/medium/large workload
//!   lists, Warp/Block gangs, dynamic parallelism — [`workload`]),
//! * **BASYN** — bucket-aware asynchronous execution with the adaptive
//!   bucket width of Eq. 1–2 ([`adaptive_delta`]).
//!
//! [`gpu::rdbs`] implements the full algorithm and every ablation the
//! paper evaluates in Fig. 8; [`gpu::bl()`](fn@gpu::bl) is the paper's synchronous
//! push-mode baseline. [`seq`] holds the sequential references
//! (Dijkstra is the correctness oracle for everything else), [`cpu`]
//! the native multithreaded implementation, [`stats`] the valid/total
//! update accounting of §3.3/Fig. 9, and [`validate`] the oracle
//! comparison helpers.

pub mod adaptive_delta;
pub mod analysis;
pub mod cpu;
pub mod dynamic;
pub mod gpu;
pub mod paths;
pub mod recover;
pub mod seq;
pub mod service;
pub mod stats;
pub mod validate;
pub mod workload;

pub use rdbs_graph::{Csr, Dist, VertexId, Weight, INF};
pub use stats::{SsspResult, UpdateStats};

/// Saturating tentative distance `du + w`.
///
/// Distances saturate at [`INF`]: a sum that would overflow (or pass
/// through an unreachable `du == INF`) clamps to `INF`, which every
/// relaxation rejects (`INF < dist[v]` is never true), so overflowing
/// paths degrade to "unreachable" instead of wrapping around and
/// corrupting finite distances. All sequential kernels relax through
/// this helper; the GPU kernels apply the same `saturating_add`.
#[inline(always)]
pub fn saturating_relax(du: Dist, w: Weight) -> Dist {
    du.saturating_add(w)
}

/// Pick the default bucket width Δ₀ for a graph.
///
/// Dense/skewed graphs use the paper's empirical `Δ = 0.1` of §3.2
/// scaled to the weight range (the Graph500 reference draws weights in
/// `[0, 1)`; ours are `1..=1000`). Sparse high-diameter graphs (road
/// networks, average degree < 4) get a much wider Δ₀: with almost no
/// alternative routes, a wide bucket costs little extra work but
/// avoids thousands of near-empty buckets — the standard per-graph Δ
/// tuning every Δ-stepping implementation performs, and consistent
/// with the paper's own road-TX numbers (work ratio 6.83, its highest,
/// yet runtime comparable to ADDS).
pub fn default_delta(graph: &Csr) -> Weight {
    let n = graph.num_vertices().max(1);
    let avg_degree = graph.num_edges() as f64 / n as f64;
    let maxw = graph.max_weight().max(1);
    if avg_degree < 4.0 {
        maxw.saturating_mul(4)
    } else if avg_degree < 9.0 {
        (maxw / 2).max(1)
    } else {
        (maxw / 10).max(1)
    }
}
