//! Path reconstruction and point-to-point queries.
//!
//! The GPU kernels produce distance arrays; applications (routing,
//! §1's "road layout management" and "network routing design") need
//! the actual paths. [`build_parent_tree`] recovers a shortest-path
//! tree from *any* correct distance array in one O(m) pass, so it
//! composes with every implementation in the workspace. A
//! [`bidirectional_dijkstra`] point-to-point query and a multi-source
//! wrapper round out the query API.

use crate::seq::dijkstra::dijkstra;
use crate::stats::SsspResult;
use crate::{Csr, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parent of each vertex in a shortest-path tree; the source maps to
/// itself, unreached vertices to `u32::MAX`.
pub const NO_PARENT: VertexId = u32::MAX;

/// Recover a shortest-path tree from a correct distance array: for
/// every reached vertex, pick a predecessor `u` with
/// `dist[u] + w(u,v) == dist[v]` (ties broken by smallest `u` for
/// determinism).
///
/// # Panics
/// Panics (in debug builds) if `dist` is not a fixed point of
/// relaxation — run `validate::check_relaxed` first when unsure.
pub fn build_parent_tree(graph: &Csr, source: VertexId, dist: &[Dist]) -> Vec<VertexId> {
    let n = graph.num_vertices();
    assert_eq!(dist.len(), n);
    let mut parent = vec![NO_PARENT; n];
    if (source as usize) < n && dist[source as usize] == 0 {
        parent[source as usize] = source;
    }
    for (u, v, w) in graph.all_edges() {
        let (du, dv) = (dist[u as usize], dist[v as usize]);
        if du == INF || dv == INF {
            continue;
        }
        if du as u64 + w as u64 == dv as u64 && v != source {
            let cur = parent[v as usize];
            if cur == NO_PARENT || u < cur {
                parent[v as usize] = u;
            }
        }
    }
    parent
}

/// Extract the path `source → target` from a parent tree; `None` if
/// the target is unreached.
pub fn extract_path(
    parent: &[VertexId],
    source: VertexId,
    target: VertexId,
) -> Option<Vec<VertexId>> {
    if parent[target as usize] == NO_PARENT {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parent[cur as usize];
        debug_assert_ne!(cur, NO_PARENT, "broken parent tree");
        path.push(cur);
        if path.len() > parent.len() {
            panic!("parent tree contains a cycle");
        }
    }
    path.reverse();
    Some(path)
}

/// Check that `path` is a real path in `graph` whose total weight is
/// `expected`.
pub fn verify_path(graph: &Csr, path: &[VertexId], expected: Dist) -> Result<(), String> {
    if path.is_empty() {
        return Err("empty path".into());
    }
    let mut total = 0u64;
    for pair in path.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        let w = graph
            .edges(u)
            .filter(|&(dst, _)| dst == v)
            .map(|(_, w)| w)
            .min()
            .ok_or_else(|| format!("no edge {u} -> {v}"))?;
        total += w as u64;
    }
    if total != expected as u64 {
        return Err(format!("path weighs {total}, expected {expected}"));
    }
    Ok(())
}

/// Multi-source SSSP: distance to the *nearest* of several sources
/// (standard virtual-super-source construction, done by seeding the
/// heap with all sources at distance 0).
pub fn multi_source_dijkstra(graph: &Csr, sources: &[VertexId]) -> SsspResult {
    let n = graph.num_vertices();
    assert!(!sources.is_empty(), "need at least one source");
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        dist[s as usize] = 0;
        heap.push(Reverse((0, s)));
    }
    let mut stats = crate::stats::UpdateStats::default();
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.edges(u) {
            stats.checks += 1;
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                stats.total_updates += 1;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { source: sources[0], dist, stats }
}

/// Bidirectional Dijkstra point-to-point query: returns the shortest
/// `source → target` distance (or `None`), typically exploring far
/// fewer vertices than a full SSSP. Assumes the symmetric graphs this
/// workspace uses (the backward search reuses the forward adjacency).
pub fn bidirectional_dijkstra(graph: &Csr, source: VertexId, target: VertexId) -> Option<Dist> {
    let n = graph.num_vertices();
    assert!((source as usize) < n && (target as usize) < n);
    if source == target {
        return Some(0);
    }
    let mut dist_f = vec![INF; n];
    let mut dist_b = vec![INF; n];
    let mut heap_f: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    let mut heap_b: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist_f[source as usize] = 0;
    dist_b[target as usize] = 0;
    heap_f.push(Reverse((0, source)));
    heap_b.push(Reverse((0, target)));
    let mut best: u64 = u64::MAX;

    loop {
        let top_f = heap_f.peek().map_or(u64::MAX, |Reverse((d, _))| *d as u64);
        let top_b = heap_b.peek().map_or(u64::MAX, |Reverse((d, _))| *d as u64);
        if top_f.saturating_add(top_b) >= best || (top_f == u64::MAX && top_b == u64::MAX) {
            break;
        }
        // Expand the side with the smaller frontier distance.
        let forward = top_f <= top_b;
        let (heap, dist_mine, dist_other) = if forward {
            (&mut heap_f, &mut dist_f, &dist_b)
        } else {
            (&mut heap_b, &mut dist_b, &dist_f)
        };
        if let Some(Reverse((d, u))) = heap.pop() {
            if d > dist_mine[u as usize] {
                continue;
            }
            for (v, w) in graph.edges(u) {
                let nd = d + w;
                if nd < dist_mine[v as usize] {
                    dist_mine[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
                if dist_other[v as usize] != INF {
                    best = best.min(nd as u64 + dist_other[v as usize] as u64);
                }
            }
        }
    }
    if best == u64::MAX {
        None
    } else {
        Some(best as Dist)
    }
}

/// Convenience: full shortest path between two vertices via Dijkstra +
/// parent reconstruction.
pub fn shortest_path(
    graph: &Csr,
    source: VertexId,
    target: VertexId,
) -> Option<(Dist, Vec<VertexId>)> {
    let r = dijkstra(graph, source);
    let d = r.dist[target as usize];
    if d == INF {
        return None;
    }
    let parents = build_parent_tree(graph, source, &r.dist);
    let path = extract_path(&parents, source, target)?;
    Some((d, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(150, 700, seed);
        uniform_weights(&mut el, seed + 40);
        build_undirected(&el)
    }

    #[test]
    fn parent_tree_reconstructs_valid_paths() {
        let g = graph(1);
        let r = dijkstra(&g, 0);
        let parents = build_parent_tree(&g, 0, &r.dist);
        for v in 0..g.num_vertices() as VertexId {
            if r.dist[v as usize] == INF {
                assert_eq!(parents[v as usize], NO_PARENT);
                continue;
            }
            let path = extract_path(&parents, 0, v).expect("reached vertex needs a path");
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), v);
            verify_path(&g, &path, r.dist[v as usize]).unwrap();
        }
    }

    #[test]
    fn parent_tree_composes_with_gpu_results() {
        let g = graph(2);
        let run = crate::gpu::run_gpu(
            &g,
            3,
            crate::gpu::Variant::Rdbs(crate::gpu::RdbsConfig::full()),
            rdbs_gpu_sim::DeviceConfig::test_tiny(),
        );
        let parents = build_parent_tree(&g, 3, &run.result.dist);
        let far = (0..g.num_vertices() as VertexId)
            .filter(|&v| run.result.dist[v as usize] != INF)
            .max_by_key(|&v| run.result.dist[v as usize])
            .unwrap();
        let path = extract_path(&parents, 3, far).unwrap();
        verify_path(&g, &path, run.result.dist[far as usize]).unwrap();
    }

    #[test]
    fn multi_source_is_pointwise_min() {
        let g = graph(3);
        let sources = [0u32, 50, 99];
        let multi = multi_source_dijkstra(&g, &sources);
        let singles: Vec<_> = sources.iter().map(|&s| dijkstra(&g, s).dist).collect();
        for v in 0..g.num_vertices() {
            let expect = singles.iter().map(|d| d[v]).min().unwrap();
            assert_eq!(multi.dist[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn bidirectional_matches_dijkstra() {
        let g = graph(4);
        let r = dijkstra(&g, 7);
        for target in [0u32, 33, 77, 149] {
            let bd = bidirectional_dijkstra(&g, 7, target);
            let expect =
                if r.dist[target as usize] == INF { None } else { Some(r.dist[target as usize]) };
            assert_eq!(bd, expect, "target {target}");
        }
        assert_eq!(bidirectional_dijkstra(&g, 5, 5), Some(0));
    }

    #[test]
    fn bidirectional_handles_disconnected() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 3)]);
        let g = build_undirected(&el);
        assert_eq!(bidirectional_dijkstra(&g, 0, 3), None);
        assert_eq!(bidirectional_dijkstra(&g, 0, 1), Some(3));
    }

    #[test]
    fn shortest_path_convenience() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 2), (1, 2, 2), (0, 2, 10), (2, 3, 1)]);
        let g = build_undirected(&el);
        let (d, path) = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(d, 5);
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!(shortest_path(&g, 0, 0).is_some());
    }

    #[test]
    fn verify_path_rejects_wrong_claims() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 2), (1, 2, 2)]);
        let g = build_undirected(&el);
        assert!(verify_path(&g, &[0, 1, 2], 4).is_ok());
        assert!(verify_path(&g, &[0, 1, 2], 5).is_err());
        assert!(verify_path(&g, &[0, 2], 4).is_err()); // no such edge
        assert!(verify_path(&g, &[], 0).is_err());
    }
}
