//! Resident SSSP service: upload the graph once, answer many sources.
//!
//! The one-shot entry points ([`crate::gpu::rdbs::rdbs`],
//! [`crate::gpu::bl()`](fn@crate::gpu::bl), [`crate::gpu::multi_gpu_sssp`]) pay the full
//! setup price per query: graph H2D upload, buffer allocation, Δ
//! controller warm-up, and (with PRO) the host-side reorder. A
//! workload that asks many sources of the same graph — betweenness
//! sampling, reachability sweeps, all-pairs seeds — re-pays all of it
//! for no reason. [`SsspService`] keeps everything that is a function
//! of the *graph* resident on the device and recycles everything that
//! is a function of the *query* through a size-class
//! [`pool::BufferPool`]:
//!
//! * the CSR arrays ([`GraphArrays`]) are uploaded once per
//!   [`SsspService::load_graph`] generation;
//! * distance vector, workload lists, bucket membership queue,
//!   pending marks and scan cells are acquired from the pool and
//!   **reset** (an explicit, cheap cursor/fill step) per query —
//!   never reallocated;
//! * the [`DeltaController`] is reused across queries, so a batch
//!   warm-starts each query's Δ₀ from the previous query's converged
//!   width (Δ-stepping with `atomicMin` relaxations is exact under
//!   any Δ schedule, so distances stay bit-identical to one-shot);
//! * with PRO, the heavy-edge offsets are refreshed on-device at
//!   query start — a finished run leaves them at per-vertex widths.
//!
//! [`SsspService::batch`] answers a slice of sources and accounts the
//! amortization in [`BatchStats`]. With [`ServiceConfig::streams`] > 1
//! the single-GPU backend spreads a batch across simulated command
//! streams ([`rdbs_gpu_sim::StreamSet`]): every in-flight query owns a
//! pool-leased *lane* (distance vector, queue set, Δ controller, and
//! its own heavy-offset copy under PRO) while sharing the single
//! resident graph upload, and the scheduler steps whichever stream is
//! least busy — at bucket granularity for RDBS variants — so answers
//! stay bit-identical to a sequential batch.
//!
//! A query whose device attempt reports a [`QueueOverflow`] is
//! replayed **on the device** with its queue set re-acquired from the
//! pool one size class larger ([`BatchStats::escalations`]); only past
//! the escalation ceiling — one class above the vertex count, which no
//! fault-free frontier exceeds — is it re-answered by host Dijkstra
//! and counted in [`BatchStats::fallbacks`]. The service never returns
//! a silently truncated answer.

pub mod cache;
pub mod pool;
pub mod traffic;

use crate::adaptive_delta::DeltaController;
use crate::gpu::bl::{bl_on, BlScratch};
use crate::gpu::buffers::{DeviceQueue, GraphArrays, GraphBuffers, QueueOverflow};
use crate::gpu::frontier::{
    AnyFrontier, FrontierKind, MlmqFrontier, ScatterMode, WheelFrontier, WorkloadQueues,
};
use crate::gpu::multi::{MultiGpuConfig, MultiGpuState};
use crate::gpu::rdbs::{self, rdbs_on, RdbsDriver, RdbsScratch};
use crate::gpu::{RdbsConfig, Variant};
use crate::seq::dijkstra;
use crate::stats::{BatchStats, SsspResult};
use crate::{default_delta, Csr, VertexId, Weight, INF};
use pool::BufferPool;
use rdbs_gpu_sim::{
    Buf, Device, DeviceConfig, FaultEvent, FaultPlan, FaultSpec, SanConfig, SanViolation, StreamSet,
};
use rdbs_graph::reorder::Permutation;
use std::time::Instant;

/// Which execution engine answers the service's queries.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// One simulated device running `Variant` (BL or any RDBS
    /// ablation).
    Gpu(Variant),
    /// `k` simulated devices running the bulk-synchronous multi-GPU
    /// port.
    MultiGpu(usize),
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub backend: Backend,
    /// Per-device hardware model.
    pub device: DeviceConfig,
    /// Δ₀ override for the multi-GPU backend (single-GPU variants
    /// carry their own in [`crate::gpu::RdbsConfig`]).
    pub delta0: Option<Weight>,
    /// Command streams a batch may be spread across on the single-GPU
    /// backend (1 = sequential; clamped to the batch size at
    /// dispatch). Each extra stream leases its own lane of per-query
    /// buffers from the pool; the graph upload stays shared.
    pub streams: usize,
    /// Logical capacity of each lane's frontier queues (`None` → the
    /// vertex count, which no fault-free frontier outgrows). Smaller
    /// values under-provision the frontier deliberately — the
    /// overflow-stress knob: the single layout escalates through the
    /// pool ladder, the MLMQ absorbs the pressure by spilling.
    pub queue_capacity: Option<u32>,
}

impl ServiceConfig {
    /// Full RDBS (BASYN+PRO+ADWL) on one device.
    pub fn rdbs(device: DeviceConfig) -> Self {
        Self {
            backend: Backend::Gpu(Variant::Rdbs(crate::gpu::RdbsConfig::full())),
            device,
            delta0: None,
            streams: 1,
            queue_capacity: None,
        }
    }

    /// The synchronous push baseline on one device.
    pub fn baseline(device: DeviceConfig) -> Self {
        Self {
            backend: Backend::Gpu(Variant::Baseline),
            device,
            delta0: None,
            streams: 1,
            queue_capacity: None,
        }
    }

    /// The multi-GPU port over `devices` shards (NVLink-class
    /// interconnect defaults).
    pub fn multi(devices: usize, device: DeviceConfig) -> Self {
        Self {
            backend: Backend::MultiGpu(devices),
            device,
            delta0: None,
            streams: 1,
            queue_capacity: None,
        }
    }

    /// Spread batches across `streams` command streams.
    pub fn with_streams(mut self, streams: usize) -> Self {
        assert!(streams >= 1, "a service needs at least one stream");
        self.streams = streams;
        self
    }

    /// Run the RDBS backend on the given frontier layout (no effect on
    /// the baseline and multi-GPU backends, which have no frontier).
    pub fn with_frontier(mut self, frontier: FrontierKind) -> Self {
        if let Backend::Gpu(Variant::Rdbs(cfg)) = &mut self.backend {
            cfg.frontier = frontier;
        }
        self
    }

    /// Run the RDBS backend with the given frontier scatter mode (no
    /// effect on the baseline and multi-GPU backends).
    pub fn with_scatter(mut self, scatter: ScatterMode) -> Self {
        if let Backend::Gpu(Variant::Rdbs(cfg)) = &mut self.backend {
            cfg.scatter = scatter;
        }
        self
    }

    /// Under- (or over-) provision each lane's frontier queues at
    /// `capacity` logical slots instead of the vertex count.
    pub fn with_queue_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "a frontier needs at least one slot");
        self.queue_capacity = Some(capacity);
        self
    }
}

/// Why a query could not be answered by the device path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A device queue's sticky overflow cell was raised — the device
    /// attempt may have dropped work and its output is untrusted.
    /// Surfaced only once queue-set escalation has hit its ceiling.
    Overflow(QueueOverflow),
    /// The source is not a vertex of the resident graph.
    SourceOutOfRange { source: VertexId, n: u32 },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overflow(e) => write!(f, "{e}"),
            ServiceError::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for a {n}-vertex graph")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueueOverflow> for ServiceError {
    fn from(e: QueueOverflow) -> Self {
        ServiceError::Overflow(e)
    }
}

/// Per-query device scratch, shaped by the variant.
// The RDBS variant is a few hundred bytes of queue handles (the wheel
// frontier holds four slot sets); it lives in a per-lane slot, not a
// hot collection, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
enum Scratch {
    Rdbs(RdbsScratch),
    Bl(BlScratch),
}

/// One query's exclusive device lease: everything the concurrent
/// scheduler must keep disjoint between in-flight queries. Lane 0
/// always exists and serves sequential queries; extra lanes are
/// created on demand by concurrent batches and recycled with the
/// graph generation.
struct QueryLane {
    dist: Buf,
    scratch: Scratch,
    controller: DeltaController,
    /// Private heavy-offset buffer (PRO variants, lanes ≥ 1 only).
    /// The uploaded [`GraphArrays::heavy`] is per-query *mutable*
    /// state — runs re-split it as buckets settle — so concurrent
    /// lanes each own a copy; lane 0 keeps the uploaded buffer,
    /// preserving the sequential path bit-for-bit.
    heavy: Option<Buf>,
    /// Whether the lane's heavy offsets must be recomputed on-device
    /// before its next run (fresh lanes, and every lane after a run
    /// has re-split them).
    heavy_dirty: bool,
}

/// Resident single-device state.
struct GpuState {
    device: Device,
    variant: Variant,
    /// PRO relabelling of the current graph, when the variant
    /// preprocesses.
    perm: Option<Permutation>,
    arrays: GraphArrays,
    lanes: Vec<QueryLane>,
}

enum State {
    Gpu(Box<GpuState>),
    Multi(Box<MultiGpuState>),
}

/// A resident, batched SSSP service — see the module docs.
pub struct SsspService {
    config: ServiceConfig,
    state: State,
    /// The graph queries actually run on (PRO-relabelled when the
    /// variant preprocesses; the original otherwise).
    graph: Csr,
    pool: BufferPool,
    stats: BatchStats,
    /// H2D uploads one graph generation costs (charged once; avoided
    /// by every follow-up query).
    uploads_per_graph: u64,
    /// Queries answered against the current graph generation.
    queries_on_graph: u64,
    /// Graph generation: 0 for the construction graph, +1 per
    /// [`SsspService::load_graph`]. The traffic tier's answer cache is
    /// keyed by `(generation, source)`, so stale answers can never
    /// survive a graph swap.
    generation: u64,
    /// Monotonicity-audit hits of the most recent device attempt
    /// (only populated while faults are armed).
    last_audit_hits: usize,
    /// The traffic tier's answer cache, lazily created on the first
    /// [`SsspService::serve_queries`] call that enables caching.
    traffic_cache: Option<cache::AnswerCache>,
}

impl SsspService {
    /// Build the backend, upload `graph` once, and pre-acquire the
    /// per-query buffers from the pool.
    pub fn new(graph: &Csr, config: ServiceConfig) -> Self {
        let mut pool = BufferPool::new();
        let (state, run_graph, uploads) = match config.backend {
            Backend::Gpu(variant) => {
                let mut device = Device::new(config.device.clone());
                let (run_graph, perm) = prepare(graph, variant);
                let n = run_graph.num_vertices() as u32;
                let arrays = GraphArrays::upload(&mut device, &run_graph);
                let uploads = device.counters().h2d_uploads;
                let dist = pool.acquire(&mut device, "dist", n as usize);
                let scratch =
                    build_scratch(&mut pool, &mut device, n, variant, config.queue_capacity);
                let controller = fresh_controller(&device, &run_graph, variant);
                let lane0 =
                    QueryLane { dist, scratch, controller, heavy: None, heavy_dirty: false };
                let st = GpuState { device, variant, perm, arrays, lanes: vec![lane0] };
                (State::Gpu(Box::new(st)), run_graph, uploads)
            }
            Backend::MultiGpu(k) => {
                let st = MultiGpuState::new(graph, &multi_config(&config, k));
                let uploads = st.graph_uploads();
                (State::Multi(Box::new(st)), graph.clone(), uploads)
            }
        };
        let stats = BatchStats { graph_uploads: uploads, ..Default::default() };
        Self {
            config,
            state,
            graph: run_graph,
            pool,
            stats,
            uploads_per_graph: uploads,
            queries_on_graph: 0,
            generation: 0,
            last_audit_hits: 0,
            traffic_cache: None,
        }
    }

    /// Swap in a new graph generation: the old generation's buffers go
    /// back to the pool (per-query buffers of the new generation are
    /// recycled from them when the size classes match), the new CSR is
    /// uploaded once, and the Δ controller starts fresh.
    pub fn load_graph(&mut self, graph: &Csr) {
        match &mut self.state {
            State::Gpu(st) => {
                release_gpu_buffers(&self.pool, st);
                let (run_graph, perm) = prepare(graph, st.variant);
                let n = run_graph.num_vertices() as u32;
                let before = st.device.counters().h2d_uploads;
                st.arrays = GraphArrays::upload(&mut st.device, &run_graph);
                self.uploads_per_graph = st.device.counters().h2d_uploads - before;
                let dist = self.pool.acquire(&mut st.device, "dist", n as usize);
                let scratch = build_scratch(
                    &mut self.pool,
                    &mut st.device,
                    n,
                    st.variant,
                    self.config.queue_capacity,
                );
                let controller = fresh_controller(&st.device, &run_graph, st.variant);
                st.lanes.push(QueryLane {
                    dist,
                    scratch,
                    controller,
                    heavy: None,
                    heavy_dirty: false,
                });
                st.perm = perm;
                self.graph = run_graph;
            }
            State::Multi(_) => {
                let Backend::MultiGpu(k) = self.config.backend else { unreachable!() };
                let st = MultiGpuState::new(graph, &multi_config(&self.config, k));
                self.uploads_per_graph = st.graph_uploads();
                self.state = State::Multi(Box::new(st));
                self.graph = graph.clone();
            }
        }
        self.stats.graph_uploads += self.uploads_per_graph;
        self.queries_on_graph = 0;
        self.generation += 1;
    }

    /// The current graph generation (0 for the construction graph,
    /// +1 per [`SsspService::load_graph`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Answer one query against the resident graph; `Err` on an
    /// out-of-range source or a device-queue overflow that escalation
    /// could not recover.
    pub fn try_query(&mut self, source: VertexId) -> Result<SsspResult, ServiceError> {
        self.try_query_from(source, None)
    }

    /// Core of [`SsspService::try_query`]. `sojourn_origin_ns` is the
    /// simulated wall time the query is considered to have *arrived*
    /// — its own start when `None` (standalone queries), the batch
    /// start for sequential batches, so the sojourn sample includes
    /// time spent queued behind earlier queries of the same batch.
    fn try_query_from(
        &mut self,
        source: VertexId,
        sojourn_origin_ns: Option<f64>,
    ) -> Result<SsspResult, ServiceError> {
        let n = self.graph.num_vertices() as u32;
        if source >= n {
            return Err(ServiceError::SourceOutOfRange { source, n });
        }
        let started = Instant::now();
        let sim_before = self.device_elapsed_ns();
        let result = self.query_escalating(source, 0)?;
        if let Some(before) = sim_before {
            let after = self.device_elapsed_ns().expect("backend unchanged");
            self.stats.per_query_sim_ms.push((after - before) / 1e6);
            let origin = sojourn_origin_ns.unwrap_or(before);
            self.stats.per_query_sojourn_ms.push((after - origin) / 1e6);
        }
        self.note_query(started);
        Ok(result)
    }

    /// Like [`SsspService::try_query`] but panicking on error — the
    /// recovery ladder ([`crate::recover`]) treats the panic as a
    /// detection.
    pub fn query(&mut self, source: VertexId) -> SsspResult {
        self.try_query(source).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answer many sources against one upload. With
    /// [`ServiceConfig::streams`] > 1 on the single-GPU backend the
    /// batch is spread across command streams, one leased lane per
    /// in-flight query. A query whose device attempt overflows is
    /// replayed with an escalated queue set; only past the escalation
    /// ceiling is it re-answered by host Dijkstra (counted in
    /// [`BatchStats::fallbacks`]). An out-of-range source panics — the
    /// batch's shape is the caller's contract.
    pub fn batch(&mut self, sources: &[VertexId]) -> Vec<SsspResult> {
        let sim_before = self.device_elapsed_ns();
        let concurrent =
            self.config.streams > 1 && sources.len() > 1 && matches!(self.state, State::Gpu(_));
        let results = if concurrent {
            self.batch_concurrent(sources)
        } else {
            sources
                .iter()
                .map(|&source| match self.try_query_from(source, sim_before) {
                    Ok(result) => result,
                    Err(e @ ServiceError::SourceOutOfRange { .. }) => panic!("{e}"),
                    Err(ServiceError::Overflow(_)) => {
                        let result = self.host_fallback(source);
                        // The fallback's sojourn ends where its device
                        // attempt died (the host recompute runs off the
                        // simulated timeline) — recorded so the wall
                        // series keeps covering every query.
                        if let (Some(origin), Some(after)) = (sim_before, self.device_elapsed_ns())
                        {
                            self.stats.per_query_sojourn_ms.push((after - origin) / 1e6);
                        }
                        result
                    }
                })
                .collect()
        };
        if let Some(before) = sim_before {
            let after = self.device_elapsed_ns().expect("backend unchanged");
            self.stats.sim_batch_ms += (after - before) / 1e6;
        }
        results
    }

    /// Amortization accounting since construction (pool counters are
    /// folded in at read time).
    pub fn stats(&self) -> BatchStats {
        let mut stats = self.stats.clone();
        stats.pool_allocs = self.pool.allocs();
        stats.pool_reuses = self.pool.reuses();
        stats.bytes_recycled = self.pool.words_recycled() * 4;
        stats
    }

    /// H2D uploads performed so far, read off the live device
    /// counters — the batched-amortization assertion: constant across
    /// queries of one graph generation.
    pub fn device_uploads(&self) -> u64 {
        match &self.state {
            State::Gpu(st) => st.device.counters().h2d_uploads,
            State::Multi(st) => st.graph_uploads(),
        }
    }

    /// nvprof-style counters accumulated by the resident device since
    /// construction (`None` for the multi-GPU backend, whose shards
    /// keep per-device counters).
    pub fn device_counters(&self) -> Option<&rdbs_gpu_sim::Counters> {
        match &self.state {
            State::Gpu(st) => Some(st.device.counters()),
            State::Multi(_) => None,
        }
    }

    /// Per-buffer `(label, loads, stores, atomics)` operation totals
    /// from the resident device, heaviest-atomics first (`None` for
    /// the multi-GPU backend). The scatter-mode benches use this to
    /// attribute the global-atomic reduction to the publish buffers.
    pub fn buffer_traffic(&self) -> Option<Vec<(&'static str, u64, u64, u64)>> {
        match &self.state {
            State::Gpu(st) => {
                let mut rows = st.device.buffer_traffic();
                rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
                Some(rows)
            }
            State::Multi(_) => None,
        }
    }

    /// Per-launch kernel reports from the resident device (`None` for
    /// the multi-GPU backend) — attribution of time and atomic
    /// instructions to individual kernels.
    pub fn kernel_reports(&self) -> Option<&[rdbs_gpu_sim::KernelReport]> {
        match &self.state {
            State::Gpu(st) => Some(st.device.reports()),
            State::Multi(_) => None,
        }
    }

    /// The graph the service currently answers queries for, in the
    /// service's internal labelling.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Arm a fault plan on the resident device (shard 0 for the
    /// multi-GPU backend) — the chaos matrix drives the pooled entry
    /// point through this.
    pub fn arm_faults(&mut self, spec: FaultSpec) {
        match &mut self.state {
            State::Gpu(st) => st.device.arm_faults(FaultPlan::new(spec)),
            State::Multi(st) => st.arm_faults(spec),
        }
    }

    /// Disarm any armed fault plan, returning its injection count and
    /// event log for the recovery report.
    pub fn disarm_faults(&mut self) -> Option<(u64, Vec<FaultEvent>)> {
        let plan = match &mut self.state {
            State::Gpu(st) => st.device.disarm_faults(),
            State::Multi(st) => st.disarm_faults(),
        };
        plan.map(|p| (p.injections(), p.log().to_vec()))
    }

    /// Arm the memory-model sanitizer on the resident device (every
    /// shard for the multi-GPU backend) — the sanitized conformance
    /// matrix drives the pooled entry point through this.
    pub fn arm_sanitizer(&mut self, config: SanConfig) {
        match &mut self.state {
            State::Gpu(st) => st.device.arm_sanitizer(config),
            State::Multi(st) => st.arm_sanitizer(config),
        }
    }

    /// Sanitizer violations recorded so far across the backend.
    pub fn san_violations(&self) -> Vec<SanViolation> {
        match &self.state {
            State::Gpu(st) => st.device.san_violations().to_vec(),
            State::Multi(st) => st.san_violations().into_iter().map(|(_, v)| v).collect(),
        }
    }

    /// Total sanitizer violations including any beyond the report cap.
    pub fn san_total(&self) -> u64 {
        match &self.state {
            State::Gpu(st) => st.device.san_total(),
            State::Multi(st) => st.san_total(),
        }
    }

    /// The sanitizer's accumulated access profile (hot contended words,
    /// atomic/plain overlap sites, per-kernel wave windows) — the
    /// adversarial placement search scouts targets through this.
    /// `None` when the sanitizer was never armed, or for the multi-GPU
    /// backend (profiles are per-device; the search falls back to
    /// generic targets there).
    pub fn san_profile(&self) -> Option<&rdbs_gpu_sim::AccessProfile> {
        match &self.state {
            State::Gpu(st) => st.device.san_profile(),
            State::Multi(_) => None,
        }
    }

    /// Arm the access-IR recorder on the resident device (every shard
    /// for the multi-GPU backend) — the static verification matrix
    /// drives the pooled entry point through this.
    pub fn arm_ir(&mut self) {
        match &mut self.state {
            State::Gpu(st) => st.device.arm_ir(),
            State::Multi(st) => st.arm_ir(),
        }
    }

    /// Take the retained access IR from every device of the backend
    /// (one entry for the single-GPU backend), disarming the recorder.
    /// Empty when [`SsspService::arm_ir`] was never called.
    pub fn take_irs(&mut self) -> Vec<rdbs_gpu_sim::AccessIr> {
        match &mut self.state {
            State::Gpu(st) => st.device.take_ir().into_iter().collect(),
            State::Multi(st) => st.take_irs(),
        }
    }

    /// Arm seeded schedule fuzzing on the resident device: every
    /// subsequent kernel wave executes its lanes in a seeded
    /// permutation (single-GPU backend only — the multi-GPU exchange
    /// already permutes work across shards).
    pub fn arm_schedule_fuzz(&mut self, seed: u64) {
        if let State::Gpu(st) = &mut self.state {
            st.device.arm_schedule_fuzz(seed);
        }
    }

    /// Monotonicity-audit hits of the most recent device attempt
    /// (non-zero only while faults are armed).
    pub fn last_audit_hits(&self) -> usize {
        self.last_audit_hits
    }

    /// Simulated device clock, ns (single-GPU backend only).
    fn device_elapsed_ns(&self) -> Option<f64> {
        match &self.state {
            State::Gpu(st) => Some(st.device.elapsed_ns()),
            State::Multi(_) => None,
        }
    }

    /// Run the device attempt, escalating the lane's queue set one
    /// size class per overflow; `Err` only past the ceiling.
    fn query_escalating(
        &mut self,
        source: VertexId,
        lane: usize,
    ) -> Result<SsspResult, ServiceError> {
        loop {
            let overflow = match self.device_query(source, lane) {
                Ok(result) => return Ok(result),
                Err(e) => e,
            };
            let escalated = match &mut self.state {
                State::Gpu(st) => escalate_queues(
                    &mut self.pool,
                    &mut st.device,
                    &mut st.lanes[lane].scratch,
                    self.graph.num_vertices(),
                ),
                State::Multi(_) => false,
            };
            if escalated {
                self.stats.escalations += 1;
            } else {
                return Err(overflow.into());
            }
        }
    }

    /// The device attempt proper: reset recycled buffers, run on the
    /// given lane, map distances back to the caller's labelling.
    fn device_query(
        &mut self,
        source: VertexId,
        lane_idx: usize,
    ) -> Result<SsspResult, QueueOverflow> {
        self.last_audit_hits = 0;
        match &mut self.state {
            State::Gpu(st) => {
                let st = &mut **st;
                let mapped = st.perm.as_ref().map_or(source, |p| p.new_id(source));
                let lane = &mut st.lanes[lane_idx];
                let gb = lane_buffers(st.arrays, lane);
                match (&st.variant, &lane.scratch) {
                    (Variant::Baseline, Scratch::Bl(scratch)) => {
                        Ok(bl_on(&mut st.device, gb, scratch, &self.graph, mapped))
                    }
                    (Variant::Rdbs(cfg), Scratch::Rdbs(scratch)) => {
                        if cfg.pro && lane.heavy_dirty {
                            // A finished (or aborted) run leaves the
                            // heavy offsets at whatever widths its
                            // buckets last touched, per vertex; re-arm
                            // the controller first so they are
                            // recomputed device-side at the width the
                            // run will actually start at.
                            lane.controller.start_run();
                            rdbs::refresh_heavy_offsets(
                                &mut st.device,
                                gb,
                                lane.controller.delta(),
                            );
                        }
                        if cfg.pro {
                            lane.heavy_dirty = true; // the run re-splits them
                        }
                        let run = rdbs_on(
                            &mut st.device,
                            gb,
                            scratch,
                            &self.graph,
                            mapped,
                            *cfg,
                            &mut lane.controller,
                        )?;
                        self.last_audit_hits = run.audit.len();
                        let mut result = run.result;
                        if let Some(perm) = &st.perm {
                            result.dist = perm.unapply_to_array(&result.dist);
                            result.source = source;
                        }
                        Ok(result)
                    }
                    _ => unreachable!("scratch kind always matches the variant"),
                }
            }
            State::Multi(st) => Ok(st.try_run(source)?.result),
        }
    }

    /// Grow the lane set to `count` leases (concurrent batches only).
    /// Extra lanes pull their buffers from the pool, so a later
    /// generation recycles them like any per-query buffer.
    fn ensure_lanes(&mut self, count: usize) {
        let State::Gpu(st) = &mut self.state else { return };
        let st = &mut **st;
        let n = self.graph.num_vertices() as u32;
        while st.lanes.len() < count {
            let dist = self.pool.acquire(&mut st.device, "dist", n as usize);
            // The lane's first heavy-offset refresh reads dist before
            // the query resets it — clear recycled (or poison-armed)
            // contents up front.
            st.device.fill(dist, INF);
            let scratch = build_scratch(
                &mut self.pool,
                &mut st.device,
                n,
                st.variant,
                self.config.queue_capacity,
            );
            let controller = fresh_controller(&st.device, &self.graph, st.variant);
            let heavy = st
                .arrays
                .heavy
                .map(|_| self.pool.acquire(&mut st.device, "heavy_offsets", n as usize));
            st.lanes.push(QueryLane { dist, scratch, controller, heavy, heavy_dirty: true });
        }
    }

    /// Spread a batch across the device's command streams: every busy
    /// stream holds one in-flight query on its own lane, the scheduler
    /// steps whichever stream is least loaded (bucket granularity for
    /// RDBS variants), and an overflowed query escalates and replays
    /// on its stream without disturbing the rest.
    fn batch_concurrent(&mut self, sources: &[VertexId]) -> Vec<SsspResult> {
        let n = self.graph.num_vertices() as u32;
        if let Some(&bad) = sources.iter().find(|&&s| s >= n) {
            let e = ServiceError::SourceOutOfRange { source: bad, n };
            panic!("{e}");
        }
        let streams = self.config.streams.min(sources.len());
        self.ensure_lanes(streams);
        self.last_audit_hits = 0;

        let mut results: Vec<Option<SsspResult>> = vec![None; sources.len()];
        // Queries that overflowed past the escalation ceiling — graded
        // by the host oracle once the scheduler's borrows are done.
        let mut ceiling_hits: Vec<usize> = Vec::new();
        // Per-query (dispatch, completion) *wall* times for the
        // overlap sweep. Wall coordinates (`StreamSet::wall_ns`) are
        // comparable across streams; per-stream busy clocks are not —
        // a stream that sat idle while others worked would appear to
        // dispatch "in the past" and overcount concurrency.
        let mut intervals: Vec<(f64, f64)> = Vec::new();

        {
            let State::Gpu(st) = &mut self.state else {
                unreachable!("batch() gates concurrency on the single-GPU backend")
            };
            let GpuState { device, variant, perm, arrays, lanes } = &mut **st;
            let lanes = &mut lanes[..streams];
            let graph = &self.graph;
            let mut set = StreamSet::new(device, streams);
            match *variant {
                Variant::Rdbs(cfg) => {
                    struct Inflight {
                        qi: usize,
                        driver: RdbsDriver,
                        started: Instant,
                        dispatched_wall: f64,
                    }
                    let mut running: Vec<Option<Inflight>> = Vec::new();
                    running.resize_with(streams, || None);
                    let mut next = 0usize;
                    loop {
                        // Least-busy stream that can make progress:
                        // running streams step one bucket, idle ones
                        // dispatch the next source.
                        let mut pick: Option<(usize, f64)> = None;
                        for (s, slot) in running.iter().enumerate() {
                            if slot.is_none() && next >= sources.len() {
                                continue;
                            }
                            let busy = set.busy_ns(s as u32);
                            if pick.is_none_or(|(_, best)| busy < best) {
                                pick = Some((s, busy));
                            }
                        }
                        let Some((s, _)) = pick else { break };
                        let sid = s as u32;
                        let lane = &mut lanes[s];
                        if running[s].is_none() {
                            let qi = next;
                            next += 1;
                            let source = sources[qi];
                            let mapped = perm.as_ref().map_or(source, |p| p.new_id(source));
                            let dispatched_wall = set.wall_ns(sid);
                            let started = Instant::now();
                            let driver = set.run(device, sid, |dev| {
                                start_rdbs_driver(dev, lane, *arrays, graph, mapped, cfg)
                            });
                            running[s] = Some(Inflight { qi, driver, started, dispatched_wall });
                            continue;
                        }
                        let inflight = running[s].as_mut().expect("picked a running stream");
                        let stepped = set.run(device, sid, |dev| {
                            inflight.driver.step(dev, graph, &mut lane.controller)
                        });
                        match stepped {
                            Ok(false) => {}
                            Ok(true) => {
                                let done = running[s].take().expect("stream was running");
                                let run = set.run(device, sid, |dev| done.driver.finish(dev));
                                self.last_audit_hits = self.last_audit_hits.max(run.audit.len());
                                let mut result = run.result;
                                if let Some(perm) = perm.as_ref() {
                                    result.dist = perm.unapply_to_array(&result.dist);
                                    result.source = sources[done.qi];
                                }
                                let end = set.wall_ns(sid);
                                intervals.push((done.dispatched_wall, end));
                                self.stats
                                    .per_query_sim_ms
                                    .push((end - done.dispatched_wall) / 1e6);
                                // Closed-loop batches: every query
                                // "arrives" at batch start, so sojourn
                                // runs from the set's base.
                                self.stats.per_query_sojourn_ms.push((end - set.base_ns()) / 1e6);
                                note_query_parts(
                                    &mut self.stats,
                                    &mut self.queries_on_graph,
                                    self.uploads_per_graph,
                                    done.started,
                                );
                                results[done.qi] = Some(result);
                            }
                            Err(_overflow) => {
                                let escalated = escalate_queues(
                                    &mut self.pool,
                                    device,
                                    &mut lane.scratch,
                                    graph.num_vertices(),
                                );
                                if escalated {
                                    self.stats.escalations += 1;
                                    // Replay from the start on the same
                                    // stream: the larger queue set is
                                    // reset by the pool path, and the
                                    // driver's scratch reset clears the
                                    // stale pending marks.
                                    let inflight = running[s].as_mut().expect("stream was running");
                                    let source = sources[inflight.qi];
                                    let mapped = perm.as_ref().map_or(source, |p| p.new_id(source));
                                    inflight.driver = set.run(device, sid, |dev| {
                                        start_rdbs_driver(dev, lane, *arrays, graph, mapped, cfg)
                                    });
                                } else {
                                    let dead = running[s].take().expect("stream was running");
                                    // The fallback's sojourn ends where
                                    // its device attempt died; the host
                                    // recompute happens off the
                                    // simulated timeline. Recording it
                                    // here keeps the wall series — and
                                    // its tail percentiles — covering
                                    // the slowest queries.
                                    self.stats
                                        .per_query_sojourn_ms
                                        .push((set.wall_ns(sid) - set.base_ns()) / 1e6);
                                    ceiling_hits.push(dead.qi);
                                }
                            }
                        }
                    }
                }
                Variant::Baseline => {
                    // BL has no resumable driver: whole queries are the
                    // scheduling grain, balanced onto the least-loaded
                    // stream.
                    for (qi, &source) in sources.iter().enumerate() {
                        let sid = set.least_loaded();
                        let lane = &mut lanes[sid as usize];
                        let Scratch::Bl(scratch) = &lane.scratch else {
                            unreachable!("scratch kind always matches the variant")
                        };
                        let gb = lane_buffers(*arrays, lane);
                        let mapped = perm.as_ref().map_or(source, |p| p.new_id(source));
                        let dispatched_wall = set.wall_ns(sid);
                        let started = Instant::now();
                        let result =
                            set.run(device, sid, |dev| bl_on(dev, gb, scratch, graph, mapped));
                        let end = set.wall_ns(sid);
                        intervals.push((dispatched_wall, end));
                        self.stats.per_query_sim_ms.push((end - dispatched_wall) / 1e6);
                        self.stats.per_query_sojourn_ms.push((end - set.base_ns()) / 1e6);
                        note_query_parts(
                            &mut self.stats,
                            &mut self.queries_on_graph,
                            self.uploads_per_graph,
                            started,
                        );
                        results[qi] = Some(result);
                    }
                }
            }
        }

        for qi in ceiling_hits {
            results[qi] = Some(self.host_fallback(sources[qi]));
        }
        self.stats.inflight_peak = self.stats.inflight_peak.max(peak_overlap(&intervals));
        results.into_iter().map(|r| r.expect("every query answered")).collect()
    }

    /// Answer from the host oracle after a detected device error —
    /// never a silently truncated device answer.
    fn host_fallback(&mut self, source: VertexId) -> SsspResult {
        let started = Instant::now();
        self.stats.fallbacks += 1;
        let mapped = self.perm().map_or(source, |p| p.new_id(source));
        let mut result = dijkstra(&self.graph, mapped);
        if let Some(perm) = self.perm() {
            result.dist = perm.unapply_to_array(&result.dist);
            result.source = source;
        }
        self.note_query(started);
        result
    }

    fn perm(&self) -> Option<&Permutation> {
        match &self.state {
            State::Gpu(st) => st.perm.as_ref(),
            State::Multi(_) => None,
        }
    }

    fn note_query(&mut self, started: Instant) {
        note_query_parts(
            &mut self.stats,
            &mut self.queries_on_graph,
            self.uploads_per_graph,
            started,
        );
    }
}

/// Per-query bookkeeping, split out so the concurrent scheduler can
/// call it while the service's state is mutably borrowed.
fn note_query_parts(
    stats: &mut BatchStats,
    queries_on_graph: &mut u64,
    uploads_per_graph: u64,
    started: Instant,
) {
    stats.queries += 1;
    stats.per_query_ms.push(started.elapsed().as_secs_f64() * 1e3);
    stats.inflight_peak = stats.inflight_peak.max(1);
    if *queries_on_graph > 0 {
        stats.uploads_avoided += uploads_per_graph;
    }
    *queries_on_graph += 1;
}

/// Pair the resident arrays with a lane's distance buffer — and its
/// private heavy-offset buffer when the lane owns one.
fn lane_buffers(mut arrays: GraphArrays, lane: &QueryLane) -> GraphBuffers {
    if let Some(heavy) = lane.heavy {
        arrays.heavy = Some(heavy);
    }
    arrays.with_dist(lane.dist)
}

/// Dispatch one RDBS query on a lane: refresh its heavy offsets when
/// stale, then seed a resumable driver. Runs inside the lane's stream.
fn start_rdbs_driver(
    device: &mut Device,
    lane: &mut QueryLane,
    arrays: GraphArrays,
    graph: &Csr,
    mapped: VertexId,
    cfg: RdbsConfig,
) -> RdbsDriver {
    let gb = lane_buffers(arrays, lane);
    if cfg.pro && lane.heavy_dirty {
        lane.controller.start_run();
        rdbs::refresh_heavy_offsets(device, gb, lane.controller.delta());
    }
    if cfg.pro {
        lane.heavy_dirty = true; // the run re-splits the offsets
    }
    let Scratch::Rdbs(scratch) = &lane.scratch else {
        unreachable!("scratch kind always matches the variant")
    };
    RdbsDriver::start(device, gb, scratch, graph, mapped, cfg, &mut lane.controller)
}

/// Escalate a lane's queue set one size class: release the four
/// queues to the pool and re-acquire them — all at the same class, so
/// the set stays in one size class by construction — at the next
/// class above the largest current capacity. Returns `false` once the
/// next class would exceed the ceiling — one class above the vertex
/// count (`2 * size_class(n)`), which no fault-free frontier outgrows
/// (pending marks deduplicate enqueues) — leaving the caller to the
/// existing recovery ladder.
///
/// "Next class" is exact, not `2 * size_class(cap)`: a capacity
/// sitting below its class boundary (e.g. `n = 120`, class 128) first
/// steps *to* that class, never over it. The old doubling skipped a
/// class there and, worse, compared the skipped-ahead value against
/// the ceiling — refusing escalations from any mid-class capacity
/// (say 200 with ceiling 256) that the documented "replay up to one
/// class above `size_class(n)`" semantics still allows. A step that
/// lands exactly on the ceiling escalates; one past it returns
/// `false`.
fn escalate_queues(
    pool: &mut BufferPool,
    device: &mut Device,
    scratch: &mut Scratch,
    n: usize,
) -> bool {
    let Scratch::Rdbs(s) = scratch else {
        return false; // the BL scratch has no queues to escalate
    };
    // Which workload-queue sets grow: the single layout's one set, or
    // every wheel slot (uniformly — the set must stay in one size
    // class). The MLMQ never escalates: a full sub-queue spills to the
    // deferred level by design, so a raised overflow there is genuine
    // loss the host oracle answers.
    let sets: Vec<&mut WorkloadQueues> = match &mut s.frontier {
        AnyFrontier::Single(wq) => vec![wq],
        AnyFrontier::Wheel(w) => w.slots.iter_mut().collect(),
        AnyFrontier::Mlmq(_) => return false,
    };
    let old_cap = sets
        .iter()
        .flat_map(|wq| wq.queues())
        .map(|q| q.capacity as usize)
        .max()
        .expect("a workload set holds four queues");
    let class = pool::size_class(old_cap);
    let new_cap = if old_cap < class { class } else { 2 * class };
    if new_cap > 2 * pool::size_class(n) {
        return false;
    }
    // pooled_queue resets the recycled cursor cells, clearing the
    // sticky overflow flag before the replay.
    let cap = new_cap as u32;
    for wq in sets {
        for q in wq.queues() {
            pool.release(device, q.data);
            pool.release(device, q.tail);
            pool.release(device, q.overflow);
        }
        wq.q = [
            pooled_queue(pool, device, "workload_small", cap),
            pooled_queue(pool, device, "workload_medium", cap),
            pooled_queue(pool, device, "workload_large", cap),
        ];
        wq.members = pooled_queue(pool, device, "bucket_members", cap);
    }
    true
}

/// Maximum number of intervals alive at once — the batch's in-flight
/// peak. Interval ends sort before coincident starts, so back-to-back
/// queries on one stream do not count as overlapping.
fn peak_overlap(intervals: &[(f64, f64)]) -> u64 {
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(start, end) in intervals {
        events.push((start, 1));
        events.push((end, -1));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times").then(a.1.cmp(&b.1)));
    let mut alive = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        alive += i64::from(delta);
        peak = peak.max(alive);
    }
    peak.max(0) as u64
}

/// PRO-preprocess when the variant asks for it.
fn prepare(graph: &Csr, variant: Variant) -> (Csr, Option<Permutation>) {
    match variant {
        Variant::Rdbs(cfg) if cfg.pro => {
            let delta0 = cfg.delta0.unwrap_or_else(|| default_delta(graph));
            let (pg, perm) = rdbs_graph::reorder::pro(graph, delta0);
            (pg, Some(perm))
        }
        _ => (graph.clone(), None),
    }
}

/// Fresh Δ controller matching the one-shot entry point's seeding.
fn fresh_controller(device: &Device, graph: &Csr, variant: Variant) -> DeltaController {
    let width0 = match variant {
        Variant::Rdbs(cfg) => cfg.delta0.unwrap_or_else(|| default_delta(graph)),
        Variant::Baseline => default_delta(graph),
    };
    let lanes = device.config().num_sms as u64 * 32 * 2;
    DeltaController::new(width0).with_target_parallelism(lanes)
}

fn multi_config(config: &ServiceConfig, devices: usize) -> MultiGpuConfig {
    MultiGpuConfig {
        num_devices: devices,
        device: config.device.clone(),
        interconnect_gbps: 50.0,
        exchange_latency_us: 5.0,
        delta0: config.delta0,
    }
}

/// Acquire the per-query scratch from the pool, shaped by the
/// variant's frontier layout. The pending-marks buffer is always
/// vertex-indexed (capacity under-provisioning shrinks the queues,
/// never the dedup marks).
fn build_scratch(
    pool: &mut BufferPool,
    device: &mut Device,
    n: u32,
    variant: Variant,
    queue_capacity: Option<u32>,
) -> Scratch {
    match variant {
        Variant::Baseline => {
            let mask = pool.acquire(device, "bl_mask", n as usize);
            let progress = pool.acquire(device, "bl_progress", 1);
            Scratch::Bl(BlScratch::from_parts(mask, progress))
        }
        Variant::Rdbs(cfg) => {
            let cap = queue_capacity.unwrap_or(n);
            // One vertex-indexed pending buffer per lane, shared by
            // every slot/level of the frontier.
            let pending = pool.acquire(device, "pending", n as usize);
            let frontier = match cfg.frontier {
                FrontierKind::Single => AnyFrontier::Single(pooled_workload(
                    pool,
                    device,
                    cap,
                    pending,
                    cfg.adwl,
                    cfg.scatter,
                )),
                FrontierKind::Wheel => {
                    let slots = std::array::from_fn(|_| {
                        pooled_workload(pool, device, cap, pending, cfg.adwl, cfg.scatter)
                    });
                    AnyFrontier::Wheel(WheelFrontier { slots, pending, active: 0 })
                }
                FrontierKind::Mlmq => {
                    let sub = MlmqFrontier::sub_capacity(cap);
                    let levels = std::array::from_fn(|_| {
                        std::array::from_fn(|_| {
                            let q = pooled_queue(pool, device, "mlmq_lane", sub);
                            q.declare_spill(device); // spill-class, like one-shot MLMQ queues
                            q
                        })
                    });
                    AnyFrontier::Mlmq(MlmqFrontier {
                        levels,
                        pending,
                        adwl: cfg.adwl,
                        scatter: cfg.scatter,
                        active: 0,
                    })
                }
            };
            let scan_out = pool.acquire(device, "scan_out", 2);
            Scratch::Rdbs(RdbsScratch::from_parts(frontier, scan_out))
        }
    }
}

/// One pooled workload-queue set around a caller-owned pending buffer
/// (wheel slots share one).
fn pooled_workload(
    pool: &mut BufferPool,
    device: &mut Device,
    cap: u32,
    pending: Buf,
    adwl: bool,
    scatter: ScatterMode,
) -> WorkloadQueues {
    let q = [
        pooled_queue(pool, device, "workload_small", cap),
        pooled_queue(pool, device, "workload_medium", cap),
        pooled_queue(pool, device, "workload_large", cap),
    ];
    let members = pooled_queue(pool, device, "bucket_members", cap);
    WorkloadQueues { q, members, pending, adwl, scatter }
}

/// Assemble a queue from pooled parts. The logical capacity stays the
/// requested one even when the pooled data buffer is size-class
/// rounded past it, so overflow semantics match a one-shot queue
/// exactly.
fn pooled_queue(
    pool: &mut BufferPool,
    device: &mut Device,
    label: &'static str,
    capacity: u32,
) -> DeviceQueue {
    let data = pool.acquire(device, label, capacity as usize);
    let tail = pool.acquire(device, "queue_tail", 1);
    let overflow = pool.acquire(device, "queue_overflow", crate::gpu::buffers::OVERFLOW_WORDS);
    let queue = DeviceQueue { data, tail, overflow, capacity, label };
    // Pooled assembly bypasses DeviceQueue::new, so declare the queue
    // for the static push-bound certifier here (re-declaring a
    // recycled tail cell replaces any stale declaration).
    device.declare_queue(label, tail, overflow, capacity, false);
    queue.reset(device); // recycled cursor/overflow cells hold stale words
    queue
}

/// Return one generation's per-query and graph buffers to the pool.
fn release_gpu_buffers(pool: &BufferPool, st: &mut GpuState) {
    let device = &mut st.device;
    for lane in st.lanes.drain(..) {
        pool.release(device, lane.dist);
        if let Some(heavy) = lane.heavy {
            pool.release(device, heavy);
        }
        match &lane.scratch {
            Scratch::Bl(s) => {
                pool.release(device, s.mask);
                pool.release(device, s.progress);
            }
            Scratch::Rdbs(s) => {
                for q in s.frontier.device_queues() {
                    pool.release(device, q.data);
                    pool.release(device, q.tail);
                    pool.release(device, q.overflow);
                }
                pool.release(device, s.frontier.pending());
                pool.release(device, s.scan_out);
            }
        }
    }
    pool.release(device, st.arrays.row);
    pool.release(device, st.arrays.adj);
    pool.release(device, st.arrays.wt);
    if let Some(heavy) = st.arrays.heavy {
        pool.release(device, heavy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{run_gpu, RdbsConfig};
    use crate::validate::check_against_dijkstra;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 600, seed);
        uniform_weights(&mut el, seed + 9);
        build_undirected(&el)
    }

    fn tiny() -> DeviceConfig {
        DeviceConfig::test_tiny()
    }

    /// Star: hub 0 with `leaves` unit-weight spokes — one bucket, one
    /// frontier whose queue pressure is exactly the spoke count.
    fn star(leaves: usize) -> Csr {
        let edges: Vec<(u32, u32, Weight)> = (0..leaves).map(|i| (0u32, i as u32 + 1, 1)).collect();
        build_undirected(&EdgeList::from_edges(leaves + 1, edges))
    }

    /// Lane 0's single-layout workload set, for capacity rigs.
    fn lane0_workload(svc: &mut SsspService) -> &mut WorkloadQueues {
        let State::Gpu(st) = &mut svc.state else { unreachable!() };
        let Scratch::Rdbs(s) = &mut st.lanes[0].scratch else { unreachable!() };
        let AnyFrontier::Single(wq) = &mut s.frontier else { unreachable!() };
        wq
    }

    /// Pin every queue of lane 0 at `cap` slots.
    fn set_queue_caps(svc: &mut SsspService, cap: u32) {
        let wq = lane0_workload(svc);
        for q in wq.q.iter_mut().chain(std::iter::once(&mut wq.members)) {
            q.capacity = cap;
        }
    }

    #[test]
    fn batched_matches_one_shot_bit_identical() {
        let g = graph(1);
        let variant = Variant::Rdbs(RdbsConfig::full());
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let sources: Vec<VertexId> = (0..8).map(|i| i * 13 % 120).collect();
        let batched = svc.batch(&sources);
        for (i, &s) in sources.iter().enumerate() {
            let one_shot = run_gpu(&g, s, variant, tiny());
            assert_eq!(batched[i].dist, one_shot.result.dist, "source {s}");
            assert_eq!(batched[i].source, s);
        }
        assert_eq!(svc.stats().fallbacks, 0);
    }

    #[test]
    fn one_upload_serves_a_whole_batch() {
        let g = graph(2);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let after_build = svc.device_uploads();
        assert_eq!(after_build, 4, "row+adj+wt+heavy, exactly once");
        let sources: Vec<VertexId> = (0..16).collect();
        let results = svc.batch(&sources);
        assert_eq!(results.len(), 16);
        assert_eq!(svc.device_uploads(), after_build, "no re-upload per query");
        let stats = svc.stats();
        assert_eq!(stats.queries, 16);
        assert_eq!(stats.uploads_avoided, 15 * 4);
        assert_eq!(stats.per_query_ms.len(), 16);
        assert!(stats.mean_query_ms().unwrap() >= 0.0);
        assert_eq!(stats.per_query_sim_ms.len(), 16);
        assert!(stats.sim_batch_ms > 0.0);
        assert_eq!(stats.inflight_peak, 1, "sequential batches never overlap");
        // Sojourns run from batch start: one per query, completing in
        // order, the last one landing exactly on the batch makespan.
        assert_eq!(stats.per_query_sojourn_ms.len(), 16);
        let sj = &stats.per_query_sojourn_ms;
        assert!(sj.windows(2).all(|w| w[0] <= w[1]), "closed-loop sojourns complete in order");
        assert!((sj.last().unwrap() - stats.sim_batch_ms).abs() < 1e-9);
    }

    #[test]
    fn load_graph_recycles_buffers() {
        let g1 = graph(3);
        let g2 = graph(4);
        let mut svc = SsspService::new(&g1, ServiceConfig::rdbs(tiny()));
        svc.query(5);
        let allocs_before = svc.stats().pool_allocs;
        svc.load_graph(&g2);
        svc.query(5);
        let stats = svc.stats();
        assert_eq!(stats.pool_allocs, allocs_before, "generation 2 allocates nothing new");
        assert!(stats.pool_reuses >= 8, "dist + queues + pending + scan recycled");
        assert!(stats.bytes_recycled > 0);
        assert_eq!(stats.graph_uploads, 8, "two generations, four uploads each");
        check_against_dijkstra(&g2, 5, &svc.query(5).dist).unwrap();
    }

    #[test]
    fn poisoned_recycled_buffers_do_not_leak() {
        // Fill every per-query buffer with garbage between queries —
        // the explicit reset path must erase all of the previous
        // query's state the kernels can observe.
        let g = graph(5);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let clean = svc.query(7).dist;
        if let State::Gpu(st) = &mut svc.state {
            let st = &mut **st;
            let lane = &st.lanes[0];
            st.device.fill(lane.dist, 0xDEAD_BEEF);
            if let Scratch::Rdbs(s) = &lane.scratch {
                for q in s.frontier.device_queues() {
                    st.device.fill(q.data, 0xDEAD_BEEF);
                    st.device.fill(q.tail, 0);
                    st.device.fill(q.overflow, 0);
                }
                st.device.fill(s.frontier.pending(), 0xDEAD_BEEF);
                st.device.fill(s.scan_out, 0xDEAD_BEEF);
            }
        }
        assert_eq!(svc.query(7).dist, clean);
        check_against_dijkstra(&g, 7, &clean).unwrap();
    }

    #[test]
    fn overflow_escalates_on_device_instead_of_falling_back() {
        // Shrink the workload lists' logical capacity under the data
        // buffers: the push storm must overflow, escalate the queue
        // set to a larger size class, and replay GPU-side — correct
        // answers, zero host fallbacks.
        let g = graph(6);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        for q in &mut lane0_workload(&mut svc).q {
            q.capacity = 1;
        }
        let results = svc.batch(&[0, 1]);
        let stats = svc.stats();
        assert!(stats.escalations >= 1, "capacity-1 queues must escalate");
        assert_eq!(stats.fallbacks, 0, "recoverable overflow never reaches the host oracle");
        for (i, &s) in [0u32, 1].iter().enumerate() {
            check_against_dijkstra(&g, s, &results[i].dist).unwrap();
        }
    }

    #[test]
    fn escalation_ladder_stops_one_class_above_n() {
        let g = graph(6);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let n = svc.num_vertices();
        let State::Gpu(st) = &mut svc.state else { unreachable!() };
        let mut steps = 0;
        while escalate_queues(&mut svc.pool, &mut st.device, &mut st.lanes[0].scratch, n) {
            steps += 1;
            assert!(steps < 16, "the ladder must terminate");
        }
        let Scratch::Rdbs(s) = &st.lanes[0].scratch else { unreachable!() };
        let AnyFrontier::Single(wq) = &s.frontier else { unreachable!() };
        assert_eq!(wq.q[0].capacity as usize, 2 * pool::size_class(n));
        assert_eq!(wq.members.capacity as usize, 2 * pool::size_class(n));
        assert_eq!(
            steps, 2,
            "n=120 queues start mid-class at capacity 120: one step to class 128, one to the \
             256 ceiling — never skipping a class"
        );
    }

    #[test]
    fn escalation_ceiling_is_inclusive_and_one_past_refuses() {
        // The pinned boundary semantics: a step landing exactly on the
        // ceiling (2 * size_class(n)) escalates; the step past it
        // returns false. And after any escalation the four queues sit
        // in one size class regardless of how unequal they were rigged.
        let g = graph(6);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let n = svc.num_vertices();
        let ceiling = 2 * pool::size_class(n);

        // Rig the set unequal, max exactly one class below the ceiling.
        {
            let wq = lane0_workload(&mut svc);
            wq.members.capacity = pool::size_class(n) as u32;
            for q in &mut wq.q {
                q.capacity = 1;
            }
        }
        let State::Gpu(st) = &mut svc.state else { unreachable!() };
        assert!(
            escalate_queues(&mut svc.pool, &mut st.device, &mut st.lanes[0].scratch, n),
            "a step landing exactly on the ceiling must escalate"
        );
        {
            let Scratch::Rdbs(s) = &st.lanes[0].scratch else { unreachable!() };
            let AnyFrontier::Single(wq) = &s.frontier else { unreachable!() };
            for q in wq.queues() {
                assert_eq!(q.capacity as usize, ceiling, "all four queues in one size class");
            }
        }
        assert!(
            !escalate_queues(&mut svc.pool, &mut st.device, &mut st.lanes[0].scratch, n),
            "one past the ceiling must refuse"
        );
        // A mid-class capacity below the ceiling (the old doubling
        // refused here) steps to the ceiling, not past it.
        {
            let Scratch::Rdbs(s) = &mut st.lanes[0].scratch else { unreachable!() };
            let AnyFrontier::Single(wq) = &mut s.frontier else { unreachable!() };
            for q in wq.q.iter_mut().chain(std::iter::once(&mut wq.members)) {
                q.capacity = (ceiling - 1) as u32;
            }
        }
        assert!(
            escalate_queues(&mut svc.pool, &mut st.device, &mut st.lanes[0].scratch, n),
            "a mid-class capacity below the ceiling may still take its last step"
        );
        let Scratch::Rdbs(s) = &st.lanes[0].scratch else { unreachable!() };
        let AnyFrontier::Single(wq) = &s.frontier else { unreachable!() };
        assert_eq!(wq.q[0].capacity as usize, ceiling);
    }

    #[test]
    fn escalation_boundary_is_exact_at_queue_capacity() {
        // Self-calibrating boundary probe: find the exact queue
        // high-water mark of a star query, then check that capacity
        // passes clean while capacity-1 escalates exactly one size
        // class — a strictly larger queue set from the pool, sticky
        // overflow cleared before the replay — and stays correct.
        let leaves = 9;
        let g = star(leaves);
        let mut exact = None;
        for cap in 2..=(leaves as u32 + 1) {
            let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
            set_queue_caps(&mut svc, cap);
            svc.query(0);
            if svc.stats().escalations == 0 {
                exact = Some(cap);
                break;
            }
        }
        let exact = exact.expect("some capacity fits the star frontier");

        // At capacity: clean pass, no escalation, no fallback.
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        set_queue_caps(&mut svc, exact);
        check_against_dijkstra(&g, 0, &svc.query(0).dist).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.escalations, 0);
        assert_eq!(stats.fallbacks, 0);

        // One slot short: the frontier trips the sticky overflow cell,
        // escalation replaces all four queues one class up, and the
        // replay succeeds without ever reaching the host oracle.
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        set_queue_caps(&mut svc, exact - 1);
        check_against_dijkstra(&g, 0, &svc.query(0).dist).unwrap();
        let stats = svc.stats();
        assert!(stats.escalations >= 1, "capacity-1 below the mark must escalate");
        assert_eq!(stats.fallbacks, 0);
        let State::Gpu(st) = &svc.state else { unreachable!() };
        let Scratch::Rdbs(s) = &st.lanes[0].scratch else { unreachable!() };
        let AnyFrontier::Single(wq) = &s.frontier else { unreachable!() };
        assert!(
            wq.q[0].capacity > exact - 1,
            "the ladder must hand back a strictly larger queue set"
        );
    }

    #[test]
    fn four_streams_overlap_and_match_sequential_bit_identical() {
        let g = graph(9);
        let sources: Vec<VertexId> = (0..16).map(|i| i * 7 % 120).collect();
        let mut seq = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let seq_results = seq.batch(&sources);
        let mut conc = SsspService::new(&g, ServiceConfig::rdbs(tiny()).with_streams(4));
        let conc_results = conc.batch(&sources);
        for (a, b) in seq_results.iter().zip(&conc_results) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.dist, b.dist, "source {}", a.source);
        }
        let s = seq.stats();
        let c = conc.stats();
        assert_eq!(c.fallbacks, 0);
        assert_eq!(c.per_query_sim_ms.len(), 16);
        assert!(c.inflight_peak > 1, "streams must actually overlap, peak {}", c.inflight_peak);
        assert_eq!(s.inflight_peak, 1);
        assert!(
            s.sim_batch_ms >= 1.5 * c.sim_batch_ms,
            "sequential {} ms vs 4-stream {} ms",
            s.sim_batch_ms,
            c.sim_batch_ms
        );
        let p50 = c.sim_latency_percentile_ms(50.0).unwrap();
        let p99 = c.sim_latency_percentile_ms(99.0).unwrap();
        assert!(p50 <= p99 && p50 > 0.0);
        // The wall series covers the same queries; a sojourn includes
        // queueing, so it is never below its query's service latency.
        assert_eq!(c.per_query_sojourn_ms.len(), 16);
        for (sj, sim) in c.per_query_sojourn_ms.iter().zip(&c.per_query_sim_ms) {
            assert!(sj + 1e-9 >= *sim, "sojourn {sj} ms below service {sim} ms");
        }
    }

    #[test]
    fn inflight_peak_is_exact_with_unbalanced_queries() {
        // More queries than streams and a deliberately unbalanced mix:
        // the star component makes hub/leaf queries expensive while
        // the 3-chain's queries are nearly free, so one stream churns
        // through cheap work and keeps dispatching while its sibling
        // is mid-query. Intervals are recorded on the shared wall
        // timeline, so the sweep must pin the peak at exactly the
        // stream count — per-stream busy coordinates would let a
        // late-dispatching stream appear to start "in the past" and
        // overcount.
        let leaves = 64u32;
        let mut edges: Vec<(u32, u32, Weight)> = (0..leaves).map(|i| (0, i + 1, 1)).collect();
        let chain0 = leaves + 1;
        edges.push((chain0, chain0 + 1, 2));
        edges.push((chain0 + 1, chain0 + 2, 2));
        let g = build_undirected(&EdgeList::from_edges(chain0 as usize + 3, edges));
        let sources: Vec<VertexId> = vec![0, chain0 + 1, chain0, chain0 + 2, 1];
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()).with_streams(2));
        let results = svc.batch(&sources);
        for (i, &s) in sources.iter().enumerate() {
            check_against_dijkstra(&g, s, &results[i].dist).unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.inflight_peak, 2, "exactly the stream count, never more");
        assert_eq!(stats.per_query_sim_ms.len(), 5);
        assert_eq!(stats.per_query_sojourn_ms.len(), 5);
    }

    #[test]
    fn percentiles_cover_forced_fallbacks() {
        // Rig lane 1 so its queries overflow with the queue set already
        // at the escalation ceiling: escalation refuses, the queries
        // die on the device and are re-answered by the host oracle.
        // The service-latency series drops them by design — the
        // sojourn series (and its percentiles) must not.
        let g = graph(12);
        let n = g.num_vertices();
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()).with_streams(2));
        svc.ensure_lanes(2);
        {
            let State::Gpu(st) = &mut svc.state else { unreachable!() };
            let Scratch::Rdbs(s) = &mut st.lanes[1].scratch else { unreachable!() };
            let AnyFrontier::Single(wq) = &mut s.frontier else { unreachable!() };
            // The members queue pins the set's max capacity at the
            // ceiling (so escalation refuses to grow it further) while
            // the workload queues still overflow on the first push
            // storm. The graph's frontier never outgrows the members
            // buffer itself, so the logical cap is safe.
            wq.members.capacity = (2 * pool::size_class(n)) as u32;
            for q in &mut wq.q {
                q.capacity = 1;
            }
        }
        let sources: Vec<VertexId> = vec![5, 17, 33, 70];
        let results = svc.batch(&sources);
        for (i, &s) in sources.iter().enumerate() {
            check_against_dijkstra(&g, s, &results[i].dist).unwrap();
        }
        let stats = svc.stats();
        assert!(stats.fallbacks >= 1, "the rigged lane must force at least one fallback");
        assert_eq!(
            stats.per_query_sim_ms.len() as u64,
            stats.queries - stats.fallbacks,
            "service latencies cover device-answered queries only"
        );
        assert_eq!(
            stats.per_query_sojourn_ms.len() as u64,
            stats.queries,
            "sojourns cover every query, fallbacks included"
        );
        assert!(stats.sojourn_percentile_ms(99.0).is_some());
        assert!(
            stats.sojourn_percentile_ms(99.0).unwrap()
                >= stats.sojourn_percentile_ms(50.0).unwrap()
        );
    }

    #[test]
    fn concurrent_baseline_matches_sequential() {
        let g = graph(10);
        let sources: Vec<VertexId> = (0..8).map(|i| i * 11 % 120).collect();
        let mut seq = SsspService::new(&g, ServiceConfig::baseline(tiny()));
        let seq_results = seq.batch(&sources);
        let mut conc = SsspService::new(&g, ServiceConfig::baseline(tiny()).with_streams(2));
        let conc_results = conc.batch(&sources);
        for (a, b) in seq_results.iter().zip(&conc_results) {
            assert_eq!(a.dist, b.dist, "source {}", a.source);
        }
        assert!(conc.stats().inflight_peak > 1);
        assert!(seq.stats().sim_batch_ms > conc.stats().sim_batch_ms);
    }

    #[test]
    fn baseline_and_multi_backends_answer_correctly() {
        let g = graph(7);
        for config in [ServiceConfig::baseline(tiny()), ServiceConfig::multi(2, tiny())] {
            let mut svc = SsspService::new(&g, config);
            let uploads = svc.device_uploads();
            for s in [0u32, 40, 119] {
                check_against_dijkstra(&g, s, &svc.query(s).dist).unwrap();
            }
            assert_eq!(svc.device_uploads(), uploads);
        }
    }

    #[test]
    fn every_frontier_answers_batches_correctly() {
        let g = graph(14);
        let sources: Vec<VertexId> = (0..8).map(|i| i * 11 % 120).collect();
        for kind in FrontierKind::ALL {
            for streams in [1usize, 4] {
                let config = ServiceConfig::rdbs(tiny()).with_frontier(kind).with_streams(streams);
                let mut svc = SsspService::new(&g, config);
                let results = svc.batch(&sources);
                for (i, &s) in sources.iter().enumerate() {
                    check_against_dijkstra(&g, s, &results[i].dist)
                        .unwrap_or_else(|m| panic!("{kind} streams={streams} source {s}: {m}"));
                }
                let stats = svc.stats();
                assert_eq!(stats.fallbacks, 0, "{kind} streams={streams}");
                if streams > 1 {
                    assert!(stats.inflight_peak > 1, "{kind} must overlap across streams");
                }
            }
        }
    }

    #[test]
    fn mlmq_spills_where_single_escalates() {
        // Under-provision the frontier below a star's one-bucket push
        // storm. The single layout must climb the escalation ladder;
        // the MLMQ absorbs the same storm by spilling into its
        // deferred level — zero escalations, zero fallbacks, and the
        // answers stay exact either way.
        let g = star(64);
        let rigged = || ServiceConfig::rdbs(tiny()).with_queue_capacity(24);

        let mut single = SsspService::new(&g, rigged());
        check_against_dijkstra(&g, 0, &single.query(0).dist).unwrap();
        let s = single.stats();
        assert!(s.escalations >= 1, "a 24-slot queue cannot hold a 64-leaf frontier");
        assert_eq!(s.fallbacks, 0);

        let mut mlmq = SsspService::new(&g, rigged().with_frontier(FrontierKind::Mlmq));
        check_against_dijkstra(&g, 0, &mlmq.query(0).dist).unwrap();
        let m = mlmq.stats();
        assert_eq!(m.escalations, 0, "the MLMQ spills instead of escalating");
        assert_eq!(m.fallbacks, 0, "a spill is not a loss");
    }

    #[test]
    fn mlmq_real_loss_still_reaches_the_host_oracle() {
        // Starve the MLMQ so far that even the spill level drops
        // pushes: escalation is not available to it, so the detected
        // loss must fall back to host Dijkstra — never a silently
        // truncated answer.
        let g = star(64);
        let config =
            ServiceConfig::rdbs(tiny()).with_frontier(FrontierKind::Mlmq).with_queue_capacity(2);
        let mut svc = SsspService::new(&g, config);
        let results = svc.batch(&[0]);
        check_against_dijkstra(&g, 0, &results[0].dist).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.escalations, 0);
        assert!(stats.fallbacks >= 1, "spill-of-spill loss must be detected and re-answered");
    }

    #[test]
    fn out_of_range_source_is_typed() {
        let g = graph(8);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let err = svc.try_query(10_000).unwrap_err();
        assert_eq!(err, ServiceError::SourceOutOfRange { source: 10_000, n: 120 });
        assert!(err.to_string().contains("out of range"));
    }
}
