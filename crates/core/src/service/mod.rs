//! Resident SSSP service: upload the graph once, answer many sources.
//!
//! The one-shot entry points ([`crate::gpu::rdbs::rdbs`],
//! [`crate::gpu::bl()`](fn@crate::gpu::bl), [`crate::gpu::multi_gpu_sssp`]) pay the full
//! setup price per query: graph H2D upload, buffer allocation, Δ
//! controller warm-up, and (with PRO) the host-side reorder. A
//! workload that asks many sources of the same graph — betweenness
//! sampling, reachability sweeps, all-pairs seeds — re-pays all of it
//! for no reason. [`SsspService`] keeps everything that is a function
//! of the *graph* resident on the device and recycles everything that
//! is a function of the *query* through a size-class
//! [`pool::BufferPool`]:
//!
//! * the CSR arrays ([`GraphArrays`]) are uploaded once per
//!   [`SsspService::load_graph`] generation;
//! * distance vector, workload lists, bucket membership queue,
//!   pending marks and scan cells are acquired from the pool and
//!   **reset** (an explicit, cheap cursor/fill step) per query —
//!   never reallocated;
//! * the [`DeltaController`] is reused across queries, so a batch
//!   warm-starts each query's Δ₀ from the previous query's converged
//!   width (Δ-stepping with `atomicMin` relaxations is exact under
//!   any Δ schedule, so distances stay bit-identical to one-shot);
//! * with PRO, the heavy-edge offsets are refreshed on-device at
//!   query start — a finished run leaves them at per-vertex widths.
//!
//! [`SsspService::batch`] answers a slice of sources and accounts the
//! amortization in [`BatchStats`]: uploads avoided, bytes recycled,
//! per-query wall time. A query whose device attempt reports a
//! [`QueueOverflow`] is re-answered by host Dijkstra and counted in
//! [`BatchStats::fallbacks`] — the service never returns a silently
//! truncated answer.

pub mod pool;

use crate::adaptive_delta::DeltaController;
use crate::gpu::bl::{bl_on, BlScratch};
use crate::gpu::buffers::{DeviceQueue, GraphArrays, QueueOverflow};
use crate::gpu::multi::{MultiGpuConfig, MultiGpuState};
use crate::gpu::rdbs::{self, rdbs_on, Queues, RdbsScratch};
use crate::gpu::Variant;
use crate::seq::dijkstra;
use crate::stats::{BatchStats, SsspResult};
use crate::{default_delta, Csr, VertexId, Weight};
use pool::BufferPool;
use rdbs_gpu_sim::{
    Buf, Device, DeviceConfig, FaultEvent, FaultPlan, FaultSpec, SanConfig, SanViolation,
};
use rdbs_graph::reorder::Permutation;
use std::time::Instant;

/// Which execution engine answers the service's queries.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// One simulated device running `Variant` (BL or any RDBS
    /// ablation).
    Gpu(Variant),
    /// `k` simulated devices running the bulk-synchronous multi-GPU
    /// port.
    MultiGpu(usize),
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub backend: Backend,
    /// Per-device hardware model.
    pub device: DeviceConfig,
    /// Δ₀ override for the multi-GPU backend (single-GPU variants
    /// carry their own in [`crate::gpu::RdbsConfig`]).
    pub delta0: Option<Weight>,
}

impl ServiceConfig {
    /// Full RDBS (BASYN+PRO+ADWL) on one device.
    pub fn rdbs(device: DeviceConfig) -> Self {
        Self {
            backend: Backend::Gpu(Variant::Rdbs(crate::gpu::RdbsConfig::full())),
            device,
            delta0: None,
        }
    }

    /// The synchronous push baseline on one device.
    pub fn baseline(device: DeviceConfig) -> Self {
        Self { backend: Backend::Gpu(Variant::Baseline), device, delta0: None }
    }

    /// The multi-GPU port over `devices` shards (NVLink-class
    /// interconnect defaults).
    pub fn multi(devices: usize, device: DeviceConfig) -> Self {
        Self { backend: Backend::MultiGpu(devices), device, delta0: None }
    }
}

/// Why a query could not be answered by the device path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A device queue's sticky overflow cell was raised — the device
    /// attempt may have dropped work and its output is untrusted.
    Overflow(QueueOverflow),
    /// The source is not a vertex of the resident graph.
    SourceOutOfRange { source: VertexId, n: u32 },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overflow(e) => write!(f, "{e}"),
            ServiceError::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for a {n}-vertex graph")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueueOverflow> for ServiceError {
    fn from(e: QueueOverflow) -> Self {
        ServiceError::Overflow(e)
    }
}

/// Per-query device scratch, shaped by the variant.
enum Scratch {
    Rdbs(RdbsScratch),
    Bl(BlScratch),
}

/// Resident single-device state.
struct GpuState {
    device: Device,
    variant: Variant,
    /// PRO relabelling of the current graph, when the variant
    /// preprocesses.
    perm: Option<Permutation>,
    arrays: GraphArrays,
    dist: Buf,
    scratch: Scratch,
    controller: DeltaController,
}

enum State {
    Gpu(Box<GpuState>),
    Multi(Box<MultiGpuState>),
}

/// A resident, batched SSSP service — see the module docs.
pub struct SsspService {
    config: ServiceConfig,
    state: State,
    /// The graph queries actually run on (PRO-relabelled when the
    /// variant preprocesses; the original otherwise).
    graph: Csr,
    pool: BufferPool,
    stats: BatchStats,
    /// H2D uploads one graph generation costs (charged once; avoided
    /// by every follow-up query).
    uploads_per_graph: u64,
    /// Queries answered against the current graph generation.
    queries_on_graph: u64,
    /// Monotonicity-audit hits of the most recent device attempt
    /// (only populated while faults are armed).
    last_audit_hits: usize,
}

impl SsspService {
    /// Build the backend, upload `graph` once, and pre-acquire the
    /// per-query buffers from the pool.
    pub fn new(graph: &Csr, config: ServiceConfig) -> Self {
        let mut pool = BufferPool::new();
        let (state, run_graph, uploads) = match config.backend {
            Backend::Gpu(variant) => {
                let mut device = Device::new(config.device.clone());
                let (run_graph, perm) = prepare(graph, variant);
                let n = run_graph.num_vertices() as u32;
                let arrays = GraphArrays::upload(&mut device, &run_graph);
                let uploads = device.counters().h2d_uploads;
                let dist = pool.acquire(&mut device, "dist", n as usize);
                let scratch = build_scratch(&mut pool, &mut device, n, variant);
                let controller = fresh_controller(&device, &run_graph, variant);
                let st = GpuState { device, variant, perm, arrays, dist, scratch, controller };
                (State::Gpu(Box::new(st)), run_graph, uploads)
            }
            Backend::MultiGpu(k) => {
                let st = MultiGpuState::new(graph, &multi_config(&config, k));
                let uploads = st.graph_uploads();
                (State::Multi(Box::new(st)), graph.clone(), uploads)
            }
        };
        let stats = BatchStats { graph_uploads: uploads, ..Default::default() };
        Self {
            config,
            state,
            graph: run_graph,
            pool,
            stats,
            uploads_per_graph: uploads,
            queries_on_graph: 0,
            last_audit_hits: 0,
        }
    }

    /// Swap in a new graph generation: the old generation's buffers go
    /// back to the pool (per-query buffers of the new generation are
    /// recycled from them when the size classes match), the new CSR is
    /// uploaded once, and the Δ controller starts fresh.
    pub fn load_graph(&mut self, graph: &Csr) {
        match &mut self.state {
            State::Gpu(st) => {
                release_gpu_buffers(&self.pool, st);
                let (run_graph, perm) = prepare(graph, st.variant);
                let n = run_graph.num_vertices() as u32;
                let before = st.device.counters().h2d_uploads;
                st.arrays = GraphArrays::upload(&mut st.device, &run_graph);
                self.uploads_per_graph = st.device.counters().h2d_uploads - before;
                st.dist = self.pool.acquire(&mut st.device, "dist", n as usize);
                st.scratch = build_scratch(&mut self.pool, &mut st.device, n, st.variant);
                st.controller = fresh_controller(&st.device, &run_graph, st.variant);
                st.perm = perm;
                self.graph = run_graph;
            }
            State::Multi(_) => {
                let Backend::MultiGpu(k) = self.config.backend else { unreachable!() };
                let st = MultiGpuState::new(graph, &multi_config(&self.config, k));
                self.uploads_per_graph = st.graph_uploads();
                self.state = State::Multi(Box::new(st));
                self.graph = graph.clone();
            }
        }
        self.stats.graph_uploads += self.uploads_per_graph;
        self.queries_on_graph = 0;
    }

    /// Answer one query against the resident graph; `Err` on an
    /// out-of-range source or a detected device-queue overflow.
    pub fn try_query(&mut self, source: VertexId) -> Result<SsspResult, ServiceError> {
        let n = self.graph.num_vertices() as u32;
        if source >= n {
            return Err(ServiceError::SourceOutOfRange { source, n });
        }
        let started = Instant::now();
        let result = self.device_query(source)?;
        self.note_query(started);
        Ok(result)
    }

    /// Like [`SsspService::try_query`] but panicking on error — the
    /// recovery ladder ([`crate::recover`]) treats the panic as a
    /// detection.
    pub fn query(&mut self, source: VertexId) -> SsspResult {
        self.try_query(source).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answer many sources against one upload. A query whose device
    /// attempt reports an overflow is re-answered by host Dijkstra
    /// (counted in [`BatchStats::fallbacks`]); an out-of-range source
    /// panics — the batch's shape is the caller's contract.
    pub fn batch(&mut self, sources: &[VertexId]) -> Vec<SsspResult> {
        sources
            .iter()
            .map(|&source| match self.try_query(source) {
                Ok(result) => result,
                Err(e @ ServiceError::SourceOutOfRange { .. }) => panic!("{e}"),
                Err(ServiceError::Overflow(_)) => self.host_fallback(source),
            })
            .collect()
    }

    /// Amortization accounting since construction (pool counters are
    /// folded in at read time).
    pub fn stats(&self) -> BatchStats {
        let mut stats = self.stats.clone();
        stats.pool_allocs = self.pool.allocs();
        stats.pool_reuses = self.pool.reuses();
        stats.bytes_recycled = self.pool.words_recycled() * 4;
        stats
    }

    /// H2D uploads performed so far, read off the live device
    /// counters — the batched-amortization assertion: constant across
    /// queries of one graph generation.
    pub fn device_uploads(&self) -> u64 {
        match &self.state {
            State::Gpu(st) => st.device.counters().h2d_uploads,
            State::Multi(st) => st.graph_uploads(),
        }
    }

    /// The graph the service currently answers queries for, in the
    /// service's internal labelling.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Arm a fault plan on the resident device (shard 0 for the
    /// multi-GPU backend) — the chaos matrix drives the pooled entry
    /// point through this.
    pub fn arm_faults(&mut self, spec: FaultSpec) {
        match &mut self.state {
            State::Gpu(st) => st.device.arm_faults(FaultPlan::new(spec)),
            State::Multi(st) => st.arm_faults(spec),
        }
    }

    /// Disarm any armed fault plan, returning its injection count and
    /// event log for the recovery report.
    pub fn disarm_faults(&mut self) -> Option<(u64, Vec<FaultEvent>)> {
        let plan = match &mut self.state {
            State::Gpu(st) => st.device.disarm_faults(),
            State::Multi(st) => st.disarm_faults(),
        };
        plan.map(|p| (p.injections(), p.log().to_vec()))
    }

    /// Arm the memory-model sanitizer on the resident device (every
    /// shard for the multi-GPU backend) — the sanitized conformance
    /// matrix drives the pooled entry point through this.
    pub fn arm_sanitizer(&mut self, config: SanConfig) {
        match &mut self.state {
            State::Gpu(st) => st.device.arm_sanitizer(config),
            State::Multi(st) => st.arm_sanitizer(config),
        }
    }

    /// Sanitizer violations recorded so far across the backend.
    pub fn san_violations(&self) -> Vec<SanViolation> {
        match &self.state {
            State::Gpu(st) => st.device.san_violations().to_vec(),
            State::Multi(st) => st.san_violations().into_iter().map(|(_, v)| v).collect(),
        }
    }

    /// Total sanitizer violations including any beyond the report cap.
    pub fn san_total(&self) -> u64 {
        match &self.state {
            State::Gpu(st) => st.device.san_total(),
            State::Multi(st) => st.san_total(),
        }
    }

    /// Monotonicity-audit hits of the most recent device attempt
    /// (non-zero only while faults are armed).
    pub fn last_audit_hits(&self) -> usize {
        self.last_audit_hits
    }

    /// The device attempt proper: reset recycled buffers, run, map
    /// distances back to the caller's labelling.
    fn device_query(&mut self, source: VertexId) -> Result<SsspResult, QueueOverflow> {
        self.last_audit_hits = 0;
        match &mut self.state {
            State::Gpu(st) => {
                let st = &mut **st;
                let gb = st.arrays.with_dist(st.dist);
                let mapped = st.perm.as_ref().map_or(source, |p| p.new_id(source));
                match (&st.variant, &st.scratch) {
                    (Variant::Baseline, Scratch::Bl(scratch)) => {
                        Ok(bl_on(&mut st.device, gb, scratch, &self.graph, mapped))
                    }
                    (Variant::Rdbs(cfg), Scratch::Rdbs(scratch)) => {
                        if cfg.pro && self.queries_on_graph > 0 {
                            // A finished run leaves the heavy offsets at
                            // whatever widths its buckets last touched,
                            // per vertex; re-arm the controller first so
                            // they are recomputed device-side at the
                            // width the run will actually start at.
                            st.controller.start_run();
                            rdbs::refresh_heavy_offsets(&mut st.device, gb, st.controller.delta());
                        }
                        let run = rdbs_on(
                            &mut st.device,
                            gb,
                            scratch,
                            &self.graph,
                            mapped,
                            *cfg,
                            &mut st.controller,
                        )?;
                        self.last_audit_hits = run.audit.len();
                        let mut result = run.result;
                        if let Some(perm) = &st.perm {
                            result.dist = perm.unapply_to_array(&result.dist);
                            result.source = source;
                        }
                        Ok(result)
                    }
                    _ => unreachable!("scratch kind always matches the variant"),
                }
            }
            State::Multi(st) => Ok(st.try_run(source)?.result),
        }
    }

    /// Answer from the host oracle after a detected device error —
    /// never a silently truncated device answer.
    fn host_fallback(&mut self, source: VertexId) -> SsspResult {
        let started = Instant::now();
        self.stats.fallbacks += 1;
        let mapped = self.perm().map_or(source, |p| p.new_id(source));
        let mut result = dijkstra(&self.graph, mapped);
        if let Some(perm) = self.perm() {
            result.dist = perm.unapply_to_array(&result.dist);
            result.source = source;
        }
        self.note_query(started);
        result
    }

    fn perm(&self) -> Option<&Permutation> {
        match &self.state {
            State::Gpu(st) => st.perm.as_ref(),
            State::Multi(_) => None,
        }
    }

    fn note_query(&mut self, started: Instant) {
        self.stats.queries += 1;
        self.stats.per_query_ms.push(started.elapsed().as_secs_f64() * 1e3);
        if self.queries_on_graph > 0 {
            self.stats.uploads_avoided += self.uploads_per_graph;
        }
        self.queries_on_graph += 1;
    }
}

/// PRO-preprocess when the variant asks for it.
fn prepare(graph: &Csr, variant: Variant) -> (Csr, Option<Permutation>) {
    match variant {
        Variant::Rdbs(cfg) if cfg.pro => {
            let delta0 = cfg.delta0.unwrap_or_else(|| default_delta(graph));
            let (pg, perm) = rdbs_graph::reorder::pro(graph, delta0);
            (pg, Some(perm))
        }
        _ => (graph.clone(), None),
    }
}

/// Fresh Δ controller matching the one-shot entry point's seeding.
fn fresh_controller(device: &Device, graph: &Csr, variant: Variant) -> DeltaController {
    let width0 = match variant {
        Variant::Rdbs(cfg) => cfg.delta0.unwrap_or_else(|| default_delta(graph)),
        Variant::Baseline => default_delta(graph),
    };
    let lanes = device.config().num_sms as u64 * 32 * 2;
    DeltaController::new(width0).with_target_parallelism(lanes)
}

fn multi_config(config: &ServiceConfig, devices: usize) -> MultiGpuConfig {
    MultiGpuConfig {
        num_devices: devices,
        device: config.device.clone(),
        interconnect_gbps: 50.0,
        exchange_latency_us: 5.0,
        delta0: config.delta0,
    }
}

/// Acquire the per-query scratch from the pool.
fn build_scratch(pool: &mut BufferPool, device: &mut Device, n: u32, variant: Variant) -> Scratch {
    match variant {
        Variant::Baseline => {
            let mask = pool.acquire(device, "bl_mask", n as usize);
            let progress = pool.acquire(device, "bl_progress", 1);
            Scratch::Bl(BlScratch::from_parts(mask, progress))
        }
        Variant::Rdbs(cfg) => {
            let q = [
                pooled_queue(pool, device, "workload_small", n),
                pooled_queue(pool, device, "workload_medium", n),
                pooled_queue(pool, device, "workload_large", n),
            ];
            let members = pooled_queue(pool, device, "bucket_members", n);
            let pending = pool.acquire(device, "pending", n as usize);
            let queues = Queues { q, members, pending, adwl: cfg.adwl };
            let scan_out = pool.acquire(device, "scan_out", 2);
            Scratch::Rdbs(RdbsScratch::from_parts(queues, scan_out))
        }
    }
}

/// Assemble a queue from pooled parts. The logical capacity stays the
/// requested one even when the pooled data buffer is size-class
/// rounded past it, so overflow semantics match a one-shot queue
/// exactly.
fn pooled_queue(
    pool: &mut BufferPool,
    device: &mut Device,
    label: &'static str,
    capacity: u32,
) -> DeviceQueue {
    let data = pool.acquire(device, label, capacity as usize);
    let tail = pool.acquire(device, "queue_tail", 1);
    let overflow = pool.acquire(device, "queue_overflow", 1);
    let queue = DeviceQueue { data, tail, overflow, capacity, label };
    queue.reset(device); // recycled cursor/overflow cells hold stale words
    queue
}

/// Return one generation's per-query and graph buffers to the pool.
fn release_gpu_buffers(pool: &BufferPool, st: &mut GpuState) {
    let device = &mut st.device;
    pool.release(device, st.dist);
    match &st.scratch {
        Scratch::Bl(s) => {
            pool.release(device, s.mask);
            pool.release(device, s.progress);
        }
        Scratch::Rdbs(s) => {
            for q in s.queues.q.iter().chain(std::iter::once(&s.queues.members)) {
                pool.release(device, q.data);
                pool.release(device, q.tail);
                pool.release(device, q.overflow);
            }
            pool.release(device, s.queues.pending);
            pool.release(device, s.scan_out);
        }
    }
    pool.release(device, st.arrays.row);
    pool.release(device, st.arrays.adj);
    pool.release(device, st.arrays.wt);
    if let Some(heavy) = st.arrays.heavy {
        pool.release(device, heavy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{run_gpu, RdbsConfig};
    use crate::validate::check_against_dijkstra;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> Csr {
        let mut el = erdos_renyi(120, 600, seed);
        uniform_weights(&mut el, seed + 9);
        build_undirected(&el)
    }

    fn tiny() -> DeviceConfig {
        DeviceConfig::test_tiny()
    }

    #[test]
    fn batched_matches_one_shot_bit_identical() {
        let g = graph(1);
        let variant = Variant::Rdbs(RdbsConfig::full());
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let sources: Vec<VertexId> = (0..8).map(|i| i * 13 % 120).collect();
        let batched = svc.batch(&sources);
        for (i, &s) in sources.iter().enumerate() {
            let one_shot = run_gpu(&g, s, variant, tiny());
            assert_eq!(batched[i].dist, one_shot.result.dist, "source {s}");
            assert_eq!(batched[i].source, s);
        }
        assert_eq!(svc.stats().fallbacks, 0);
    }

    #[test]
    fn one_upload_serves_a_whole_batch() {
        let g = graph(2);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let after_build = svc.device_uploads();
        assert_eq!(after_build, 4, "row+adj+wt+heavy, exactly once");
        let sources: Vec<VertexId> = (0..16).collect();
        let results = svc.batch(&sources);
        assert_eq!(results.len(), 16);
        assert_eq!(svc.device_uploads(), after_build, "no re-upload per query");
        let stats = svc.stats();
        assert_eq!(stats.queries, 16);
        assert_eq!(stats.uploads_avoided, 15 * 4);
        assert_eq!(stats.per_query_ms.len(), 16);
        assert!(stats.mean_query_ms().unwrap() >= 0.0);
    }

    #[test]
    fn load_graph_recycles_buffers() {
        let g1 = graph(3);
        let g2 = graph(4);
        let mut svc = SsspService::new(&g1, ServiceConfig::rdbs(tiny()));
        svc.query(5);
        let allocs_before = svc.stats().pool_allocs;
        svc.load_graph(&g2);
        svc.query(5);
        let stats = svc.stats();
        assert_eq!(stats.pool_allocs, allocs_before, "generation 2 allocates nothing new");
        assert!(stats.pool_reuses >= 8, "dist + queues + pending + scan recycled");
        assert!(stats.bytes_recycled > 0);
        assert_eq!(stats.graph_uploads, 8, "two generations, four uploads each");
        check_against_dijkstra(&g2, 5, &svc.query(5).dist).unwrap();
    }

    #[test]
    fn poisoned_recycled_buffers_do_not_leak() {
        // Fill every per-query buffer with garbage between queries —
        // the explicit reset path must erase all of the previous
        // query's state the kernels can observe.
        let g = graph(5);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let clean = svc.query(7).dist;
        if let State::Gpu(st) = &mut svc.state {
            st.device.fill(st.dist, 0xDEAD_BEEF);
            if let Scratch::Rdbs(s) = &st.scratch {
                for q in s.queues.q.iter().chain(std::iter::once(&s.queues.members)) {
                    st.device.fill(q.data, 0xDEAD_BEEF);
                    st.device.fill(q.tail, 0);
                    st.device.fill(q.overflow, 0);
                }
                st.device.fill(s.queues.pending, 0xDEAD_BEEF);
                st.device.fill(s.scan_out, 0xDEAD_BEEF);
            }
        }
        assert_eq!(svc.query(7).dist, clean);
        check_against_dijkstra(&g, 7, &clean).unwrap();
    }

    #[test]
    fn overflow_falls_back_typed_never_silent() {
        // Shrink the workload lists' logical capacity under the data
        // buffers: the push storm must surface as a typed error on
        // try_query and as a host-fallback (still correct) in batch.
        let g = graph(6);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        if let State::Gpu(st) = &mut svc.state {
            if let Scratch::Rdbs(s) = &mut st.scratch {
                for q in &mut s.queues.q {
                    q.capacity = 1;
                }
            }
        }
        let err = svc.try_query(0).unwrap_err();
        assert!(matches!(err, ServiceError::Overflow(_)), "{err}");
        let results = svc.batch(&[0, 1]);
        assert_eq!(svc.stats().fallbacks, 2);
        for (i, &s) in [0u32, 1].iter().enumerate() {
            check_against_dijkstra(&g, s, &results[i].dist).unwrap();
        }
    }

    #[test]
    fn baseline_and_multi_backends_answer_correctly() {
        let g = graph(7);
        for config in [ServiceConfig::baseline(tiny()), ServiceConfig::multi(2, tiny())] {
            let mut svc = SsspService::new(&g, config);
            let uploads = svc.device_uploads();
            for s in [0u32, 40, 119] {
                check_against_dijkstra(&g, s, &svc.query(s).dist).unwrap();
            }
            assert_eq!(svc.device_uploads(), uploads);
        }
    }

    #[test]
    fn out_of_range_source_is_typed() {
        let g = graph(8);
        let mut svc = SsspService::new(&g, ServiceConfig::rdbs(tiny()));
        let err = svc.try_query(10_000).unwrap_err();
        assert_eq!(err, ServiceError::SourceOutOfRange { source: 10_000, n: 120 });
        assert!(err.to_string().contains("out of range"));
    }
}
