//! Open-loop traffic tier for [`SsspService`]: seeded arrival
//! processes, deadline-aware dispatch, admission control with typed
//! shedding, and the `(generation, source)` answer cache.
//!
//! Closed-loop batches ([`SsspService::batch`]) measure *service*
//! latency under a workload that politely waits for the previous
//! answer. Real traffic does not wait: queries arrive on their own
//! clock, queue behind busy streams, and experience *sojourn* time —
//! queueing plus service — which is the number an SLO is written
//! against. This module drives the service the open-loop way:
//!
//! * **Arrivals** are generated over simulated time by a seeded
//!   Poisson or bursty two-state MMPP process
//!   ([`generate_arrivals`]), with a uniform or hot-set source mix.
//! * **Dispatch** runs on the shared wall timeline exposed by
//!   [`rdbs_gpu_sim::StreamSet`] (`wall_ns`/`advance_to`): a free
//!   stream waits idle until the next arrival instead of running work
//!   "in the past", and among waiting queries the
//!   earliest-deadline-first one is served — replacing the closed-loop
//!   scheduler's pure least-busy rule.
//! * **Admission control** predicts each query's completion from an
//!   EWMA of observed service times; a query whose predicted sojourn
//!   blows its SLO deadline is refused with a typed
//!   [`Rejected`] — never a silently wrong, stale, or truncated
//!   answer. With [`TrafficConfig::approx_on_shed`] a refused query
//!   may instead receive a landmark triangle-inequality *upper bound*,
//!   explicitly flagged approximate ([`Outcome::Approx`]).
//! * **The answer cache** ([`super::cache::AnswerCache`]) serves
//!   repeat sources bit-identically without touching the device, keyed
//!   by `(generation, source)` so a graph swap can never leak a stale
//!   answer.
//!
//! Everything is deterministic: arrivals derive from
//! [`TrafficConfig::seed`] via splitmix64, the scheduler's event order
//! is a function of the simulated clocks, and the device is the same
//! deterministic simulator the rest of the workspace uses.

use super::cache::{AnswerCache, CacheConfig};
use super::{
    escalate_queues, lane_buffers, note_query_parts, peak_overlap, GpuState, Scratch, SsspService,
    State,
};
use crate::gpu::bl::bl_on;
use crate::gpu::rdbs::RdbsDriver;
use crate::gpu::Variant;
use crate::stats::{percentile, SsspResult, UpdateStats};
use crate::{Dist, VertexId};
use rdbs_gpu_sim::StreamSet;
use std::sync::Arc;
use std::time::Instant;

/// Seeded arrival process over simulated time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `qps` queries per simulated second.
    Poisson { qps: f64 },
    /// Bursty two-state Markov-modulated Poisson process: exponential
    /// dwell times of mean `mean_dwell_ms` alternate between a slow
    /// and a fast Poisson phase.
    Mmpp { slow_qps: f64, fast_qps: f64, mean_dwell_ms: f64 },
}

/// How query sources are drawn.
#[derive(Clone, Copy, Debug)]
pub enum SourceMix {
    /// Uniform over the graph's vertices.
    Uniform,
    /// With probability `hot_weight`, uniform over the first
    /// `hot_sources` vertex ids (the skewed mix the answer cache
    /// exists for); otherwise uniform over all vertices.
    Hot { hot_sources: u32, hot_weight: f64 },
}

/// Open-loop workload description.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    pub arrivals: ArrivalProcess,
    /// Number of queries offered.
    pub offered: usize,
    /// Seed for the arrival/source/deadline draws.
    pub seed: u64,
    /// Sojourn SLO, simulated milliseconds from arrival.
    pub slo_ms: f64,
    /// Every `tight_every`-th query (1-indexed; 0 disables) carries
    /// `tight_slo_ms` instead — the mixed-deadline workload EDF
    /// reorders for.
    pub tight_slo_ms: Option<f64>,
    pub tight_every: usize,
    pub sources: SourceMix,
    /// Safety factor multiplying the predicted service time in the
    /// admission test (≥ 1.0 sheds earlier, holding the answered tail
    /// further under the SLO).
    pub shed_margin: f64,
    /// Enable the answer cache with this sizing; `None` disables it.
    pub cache: Option<CacheConfig>,
    /// Serve a landmark upper bound (flagged approximate) instead of
    /// shedding when one is available. Only sound on symmetric graphs
    /// — every `build_undirected` graph qualifies — hence opt-in.
    pub approx_on_shed: bool,
}

impl TrafficConfig {
    /// Poisson arrivals at `qps` with a uniform source mix and the
    /// cache disabled.
    pub fn poisson(qps: f64, offered: usize, slo_ms: f64, seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson { qps },
            offered,
            seed,
            slo_ms,
            tight_slo_ms: None,
            tight_every: 0,
            sources: SourceMix::Uniform,
            shed_margin: 1.0,
            cache: None,
            approx_on_shed: false,
        }
    }

    /// Same, with the cache enabled at its default sizing.
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(CacheConfig::default());
        self
    }
}

/// One offered query on the simulated wall timeline (times are
/// milliseconds since the serve call's start).
#[derive(Clone, Copy, Debug)]
pub struct Query {
    pub source: VertexId,
    pub arrival_ms: f64,
    /// Absolute deadline: `arrival_ms` + the query's SLO.
    pub deadline_ms: f64,
}

/// A typed admission refusal — the only way the tier declines a query.
#[derive(Clone, Debug, PartialEq)]
pub struct Rejected {
    pub source: VertexId,
    pub arrival_ms: f64,
    pub deadline_ms: f64,
    /// The completion the admission test predicted, ms — at or past
    /// the deadline by construction.
    pub predicted_completion_ms: f64,
}

/// Which path produced an exact answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// Fresh device run.
    Device,
    /// Host-oracle recovery after the escalation ceiling.
    HostFallback,
    /// Bit-identical replay from the answer cache.
    Cache,
}

/// Per-query outcome, in arrival order.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// An exact answer (bit-identical to a fresh device run).
    Exact {
        result: SsspResult,
        via: AnswerSource,
        arrival_ms: f64,
        /// Arrival → completion on the wall timeline.
        sojourn_ms: f64,
        /// Arrival → dispatch (zero for cache hits).
        queue_ms: f64,
    },
    /// A landmark triangle-inequality upper bound — every entry is
    /// ≥ the true distance, explicitly flagged by this variant.
    Approx { source: VertexId, upper: Vec<Dist>, arrival_ms: f64, sojourn_ms: f64 },
    /// Refused by admission control.
    Rejected(Rejected),
}

/// What one [`SsspService::serve_open_loop`] call did.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Per-query outcomes, in arrival order.
    pub outcomes: Vec<Outcome>,
    pub offered: usize,
    /// Exact answers (device + fallback + cache).
    pub exact: usize,
    /// Flagged approximate answers.
    pub approx: usize,
    /// Typed rejections.
    pub shed: usize,
    pub device_answered: usize,
    pub fallbacks: usize,
    pub cache_hits: usize,
    /// The workload's base SLO, for reporting.
    pub slo_ms: f64,
    /// Wall time the serve call occupied, ms (idle waits included).
    pub makespan_ms: f64,
    /// Exact answers completed past their deadline (admission predicts;
    /// it does not guarantee).
    pub deadline_violations: usize,
}

impl TrafficReport {
    /// Sojourns of the exact answers, ms, completion untracked
    /// (arrival order).
    pub fn answered_sojourns_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Exact { sojourn_ms, .. } => Some(*sojourn_ms),
                _ => None,
            })
            .collect()
    }

    /// Nearest-rank percentile of answered (exact) sojourns, ms.
    pub fn answered_percentile_ms(&self, p: f64) -> Option<f64> {
        percentile(&self.answered_sojourns_ms(), p)
    }

    /// Exact-hit rate over offered queries.
    pub fn hit_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.offered as f64
        }
    }

    /// Internal-consistency audit of the accounting — the CLI smoke
    /// gate. `before`/`after` are the service's
    /// [`crate::stats::BatchStats`] bracketing the serve call.
    pub fn check_accounting(
        &self,
        before: &crate::stats::BatchStats,
        after: &crate::stats::BatchStats,
    ) -> Result<(), String> {
        let fail = |msg: String| Err(msg);
        if self.outcomes.len() != self.offered {
            return fail(format!("{} outcomes for {} offered", self.outcomes.len(), self.offered));
        }
        if self.exact + self.approx + self.shed != self.offered {
            return fail(format!(
                "exact {} + approx {} + shed {} != offered {}",
                self.exact, self.approx, self.shed, self.offered
            ));
        }
        if self.device_answered + self.fallbacks + self.cache_hits != self.exact {
            return fail(format!(
                "device {} + fallback {} + cache {} != exact {}",
                self.device_answered, self.fallbacks, self.cache_hits, self.exact
            ));
        }
        let executed = (self.device_answered + self.fallbacks) as u64;
        if after.queries - before.queries != executed {
            return fail(format!(
                "stats.queries grew by {} but {} queries executed",
                after.queries - before.queries,
                executed
            ));
        }
        if after.fallbacks - before.fallbacks != self.fallbacks as u64 {
            return fail("fallback counters disagree".to_string());
        }
        if after.shed - before.shed != self.shed as u64 {
            return fail("shed counters disagree".to_string());
        }
        if after.cache_exact_hits - before.cache_exact_hits != self.cache_hits as u64 {
            return fail("cache-hit counters disagree".to_string());
        }
        let sim_grew = after.per_query_sim_ms.len() - before.per_query_sim_ms.len();
        if sim_grew != self.device_answered {
            return fail(format!(
                "service-latency series grew by {sim_grew}, expected {} (device-answered only)",
                self.device_answered
            ));
        }
        let sojourn_grew = after.per_query_sojourn_ms.len() - before.per_query_sojourn_ms.len();
        if sojourn_grew as u64 != executed {
            return fail(format!(
                "sojourn series grew by {sojourn_grew}, expected {executed} \
                 (every executed query, fallbacks included)"
            ));
        }
        Ok(())
    }
}

/// splitmix64: the workspace's standard small deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)`.
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential draw with the given rate (events per ms).
fn exp_ms(state: &mut u64, rate_per_ms: f64) -> f64 {
    assert!(rate_per_ms > 0.0, "arrival rates must be positive");
    -(1.0 - u01(state)).ln() / rate_per_ms
}

/// Generate the workload's arrival-ordered query list for an
/// `n`-vertex graph. Deterministic in [`TrafficConfig::seed`].
pub fn generate_arrivals(cfg: &TrafficConfig, n: u32) -> Vec<Query> {
    assert!(n > 0, "the resident graph has no vertices");
    let mut rng = cfg.seed ^ 0xA076_1D64_78BD_642F;
    let mut t = 0.0f64;
    // MMPP phase state (unused for Poisson).
    let mut fast = false;
    let mut phase_end = match cfg.arrivals {
        ArrivalProcess::Mmpp { mean_dwell_ms, .. } => exp_ms(&mut rng, 1.0 / mean_dwell_ms),
        ArrivalProcess::Poisson { .. } => f64::INFINITY,
    };
    let mut queries = Vec::with_capacity(cfg.offered);
    for i in 0..cfg.offered {
        match cfg.arrivals {
            ArrivalProcess::Poisson { qps } => t += exp_ms(&mut rng, qps / 1e3),
            ArrivalProcess::Mmpp { slow_qps, fast_qps, mean_dwell_ms } => loop {
                let qps = if fast { fast_qps } else { slow_qps };
                let dt = exp_ms(&mut rng, qps / 1e3);
                // Exponentials are memoryless: restarting the draw at
                // the phase boundary is exact, not an approximation.
                if t + dt > phase_end {
                    t = phase_end;
                    fast = !fast;
                    phase_end = t + exp_ms(&mut rng, 1.0 / mean_dwell_ms);
                } else {
                    t += dt;
                    break;
                }
            },
        }
        let source = match cfg.sources {
            SourceMix::Uniform => (splitmix64(&mut rng) % u64::from(n)) as VertexId,
            SourceMix::Hot { hot_sources, hot_weight } => {
                let hot = hot_sources.clamp(1, n);
                if u01(&mut rng) < hot_weight {
                    (splitmix64(&mut rng) % u64::from(hot)) as VertexId
                } else {
                    (splitmix64(&mut rng) % u64::from(n)) as VertexId
                }
            }
        };
        let slo = match cfg.tight_slo_ms {
            Some(tight) if cfg.tight_every > 0 && (i + 1) % cfg.tight_every == 0 => tight,
            _ => cfg.slo_ms,
        };
        queries.push(Query { source, arrival_ms: t, deadline_ms: t + slo });
    }
    queries
}

/// EWMA service-time predictor for the admission test. Before the
/// first observation it predicts zero — the first query on an idle
/// system is always admitted.
struct Predictor {
    ewma_ns: Option<f64>,
}

impl Predictor {
    const ALPHA: f64 = 0.3;

    fn new() -> Self {
        Self { ewma_ns: None }
    }

    fn observe(&mut self, service_ns: f64) {
        self.ewma_ns = Some(match self.ewma_ns {
            None => service_ns,
            Some(e) => (1.0 - Self::ALPHA) * e + Self::ALPHA * service_ns,
        });
    }

    fn predicted_ns(&self) -> f64 {
        self.ewma_ns.unwrap_or(0.0)
    }
}

impl SsspService {
    /// Serve a seeded open-loop workload — see the module docs.
    /// Requires a single-GPU backend (the multi-GPU port has no shared
    /// simulated clock to schedule on).
    pub fn serve_open_loop(&mut self, cfg: &TrafficConfig) -> TrafficReport {
        let n = self.num_vertices() as u32;
        let queries = generate_arrivals(cfg, n);
        self.serve_queries(&queries, cfg)
    }

    /// Serve an explicit query list (the open-loop entry point
    /// generates one; tests hand-construct them to pin scheduler
    /// behaviour). Queries must be in arrival order.
    pub fn serve_queries(&mut self, queries: &[Query], cfg: &TrafficConfig) -> TrafficReport {
        assert!(
            matches!(self.state, State::Gpu(_)),
            "the traffic tier requires a single-GPU backend"
        );
        assert!(
            queries.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "queries must arrive in order"
        );
        let n = self.graph.num_vertices() as u32;
        if let Some(bad) = queries.iter().find(|q| q.source >= n) {
            panic!("source {} out of range for a {n}-vertex graph", bad.source);
        }
        let streams = self.config.streams.max(1);
        self.ensure_lanes(streams);
        self.last_audit_hits = 0;
        let generation = self.generation;
        if let (Some(sizing), slot @ None) = (&cfg.cache, &mut self.traffic_cache) {
            *slot = Some(AnswerCache::new(*sizing));
        }
        let cache_enabled = cfg.cache.is_some();
        if let Some(c) = &mut self.traffic_cache {
            c.set_generation(generation);
        }

        let mut outcomes: Vec<Option<Outcome>> = vec![None; queries.len()];
        // Ceiling-hit queries, graded by the host oracle once the
        // scheduler's borrows are done: (index, sojourn at death).
        let mut ceiling: Vec<(usize, f64)> = Vec::new();
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        let mut predictor = Predictor::new();
        let mut device_answered = 0usize;
        let makespan_ms;
        let base_abs_ns;

        {
            let State::Gpu(st) = &mut self.state else { unreachable!("gated above") };
            let GpuState { device, variant, perm, arrays, lanes } = &mut **st;
            let lanes = &mut lanes[..streams];
            let graph = &self.graph;
            let cache = &mut self.traffic_cache;
            let rdbs_cfg = match *variant {
                Variant::Rdbs(c) => Some(c),
                Variant::Baseline => None,
            };
            let mut set = StreamSet::new(device, streams);
            let base = set.base_ns();
            let arrival_ns = |q: &Query| base + q.arrival_ms * 1e6;
            let deadline_ns = |q: &Query| base + q.deadline_ms * 1e6;

            struct Inflight {
                qi: usize,
                driver: RdbsDriver,
                started: Instant,
                dispatched_wall: f64,
            }
            let mut running: Vec<Option<Inflight>> = Vec::new();
            running.resize_with(streams, || None);
            // Arrival cursor: queries[..released] have been released
            // into the waiting set (or answered from the cache).
            let mut released = 0usize;
            let mut waiting: Vec<usize> = Vec::new();

            loop {
                // The actionable stream with the earliest wall
                // frontier: running streams step one grain, idle ones
                // dispatch (waiting for the next arrival if none is
                // queued yet).
                let mut pick: Option<(usize, f64)> = None;
                for (s, slot) in running.iter().enumerate() {
                    let wall = set.wall_ns(s as u32);
                    let key = if slot.is_some() || !waiting.is_empty() {
                        wall
                    } else if released < queries.len() {
                        wall.max(arrival_ns(&queries[released]))
                    } else {
                        continue;
                    };
                    if pick.is_none_or(|(_, best)| key < best) {
                        pick = Some((s, key));
                    }
                }
                let Some((s, t_now)) = pick else { break };
                let sid = s as u32;

                // Release arrivals up to the decision time. Exact
                // cache hits are answered on release without touching
                // a stream; the rest join the waiting set.
                while released < queries.len() && arrival_ns(&queries[released]) <= t_now {
                    let qi = released;
                    released += 1;
                    let q = queries[qi];
                    // Cache stamps live on the device's absolute
                    // clock, which is monotonic across serve calls —
                    // answers from earlier calls stay visible.
                    let hit = cache
                        .as_mut()
                        .filter(|_| cache_enabled)
                        .and_then(|c| c.lookup(generation, q.source, t_now / 1e6));
                    if let Some(dist) = hit {
                        let sojourn_ms = (t_now - base) / 1e6 - q.arrival_ms;
                        self.stats.cache_exact_hits += 1;
                        outcomes[qi] = Some(Outcome::Exact {
                            result: SsspResult {
                                source: q.source,
                                dist: (*dist).clone(),
                                stats: UpdateStats::default(),
                            },
                            via: AnswerSource::Cache,
                            arrival_ms: q.arrival_ms,
                            sojourn_ms,
                            queue_ms: sojourn_ms,
                        });
                    } else {
                        waiting.push(qi);
                    }
                }

                if running[s].is_some() {
                    // Step the in-flight query one bucket.
                    let lane = &mut lanes[s];
                    let inflight = running[s].as_mut().expect("picked a running stream");
                    let stepped = set.run(device, sid, |dev| {
                        inflight.driver.step(dev, graph, &mut lane.controller)
                    });
                    match stepped {
                        Ok(false) => {}
                        Ok(true) => {
                            let done = running[s].take().expect("stream was running");
                            let run = set.run(device, sid, |dev| done.driver.finish(dev));
                            self.last_audit_hits = self.last_audit_hits.max(run.audit.len());
                            let q = queries[done.qi];
                            let mut result = run.result;
                            if let Some(perm) = perm.as_ref() {
                                result.dist = perm.unapply_to_array(&result.dist);
                                result.source = q.source;
                            }
                            let end = set.wall_ns(sid);
                            let service_ns = end - done.dispatched_wall;
                            let sojourn_ms = (end - arrival_ns(&q)) / 1e6;
                            intervals.push((done.dispatched_wall, end));
                            self.stats.per_query_sim_ms.push(service_ns / 1e6);
                            self.stats.per_query_sojourn_ms.push(sojourn_ms);
                            note_query_parts(
                                &mut self.stats,
                                &mut self.queries_on_graph,
                                self.uploads_per_graph,
                                done.started,
                            );
                            predictor.observe(service_ns);
                            if let Some(c) = cache.as_mut().filter(|_| cache_enabled) {
                                c.insert(
                                    generation,
                                    q.source,
                                    Arc::new(result.dist.clone()),
                                    end / 1e6,
                                );
                            }
                            device_answered += 1;
                            outcomes[done.qi] = Some(Outcome::Exact {
                                result,
                                via: AnswerSource::Device,
                                arrival_ms: q.arrival_ms,
                                sojourn_ms,
                                queue_ms: (done.dispatched_wall - arrival_ns(&q)) / 1e6,
                            });
                        }
                        Err(_overflow) => {
                            let escalated = escalate_queues(
                                &mut self.pool,
                                device,
                                &mut lane.scratch,
                                graph.num_vertices(),
                            );
                            if escalated {
                                self.stats.escalations += 1;
                                let inflight = running[s].as_mut().expect("stream was running");
                                let source = queries[inflight.qi].source;
                                let mapped = perm.as_ref().map_or(source, |p| p.new_id(source));
                                let cfg_rdbs = rdbs_cfg.expect("a driver implies RDBS");
                                inflight.driver = set.run(device, sid, |dev| {
                                    super::start_rdbs_driver(
                                        dev, lane, *arrays, graph, mapped, cfg_rdbs,
                                    )
                                });
                            } else {
                                let dead = running[s].take().expect("stream was running");
                                let end = set.wall_ns(sid);
                                let q = queries[dead.qi];
                                let sojourn_ms = (end - arrival_ns(&q)) / 1e6;
                                intervals.push((dead.dispatched_wall, end));
                                self.stats.per_query_sojourn_ms.push(sojourn_ms);
                                ceiling.push((dead.qi, sojourn_ms));
                            }
                        }
                    }
                    continue;
                }

                // Idle stream: dispatch the earliest-deadline waiting
                // query that passes admission; shed (or serve an
                // approximate bound to) the ones that cannot make
                // their deadline anymore.
                while let Some(pos) = waiting
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da = queries[*a.1].deadline_ms;
                        let db = queries[*b.1].deadline_ms;
                        da.partial_cmp(&db).expect("finite deadlines")
                    })
                    .map(|(pos, _)| pos)
                {
                    let qi = waiting.remove(pos);
                    let q = queries[qi];
                    let t_free = set.wall_ns(sid);
                    let start_ns = t_free.max(arrival_ns(&q));
                    let predicted_done = start_ns + cfg.shed_margin * predictor.predicted_ns();
                    if start_ns > deadline_ns(&q) || predicted_done > deadline_ns(&q) {
                        let now_ms = (start_ns - base) / 1e6;
                        let bound = cache
                            .as_mut()
                            .filter(|_| cache_enabled && cfg.approx_on_shed)
                            .and_then(|c| c.upper_bound(generation, q.source, start_ns / 1e6));
                        outcomes[qi] = Some(match bound {
                            Some(upper) => {
                                self.stats.cache_approx_hits += 1;
                                Outcome::Approx {
                                    source: q.source,
                                    upper,
                                    arrival_ms: q.arrival_ms,
                                    sojourn_ms: now_ms - q.arrival_ms,
                                }
                            }
                            None => {
                                self.stats.shed += 1;
                                Outcome::Rejected(Rejected {
                                    source: q.source,
                                    arrival_ms: q.arrival_ms,
                                    deadline_ms: q.deadline_ms,
                                    predicted_completion_ms: (predicted_done - base) / 1e6,
                                })
                            }
                        });
                        continue;
                    }
                    // Admitted: wait idle until the arrival if the
                    // stream got here early, then run.
                    if start_ns > t_free {
                        set.advance_to(device, sid, start_ns);
                    }
                    let mapped = perm.as_ref().map_or(q.source, |p| p.new_id(q.source));
                    let lane = &mut lanes[s];
                    let dispatched_wall = set.wall_ns(sid);
                    let started = Instant::now();
                    if let Some(cfg_rdbs) = rdbs_cfg {
                        let driver = set.run(device, sid, |dev| {
                            super::start_rdbs_driver(dev, lane, *arrays, graph, mapped, cfg_rdbs)
                        });
                        running[s] = Some(Inflight { qi, driver, started, dispatched_wall });
                    } else {
                        // BL has no resumable driver: the whole query
                        // is the scheduling grain.
                        let Scratch::Bl(scratch) = &lane.scratch else {
                            unreachable!("scratch kind always matches the variant")
                        };
                        let gb = lane_buffers(*arrays, lane);
                        let result =
                            set.run(device, sid, |dev| bl_on(dev, gb, scratch, graph, mapped));
                        let end = set.wall_ns(sid);
                        let service_ns = end - dispatched_wall;
                        let sojourn_ms = (end - arrival_ns(&q)) / 1e6;
                        intervals.push((dispatched_wall, end));
                        self.stats.per_query_sim_ms.push(service_ns / 1e6);
                        self.stats.per_query_sojourn_ms.push(sojourn_ms);
                        note_query_parts(
                            &mut self.stats,
                            &mut self.queries_on_graph,
                            self.uploads_per_graph,
                            started,
                        );
                        predictor.observe(service_ns);
                        if let Some(c) = cache.as_mut().filter(|_| cache_enabled) {
                            c.insert(
                                generation,
                                q.source,
                                Arc::new(result.dist.clone()),
                                end / 1e6,
                            );
                        }
                        device_answered += 1;
                        outcomes[qi] = Some(Outcome::Exact {
                            result,
                            via: AnswerSource::Device,
                            arrival_ms: q.arrival_ms,
                            sojourn_ms,
                            queue_ms: (dispatched_wall - arrival_ns(&q)) / 1e6,
                        });
                    }
                    break;
                }
            }
            makespan_ms = set.makespan_ns() / 1e6;
            base_abs_ns = set.base_ns();
        }

        let mut fallbacks = 0usize;
        for &(qi, sojourn_ms) in &ceiling {
            let q = queries[qi];
            let result = self.host_fallback(q.source);
            if let Some(c) = &mut self.traffic_cache {
                if cache_enabled {
                    c.insert(
                        generation,
                        q.source,
                        Arc::new(result.dist.clone()),
                        base_abs_ns / 1e6 + q.arrival_ms + sojourn_ms,
                    );
                }
            }
            fallbacks += 1;
            outcomes[qi] = Some(Outcome::Exact {
                result,
                via: AnswerSource::HostFallback,
                arrival_ms: q.arrival_ms,
                sojourn_ms,
                queue_ms: 0.0,
            });
        }
        self.stats.inflight_peak = self.stats.inflight_peak.max(peak_overlap(&intervals));

        let outcomes: Vec<Outcome> =
            outcomes.into_iter().map(|o| o.expect("every offered query has an outcome")).collect();
        let mut exact = 0;
        let mut approx = 0;
        let mut shed = 0;
        let mut cache_hits = 0;
        let mut deadline_violations = 0;
        for (o, q) in outcomes.iter().zip(queries) {
            match o {
                Outcome::Exact { via, sojourn_ms, .. } => {
                    exact += 1;
                    if *via == AnswerSource::Cache {
                        cache_hits += 1;
                    }
                    if q.arrival_ms + *sojourn_ms > q.deadline_ms + 1e-9 {
                        deadline_violations += 1;
                    }
                }
                Outcome::Approx { .. } => approx += 1,
                Outcome::Rejected(_) => shed += 1,
            }
        }
        TrafficReport {
            outcomes,
            offered: queries.len(),
            exact,
            approx,
            shed,
            device_answered,
            fallbacks,
            cache_hits,
            slo_ms: cfg.slo_ms,
            makespan_ms,
            deadline_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::validate::check_against_dijkstra;
    use rdbs_gpu_sim::DeviceConfig;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64) -> crate::Csr {
        let mut el = erdos_renyi(120, 600, seed);
        uniform_weights(&mut el, seed + 9);
        build_undirected(&el)
    }

    fn svc(streams: usize) -> SsspService {
        SsspService::new(
            &graph(21),
            ServiceConfig::rdbs(DeviceConfig::test_tiny()).with_streams(streams),
        )
    }

    /// Service time of one cold query, ms — for calibrating qps.
    fn probe_service_ms() -> f64 {
        let mut s = svc(1);
        s.query(0);
        s.stats().per_query_sim_ms[0]
    }

    #[test]
    fn arrivals_are_seeded_and_ordered() {
        let cfg = TrafficConfig::poisson(100.0, 64, 5.0, 7);
        let a = generate_arrivals(&cfg, 120);
        let b = generate_arrivals(&cfg, 120);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert!((x.arrival_ms - y.arrival_ms).abs() < 1e-12);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        // Mean inter-arrival of Poisson(100 qps) is 10 ms; 64 draws
        // land well within a loose 3x band.
        let mean = a.last().unwrap().arrival_ms / 64.0;
        assert!(mean > 10.0 / 3.0 && mean < 30.0, "mean inter-arrival {mean} ms");
        let other = generate_arrivals(&TrafficConfig::poisson(100.0, 64, 5.0, 8), 120);
        assert!(
            a.iter().zip(&other).any(|(x, y)| (x.arrival_ms - y.arrival_ms).abs() > 1e-12),
            "different seeds must give different arrivals"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_equal_mean_rate() {
        let mut cfg = TrafficConfig::poisson(0.0, 512, 5.0, 11);
        cfg.arrivals =
            ArrivalProcess::Mmpp { slow_qps: 20.0, fast_qps: 180.0, mean_dwell_ms: 50.0 };
        let bursty = generate_arrivals(&cfg, 120);
        assert!(bursty.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        let poisson = generate_arrivals(&TrafficConfig::poisson(100.0, 512, 5.0, 11), 120);
        let cv2 = |qs: &[Query]| {
            let gaps: Vec<f64> = qs.windows(2).map(|w| w[1].arrival_ms - w[0].arrival_ms).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        // A Poisson stream's squared coefficient of variation is ~1;
        // the two-state MMPP's is strictly larger.
        assert!(
            cv2(&bursty) > cv2(&poisson),
            "MMPP cv² {} vs Poisson cv² {}",
            cv2(&bursty),
            cv2(&poisson)
        );
    }

    #[test]
    fn light_load_answers_everything_exactly() {
        // Arrivals far slower than service: no queueing, no shedding.
        let service_ms = probe_service_ms();
        let qps = 1e3 / (20.0 * service_ms);
        let cfg = TrafficConfig::poisson(qps, 12, 50.0 * service_ms, 3);
        let mut s = svc(2);
        let before = s.stats();
        let report = s.serve_open_loop(&cfg);
        let after = s.stats();
        report.check_accounting(&before, &after).unwrap();
        assert_eq!(report.exact, 12);
        assert_eq!(report.shed, 0);
        assert_eq!(report.approx, 0);
        let g = graph(21);
        for o in &report.outcomes {
            let Outcome::Exact { result, sojourn_ms, queue_ms, .. } = o else {
                panic!("light load must answer exactly")
            };
            check_against_dijkstra(&g, result.source, &result.dist).unwrap();
            assert!(*sojourn_ms >= 0.0 && *queue_ms >= -1e9_f64.recip());
        }
        assert_eq!(report.deadline_violations, 0);
        // Idle waits put the makespan at least at the last arrival.
        let arrivals = generate_arrivals(&cfg, 120);
        assert!(report.makespan_ms >= arrivals.last().unwrap().arrival_ms - 1e-9);
    }

    #[test]
    fn overload_sheds_typed_and_holds_the_answered_tail() {
        // Arrivals ~8x faster than one stream can serve, tight SLO:
        // admission must shed, and what it answers must meet the tail.
        let service_ms = probe_service_ms();
        let qps = 8.0 * 1e3 / service_ms;
        let slo_ms = 3.0 * service_ms;
        let mut cfg = TrafficConfig::poisson(qps, 48, slo_ms, 5);
        cfg.shed_margin = 1.3;
        let mut s = svc(1);
        let before = s.stats();
        let report = s.serve_open_loop(&cfg);
        let after = s.stats();
        report.check_accounting(&before, &after).unwrap();
        assert!(report.shed > 0, "8x overload must shed");
        assert!(report.exact > 0, "admission must still answer someone");
        for o in &report.outcomes {
            if let Outcome::Rejected(r) = o {
                assert!(
                    r.predicted_completion_ms > r.deadline_ms,
                    "rejections must carry the blown prediction"
                );
            }
        }
        let p99 = report.answered_percentile_ms(99.0).unwrap();
        assert!(p99 <= slo_ms + 1e-9, "answered p99 {p99} ms vs SLO {slo_ms} ms");
    }

    #[test]
    fn edf_serves_the_tighter_deadline_first() {
        // One stream, both queries waiting while the first runs: the
        // later-arriving but tighter-deadline query must dispatch
        // before the earlier loose one.
        let service_ms = probe_service_ms();
        let mk = |source, arrival_ms: f64, slo_ms: f64| Query {
            source,
            arrival_ms,
            deadline_ms: arrival_ms + slo_ms,
        };
        let queries = vec![
            mk(3, 0.0, 100.0 * service_ms),
            mk(5, 0.1 * service_ms, 90.0 * service_ms), // loose
            mk(9, 0.2 * service_ms, 4.0 * service_ms),  // tight, last to arrive
        ];
        let cfg = TrafficConfig::poisson(1.0, 3, 100.0 * service_ms, 1);
        let mut s = svc(1);
        let report = s.serve_queries(&queries, &cfg);
        let sojourn = |i: usize| match &report.outcomes[i] {
            Outcome::Exact { sojourn_ms, arrival_ms, .. } => arrival_ms + sojourn_ms,
            _ => panic!("all three must be answered"),
        };
        assert!(
            sojourn(2) < sojourn(1),
            "EDF must complete the tight query (at {}) before the loose one (at {})",
            sojourn(2),
            sojourn(1)
        );
    }

    #[test]
    fn hot_sources_hit_the_cache_bit_identically() {
        let service_ms = probe_service_ms();
        let qps = 1e3 / (4.0 * service_ms);
        let mut cfg = TrafficConfig::poisson(qps, 32, 100.0 * service_ms, 13).with_cache();
        cfg.sources = SourceMix::Hot { hot_sources: 3, hot_weight: 0.8 };
        let mut s = svc(2);
        let before = s.stats();
        let report = s.serve_open_loop(&cfg);
        let after = s.stats();
        report.check_accounting(&before, &after).unwrap();
        assert!(report.cache_hits > 0, "a 3-source hot set must repeat");
        assert!(report.hit_rate() > 0.0);
        // Every cache answer is bit-identical to a fresh device run.
        let mut fresh = svc(1);
        for o in &report.outcomes {
            if let Outcome::Exact { result, via: AnswerSource::Cache, .. } = o {
                assert_eq!(result.dist, fresh.query(result.source).dist, "cache must replay bits");
            }
        }
        assert_eq!(after.cache_exact_hits - before.cache_exact_hits, report.cache_hits as u64);
    }

    #[test]
    fn shed_with_landmarks_serves_flagged_upper_bounds() {
        let service_ms = probe_service_ms();
        // Warm phase at trivial load builds landmarks, then an
        // overloaded burst forces admission to decline; with
        // approx_on_shed those queries get flagged upper bounds.
        let mut cfg = TrafficConfig::poisson(1e3 / (4.0 * service_ms), 8, 100.0 * service_ms, 17)
            .with_cache();
        cfg.approx_on_shed = true;
        let mut s = svc(1);
        let warm = s.serve_open_loop(&cfg);
        assert!(warm.exact >= 4, "the warm phase must populate landmarks");
        let mut burst = cfg.clone();
        burst.arrivals = ArrivalProcess::Poisson { qps: 20.0 * 1e3 / service_ms };
        burst.offered = 24;
        burst.slo_ms = 1.5 * service_ms;
        burst.seed = 18;
        let report = s.serve_open_loop(&burst);
        assert!(report.approx > 0, "an overloaded burst over landmarks must serve bounds");
        let g = graph(21);
        for o in &report.outcomes {
            if let Outcome::Approx { source, upper, .. } = o {
                let truth = crate::seq::dijkstra(&g, *source);
                for (v, (&ub, &d)) in upper.iter().zip(&truth.dist).enumerate() {
                    assert!(ub >= d, "upper[{v}] = {ub} below true {d}");
                }
            }
        }
    }

    #[test]
    fn generation_swap_empties_the_cache() {
        let service_ms = probe_service_ms();
        let mut cfg = TrafficConfig::poisson(1e3 / (4.0 * service_ms), 16, 100.0 * service_ms, 19)
            .with_cache();
        cfg.sources = SourceMix::Hot { hot_sources: 2, hot_weight: 0.9 };
        let mut s = svc(2);
        let first = s.serve_open_loop(&cfg);
        assert!(first.cache_hits > 0);
        let g2 = graph(22);
        s.load_graph(&g2);
        let report = s.serve_open_loop(&cfg);
        // Hits may re-occur (the hot set repeats), but every answer
        // must come from generation-2 state: bit-identical to a fresh
        // service on g2.
        let mut fresh = SsspService::new(&g2, ServiceConfig::rdbs(DeviceConfig::test_tiny()));
        for o in &report.outcomes {
            if let Outcome::Exact { result, .. } = o {
                assert_eq!(result.dist, fresh.query(result.source).dist);
            }
        }
    }
}
