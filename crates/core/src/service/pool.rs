//! Size-class buffer pool over the device arena's free lists.
//!
//! The pool never copies or zeroes: a released buffer keeps its words
//! until the next owner resets them, which is exactly what the
//! resident service wants — `reset` is an explicit, accounted step,
//! and the poisoned-fill tests in [`crate::service`] rely on stale
//! contents being observable when a reset is skipped.

use rdbs_gpu_sim::{Buf, Device};

/// Round a requested length up to its power-of-two size class.
///
/// Free lists are keyed by exact buffer length ([`rdbs_gpu_sim`]'s
/// arena), so requests of nearby sizes — distance vectors of two graph
/// generations, say — must be rounded to a common class to actually
/// recycle each other's memory.
pub fn size_class(len: usize) -> usize {
    len.max(1).next_power_of_two()
}

/// Recycling allocator for per-query device buffers.
///
/// [`BufferPool::acquire`] first tries the device's free lists (at
/// size-class granularity) and only falls back to a fresh allocation
/// on a miss; [`BufferPool::release`] returns a buffer to the lists.
/// The pool is pure bookkeeping — buffers live in the device arena —
/// so one pool instance serves any number of graph generations.
#[derive(Debug, Default)]
pub struct BufferPool {
    allocs: u64,
    reuses: u64,
    words_recycled: u64,
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire at least `len` words, recycling a free buffer of the
    /// same size class when one exists. Contents are whatever the
    /// previous owner left — callers must reset what they read.
    pub fn acquire(&mut self, device: &mut Device, label: &'static str, len: usize) -> Buf {
        let class = size_class(len);
        let (buf, reused) = device.alloc_pooled(label, class);
        if reused {
            self.reuses += 1;
            self.words_recycled += class as u64;
        } else {
            self.allocs += 1;
        }
        buf
    }

    /// Return `buf` to the free lists for a later
    /// [`BufferPool::acquire`] of the same length.
    pub fn release(&self, device: &mut Device, buf: Buf) {
        device.release(buf);
    }

    /// Fresh allocations performed (free-list misses).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Acquisitions served from the free lists.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// 32-bit words recycled instead of freshly allocated.
    pub fn words_recycled(&self) -> u64 {
        self.words_recycled
    }

    /// Trim the device free lists down to at most `max_bytes` of idle
    /// memory, evicting the largest size classes first (a few big
    /// scratch buffers dominate the high-water mark, so evicting them
    /// reclaims the most per free-list entry). Returns bytes evicted.
    /// Held buffers are untouched; only idle free-list capacity is
    /// released, so the pool keeps serving smaller acquisitions from
    /// what remains.
    pub fn trim_to(&self, device: &mut Device, max_bytes: usize) -> usize {
        device.trim_pool_to(max_bytes)
    }

    /// Bytes currently idle on the device free lists (what
    /// [`BufferPool::trim_to`] trims against).
    pub fn idle_bytes(&self, device: &Device) -> usize {
        device.pooled_free_words() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbs_gpu_sim::DeviceConfig;

    #[test]
    fn size_classes_are_powers_of_two() {
        assert_eq!(size_class(0), 1);
        assert_eq!(size_class(1), 1);
        assert_eq!(size_class(3), 4);
        assert_eq!(size_class(4), 4);
        assert_eq!(size_class(1000), 1024);
    }

    #[test]
    fn release_then_acquire_recycles_across_classes() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut d, "a", 100); // class 128
        assert_eq!((pool.allocs(), pool.reuses()), (1, 0));
        pool.release(&mut d, a);
        // A different length in the same class reuses the buffer.
        let b = pool.acquire(&mut d, "b", 70);
        assert_eq!((pool.allocs(), pool.reuses()), (1, 1));
        assert_eq!(pool.words_recycled(), 128);
        // A different class misses.
        let c = pool.acquire(&mut d, "c", 300);
        assert_eq!((pool.allocs(), pool.reuses()), (2, 1));
        assert_eq!(d.counters().buffer_reuses, 1);
        pool.release(&mut d, b);
        pool.release(&mut d, c);
    }

    #[test]
    fn trim_evicts_largest_classes_first() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut pool = BufferPool::new();
        let small = pool.acquire(&mut d, "small", 64); // class 64
        let mid = pool.acquire(&mut d, "mid", 256); // class 256
        let big = pool.acquire(&mut d, "big", 1024); // class 1024
        pool.release(&mut d, small);
        pool.release(&mut d, mid);
        pool.release(&mut d, big);
        assert_eq!(pool.idle_bytes(&d), (64 + 256 + 1024) * 4);

        // Trim to the two smaller classes: only the largest goes.
        let evicted = pool.trim_to(&mut d, (64 + 256) * 4);
        assert_eq!(evicted, 1024 * 4);
        assert_eq!(pool.idle_bytes(&d), (64 + 256) * 4);

        // The evicted class misses (fresh alloc); the survivors hit.
        let (allocs0, reuses0) = (pool.allocs(), pool.reuses());
        pool.acquire(&mut d, "big2", 1024);
        assert_eq!((pool.allocs(), pool.reuses()), (allocs0 + 1, reuses0));
        pool.acquire(&mut d, "mid2", 256);
        pool.acquire(&mut d, "small2", 64);
        assert_eq!((pool.allocs(), pool.reuses()), (allocs0 + 1, reuses0 + 2));
        assert_eq!(pool.idle_bytes(&d), 0);

        // Trimming an already-small pool is a no-op.
        assert_eq!(pool.trim_to(&mut d, usize::MAX), 0);
    }

    #[test]
    fn recycled_contents_persist_until_reset() {
        let mut d = Device::new(DeviceConfig::test_tiny());
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut d, "a", 8);
        d.fill(a, 0xDEAD_BEEF);
        pool.release(&mut d, a);
        let b = pool.acquire(&mut d, "b", 8);
        assert_eq!(d.read(b), &[0xDEAD_BEEF; 8]);
    }
}
