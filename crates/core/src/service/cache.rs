//! Distance-vector answer cache for the traffic tier.
//!
//! The cache stores full distance vectors keyed by `(generation,
//! source)`: a graph swap ([`crate::service::SsspService::load_graph`])
//! bumps the generation and invalidates everything, so a cached answer
//! can never silently outlive the graph it was computed on. Exact hits
//! return the stored vector unchanged — bit-identical to the device
//! answer that produced it, because every backend is deterministic.
//!
//! The first few distinct answered sources are additionally pinned as
//! **landmarks**. For a source `s` with no exact entry, the triangle
//! inequality gives a per-vertex *upper bound*
//! `dist(s, v) ≤ dist(l, s) + dist(l, v)` from any landmark `l` —
//! valid when the graph is symmetric (every service entry point built
//! with `build_undirected` qualifies), which is why the traffic tier
//! only serves bounds behind an explicit opt-in
//! ([`crate::service::traffic::TrafficConfig::approx_on_shed`]) and
//! always flags them approximate, never as exact answers.
//!
//! Lookups are stamped with the device's *absolute* simulated clock
//! (which is monotonic across serve calls): an entry is visible only
//! at or after the moment its producing query completed, so a cache
//! hit can never use an answer "from the future" of the open-loop
//! timeline, while answers from earlier serve calls stay visible.

use crate::{Dist, VertexId, INF};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Sizing knobs for [`AnswerCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum number of cached distance vectors (FIFO eviction).
    pub capacity: usize,
    /// Maximum number of landmark vectors pinned for triangle-bound
    /// service (landmarks survive entry eviction).
    pub landmarks: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { capacity: 64, landmarks: 4 }
    }
}

/// One cached answer: the distance vector and the absolute simulated
/// wall time (ms) it became available at.
struct Entry {
    dist: Arc<Vec<Dist>>,
    available_ms: f64,
}

/// A `(generation, source)`-keyed distance-vector cache with landmark
/// upper bounds — see the module docs.
pub struct AnswerCache {
    config: CacheConfig,
    generation: u64,
    entries: HashMap<VertexId, Entry>,
    /// Insertion order of non-landmark entries, for FIFO eviction.
    order: VecDeque<VertexId>,
    /// Pinned landmark answers: `(source, available_ms, dist)`.
    landmarks: Vec<(VertexId, f64, Arc<Vec<Dist>>)>,
    exact_hits: u64,
    approx_hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl AnswerCache {
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            generation: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            landmarks: Vec::new(),
            exact_hits: 0,
            approx_hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Adopt `generation`, dropping every entry and landmark when it
    /// differs from the current one — the stale answers of the old
    /// graph must never be served.
    pub fn set_generation(&mut self, generation: u64) {
        if generation != self.generation {
            self.entries.clear();
            self.order.clear();
            self.landmarks.clear();
            self.generation = generation;
        }
    }

    /// Exact lookup at simulated wall time `now_ms`: the stored vector
    /// for `(generation, source)`, if its producing query completed by
    /// `now_ms`. Counts a hit or miss.
    pub fn lookup(
        &mut self,
        generation: u64,
        source: VertexId,
        now_ms: f64,
    ) -> Option<Arc<Vec<Dist>>> {
        if generation != self.generation {
            self.misses += 1;
            return None;
        }
        match self.entries.get(&source) {
            Some(e) if e.available_ms <= now_ms => {
                self.exact_hits += 1;
                Some(Arc::clone(&e.dist))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Landmark triangle-inequality upper bound for `source` at wall
    /// time `now_ms`: `ub[v] = min over landmarks l of
    /// dist(l, source) + dist(l, v)` (saturating at [`INF`]), with
    /// `ub[source] = 0`. `None` unless some already-available landmark
    /// reaches `source` — an all-[`INF`] bound claims nothing. Counts
    /// an approx hit when it serves.
    pub fn upper_bound(
        &mut self,
        generation: u64,
        source: VertexId,
        now_ms: f64,
    ) -> Option<Vec<Dist>> {
        if generation != self.generation {
            return None;
        }
        let mut best: Option<Vec<Dist>> = None;
        for (_, available_ms, dist) in &self.landmarks {
            if *available_ms > now_ms {
                continue;
            }
            let to_source = dist[source as usize];
            if to_source == INF {
                continue;
            }
            let ub = best.get_or_insert_with(|| vec![INF; dist.len()]);
            for (u, &d) in ub.iter_mut().zip(dist.iter()) {
                *u = (*u).min(to_source.saturating_add(d));
            }
        }
        let mut ub = best?;
        ub[source as usize] = 0;
        self.approx_hits += 1;
        Some(ub)
    }

    /// Insert an exact answer that completed at wall time `now_ms`.
    /// First answer for a source wins (re-computations are
    /// bit-identical anyway); the first
    /// [`CacheConfig::landmarks`] distinct sources are pinned as
    /// landmarks; past [`CacheConfig::capacity`] the oldest
    /// non-landmark entry is evicted.
    pub fn insert(&mut self, generation: u64, source: VertexId, dist: Arc<Vec<Dist>>, now_ms: f64) {
        if generation != self.generation {
            return;
        }
        if self.entries.contains_key(&source) {
            return;
        }
        if self.landmarks.len() < self.config.landmarks {
            self.landmarks.push((source, now_ms, Arc::clone(&dist)));
        } else {
            self.order.push_back(source);
        }
        self.entries.insert(source, Entry { dist, available_ms: now_ms });
        self.insertions += 1;
        while self.entries.len() > self.config.capacity {
            let Some(old) = self.order.pop_front() else { break };
            self.entries.remove(&old);
            self.evictions += 1;
        }
    }

    /// Exact hits served so far.
    pub fn exact_hits(&self) -> u64 {
        self.exact_hits
    }

    /// Approximate (landmark upper-bound) answers served so far.
    pub fn approx_hits(&self) -> u64 {
        self.approx_hits
    }

    /// Exact lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Vectors inserted since the last generation change.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries dropped by FIFO eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Live cached vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact hit rate over exact lookups; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.exact_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.exact_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(d: &[Dist]) -> Arc<Vec<Dist>> {
        Arc::new(d.to_vec())
    }

    #[test]
    fn generation_swap_invalidates_everything() {
        let mut c = AnswerCache::new(CacheConfig::default());
        c.insert(0, 3, v(&[5, 0, 7]), 1.0);
        assert_eq!(c.lookup(0, 3, 2.0).as_deref(), Some(&vec![5, 0, 7]));
        c.set_generation(1);
        assert!(c.lookup(1, 3, 2.0).is_none(), "new generation starts cold");
        assert!(c.upper_bound(1, 0, 2.0).is_none(), "landmarks drop with the generation");
        // A stale-generation insert is refused outright.
        c.insert(0, 3, v(&[5, 0, 7]), 1.0);
        assert!(c.lookup(1, 3, 2.0).is_none());
    }

    #[test]
    fn entries_are_invisible_before_their_completion_time() {
        let mut c = AnswerCache::new(CacheConfig::default());
        assert!(c.lookup(0, 1, 0.0).is_none(), "cold cache misses");
        c.insert(0, 1, v(&[0, 1]), 10.0);
        assert!(c.lookup(0, 1, 5.0).is_none(), "the producing query has not completed yet");
        assert!(c.lookup(0, 1, 10.0).is_some());
        assert_eq!(c.exact_hits(), 1);
        assert_eq!(c.misses(), 2, "cold + too-early lookups both count");
    }

    #[test]
    fn upper_bound_is_triangle_inequality_over_landmarks() {
        let mut c = AnswerCache::new(CacheConfig { capacity: 8, landmarks: 2 });
        // Landmark 0: dist = [0, 2, 9, INF]; landmark 1: [2, 0, 3, INF].
        c.insert(0, 0, v(&[0, 2, 9, INF]), 0.0);
        c.insert(0, 1, v(&[2, 0, 3, INF]), 0.0);
        let ub = c.upper_bound(0, 2, 0.0).expect("both landmarks reach source 2");
        // Via l0: 9 + [0,2,9,INF]; via l1: 3 + [2,0,3,INF]; min, and
        // ub[source] clamps to 0.
        assert_eq!(ub, vec![5, 3, 0, INF]);
        assert_eq!(c.approx_hits(), 1);
        // A source no landmark reaches gets no bound.
        assert!(c.upper_bound(0, 3, 0.0).is_none());
    }

    #[test]
    fn fifo_eviction_spares_landmarks() {
        let mut c = AnswerCache::new(CacheConfig { capacity: 2, landmarks: 1 });
        c.insert(0, 0, v(&[0]), 0.0); // landmark, pinned
        c.insert(0, 1, v(&[1]), 0.0);
        c.insert(0, 2, v(&[2]), 0.0); // over capacity: evicts source 1
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.lookup(0, 0, 0.0).is_some(), "landmark survives");
        assert!(c.lookup(0, 1, 0.0).is_none(), "oldest non-landmark evicted");
        assert!(c.lookup(0, 2, 0.0).is_some());
    }
}
