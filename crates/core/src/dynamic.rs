//! Dynamic SSSP maintenance under edge updates (Ramalingam–Reps
//! style).
//!
//! Road networks — the paper's motivating §1 domain — change:
//! closures, congestion-dependent weights. Recomputing SSSP from
//! scratch per update wastes the previous solution. [`DynamicSssp`]
//! maintains distances and a shortest-path tree under
//! weight-decrease/insert (localized relaxation from the improved
//! endpoint) and weight-increase/delete (invalidate the affected
//! subtree, then repair it from its boundary).
//!
//! The structure owns a mutable copy of the graph in adjacency-map
//! form; each update costs time proportional to the affected region,
//! not the whole graph.

use crate::{Csr, Dist, VertexId, Weight, INF};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The CSR handed to [`DynamicSssp::try_new`] is directed: some edge
/// has no reverse twin of equal weight. Every repair path in the
/// structure (boundary re-seeding, subtree invalidation) walks
/// `adj[x]` as *both* the out- and in-edges of `x`, which is only
/// sound on a symmetric graph — accepting a directed CSR here used to
/// silently produce distances that diverge from the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsymmetricInput {
    /// The directed edge with no matching reverse.
    pub u: VertexId,
    pub v: VertexId,
    /// Its weight (the per-direction minimum when parallel edges
    /// exist).
    pub weight: Weight,
}

impl std::fmt::Display for AsymmetricInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "directed input: edge {} -> {} (weight {}) has no equal-weight reverse; \
             DynamicSssp maintains undirected graphs only",
            self.u, self.v, self.weight
        )
    }
}

impl std::error::Error for AsymmetricInput {}

/// Dynamic single-source shortest paths.
#[derive(Debug)]
pub struct DynamicSssp {
    source: VertexId,
    /// Mutable adjacency: `adj[u]` maps neighbour → weight (undirected:
    /// both directions kept in sync).
    adj: Vec<HashMap<VertexId, Weight>>,
    dist: Vec<Dist>,
    parent: Vec<VertexId>,
}

const NO_PARENT: VertexId = u32::MAX;

impl DynamicSssp {
    /// Build from a symmetrized CSR and compute the initial solution.
    /// Panics on directed input; use [`DynamicSssp::try_new`] to get
    /// the typed rejection instead.
    pub fn new(graph: &Csr, source: VertexId) -> Self {
        match Self::try_new(graph, source) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build from a symmetrized CSR and compute the initial solution,
    /// rejecting directed input with a typed [`AsymmetricInput`]
    /// instead of silently symmetrizing it (per-direction minimum) and
    /// diverging from the oracle on the first update.
    pub fn try_new(graph: &Csr, source: VertexId) -> Result<Self, AsymmetricInput> {
        let n = graph.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let mut adj: Vec<HashMap<VertexId, Weight>> = vec![HashMap::new(); n];
        for (u, v, w) in graph.all_edges() {
            let e = adj[u as usize].entry(v).or_insert(w);
            *e = (*e).min(w);
        }
        // Honor directedness: the update paths keep both directions in
        // sync, so the input must already be symmetric (parallel edges
        // collapse to the per-direction minimum first — an undirected
        // multigraph is fine, a genuinely directed one is not).
        for (u, nbrs) in adj.iter().enumerate() {
            for (&v, &w) in nbrs {
                if adj[v as usize].get(&(u as VertexId)) != Some(&w) {
                    return Err(AsymmetricInput { u: u as VertexId, v, weight: w });
                }
            }
        }
        let mut s = Self { source, adj, dist: vec![INF; n], parent: vec![NO_PARENT; n] };
        s.recompute_from_scratch();
        Ok(s)
    }

    /// Current distances.
    pub fn dist(&self) -> &[Dist] {
        &self.dist
    }

    /// Current shortest-path-tree parents (source maps to itself).
    pub fn parents(&self) -> &[VertexId] {
        &self.parent
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn recompute_from_scratch(&mut self) {
        self.dist.fill(INF);
        self.parent.fill(NO_PARENT);
        self.dist[self.source as usize] = 0;
        self.parent[self.source as usize] = self.source;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0 as Dist, self.source)));
        self.run_dijkstra(heap);
    }

    /// Dijkstra from an arbitrary seeded heap (used by both repair
    /// paths; entries must already be written into `dist`).
    fn run_dijkstra(&mut self, mut heap: BinaryHeap<Reverse<(Dist, VertexId)>>) {
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let neighbours: Vec<(VertexId, Weight)> =
                self.adj[u as usize].iter().map(|(&v, &w)| (v, w)).collect();
            for (v, w) in neighbours {
                let nd = d.saturating_add(w);
                if nd < self.dist[v as usize] {
                    self.dist[v as usize] = nd;
                    self.parent[v as usize] = u;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }

    /// Insert an undirected edge or decrease its weight. No-op if an
    /// equal-or-lighter edge exists. O(affected region · log).
    pub fn insert_or_decrease(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(w >= 1, "weights must be positive");
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        if u == v {
            return;
        }
        if let Some(&old) = self.adj[u as usize].get(&v) {
            if old <= w {
                return;
            }
        }
        self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        // Localized repair: seed with whichever endpoint improves.
        let mut heap = BinaryHeap::new();
        for (a, b) in [(u, v), (v, u)] {
            let da = self.dist[a as usize];
            if da == INF {
                continue;
            }
            let nd = da.saturating_add(w);
            if nd < self.dist[b as usize] {
                self.dist[b as usize] = nd;
                self.parent[b as usize] = a;
                heap.push(Reverse((nd, b)));
            }
        }
        self.run_dijkstra(heap);
    }

    /// Delete an undirected edge (no-op if absent); repairs all
    /// distances that routed through it.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        let existed = self.adj[u as usize].remove(&v).is_some();
        self.adj[v as usize].remove(&u);
        if !existed {
            return;
        }
        // If neither tree edge (u→v) nor (v→u) is in the SP tree, the
        // solution is untouched.
        let tree_uv = self.parent[v as usize] == u;
        let tree_vu = self.parent[u as usize] == v;
        if !tree_uv && !tree_vu {
            return;
        }
        let root = if tree_uv { v } else { u };
        // Collect the subtree hanging below the broken tree edge.
        let affected = self.collect_subtree(root);
        for &x in &affected {
            self.dist[x as usize] = INF;
            self.parent[x as usize] = NO_PARENT;
        }
        // Repair: seed every affected vertex with its best boundary
        // predecessor, then run Dijkstra over the region.
        let mut heap = BinaryHeap::new();
        for &x in &affected {
            let mut best: (Dist, VertexId) = (INF, NO_PARENT);
            for (&y, &w) in &self.adj[x as usize] {
                let dy = self.dist[y as usize];
                if dy != INF {
                    let nd = dy.saturating_add(w);
                    if nd < best.0 {
                        best = (nd, y);
                    }
                }
            }
            if best.0 != INF {
                self.dist[x as usize] = best.0;
                self.parent[x as usize] = best.1;
                heap.push(Reverse((best.0, x)));
            }
        }
        self.run_dijkstra(heap);
    }

    /// Increase the weight of an existing undirected edge.
    pub fn increase_weight(&mut self, u: VertexId, v: VertexId, new_w: Weight) {
        let Some(&old) = self.adj[u as usize].get(&v) else { return };
        if new_w <= old {
            self.insert_or_decrease(u, v, new_w);
            return;
        }
        // Increase = delete + insert at the heavier weight.
        self.delete_edge(u, v);
        self.adj[u as usize].insert(v, new_w);
        self.adj[v as usize].insert(u, new_w);
        // The heavier edge may still be useful somewhere.
        let mut heap = BinaryHeap::new();
        for (a, b) in [(u, v), (v, u)] {
            let da = self.dist[a as usize];
            if da == INF {
                continue;
            }
            let nd = da.saturating_add(new_w);
            if nd < self.dist[b as usize] {
                self.dist[b as usize] = nd;
                self.parent[b as usize] = a;
                heap.push(Reverse((nd, b)));
            }
        }
        self.run_dijkstra(heap);
    }

    /// Vertices in the SP-tree subtree rooted at `root` (inclusive).
    fn collect_subtree(&self, root: VertexId) -> Vec<VertexId> {
        // children lookup by scanning parents once (subtrees are small
        // relative to repeated full recomputes; a child index would
        // trade memory for speed).
        let n = self.adj.len();
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            let p = self.parent[v as usize];
            if p != NO_PARENT && p != v {
                children[p as usize].push(v);
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(children[x as usize].iter().copied());
        }
        out
    }

    /// Export the current graph as a CSR (for validation).
    pub fn to_csr(&self) -> Csr {
        let mut edges = Vec::new();
        for (u, nbrs) in self.adj.iter().enumerate() {
            for (&v, &w) in nbrs {
                edges.push((u as VertexId, v, w));
            }
        }
        rdbs_graph::builder::build_directed(&rdbs_graph::EdgeList::from_edges(
            self.adj.len(),
            edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use rdbs_graph::builder::{build_undirected, EdgeList};
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn check(d: &DynamicSssp) {
        let g = d.to_csr();
        let oracle = dijkstra(&g, 0);
        assert_eq!(d.dist(), &oracle.dist[..], "dynamic state diverged from recompute");
    }

    #[test]
    fn insert_decrease_delete_small() {
        let el = EdgeList::from_edges(5, vec![(0, 1, 10), (1, 2, 10), (0, 3, 1), (3, 4, 1)]);
        let g = build_undirected(&el);
        let mut d = DynamicSssp::new(&g, 0);
        assert_eq!(d.dist(), &[0, 10, 20, 1, 2]);
        // Shortcut 4 → 2 improves vertex 2 through the light branch.
        d.insert_or_decrease(4, 2, 1);
        assert_eq!(d.dist(), &[0, 10, 3, 1, 2]);
        check(&d);
        // Delete the shortcut: back to the heavy path.
        d.delete_edge(4, 2);
        assert_eq!(d.dist(), &[0, 10, 20, 1, 2]);
        check(&d);
        // Decrease the 0-1 edge.
        d.insert_or_decrease(0, 1, 2);
        assert_eq!(d.dist()[1], 2);
        check(&d);
        // Increase it back beyond usefulness.
        d.increase_weight(0, 1, 500);
        check(&d);
    }

    #[test]
    fn delete_disconnecting_edge() {
        let el = EdgeList::from_edges(3, vec![(0, 1, 5), (1, 2, 5)]);
        let g = build_undirected(&el);
        let mut d = DynamicSssp::new(&g, 0);
        d.delete_edge(1, 2);
        assert_eq!(d.dist(), &[0, 5, INF]);
        check(&d);
        // Reconnect.
        d.insert_or_decrease(0, 2, 3);
        assert_eq!(d.dist(), &[0, 5, 3]);
        check(&d);
    }

    #[test]
    fn random_update_stream_matches_recompute() {
        let mut el = erdos_renyi(60, 240, 5);
        uniform_weights(&mut el, 6);
        let g = build_undirected(&el);
        let mut d = DynamicSssp::new(&g, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for step in 0..200 {
            let u = rng.gen_range(0..60u32);
            let v = rng.gen_range(0..60u32);
            if u == v {
                continue;
            }
            match step % 4 {
                0 | 1 => d.insert_or_decrease(u, v, rng.gen_range(1..1000)),
                2 => d.delete_edge(u, v),
                _ => d.increase_weight(u, v, rng.gen_range(1..1000)),
            }
            if step % 20 == 19 {
                check(&d);
            }
        }
        check(&d);
    }

    #[test]
    fn directed_input_is_rejected_with_the_offending_edge() {
        // A genuinely directed CSR (1→2 has no reverse) must be turned
        // away with a typed error naming the edge, not silently
        // symmetrized into a graph the oracle disagrees with.
        let el = EdgeList::from_edges(3, vec![(0, 1, 4), (1, 0, 4), (1, 2, 7)]);
        let g = rdbs_graph::builder::build_directed(&el);
        let err = DynamicSssp::try_new(&g, 0).unwrap_err();
        assert_eq!(err, AsymmetricInput { u: 1, v: 2, weight: 7 });
        assert!(err.to_string().contains("1 -> 2"));
    }

    #[test]
    fn asymmetric_weights_are_rejected() {
        // Both directions present but at different weights is still
        // directed input: the per-direction minimum would quietly pick
        // a side.
        let el = EdgeList::from_edges(2, vec![(0, 1, 4), (1, 0, 9)]);
        let g = rdbs_graph::builder::build_directed(&el);
        let err = DynamicSssp::try_new(&g, 0).unwrap_err();
        assert_eq!((err.u, err.v), (0, 1));
    }

    #[test]
    fn symmetric_csr_from_directed_builder_is_accepted() {
        // Symmetry is about the edge set, not which builder made it: a
        // directed CSR that *is* symmetric (including collapsed
        // parallel edges) passes and matches the oracle.
        let el =
            EdgeList::from_edges(3, vec![(0, 1, 4), (1, 0, 4), (1, 0, 9), (1, 2, 2), (2, 1, 2)]);
        let g = rdbs_graph::builder::build_directed(&el);
        let d = DynamicSssp::try_new(&g, 0).unwrap();
        assert_eq!(d.dist(), &[0, 4, 6]);
    }

    #[test]
    fn noop_updates_do_not_disturb() {
        let el = EdgeList::from_edges(4, vec![(0, 1, 4), (1, 2, 4), (2, 3, 4)]);
        let g = build_undirected(&el);
        let mut d = DynamicSssp::new(&g, 0);
        let before = d.dist().to_vec();
        d.insert_or_decrease(0, 1, 9); // heavier than existing: no-op
        d.delete_edge(0, 3); // absent edge: no-op
        assert_eq!(d.dist(), &before[..]);
    }
}
