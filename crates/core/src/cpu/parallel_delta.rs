//! Layer-synchronous parallel Δ-stepping on native threads.
//!
//! The conventional shared-memory implementation (Graph500 reference
//! style): each phase-1 layer splits the current bucket across
//! `threads` crossbeam scoped threads; relaxations use an atomic
//! `fetch_min`; newly activated vertices are collected per-thread and
//! merged. Used as the realistic CPU counterpart in the criterion
//! benches.

use super::fetch_min;
use crate::stats::trace::{self, Phase, TraceShard};
use crate::stats::{SsspResult, UpdateStats};
use crate::{Csr, VertexId, Weight, INF};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Parallel Δ-stepping with `threads` workers.
pub fn parallel_delta_stepping(
    graph: &Csr,
    source: VertexId,
    delta: Weight,
    threads: usize,
) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta >= 1 && threads >= 1);
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let updates = AtomicU64::new(0);
    let checks = AtomicU64::new(0);

    let bucket_of = |d: u32| (d / delta) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut stats = UpdateStats::default();

    let mut i = 0usize;
    while i < buckets.len() {
        if buckets[i].is_empty() {
            i += 1;
            continue;
        }
        let mut settled: Vec<VertexId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut layers = 0u32;
        let mut bucket_active = 0u64;
        // Phase 1: light edges, layer by layer.
        while !buckets[i].is_empty() {
            let layer = std::mem::take(&mut buckets[i]);
            layers += 1;
            let fresh: Vec<VertexId> = layer
                .into_iter()
                .filter(|&v| {
                    let d = dist[v as usize].load(Ordering::Relaxed);
                    d != INF && bucket_of(d) == i
                })
                .collect();
            bucket_active += fresh.len() as u64;
            for &v in &fresh {
                if seen.insert(v) {
                    settled.push(v);
                }
            }
            trace::set_context(i as u64, Phase::Light, layers - 1);
            let outs = relax_parallel(
                graph,
                &dist,
                &fresh,
                threads,
                &updates,
                &checks,
                trace::shard(),
                |w| w < delta,
            );
            for (v, d) in outs {
                let b = bucket_of(d);
                if buckets.len() <= b {
                    buckets.resize_with(b + 1, Vec::new);
                }
                buckets[b].push(v);
            }
        }
        // Phase 2: heavy edges of everything settled.
        trace::set_context(i as u64, Phase::Heavy, 0);
        let outs = relax_parallel(
            graph,
            &dist,
            &settled,
            threads,
            &updates,
            &checks,
            trace::shard(),
            |w| w >= delta,
        );
        for (v, d) in outs {
            let b = bucket_of(d);
            if buckets.len() <= b {
                buckets.resize_with(b + 1, Vec::new);
            }
            buckets[b].push(v);
        }
        stats.phase1_layers.push(layers);
        stats.bucket_active.push(bucket_active);
        i += 1;
    }

    stats.total_updates = updates.load(Ordering::Relaxed);
    stats.checks = checks.load(Ordering::Relaxed);
    let dist = dist.into_iter().map(std::sync::atomic::AtomicU32::into_inner).collect();
    SsspResult { source, dist, stats }
}

/// Relax the selected edges of `frontier` in parallel; returns the
/// `(vertex, new_dist)` pairs that improved. `shard` is the trace
/// handle the host captured for this wave (None when tracing is off).
#[allow(clippy::too_many_arguments)]
fn relax_parallel(
    graph: &Csr,
    dist: &[AtomicU32],
    frontier: &[VertexId],
    threads: usize,
    updates: &AtomicU64,
    checks: &AtomicU64,
    shard: Option<TraceShard>,
    edge_filter: impl Fn(Weight) -> bool + Sync,
) -> Vec<(VertexId, u32)> {
    if frontier.is_empty() {
        return Vec::new();
    }
    let chunk = frontier.len().div_ceil(threads);
    let mut outputs: Vec<Vec<(VertexId, u32)>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = frontier
            .chunks(chunk)
            .map(|part| {
                let filter = &edge_filter;
                let shard = &shard;
                scope.spawn(move |_| {
                    let mut out: Vec<(VertexId, u32)> = Vec::new();
                    let mut local_updates = 0u64;
                    let mut local_checks = 0u64;
                    for &v in part {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        for (u, w) in graph.edges(v) {
                            if !filter(w) {
                                continue;
                            }
                            local_checks += 1;
                            let nd = dv.saturating_add(w);
                            if nd < dist[u as usize].load(Ordering::Relaxed) {
                                let old = fetch_min(&dist[u as usize], nd);
                                if nd < old {
                                    local_updates += 1;
                                    out.push((u, nd));
                                    if let Some(sh) = shard {
                                        sh.record(v, u, old, nd);
                                    }
                                }
                            }
                        }
                    }
                    updates.fetch_add(local_updates, Ordering::Relaxed);
                    checks.fetch_add(local_checks, Ordering::Relaxed);
                    out
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::dijkstra;
    use rdbs_graph::builder::build_undirected;
    use rdbs_graph::generate::{erdos_renyi, uniform_weights};

    fn graph(seed: u64, n: usize, m: usize) -> Csr {
        let mut el = erdos_renyi(n, m, seed);
        uniform_weights(&mut el, seed + 2);
        build_undirected(&el)
    }

    #[test]
    fn matches_dijkstra_multithreaded() {
        for seed in 0..3 {
            let g = graph(seed, 150, 900);
            let oracle = dijkstra(&g, 0);
            for threads in [1, 2, 4] {
                let r = parallel_delta_stepping(&g, 0, 150, threads);
                assert_eq!(r.dist, oracle.dist, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn stats_populated() {
        let g = graph(9, 100, 600);
        let r = parallel_delta_stepping(&g, 0, 100, 2);
        assert!(r.stats.total_updates > 0);
        assert!(r.stats.checks >= r.stats.total_updates);
        assert!(!r.stats.phase1_layers.is_empty());
    }

    #[test]
    fn single_vertex_graph() {
        let g = Csr::empty(1);
        let r = parallel_delta_stepping(&g, 0, 10, 2);
        assert_eq!(r.dist, vec![0]);
    }
}
